//! End-to-end tests of the scenario-driven verification subsystem.
//!
//! Two halves:
//!
//! * **the harness trusts nothing** — every catalog scenario × every
//!   protocol must run clean, with identical verdicts at `threads(1)` and
//!   `threads(4)` (determinism of the matrix executor);
//! * **the harness catches real breakage** — an intentionally broken
//!   protocol variant (runtime fault injection: corrupted load returns)
//!   must be flagged, and the failing trace must shrink to a small,
//!   replayable `.trace` repro.

use bash::tester::{minimize_trace, run_verify_scenario, run_verify_trace, VerifyConfig};
use bash::{
    differential_trace, verify_catalog, verify_scenario, BuildError, FaultInjection, ProtocolKind,
    SimBuilder, Trace,
};

const PROTOCOLS: [ProtocolKind; 3] = [
    ProtocolKind::Snooping,
    ProtocolKind::Directory,
    ProtocolKind::Bash,
];

/// Acceptance gate: every catalog scenario runs clean under the invariant
/// harness for all three protocols, and the verdict list is identical
/// whether the matrix runs on one worker thread or four.
#[test]
fn catalog_is_clean_and_thread_invariant() {
    let serial = verify_catalog(4, 0xF00D, 200, 1);
    let parallel = verify_catalog(4, 0xF00D, 200, 4);
    assert_eq!(serial, parallel, "verdicts must not depend on threads");
    for v in &serial {
        assert!(
            v.passed,
            "{}/{:?}: {} violations, first: {:?}",
            v.scenario, v.protocol, v.violations, v.first_violation
        );
    }
    assert_eq!(serial.len(), bash::catalog::CATALOG.len() * 3);
}

/// The facade entry points agree with the tester-level harness.
#[test]
fn facade_verify_entry_points_work() {
    let report = verify_scenario("producer-consumer", ProtocolKind::Directory).unwrap();
    assert!(report.passed(), "first: {:?}", report.first_violation());
    assert_eq!(report.workload, "producer-consumer");

    let report = SimBuilder::new(ProtocolKind::Bash)
        .nodes(4)
        .scenario("zipf")
        .verify(150);
    assert!(report.passed(), "first: {:?}", report.first_violation());
    assert_eq!(report.ops, 600);

    assert!(matches!(
        verify_scenario("no-such-scenario", ProtocolKind::Bash),
        Err(BuildError::UnknownScenario(_))
    ));
}

/// A `trace_in` verification through the facade replays the whole trace:
/// the op cap applies to endless generators only, never to the
/// reproduction path (a capped replay could silently pass on a failure
/// trace whose violation lies past the cap).
#[test]
fn facade_trace_verify_replays_the_whole_trace() {
    let captured = SimBuilder::new(ProtocolKind::Snooping)
        .nodes(4)
        .scenario("migratory")
        .verify(100);
    assert!(captured.passed());
    assert_eq!(captured.ops, 400);

    // ops_per_node far below the trace length must not truncate it.
    let replayed = SimBuilder::new(ProtocolKind::Snooping)
        .trace_in(captured.trace.clone())
        .verify(1);
    assert_eq!(
        replayed.ops,
        captured.trace.records.len() as u64,
        "replay was truncated by the op cap"
    );
    assert!(replayed.passed());
}

/// An intentionally broken protocol variant — every 5th load completion
/// returns fabricated data — must be caught by the harness for every
/// protocol, and the failing trace must shrink to a repro of ≤ 64 ops
/// that still fails when replayed from its serialized `.trace` form.
#[test]
fn broken_protocol_variant_is_caught_and_shrunk() {
    for proto in PROTOCOLS {
        let mut cfg = VerifyConfig::new(proto, 0xBAD);
        cfg.ops_per_node = 150;
        cfg.fault = Some(FaultInjection::CorruptLoads { period: 5 });
        let report = run_verify_scenario(&cfg, "migratory");
        assert!(
            !report.passed(),
            "{proto:?}: the broken variant must be caught"
        );
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.what.contains("thin air")),
            "{proto:?}: corruption should surface as out-of-thin-air values"
        );

        // Shrink while the violation reproduces under the same (broken)
        // configuration.
        let outcome = minimize_trace(
            &report.trace,
            |candidate| !run_verify_trace(&cfg, candidate).passed(),
            600,
        );
        assert!(
            outcome.trace.records.len() <= 64,
            "{proto:?}: repro has {} ops (want <= 64, from {})",
            outcome.trace.records.len(),
            outcome.reduced_from
        );

        // The minimized repro round-trips through the on-disk form and
        // still reproduces.
        let dir = std::env::temp_dir().join("bash_verify_harness");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("repro_{}.trace", proto.name().to_ascii_lowercase()));
        outcome.trace.write_to(&path).unwrap();
        let reloaded = Trace::read_from(&path).unwrap();
        assert_eq!(reloaded, outcome.trace);
        assert!(
            !run_verify_trace(&cfg, &reloaded).passed(),
            "{proto:?}: the serialized repro must still fail"
        );
        // Sanity: the same repro is clean once the fault is removed — the
        // harness is detecting the fault, not the workload.
        let mut clean_cfg = cfg.clone();
        clean_cfg.fault = None;
        assert!(
            run_verify_trace(&clean_cfg, &reloaded).passed(),
            "{proto:?}: repro must be clean without the injected fault"
        );
        std::fs::remove_file(&path).ok();
    }
}

/// A protocol that loses invalidations — every 3rd GetM delivery to a
/// pure-sharer bystander is dropped, leaving a stale Shared copy that
/// keeps serving loads — must be caught by the value oracle for every
/// protocol. (Owners are never targeted, so the fault manifests as wrong
/// *values*, never as deadlock: the system still reaches quiescence.)
#[test]
fn dropped_invalidations_are_caught_for_every_protocol() {
    for proto in PROTOCOLS {
        let mut cfg = VerifyConfig::new(proto, 0xDEAD);
        cfg.ops_per_node = 200;
        cfg.fault = Some(FaultInjection::DropInvalidations { period: 3 });
        // producer-consumer maximizes S-state bystanders: every consumer
        // holds the block Shared when the producer's next GetM arrives.
        let report = run_verify_scenario(&cfg, "producer-consumer");
        assert!(
            !report.passed(),
            "{proto:?}: lost invalidations must be caught"
        );
        // A stale copy serves old tokens: the violation reads as a stale /
        // out-of-order / thin-air value, never as a deadlock.
        assert!(
            report
                .violations
                .iter()
                .all(|v| !v.what.contains("quiescence")),
            "{proto:?}: fault should corrupt values, not deadlock: {:?}",
            report.first_violation()
        );
        // Control: the same trace is clean without the fault — the
        // harness is detecting the fault, not the workload.
        let mut clean_cfg = cfg.clone();
        clean_cfg.fault = None;
        assert!(
            run_verify_trace(&clean_cfg, &report.trace).passed(),
            "{proto:?}: the captured stream must be clean without the fault"
        );
    }
}

/// A network that duplicates messages — every 2nd GetM reaching its home
/// is redelivered once ownership has migrated to another cache, so the
/// home re-runs the ownership transfer and corrupts its owner record out
/// from under the real owner — must be caught for every protocol.
/// Migratory sharing maximizes ownership movement, so every duplicate
/// finds a moved owner to corrupt.
#[test]
fn duplicated_deliveries_are_caught_for_every_protocol() {
    for proto in PROTOCOLS {
        let mut cfg = VerifyConfig::new(proto, 1);
        cfg.ops_per_node = 200;
        cfg.fault = Some(FaultInjection::DuplicateDeliveries { period: 2 });
        let report = run_verify_scenario(&cfg, "migratory");
        assert!(
            !report.passed(),
            "{proto:?}: duplicated deliveries must be caught"
        );
        // Control: the same stream is clean without the fault.
        let mut clean_cfg = cfg.clone();
        clean_cfg.fault = None;
        assert!(
            run_verify_trace(&clean_cfg, &report.trace).passed(),
            "{proto:?}: the captured stream must be clean without the fault"
        );
    }
}

/// A network that loses its total-order guarantee — per destination node,
/// ordered deliveries are batched in pairs and released in reverse, so
/// nodes observe overlapping requests in different orders — must be
/// caught for every protocol: request serialization is exactly what all
/// three protocols build on top of the ordered network.
#[test]
fn reordered_ordered_deliveries_are_caught_for_every_protocol() {
    for proto in PROTOCOLS {
        let mut cfg = VerifyConfig::new(proto, 1);
        cfg.ops_per_node = 200;
        cfg.fault = Some(FaultInjection::ReorderOrdered { window: 2 });
        let report = run_verify_scenario(&cfg, "migratory");
        assert!(
            !report.passed(),
            "{proto:?}: reordered ordered deliveries must be caught"
        );
        // Control: the same stream is clean without the fault.
        let mut clean_cfg = cfg.clone();
        clean_cfg.fault = None;
        assert!(
            run_verify_trace(&clean_cfg, &report.trace).passed(),
            "{proto:?}: the captured stream must be clean without the fault"
        );
    }
}

/// A home that silently forgets sharers — every 2nd home-bound request
/// erases the requestor from the sharer bitmap (and resets the owner
/// record if the requestor owned the block) — must be caught for every
/// protocol. The forgotten node keeps a live cached copy the home no
/// longer invalidates, or holds the only dirty copy while the home
/// serves stale memory: either way the value oracle flags it.
#[test]
fn stale_sharer_masks_are_caught_for_every_protocol() {
    for proto in PROTOCOLS {
        let mut cfg = VerifyConfig::new(proto, 0x5A1E);
        cfg.ops_per_node = 200;
        cfg.fault = Some(FaultInjection::StaleSharerMask { period: 2 });
        // producer-consumer keeps every consumer registered at the home
        // in S state, so a forgotten sharer reliably survives the
        // producer's next invalidation round with a stale copy.
        let report = run_verify_scenario(&cfg, "producer-consumer");
        assert!(
            !report.passed(),
            "{proto:?}: a forgotten sharer must be caught"
        );
        // Control: the same stream is clean without the fault — the
        // harness is detecting the fault, not the workload.
        let mut clean_cfg = cfg.clone();
        clean_cfg.fault = None;
        assert!(
            run_verify_trace(&clean_cfg, &report.trace).passed(),
            "{proto:?}: the captured stream must be clean without the fault"
        );
    }
}

/// Differential mode over a captured catalog trace: all three protocols
/// replay the same stream, reach quiescence, and agree on every
/// single-writer final value.
#[test]
fn differential_replay_agrees_across_protocols() {
    let mut cfg = VerifyConfig::new(ProtocolKind::Snooping, 0xD1FF);
    cfg.ops_per_node = 150;
    let report = run_verify_scenario(&cfg, "phase-shift");
    assert!(report.passed(), "first: {:?}", report.first_violation());

    let diff = differential_trace(&cfg, &report.trace);
    assert!(
        diff.passed(),
        "single-writer mismatches: {:?}",
        diff.mismatches
    );
    assert_eq!(diff.quiescent, vec![true, true, true]);
    assert_eq!(diff.protocols.len(), 3);
    assert!(diff.locations > 0);
}

/// A verification run under fault injection still produces a valid,
/// replayable captured trace (the capture happens at issue time, before
/// the corruption is applied to completions).
#[test]
fn fault_injection_does_not_poison_the_capture() {
    let mut cfg = VerifyConfig::new(ProtocolKind::Snooping, 3);
    cfg.ops_per_node = 60;
    cfg.fault = Some(FaultInjection::CorruptLoads { period: 3 });
    let report = run_verify_scenario(&cfg, "migratory");
    assert!(!report.passed());
    assert!(report.trace.validate().is_ok());
    assert_eq!(report.trace.records.len() as u64, report.ops);
}
