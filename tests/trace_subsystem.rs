//! End-to-end contract of the trace subsystem: capture a live run, replay
//! it, and get the same report back — across encodings, protocols and
//! thread counts.

use bash::{CaptureSpec, ProtocolKind, SimBuilder, Trace};

const WARMUP_NS: u64 = 5_000;
const MEASURE_NS: u64 = 20_000;

fn capture_builder(proto: ProtocolKind) -> SimBuilder {
    SimBuilder::new(proto)
        .nodes(4)
        .bandwidth_mbps(1600)
        .scenario("migratory")
        .seed(0xF00D)
        .warmup_ns(WARMUP_NS)
        .measure_ns(MEASURE_NS)
}

#[test]
fn capture_then_replay_reproduces_the_report_byte_for_byte() {
    let (report, trace) = capture_builder(ProtocolKind::Bash).run_captured();
    assert!(trace.validate().is_ok());
    assert!(trace.records.len() > 50, "trace too short to be meaningful");
    assert_eq!(trace.nodes, 4);
    assert_eq!(trace.workload, "migratory");
    let per_node: usize = (0..4).map(|n| trace.ops_for(bash::NodeId(n))).sum();
    assert_eq!(per_node, trace.records.len());
    for n in 0..4 {
        assert!(trace.ops_for(bash::NodeId(n)) > 0, "node {n} captured idle");
    }

    let replayed = capture_builder(ProtocolKind::Bash).trace_in(trace).run();
    assert_eq!(
        report.canonical_text(),
        replayed.canonical_text(),
        "replay diverged from the captured run"
    );
}

#[test]
fn replay_is_thread_count_invariant() {
    let (_, trace) = capture_builder(ProtocolKind::Snooping).run_captured();
    let sweep = |threads: usize| {
        bash::sweep_canonical_text(
            &capture_builder(ProtocolKind::Snooping)
                .trace_in(trace.clone())
                .bandwidths([400, 1600, 6400])
                .threads(threads)
                .run_sweep(),
        )
    };
    let serial = sweep(1);
    assert_eq!(serial, sweep(4), "threads=4 diverged from threads=1");
    assert_eq!(serial, sweep(3), "threads=3 diverged from threads=1");
}

#[test]
fn one_capture_replays_through_every_protocol() {
    let (_, trace) = capture_builder(ProtocolKind::Snooping).run_captured();
    for proto in [
        ProtocolKind::Snooping,
        ProtocolKind::Directory,
        ProtocolKind::Bash,
    ] {
        let report = capture_builder(proto).trace_in(trace.clone()).run();
        assert!(report.stats().misses > 0, "{proto:?} replay did no work");
        assert_eq!(report.workload, "migratory");
        // Replays of the same stream are deterministic per protocol.
        let again = capture_builder(proto).trace_in(trace.clone()).run();
        assert_eq!(report.canonical_text(), again.canonical_text());
    }
}

#[test]
fn binary_and_text_roundtrips_preserve_replay_results() {
    let (_, trace) = capture_builder(ProtocolKind::Bash).run_captured();
    let via_bytes = Trace::from_bytes(&trace.to_bytes()).unwrap();
    let via_text = Trace::from_text(&trace.to_text()).unwrap();
    assert_eq!(trace, via_bytes);
    assert_eq!(trace, via_text);
}

#[test]
fn trace_out_writes_a_loadable_file() {
    let dir = std::env::temp_dir().join("bash_trace_subsystem_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("out.trace");
    let report = capture_builder(ProtocolKind::Bash)
        .capture(CaptureSpec::new().ops_to(&path))
        .run();
    let trace = Trace::read_from(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let replayed = capture_builder(ProtocolKind::Bash).trace_in(trace).run();
    assert_eq!(report.canonical_text(), replayed.canonical_text());
}

/// The streaming file replay path (`trace_in_path`) is report-identical
/// to the buffered path (`trace_in`): capture → write-chunked (v2 on
/// disk) → read-streaming reproduces the in-memory replay byte for byte,
/// across a bandwidth sweep and at any thread count.
#[test]
fn streaming_file_replay_matches_buffered_replay() {
    let dir = std::env::temp_dir().join("bash_trace_streaming_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("streamed.trace");
    let (live, trace) = capture_builder(ProtocolKind::Bash).run_captured();
    trace.write_to(&path).unwrap();

    // Single point: streamed replay reproduces the live capture run.
    let streamed = capture_builder(ProtocolKind::Bash)
        .trace_in_path(&path)
        .unwrap()
        .run();
    assert_eq!(live.canonical_text(), streamed.canonical_text());

    // Sweep: streamed == buffered for every grid point, threads 1 and 4
    // (every run re-opens and re-decodes the file independently).
    let buffered_sweep = bash::sweep_canonical_text(
        &capture_builder(ProtocolKind::Bash)
            .trace_in(trace)
            .bandwidths([400, 1600])
            .threads(1)
            .run_sweep(),
    );
    for threads in [1usize, 4] {
        let streamed_sweep = bash::sweep_canonical_text(
            &capture_builder(ProtocolKind::Bash)
                .trace_in_path(&path)
                .unwrap()
                .bandwidths([400, 1600])
                .threads(threads)
                .run_sweep(),
        );
        assert_eq!(
            buffered_sweep, streamed_sweep,
            "streaming replay diverged at threads={threads}"
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn trace_in_path_rejects_missing_and_corrupt_files() {
    let err = SimBuilder::new(ProtocolKind::Bash)
        .trace_in_path("/nonexistent/stream.trace")
        .err()
        .expect("missing file must be rejected");
    assert!(matches!(err, bash::BuildError::TraceUnreadable { .. }));

    let dir = std::env::temp_dir().join("bash_trace_streaming_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("corrupt.trace");
    std::fs::write(&path, b"definitely not a trace").unwrap();
    let err = SimBuilder::new(ProtocolKind::Bash)
        .trace_in_path(&path)
        .err()
        .expect("corrupt header must be rejected");
    assert!(matches!(err, bash::BuildError::TraceUnreadable { .. }));
    std::fs::remove_file(&path).ok();
}

/// `capture_completions` stamps issue→complete latencies onto the
/// captured records; the reference stream itself (and therefore the
/// replay) is unchanged, and the latencies survive the on-disk round
/// trip.
#[test]
fn completion_capture_is_replay_invisible_and_persistent() {
    let (_, lean) = capture_builder(ProtocolKind::Bash).run_captured();
    let (report, bearing) = capture_builder(ProtocolKind::Bash)
        .capture(CaptureSpec::new().completions(true))
        .run_captured();
    assert_eq!(lean.completions(), 0, "plain capture stays timing-free");
    // Every record completes except, at most, the one op still in flight
    // per node when the run's time window closed.
    assert!(
        bearing.completions() >= bearing.records.len() - bearing.nodes as usize
            && bearing.completions() > 0,
        "{} of {} records carry latencies",
        bearing.completions(),
        bearing.records.len()
    );
    // Same reference stream either way.
    let mut stripped = bearing.clone();
    for r in &mut stripped.records {
        r.completion = None;
    }
    assert_eq!(stripped, lean);
    // Misses take at least a crossbar round trip, so real latencies must
    // appear (migratory is all sharing misses — no zero-latency hits).
    let latencies: Vec<u64> = bearing
        .records
        .iter()
        .filter_map(|r| r.completion.map(|d| d.as_ns()))
        .collect();
    assert!(latencies.iter().any(|&l| l >= 100), "no miss latencies");
    // Completions survive binary, text and file round trips.
    assert_eq!(Trace::from_bytes(&bearing.to_bytes()).unwrap(), bearing);
    assert_eq!(Trace::from_text(&bearing.to_text()).unwrap(), bearing);
    // And the replay is report-identical to a replay of the lean trace.
    let a = capture_builder(ProtocolKind::Bash).trace_in(bearing).run();
    let b = capture_builder(ProtocolKind::Bash).trace_in(lean).run();
    assert_eq!(a.canonical_text(), b.canonical_text());
    let _ = report;
}

#[test]
fn trace_out_all_points_writes_the_whole_grid() {
    let dir = std::env::temp_dir().join("bash_trace_allpoints_test");
    std::fs::create_dir_all(&dir).unwrap();
    let base = dir.join("grid.trace");
    capture_builder(ProtocolKind::Snooping)
        .bandwidths([400, 1600])
        .seeds(2)
        .capture(CaptureSpec::new().ops_to(&base).all_points(true))
        .run_sweep();
    // One file per (bandwidth, seed) grid point, plus the plain base path
    // carrying the first point.
    let mut traces = Vec::new();
    for name in [
        "grid.trace",
        "grid.b400.s0.trace",
        "grid.b400.s1.trace",
        "grid.b1600.s0.trace",
        "grid.b1600.s1.trace",
    ] {
        let path = dir.join(name);
        let trace =
            Trace::read_from(&path).unwrap_or_else(|e| panic!("{name} missing or invalid: {e}"));
        assert!(trace.validate().is_ok(), "{name}");
        assert_eq!(trace.nodes, 4, "{name}");
        traces.push(trace);
        std::fs::remove_file(&path).ok();
    }
    // The base path and the first grid point are the same capture, and
    // every captured point replays.
    assert_eq!(traces[0], traces[1]);
    for trace in traces {
        let report = capture_builder(ProtocolKind::Snooping)
            .trace_in(trace)
            .run();
        assert!(report.stats().misses > 0);
    }
}

#[test]
fn trace_out_all_points_requires_a_path() {
    let err = capture_builder(ProtocolKind::Snooping)
        .capture(CaptureSpec::new().all_points(true))
        .validate()
        .unwrap_err();
    assert!(matches!(err, bash::BuildError::AllPointsWithoutTraceOut));
}

#[test]
fn trace_in_adopts_node_count_and_rejects_mismatch() {
    let (_, trace) = capture_builder(ProtocolKind::Snooping).run_captured();
    let b = SimBuilder::new(ProtocolKind::Snooping).trace_in(trace.clone());
    assert!(b.validate().is_ok(), "trace_in should adopt the node count");
    let b = SimBuilder::new(ProtocolKind::Snooping)
        .trace_in(trace)
        .nodes(8);
    assert!(matches!(
        b.validate(),
        Err(bash::BuildError::TraceNodeMismatch { trace: 4, nodes: 8 })
    ));
}

#[test]
fn unknown_scenario_is_rejected_with_the_catalog() {
    let err = SimBuilder::new(ProtocolKind::Bash)
        .scenario("definitely-not-a-scenario")
        .validate()
        .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("definitely-not-a-scenario"));
    assert!(msg.contains("migratory"), "error should list known names");
}
