//! Contract tests for the scenario catalog: every named scenario must be
//! deterministic per seed, produce a nonempty op stream, and generate the
//! *same* stream no matter which protocol observes it (the property that
//! makes scenarios capturable and replayable).

use bash::kernel::Time;
use bash::{catalog, NodeId, ProtocolKind, SimBuilder, WorkItem};

const NODES: u16 = 4;
const OPS_PER_NODE: usize = 64;

/// Drains the first `OPS_PER_NODE` items per node straight from the
/// generator (no simulation involved).
fn drain(name: &str, seed: u64) -> Vec<Vec<WorkItem>> {
    let mut wl = catalog::build(name, NODES, seed).expect("known scenario");
    (0..NODES)
        .map(|node| {
            (0..OPS_PER_NODE)
                .filter_map(|_| wl.next_item(NodeId(node), Time::ZERO))
                .collect()
        })
        .collect()
}

#[test]
fn every_scenario_is_deterministic_per_seed_and_nonempty() {
    for s in catalog::CATALOG {
        let a = drain(s.name, 42);
        let b = drain(s.name, 42);
        assert_eq!(a, b, "scenario {} is not deterministic per seed", s.name);
        for (node, stream) in a.iter().enumerate() {
            assert!(
                !stream.is_empty(),
                "scenario {} produced no ops for node {node}",
                s.name
            );
        }
    }
}

#[test]
fn seeded_scenarios_vary_with_the_seed() {
    // The stochastic generators must actually consume their seed. (The
    // fixed patterns — producer-consumer, migratory, false-sharing,
    // phase-shift — are deliberately seed-invariant.)
    for name in [
        "zipf",
        "locking",
        "oltp",
        "apache",
        "specjbb",
        "slashcode",
        "barnes-hut",
    ] {
        assert_ne!(
            drain(name, 1),
            drain(name, 2),
            "scenario {name} ignores its seed"
        );
    }
}

#[test]
fn every_scenario_yields_the_same_stream_under_every_protocol() {
    // Capture each scenario under two different protocols. Timing differs
    // wildly between protocols, so the runs consume different *amounts* of
    // the stream — but the per-node streams themselves must agree on their
    // common prefix, record for record.
    for s in catalog::CATALOG {
        let capture = |proto: ProtocolKind| {
            SimBuilder::new(proto)
                .nodes(NODES)
                .bandwidth_mbps(800)
                .scenario(s.name)
                .seed(7)
                .warmup_ns(2_000)
                .measure_ns(8_000)
                .run_captured()
                .1
        };
        let snoop = capture(ProtocolKind::Snooping);
        let dir = capture(ProtocolKind::Directory);
        for node in 0..NODES {
            let a: Vec<_> = snoop
                .records
                .iter()
                .filter(|r| r.node == NodeId(node))
                .collect();
            let b: Vec<_> = dir
                .records
                .iter()
                .filter(|r| r.node == NodeId(node))
                .collect();
            let common = a.len().min(b.len());
            assert!(common > 0, "scenario {} idle on node {node}", s.name);
            assert_eq!(
                &a[..common],
                &b[..common],
                "scenario {} stream depends on the protocol (node {node})",
                s.name
            );
        }
    }
}

#[test]
fn catalog_names_resolve_through_the_builder() {
    for s in catalog::CATALOG {
        let report = SimBuilder::new(ProtocolKind::Bash)
            .nodes(NODES)
            .scenario(s.name)
            .warmup_ns(2_000)
            .measure_ns(8_000)
            .run();
        assert!(
            report.stats().ops_completed > 0,
            "scenario {} completed no ops through the builder",
            s.name
        );
    }
}
