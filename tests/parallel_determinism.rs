//! Regression tests for the parallel sweep executor: the worker-thread
//! count must never change a single reported number. Every (bandwidth ×
//! seed) grid point is an independent, self-seeded simulation and reports
//! are reassembled in grid order, so `.threads(8)` must be *exactly* equal
//! — every metric, every per-seed `RunStats` — to `.threads(1)`.

use bash::{CaptureSpec, Duration, ProtocolKind, RunReport, SimBuilder};

fn sweep(proto: ProtocolKind) -> SimBuilder {
    SimBuilder::new(proto)
        .nodes(8)
        .bandwidths([400, 800, 1600])
        .seeds(4)
        .locking_microbench(128, Duration::ZERO)
        .warmup_ns(20_000)
        .measure_ns(60_000)
}

fn assert_identical(serial: &[RunReport], parallel: &[RunReport]) {
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(parallel) {
        // One equality would do (RunReport: PartialEq), but comparing field
        // by field makes a regression's diff actually readable.
        assert_eq!(s.bandwidth_mbps, p.bandwidth_mbps);
        assert_eq!(s.workload, p.workload);
        assert_eq!(s.perf, p.perf, "perf diverged at {} MB/s", s.bandwidth_mbps);
        assert_eq!(s.miss_latency_ns, p.miss_latency_ns);
        assert_eq!(s.link_utilization, p.link_utilization);
        assert_eq!(s.broadcast_fraction, p.broadcast_fraction);
        assert_eq!(s.runs, p.runs, "raw per-seed stats diverged");
        assert_eq!(s, p);
    }
}

#[test]
fn bash_sweep_is_thread_count_invariant() {
    let serial = sweep(ProtocolKind::Bash).threads(1).run_sweep();
    let parallel = sweep(ProtocolKind::Bash).threads(8).run_sweep();
    assert_identical(&serial, &parallel);
}

#[test]
fn snooping_and_directory_sweeps_are_thread_count_invariant() {
    for proto in [ProtocolKind::Snooping, ProtocolKind::Directory] {
        let serial = sweep(proto).threads(1).run_sweep();
        let parallel = sweep(proto).threads(8).run_sweep();
        assert_identical(&serial, &parallel);
    }
}

#[test]
fn default_thread_count_matches_sequential() {
    // No explicit .threads(): the builder uses available_parallelism,
    // whatever that is on this machine — results must still match.
    let auto = sweep(ProtocolKind::Bash).run_sweep();
    let serial = sweep(ProtocolKind::Bash).threads(1).run_sweep();
    assert_identical(&serial, &auto);
}

#[test]
fn policy_trace_survives_parallel_execution() {
    // The first-seed policy trace is collected from a worker thread; it
    // must come back identical to the sequential run's.
    let mk = || {
        SimBuilder::new(ProtocolKind::Bash)
            .nodes(8)
            .bandwidths([200, 1600])
            .seeds(2)
            .capture(CaptureSpec::new().policy(true))
            .locking_microbench(128, Duration::ZERO)
            .warmup_ns(20_000)
            .measure_ns(60_000)
    };
    let serial = mk().threads(1).run_sweep();
    let parallel = mk().threads(4).run_sweep();
    for (s, p) in serial.iter().zip(&parallel) {
        assert!(s.policy_trace.is_some());
        assert_eq!(s.policy_trace, p.policy_trace);
    }
}
