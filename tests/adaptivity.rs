//! End-to-end tests of BASH's adaptive behaviour — the paper's central
//! claims, checked on the full system through the `SimBuilder` facade.

use bash::{
    AdaptorConfig, CacheGeometry, CaptureSpec, Duration, ProtocolKind, RunReport, SimBuilder, Time,
};

const NODES: u16 = 16;
const LOCKS: u64 = 256;

fn builder(proto: ProtocolKind, mbps: u64) -> SimBuilder {
    SimBuilder::new(proto)
        .nodes(NODES)
        .bandwidth_mbps(mbps)
        .cache(CacheGeometry { sets: 256, ways: 4 })
        .locking_microbench(LOCKS, Duration::ZERO)
        .seed(11)
}

fn run(proto: ProtocolKind, mbps: u64, adaptor: AdaptorConfig) -> RunReport {
    builder(proto, mbps)
        .adaptor(adaptor)
        .warmup_ns(150_000)
        .measure_ns(300_000)
        .run()
}

#[test]
fn bash_unicasts_when_bandwidth_is_scarce() {
    // Give the mechanism time to swing: a full 0 → 255 policy transition
    // takes 512 × 255 ≈ 130k cycles of above-threshold utilization (§2.2),
    // so warm up for several multiples of that before measuring.
    let report = builder(ProtocolKind::Bash, 100)
        .warmup_ns(600_000)
        .measure_ns(300_000)
        .run();
    assert!(
        report.broadcast_fraction.mean < 0.35,
        "expected mostly unicast at 100 MB/s, broadcast fraction = {}",
        report.broadcast_fraction.mean
    );
}

#[test]
fn bash_broadcasts_when_bandwidth_is_plentiful() {
    let report = run(ProtocolKind::Bash, 50_000, AdaptorConfig::paper_default());
    assert!(
        report.broadcast_fraction.mean > 0.95,
        "expected broadcasts at 50 GB/s, broadcast fraction = {}",
        report.broadcast_fraction.mean
    );
}

#[test]
fn bash_holds_the_utilization_target_in_the_midrange() {
    // Figure 6: "BASH achieves the desired 75% utilization until bandwidth
    // is so plentiful that even by always broadcasting it does not reach
    // 75% utilization." At 16 processors that convergence point arrives
    // around 1600 MB/s, where BASH must instead be (nearly) all-broadcast
    // below the target.
    for mbps in [400, 800] {
        let report = run(ProtocolKind::Bash, mbps, AdaptorConfig::paper_default());
        assert!(
            (report.link_utilization.mean - 0.75).abs() < 0.06,
            "{mbps} MB/s: utilization {} should be pinned near 0.75",
            report.link_utilization.mean
        );
    }
    let plentiful = run(ProtocolKind::Bash, 3200, AdaptorConfig::paper_default());
    assert!(
        plentiful.link_utilization.mean < 0.75,
        "plentiful bandwidth cannot hit the target: {}",
        plentiful.link_utilization.mean
    );
    assert!(
        plentiful.broadcast_fraction.mean > 0.9,
        "below-target utilization must drive the policy to broadcast: {}",
        plentiful.broadcast_fraction.mean
    );
}

#[test]
fn bash_is_between_or_better_than_both_bases_across_bandwidths() {
    // The robustness claim: BASH performs "as well or better than the best
    // of snooping and directory protocols as available bandwidth is varied"
    // (within a modest tolerance; the paper itself shows BASH ~10% below
    // Directory at extremely low bandwidth).
    for mbps in [200, 800, 3200, 12800] {
        let snoop = run(ProtocolKind::Snooping, mbps, AdaptorConfig::paper_default());
        let dir = run(
            ProtocolKind::Directory,
            mbps,
            AdaptorConfig::paper_default(),
        );
        let bash = run(ProtocolKind::Bash, mbps, AdaptorConfig::paper_default());
        let best = snoop.ops_per_sec.mean.max(dir.ops_per_sec.mean);
        assert!(
            bash.ops_per_sec.mean > 0.85 * best,
            "{mbps} MB/s: BASH {} vs best base {best}",
            bash.ops_per_sec.mean
        );
    }
}

#[test]
fn threshold_extremes_still_perform_reasonably() {
    // Figure 7: "performance is not overly sensitive to the exact threshold
    // value selected. Even for thresholds as high as 95% or as low as 55%,
    // the qualitative performance of BASH remains similar."
    let reference = run(ProtocolKind::Bash, 800, AdaptorConfig::paper_default());
    for pct in [55, 95] {
        let mut a = AdaptorConfig::paper_default();
        a.threshold_percent = pct;
        let report = run(ProtocolKind::Bash, 800, a);
        let ratio = report.ops_per_sec.mean / reference.ops_per_sec.mean;
        assert!(
            ratio > 0.75 && ratio < 1.35,
            "threshold {pct}%: perf ratio {ratio} too far from 75% baseline"
        );
    }
}

#[test]
fn policy_counter_adapts_to_a_bandwidth_phase_change() {
    // Drive BASH at scarce bandwidth until the policy leans unicast, then
    // verify the mechanism itself reports a high unicast probability — and
    // that it started from pure broadcast.
    let mut sys = builder(ProtocolKind::Bash, 200)
        .seed(13)
        .build_system()
        .expect("valid configuration");
    sys.enable_policy_trace();
    assert_eq!(sys.mean_unicast_probability(), 0.0, "starts at broadcast");
    sys.run_until(Time::from_ns(400_000));
    assert!(
        sys.mean_unicast_probability() > 0.5,
        "policy should lean unicast at 200 MB/s: {}",
        sys.mean_unicast_probability()
    );
    let trace = sys.policy_trace().expect("trace enabled");
    assert!(trace.len() > 100, "one sample per 512 cycles");
    // The trace must actually climb (adaptation, not initialization).
    let early = trace[5].1;
    let late = trace[trace.len() - 1].1;
    assert!(late > early + 50.0, "policy climbed: {early} -> {late}");
}

#[test]
fn adaptation_is_gradual_not_oscillating() {
    // §2.1: "our mechanism avoids oscillation by adapting relatively slowly
    // and using a probabilistic mechanism". In steady state at mid
    // bandwidth the policy should hover, not swing rail to rail. The
    // policy trace comes straight off the RunReport here.
    let report = builder(ProtocolKind::Bash, 800)
        .seed(17)
        .capture(CaptureSpec::new().policy(true))
        .warmup(Duration::ZERO)
        .measure_ns(800_000)
        .run();
    let trace = report.policy_trace.as_deref().expect("trace enabled");
    // Steady state: the second half of the trace.
    let steady = &trace[trace.len() / 2..];
    let min = steady.iter().map(|&(_, p)| p).fold(f64::INFINITY, f64::min);
    let max = steady.iter().map(|&(_, p)| p).fold(0.0f64, f64::max);
    assert!(
        max - min < 128.0,
        "policy oscillates rail to rail in steady state: {min}..{max}"
    );
    assert!(
        min > 0.0 && max < 255.0,
        "policy pegged at a rail: {min}..{max}"
    );
}
