//! Randomized race stress across protocols, seeds and hostile
//! configurations — the paper's §3.4 methodology run as a test suite.

use bash::{run_random_test, DecisionMode, Duration, ProtocolKind, TesterConfig};

fn assert_clean(report: &bash::TesterReport, what: &str) {
    assert!(
        report.passed(),
        "{what}: {} violations, first: {}",
        report.violations.len(),
        report.violations[0].what
    );
}

#[test]
fn hostile_runs_are_clean_for_every_protocol() {
    for proto in [
        ProtocolKind::Snooping,
        ProtocolKind::Directory,
        ProtocolKind::Bash,
    ] {
        for seed in [11, 23] {
            let mut cfg = TesterConfig::hostile(proto, seed);
            cfg.ops_per_node = 1500;
            let report = run_random_test(cfg);
            assert_clean(&report, &format!("{proto:?} seed {seed}"));
            assert!(report.loads_checked > 200, "checker actually ran");
        }
    }
}

#[test]
fn writeback_races_occur_and_resolve() {
    // The tiny tester cache thrashes constantly; squashed writebacks and
    // stale PutMs are the classic race. They must occur (or the test loses
    // its teeth) and resolve cleanly.
    let mut total_squashed = 0;
    for seed in [5, 6, 7] {
        let mut cfg = TesterConfig::hostile(ProtocolKind::Snooping, seed);
        cfg.ops_per_node = 2500;
        let report = run_random_test(cfg);
        assert_clean(&report, &format!("snooping wb race seed {seed}"));
        total_squashed += report.writebacks_squashed;
        assert_eq!(
            report.writebacks_squashed, report.writebacks_stale,
            "every squashed writeback must be seen as stale by the home"
        );
    }
    assert!(total_squashed > 0, "the stress must hit the writeback race");
}

#[test]
fn bash_nack_storm_is_livelock_free() {
    let report = run_random_test(TesterConfig::nack_storm(31));
    assert_clean(&report, "nack storm");
    assert!(report.nacks > 50, "the single retry buffer must overflow");
    assert!(report.retries > 500);
}

#[test]
fn bash_single_block_contention_escalates_to_broadcast() {
    // Maximum window-of-vulnerability churn: eight nodes fighting over one
    // block with adaptive mixing. Retry masks go stale and the third-retry
    // broadcast escape hatch must fire.
    let mut escalations = 0;
    for seed in [41, 42, 43] {
        let mut cfg = TesterConfig::hostile(ProtocolKind::Bash, seed);
        cfg.blocks = 1;
        cfg.nodes = 8;
        cfg.ops_per_node = 1500;
        cfg.max_think = Duration::from_ns(100);
        let report = run_random_test(cfg);
        assert_clean(&report, &format!("contended seed {seed}"));
        escalations += report.escalations;
    }
    assert!(escalations > 0, "broadcast escalation must trigger");
}

#[test]
fn bash_pure_unicast_mode_is_correct() {
    let mut cfg = TesterConfig::hostile(ProtocolKind::Bash, 51);
    cfg.adaptor_mode = DecisionMode::AlwaysUnicast;
    cfg.initial_policy = 255;
    cfg.ops_per_node = 2000;
    let report = run_random_test(cfg);
    assert_clean(&report, "pure unicast");
    assert!(report.retries > 100, "unicast sharing misses must retry");
}

#[test]
fn low_bandwidth_queueing_does_not_break_protocols() {
    for proto in [
        ProtocolKind::Snooping,
        ProtocolKind::Directory,
        ProtocolKind::Bash,
    ] {
        let mut cfg = TesterConfig::hostile(proto, 61);
        cfg.link_mbps = 80; // heavy queueing, deep reordering windows
        cfg.ops_per_node = 600;
        let report = run_random_test(cfg);
        assert_clean(&report, &format!("{proto:?} at 80 MB/s"));
    }
}

#[test]
fn transition_coverage_is_substantial() {
    // The paper reports "full coverage for all state transitions"; we
    // assert the tester reaches a healthy floor so coverage regressions
    // are caught.
    let mut cfg = TesterConfig::hostile(ProtocolKind::Bash, 71);
    cfg.ops_per_node = 3000;
    let report = run_random_test(cfg);
    assert_clean(&report, "coverage run");
    assert!(
        report.cache_log.transition_count() >= 50,
        "cache transitions observed: {}",
        report.cache_log.transition_count()
    );
    assert!(
        report.mem_log.transition_count() >= 12,
        "memory transitions observed: {}",
        report.mem_log.transition_count()
    );
}
