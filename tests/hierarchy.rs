//! End-to-end tests of the two-level hierarchical organization: snooping
//! clusters under a sharded directory spine (see `docs/HIERARCHY.md`).
//!
//! The acceptance gate mirrors the flat harness: 64-node hierarchical
//! scenarios must run clean under the full invariant suite (value
//! oracle, quiescence, structural sweep) for every protocol
//! personality, the differential replay must agree across protocols on
//! the same trace, and the personalities must actually differ —
//! Snooping cluster-casts everything, Directory dualcasts everything,
//! BASH adapts per cluster.

use bash::tester::{run_verify_scenario, VerifyConfig};
use bash::{
    differential_trace, Duration, HierarchyConfig, HierarchySpec, ProtocolKind, SimBuilder,
};

const PROTOCOLS: [ProtocolKind; 3] = [
    ProtocolKind::Snooping,
    ProtocolKind::Directory,
    ProtocolKind::Bash,
];

/// A 64-node, 8-cluster, 4-bank verification config.
fn hier_cfg(proto: ProtocolKind, seed: u64) -> VerifyConfig {
    let mut cfg = VerifyConfig::new(proto, seed);
    cfg.nodes = 64;
    cfg.hierarchy = Some(HierarchyConfig::new(8, 4));
    cfg.ops_per_node = 40;
    cfg
}

/// Acceptance gate: a 64-node hierarchical scenario runs clean under the
/// full invariant suite for all three protocol personalities.
#[test]
fn hierarchical_64_node_scenarios_verify_clean() {
    for proto in PROTOCOLS {
        for scenario in ["migratory", "producer-consumer"] {
            let report = run_verify_scenario(&hier_cfg(proto, 0x41E7), scenario);
            assert!(
                report.passed(),
                "{scenario}/{proto:?} under hierarchy: first violation {:?}",
                report.first_violation()
            );
            assert!(
                report.wedge.is_none(),
                "{scenario}/{proto:?} must reach quiescence"
            );
            assert_eq!(report.ops, 64 * 40);
        }
    }
}

/// The differential pass replays one 64-node hierarchical trace through
/// all three personalities: every load agrees at every location.
#[test]
fn hierarchical_differential_replay_agrees_across_protocols() {
    let cfg = hier_cfg(ProtocolKind::Snooping, 0xD1FF);
    let report = run_verify_scenario(&cfg, "phase-shift");
    assert!(report.passed(), "first: {:?}", report.first_violation());

    let diff = differential_trace(&cfg, &report.trace);
    assert!(
        diff.passed(),
        "single-writer mismatches under hierarchy: {:?}",
        diff.mismatches
    );
    assert_eq!(diff.quiescent, vec![true, true, true]);
    assert_eq!(diff.protocols.len(), 3);
    assert!(diff.locations > 0);
}

/// The verify matrix extends to the largest supported shapes: a 256-node,
/// 16-cluster system still runs the oracle clean. One protocol (BASH,
/// the superset engine exercising both cluster-cast and dualcast paths
/// via adaptation) keeps the gate affordable.
#[test]
fn hierarchical_256_node_scenario_verifies_clean() {
    let mut cfg = VerifyConfig::new(ProtocolKind::Bash, 0x256);
    cfg.nodes = 256;
    cfg.hierarchy = Some(HierarchyConfig::new(16, 8));
    cfg.ops_per_node = 10;
    let report = run_verify_scenario(&cfg, "migratory");
    assert!(
        report.passed(),
        "256-node hierarchy: first violation {:?}",
        report.first_violation()
    );
    assert_eq!(report.ops, 256 * 10);
}

/// The scale gate for the adaptive sharer sets and open-addressed block
/// tables: a 1024-node, 32-cluster, 16-bank hierarchy runs the full
/// invariant suite clean and wedge-free for **all three** protocol
/// personalities. Past the old 256-node bitset cap, every cluster-cast
/// rides a lazy span mask and every controller resolves block state
/// through one open-addressed probe; the oracle verifying values here is
/// the end-to-end proof both replacements are sound at scale.
#[test]
fn hierarchical_1024_node_matrix_verifies_clean() {
    for proto in PROTOCOLS {
        let mut cfg = VerifyConfig::new(proto, 0x1024);
        cfg.nodes = 1024;
        cfg.hierarchy = Some(HierarchyConfig::new(32, 16));
        cfg.ops_per_node = 4;
        let report = run_verify_scenario(&cfg, "migratory");
        assert!(
            report.passed(),
            "1024-node hierarchy/{proto:?}: first violation {:?}",
            report.first_violation()
        );
        assert!(
            report.wedge.is_none(),
            "1024-node hierarchy/{proto:?} must reach quiescence"
        );
        assert_eq!(report.ops, 1024 * 4);
    }
}

/// The protocol personalities genuinely differ under one hierarchy:
/// Snooping cluster-casts every request (pure broadcast counters),
/// Directory dualcasts every request (pure unicast counters), and all
/// three report the cluster/bank statistics. Larger clusters keep more
/// traffic intra-cluster.
#[test]
fn hierarchy_personalities_and_stats_behave() {
    let run = |proto: ProtocolKind, cluster_size: u16| {
        SimBuilder::new(proto)
            .nodes(64)
            .hierarchy(HierarchySpec::new(cluster_size, 4))
            .locking_microbench(256, Duration::ZERO)
            .seed(0xF00D)
            .warmup_ns(10_000)
            .measure_ns(30_000)
            .run()
    };
    let snoop = run(ProtocolKind::Snooping, 8);
    let dir = run(ProtocolKind::Directory, 8);
    let stats = snoop.stats();
    assert!(
        stats.broadcasts > 0 && stats.unicasts == 0,
        "snooping cluster-casts"
    );
    let dstats = dir.stats();
    assert!(
        dstats.unicasts > 0 && dstats.broadcasts == 0,
        "directory dualcasts"
    );

    for r in [&snoop, &dir] {
        let h = r
            .stats()
            .hierarchy
            .clone()
            .expect("hierarchy stats present");
        assert_eq!((h.clusters, h.banks), (8, 4));
        assert_eq!(h.bank_requests.len(), 4);
        assert!(h.bank_requests.iter().sum::<u64>() > 0);
        let f = h.inter_cluster_fraction();
        assert!(f > 0.0 && f < 1.0, "traffic crosses and stays in clusters");
    }

    // Clustering locality: growing the cluster from 4 to 16 nodes keeps
    // strictly more snooping traffic inside the cluster.
    let small = run(ProtocolKind::Snooping, 4);
    let large = run(ProtocolKind::Snooping, 16);
    let frac = |r: &bash::RunReport| {
        r.stats()
            .hierarchy
            .clone()
            .unwrap()
            .inter_cluster_fraction()
    };
    assert!(
        frac(&large) < frac(&small),
        "16-node clusters must keep more traffic local than 4-node clusters"
    );

    // A flat run reports no hierarchy stats at all.
    let flat = SimBuilder::new(ProtocolKind::Snooping)
        .nodes(16)
        .locking_microbench(64, Duration::ZERO)
        .warmup_ns(5_000)
        .measure_ns(10_000)
        .run();
    assert!(flat.stats().hierarchy.is_none());
}

/// BASH's per-cluster adaptation is live under the hierarchy: at a
/// starved link bandwidth the adaptor backs off broadcasting (unicasts
/// appear), while ample bandwidth keeps it broadcasting like Snooping.
#[test]
fn bash_adapts_per_cluster_under_hierarchy() {
    // A full 0 → 255 policy swing takes ≈130k cycles of above-threshold
    // utilization (§2.2), so the starved run warms up several multiples
    // of that before measuring — same methodology as the flat
    // adaptivity gate.
    let run = |mbps: u64, warmup: u64, measure: u64| {
        SimBuilder::new(ProtocolKind::Bash)
            .nodes(64)
            .hierarchy(HierarchySpec::new(8, 4))
            .bandwidth_mbps(mbps)
            .locking_microbench(256, Duration::ZERO)
            .seed(0xF00D)
            .warmup_ns(warmup)
            .measure_ns(measure)
            .run()
    };
    let ample = run(25_600, 10_000, 40_000);
    assert_eq!(
        ample.stats().unicasts,
        0,
        "ample bandwidth: BASH should keep cluster-casting"
    );
    let starved = run(50, 600_000, 300_000);
    assert!(
        starved.stats().unicasts > 0,
        "starved bandwidth: BASH should back off to dualcast (got {} broadcasts, {} unicasts)",
        starved.stats().broadcasts,
        starved.stats().unicasts
    );
}

/// Misfit hierarchies are rejected before anything runs, through both
/// the builder and the core config.
#[test]
fn misfit_hierarchies_are_rejected() {
    let err = SimBuilder::new(ProtocolKind::Bash)
        .nodes(64)
        .hierarchy(HierarchySpec::new(12, 4))
        .locking_microbench(64, Duration::ZERO)
        .validate()
        .unwrap_err();
    assert_eq!(
        err.to_string(),
        "hierarchy cluster size 12 does not divide the node count 64"
    );
    assert!(HierarchyConfig::new(12, 4).check(64).is_err());
    assert!(HierarchyConfig::new(16, 4).check(64).is_ok());
}
