//! Golden-report regression gates.
//!
//! The committed mini-traces under `tests/golden/*.trace` are replayed
//! through all three protocols, at several bandwidths, at `threads(1)`
//! and `threads(4)`, and the canonical report text is diffed **byte for
//! byte** against the checked-in goldens. Any behavioural change to the
//! engine, a protocol, the network model, or the statistics shows up here
//! as a diff — "it compiles and the unit tests pass" is no longer enough
//! to ship a silent semantic change.
//!
//! When a change is *intentional*, regenerate the goldens and commit the
//! diff:
//!
//! ```text
//! scripts/update_goldens.sh        # = BASH_BLESS=1 cargo test --test golden_reports
//! ```
//!
//! Blessing rewrites the golden `.txt` files and re-captures any missing
//! `.trace` file; existing traces are never overwritten (the whole point
//! is a stable reference stream).
//!
//! Determinism note: replay never draws a random number and the simulator
//! core uses only IEEE-deterministic arithmetic, so these bytes are
//! platform-independent; libm-dependent paths (`ln`, `powf`) run only at
//! capture time, and captures are committed.

use std::fs;
use std::path::{Path, PathBuf};

use bash::{
    sweep_canonical_text, FabricSpec, HierarchySpec, ProtocolKind, QueueKind, SimBuilder,
    TopologyKind, Trace,
};

/// The scenarios with committed mini-traces. `phase-shift` is the
/// adaptive-switching regression: its calm/burst regime flips drive the
/// BASH policy counter through both extremes during the replay window.
const SCENARIOS: &[&str] = &["migratory", "zipf", "phase-shift"];

/// Bandwidth points each golden replay sweeps (three points so
/// `threads(4)` genuinely runs grid points concurrently).
const BANDWIDTHS: [u64; 3] = [400, 800, 1600];

const NODES: u16 = 4;
const SEED: u64 = 0xF00D;
const WARMUP_NS: u64 = 5_000;
const MEASURE_NS: u64 = 20_000;

const PROTOCOLS: [ProtocolKind; 3] = [
    ProtocolKind::Snooping,
    ProtocolKind::Directory,
    ProtocolKind::Bash,
];

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn blessing() -> bool {
    std::env::var_os("BASH_BLESS").is_some_and(|v| !v.is_empty() && v != "0")
}

/// Loads a committed mini-trace; in bless mode, captures and commits a
/// missing one from a live run (the capture hook itself is the source).
fn mini_trace(scenario: &str) -> Trace {
    let path = golden_dir().join(format!("{scenario}.trace"));
    if path.exists() {
        return Trace::read_from(&path)
            .unwrap_or_else(|e| panic!("committed trace {} is invalid: {e}", path.display()));
    }
    assert!(
        blessing(),
        "missing committed trace {} — run scripts/update_goldens.sh",
        path.display()
    );
    let (_, trace) = SimBuilder::new(ProtocolKind::Snooping)
        .nodes(NODES)
        .bandwidth_mbps(1600)
        .scenario(scenario)
        .seed(SEED)
        .warmup_ns(WARMUP_NS)
        .measure_ns(MEASURE_NS)
        .run_captured();
    fs::create_dir_all(golden_dir()).unwrap();
    trace.write_to(&path).unwrap();
    eprintln!(
        "blessed {} ({} records)",
        path.display(),
        trace.records.len()
    );
    trace
}

/// Replays one mini-trace through one protocol across the bandwidth sweep.
fn replay(trace: &Trace, proto: ProtocolKind, threads: usize) -> String {
    sweep_canonical_text(
        &SimBuilder::new(proto)
            .trace_in(trace.clone())
            .bandwidths(BANDWIDTHS)
            .seed(SEED)
            .warmup_ns(WARMUP_NS)
            .measure_ns(MEASURE_NS)
            .threads(threads)
            .run_sweep(),
    )
}

#[test]
fn golden_reports_match_and_are_thread_invariant() {
    let mut failures = Vec::new();
    for scenario in SCENARIOS {
        let trace = mini_trace(scenario);
        for proto in PROTOCOLS {
            let serial = replay(&trace, proto, 1);
            let parallel = replay(&trace, proto, 4);
            assert_eq!(
                serial, parallel,
                "{scenario}/{:?}: threads=4 replay diverged from threads=1",
                proto
            );
            let golden_path = golden_dir().join(format!(
                "{scenario}.{}.golden.txt",
                proto.name().to_ascii_lowercase()
            ));
            if blessing() {
                fs::create_dir_all(golden_dir()).unwrap();
                fs::write(&golden_path, &serial).unwrap();
                eprintln!("blessed {}", golden_path.display());
                continue;
            }
            let golden = fs::read_to_string(&golden_path).unwrap_or_else(|_| {
                panic!(
                    "missing golden {} — run scripts/update_goldens.sh",
                    golden_path.display()
                )
            });
            if golden != serial {
                failures.push(diff_summary(&golden_path, &golden, &serial));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "golden reports diverged; if intentional, run scripts/update_goldens.sh \
         and commit the diff:\n{}",
        failures.join("\n")
    );
}

/// A compact first-divergence summary, so CI logs show *what* drifted
/// without dumping whole reports.
fn diff_summary(path: &Path, golden: &str, actual: &str) -> String {
    let mut golden_lines = golden.lines();
    let mut actual_lines = actual.lines();
    let mut line_no = 0usize;
    loop {
        line_no += 1;
        match (golden_lines.next(), actual_lines.next()) {
            (Some(g), Some(a)) if g == a => continue,
            (Some(g), Some(a)) => {
                return format!(
                    "{}: first diff at line {line_no}:\n  golden: {g}\n  actual: {a}",
                    path.display()
                )
            }
            (Some(g), None) => {
                return format!(
                    "{}: actual ends early at line {line_no} (golden has: {g})",
                    path.display()
                )
            }
            (None, Some(a)) => {
                return format!("{}: actual has extra line {line_no}: {a}", path.display())
            }
            (None, None) => return format!("{}: differ (whitespace only?)", path.display()),
        }
    }
}

/// Golden pin for the routed fabric: the migratory mini-trace replayed on
/// a 2×2 mesh through all three protocols, byte-for-byte against its own
/// blessed golden (which, unlike the crossbar goldens, carries a per-link
/// stats block). Any change to routing, per-link queueing, resequenced
/// delivery, or the link statistics shows up here as a diff.
#[test]
fn mesh_golden_reports_match_and_are_thread_invariant() {
    let trace = mini_trace("migratory");
    let mut failures = Vec::new();
    for proto in PROTOCOLS {
        let render = |threads: usize| {
            sweep_canonical_text(
                &SimBuilder::new(proto)
                    .trace_in(trace.clone())
                    .fabric(FabricSpec::new(TopologyKind::Mesh2D).bandwidths(BANDWIDTHS))
                    .seed(SEED)
                    .warmup_ns(WARMUP_NS)
                    .measure_ns(MEASURE_NS)
                    .threads(threads)
                    .run_sweep(),
            )
        };
        let serial = render(1);
        let parallel = render(4);
        assert_eq!(
            serial, parallel,
            "migratory-mesh/{proto:?}: threads=4 replay diverged from threads=1"
        );
        assert!(
            serial.contains("links="),
            "mesh replay must report per-link stats"
        );
        let golden_path = golden_dir().join(format!(
            "migratory-mesh.{}.golden.txt",
            proto.name().to_ascii_lowercase()
        ));
        if blessing() {
            fs::create_dir_all(golden_dir()).unwrap();
            fs::write(&golden_path, &serial).unwrap();
            eprintln!("blessed {}", golden_path.display());
            continue;
        }
        let golden = fs::read_to_string(&golden_path).unwrap_or_else(|_| {
            panic!(
                "missing golden {} — run scripts/update_goldens.sh",
                golden_path.display()
            )
        });
        if golden != serial {
            failures.push(diff_summary(&golden_path, &golden, &serial));
        }
    }
    assert!(
        failures.is_empty(),
        "mesh golden reports diverged; if intentional, run scripts/update_goldens.sh \
         and commit the diff:\n{}",
        failures.join("\n")
    );
}

/// System size of the hierarchical golden (64 nodes in 4 clusters of 16
/// under a 4-bank directory spine).
const HIER_NODES: u16 = 64;

/// Bandwidths the hierarchical golden sweeps (two points keep the
/// 64-node replay fast while still exercising grid parallelism).
const HIER_BANDWIDTHS: [u64; 2] = [400, 1600];

/// Loads the committed 64-node mini-trace; in bless mode, captures a
/// missing one (same contract as [`mini_trace`]).
fn hier_mini_trace() -> Trace {
    let path = golden_dir().join("migratory64.trace");
    if path.exists() {
        return Trace::read_from(&path)
            .unwrap_or_else(|e| panic!("committed trace {} is invalid: {e}", path.display()));
    }
    assert!(
        blessing(),
        "missing committed trace {} — run scripts/update_goldens.sh",
        path.display()
    );
    let (_, trace) = SimBuilder::new(ProtocolKind::Snooping)
        .nodes(HIER_NODES)
        .bandwidth_mbps(1600)
        .scenario("migratory")
        .seed(SEED)
        .warmup_ns(WARMUP_NS)
        .measure_ns(MEASURE_NS)
        .run_captured();
    fs::create_dir_all(golden_dir()).unwrap();
    trace.write_to(&path).unwrap();
    eprintln!(
        "blessed {} ({} records)",
        path.display(),
        trace.records.len()
    );
    trace
}

/// Golden pin for the two-level hierarchy: the 64-node migratory
/// mini-trace replayed as 4 snooping clusters of 16 under a 4-bank
/// directory spine, through all three protocol personalities, byte for
/// byte against its own blessed golden (which carries the hierarchy
/// stats block). Thread counts and the queue implementation must not
/// change a byte. Any drift in cluster-cast delivery, spine routing,
/// per-cluster adaptation, or the cluster/bank statistics shows up here.
#[test]
fn hierarchy_golden_reports_match_and_are_thread_invariant() {
    let trace = hier_mini_trace();
    let mut failures = Vec::new();
    for proto in PROTOCOLS {
        let render = |threads: usize, queue: QueueKind| {
            sweep_canonical_text(
                &SimBuilder::new(proto)
                    .trace_in(trace.clone())
                    .hierarchy(HierarchySpec::new(16, 4))
                    .bandwidths(HIER_BANDWIDTHS)
                    .seed(SEED)
                    .warmup_ns(WARMUP_NS)
                    .measure_ns(MEASURE_NS)
                    .threads(threads)
                    .queue(queue)
                    .run_sweep(),
            )
        };
        let serial = render(1, QueueKind::Calendar);
        assert_eq!(
            serial,
            render(4, QueueKind::Calendar),
            "migratory64-hier/{proto:?}: threads=4 replay diverged from threads=1"
        );
        assert_eq!(
            serial,
            render(4, QueueKind::Heap),
            "migratory64-hier/{proto:?}: heap-queue replay diverged from calendar"
        );
        assert!(
            serial.contains("hierarchy clusters=4 banks=4"),
            "hierarchical replay must report the cluster/bank stats block"
        );
        let golden_path = golden_dir().join(format!(
            "migratory64-hier.{}.golden.txt",
            proto.name().to_ascii_lowercase()
        ));
        if blessing() {
            fs::create_dir_all(golden_dir()).unwrap();
            fs::write(&golden_path, &serial).unwrap();
            eprintln!("blessed {}", golden_path.display());
            continue;
        }
        let golden = fs::read_to_string(&golden_path).unwrap_or_else(|_| {
            panic!(
                "missing golden {} — run scripts/update_goldens.sh",
                golden_path.display()
            )
        });
        if golden != serial {
            failures.push(diff_summary(&golden_path, &golden, &serial));
        }
    }
    assert!(
        failures.is_empty(),
        "hierarchy golden reports diverged; if intentional, run scripts/update_goldens.sh \
         and commit the diff:\n{}",
        failures.join("\n")
    );
}

/// The calendar queue is a drop-in replacement for the binary heap: on
/// the committed mini-traces, through every protocol, at `threads(1)`
/// and `threads(4)`, `QueueKind::Heap` and the default calendar produce
/// byte-identical canonical reports. Paired with the kernel's
/// heap-vs-calendar pop-order proptest, this pins the whole engine — not
/// just the queue — to exact FIFO-stable equivalence.
#[test]
fn heap_and_calendar_queues_produce_identical_reports() {
    for scenario in SCENARIOS {
        let trace = mini_trace(scenario);
        for proto in PROTOCOLS {
            for threads in [1usize, 4] {
                let render = |queue: QueueKind| {
                    sweep_canonical_text(
                        &SimBuilder::new(proto)
                            .trace_in(trace.clone())
                            .bandwidths(BANDWIDTHS)
                            .seed(SEED)
                            .warmup_ns(WARMUP_NS)
                            .measure_ns(MEASURE_NS)
                            .threads(threads)
                            .queue(queue)
                            .run_sweep(),
                    )
                };
                assert_eq!(
                    render(QueueKind::Heap),
                    render(QueueKind::Calendar),
                    "{scenario}/{proto:?}: heap and calendar reports diverged at threads={threads}"
                );
            }
        }
    }
}

#[test]
fn committed_traces_validate_and_roundtrip() {
    for scenario in SCENARIOS {
        let path = golden_dir().join(format!("{scenario}.trace"));
        if !path.exists() {
            // `golden_reports_match_and_are_thread_invariant` handles the
            // missing-file message; don't double-fail here in bless runs.
            continue;
        }
        let trace = Trace::read_from(&path).unwrap();
        assert_eq!(trace.nodes, NODES);
        assert!(trace.validate().is_ok());
        assert_eq!(Trace::from_bytes(&trace.to_bytes()).unwrap(), trace);
        assert_eq!(Trace::from_text(&trace.to_text()).unwrap(), trace);
    }
}

/// Backward-compatibility pin: `zipf.v1.trace` is the *v1-format* byte
/// stream the zipf mini-trace was originally committed as. It is never
/// regenerated (bless refuses to touch existing traces) — decoding it
/// with the current reader and replaying it must keep producing the
/// blessed zipf goldens, byte for byte, forever. This is the CI
/// `trace-compat` step.
#[test]
fn trace_compat_v1_fixture_replays_to_the_blessed_goldens() {
    let v1_path = golden_dir().join("zipf.v1.trace");
    let trace = Trace::read_from(&v1_path)
        .unwrap_or_else(|e| panic!("pinned v1 fixture {} failed: {e}", v1_path.display()));
    // The fixture must stay v1 on disk: its first version byte is 1.
    let raw = fs::read(&v1_path).unwrap();
    assert_eq!(
        u16::from_le_bytes([raw[8], raw[9]]),
        1,
        "zipf.v1.trace must remain a v1-format file"
    );
    // Same records as the (migrated, v2) committed trace…
    let v2 = Trace::read_from(golden_dir().join("zipf.trace")).unwrap();
    assert_eq!(trace, v2, "v1 fixture and v2 trace must carry one stream");
    // …and the same blessed reports under every protocol.
    for proto in PROTOCOLS {
        let golden_path = golden_dir().join(format!(
            "zipf.{}.golden.txt",
            proto.name().to_ascii_lowercase()
        ));
        let golden = fs::read_to_string(&golden_path)
            .unwrap_or_else(|_| panic!("missing golden {}", golden_path.display()));
        assert_eq!(
            replay(&trace, proto, 1),
            golden,
            "v1 fixture replay diverged from the blessed {:?} golden",
            proto
        );
    }
}
