//! End-to-end tests of the unreliable-fabric fault plane, the
//! reliable-delivery transport, the quiescence watchdog, and the
//! panic-isolated sweep pool — the robustness surface as a user of the
//! facade sees it.

use std::sync::atomic::{AtomicU32, Ordering};

use bash::{
    catalog, tester::run_verify_scenario, tester::VerifyConfig, BoxedWorkload, Duration,
    FabricSpec, FaultPlaneConfig, LockingMicrobench, PointErrorKind, ProtocolKind, RobustnessSpec,
    SimBuilder, TopologyKind, WatchdogBudget,
};

const PROTOCOLS: [ProtocolKind; 3] = [
    ProtocolKind::Snooping,
    ProtocolKind::Directory,
    ProtocolKind::Bash,
];

/// Acceptance gate for the reliable transport: every catalog scenario ×
/// every protocol verifies clean on a ring with 2 % loss on every
/// directed link. Retransmission changes *when* messages land, never
/// *whether* or *what*: the transport re-sends a crossing until it takes,
/// the endpoint resequencer releases per-destination sequences in order,
/// and the catalog generators issue a fixed op stream per node that does
/// not depend on completion times. The oracle therefore applies the exact
/// store stream of the fault-free run, token by token — a clean verdict
/// here *is* the byte-identical-final-memory result, delayed but intact.
#[test]
fn catalog_verifies_clean_under_loss_with_the_transport() {
    for scenario in catalog::CATALOG {
        for proto in PROTOCOLS {
            let mut cfg = VerifyConfig::new(proto, 0x10C4);
            cfg.ops_per_node = 150;
            cfg.topology = TopologyKind::Ring;
            cfg.fault_plane = Some(FaultPlaneConfig::lossy(0xFA57, 0.02));
            // Safety net only: a transport bug shows up as a wedge, and
            // the budget turns that into a diagnosed failure, not a hang.
            cfg.watchdog = Some(WatchdogBudget::events(50_000_000));
            let report = run_verify_scenario(&cfg, scenario.name);
            assert!(
                report.passed(),
                "{}/{proto:?} under 2% loss: {:?}",
                scenario.name,
                report.first_violation()
            );
            assert!(report.wedge.is_none(), "{}/{proto:?} wedged", scenario.name);
        }
    }
}

/// With the transport disabled, raw loss reaches the protocols: requests
/// vanish, transactions stall, and the run must end in a *structured*
/// wedge diagnostic — never a hang (this test terminating is the claim).
/// The stalled-drain check fires even before any watchdog budget trips.
#[test]
fn unprotected_loss_wedges_with_a_structured_diagnostic() {
    let mut cfg = VerifyConfig::new(ProtocolKind::Snooping, 0xF00D);
    cfg.ops_per_node = 100;
    cfg.topology = TopologyKind::Ring;
    cfg.nodes = 8;
    cfg.fault_plane = Some(FaultPlaneConfig::lossy(0xDEAD, 0.3).unprotected());
    cfg.watchdog = Some(WatchdogBudget::events(5_000_000));
    let report = run_verify_scenario(&cfg, "migratory");
    assert!(!report.passed(), "raw 30% loss cannot verify clean");
    let diag = report.wedge.as_ref().expect("the run must wedge");
    let text = diag.to_string();
    assert!(text.starts_with("Wedged: "), "diagnostic text: {text}");
    assert!(
        text.contains("fault plane:"),
        "the diagnostic should carry the fault counters: {text}"
    );
    // The wedge is also a first-class oracle violation.
    assert!(
        report.violations.iter().any(|v| v.what.contains("Wedged")),
        "first: {:?}",
        report.first_violation()
    );
}

/// The fault plane is part of the deterministic state: the same seed
/// yields a byte-identical canonical report whether the seed grid runs
/// on one worker thread or four.
#[test]
fn faulted_reports_are_identical_across_thread_counts() {
    let build = || {
        SimBuilder::new(ProtocolKind::Bash)
            .nodes(8)
            .fabric(FabricSpec::new(TopologyKind::Mesh2D))
            .scenario("migratory")
            .seed(0xC0FFEE)
            .seeds(3)
            .robustness(
                RobustnessSpec::new()
                    .fault_plane(FaultPlaneConfig::lossy(0xFA57, 0.01))
                    .watchdog(WatchdogBudget::events(50_000_000)),
            )
            .warmup_ns(5_000)
            .measure_ns(20_000)
    };
    let serial = build().threads(1).run().canonical_text();
    let parallel = build().threads(4).run().canonical_text();
    assert_eq!(serial, parallel, "fault state leaked across seed runs");
    assert!(
        serial.contains("fault "),
        "a faulted run must render its fault block:\n{serial}"
    );
}

/// Replaying a captured trace under a fault plane is byte-identical
/// whether the trace comes from memory (buffered) or from disk through
/// the streaming reader: the delivery schedule is a function of seeds
/// and op streams alone, not of how the ops were loaded.
#[test]
fn faulted_replay_is_identical_buffered_vs_streaming() {
    let captured = SimBuilder::new(ProtocolKind::Snooping)
        .nodes(4)
        .scenario("producer-consumer")
        .verify(80);
    assert!(captured.passed());

    let dir = std::env::temp_dir().join("bash_fault_plane_replay");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("replay.trace");
    captured.trace.write_to(&path).unwrap();

    let run = |builder: SimBuilder| {
        builder
            .fabric(FabricSpec::new(TopologyKind::Ring))
            .seed(0xD15C)
            .robustness(RobustnessSpec::new().fault_plane(FaultPlaneConfig::lossy(0x10, 0.02)))
            .warmup_ns(2_000)
            .measure_ns(20_000)
            .run()
            .canonical_text()
    };
    let buffered = run(SimBuilder::new(ProtocolKind::Snooping).trace_in(captured.trace.clone()));
    let streaming = run(SimBuilder::new(ProtocolKind::Snooping)
        .trace_in_path(&path)
        .unwrap());
    std::fs::remove_file(&path).ok();
    assert_eq!(buffered, streaming, "replay depends on the loading path");
}

/// A grid point whose workload factory panics becomes an error row with
/// `kind=panicked`; the rest of the sweep completes untouched. The pool
/// retries a panicking point once, so a deterministic panic reports two
/// attempts.
#[test]
fn a_panicking_grid_point_becomes_an_error_row() {
    static CALLS: AtomicU32 = AtomicU32::new(0);
    let report = SimBuilder::new(ProtocolKind::Snooping)
        .nodes(4)
        .bandwidth_mbps(1600)
        .seed(7)
        .seeds(3)
        .threads(4)
        .workload_with(|nodes, seed| -> BoxedWorkload {
            // The second seed of the grid is poisoned; the others run.
            if seed == 7u64.wrapping_add(7919) {
                CALLS.fetch_add(1, Ordering::SeqCst);
                panic!("poisoned grid point");
            }
            Box::new(LockingMicrobench::new(nodes, 16, Duration::ZERO, seed))
        })
        .warmup_ns(2_000)
        .measure_ns(10_000)
        .run();

    assert_eq!(report.runs.len(), 2, "healthy seeds must survive");
    assert_eq!(report.errors.len(), 1);
    let err = &report.errors[0];
    assert_eq!(err.seed_index, 1);
    assert!(matches!(err.kind, PointErrorKind::Panicked));
    assert_eq!(err.attempts, 2, "a panicking point is retried once");
    assert!(err.message.contains("poisoned grid point"));
    assert_eq!(CALLS.load(Ordering::SeqCst), 2);
    // The error row is part of the canonical report.
    let text = report.canonical_text();
    assert!(
        text.contains("errors=1") && text.contains("kind=panicked"),
        "canonical text must carry the error row:\n{text}"
    );
}

/// A wedged grid point becomes an error row with `kind=wedged` and is
/// *not* retried (wedges are deterministic). Unprotected loss kills the
/// system *quietly* — fewer events, so no event budget can trip — and
/// the drained-but-not-quiescent check converts the silence into a
/// structured wedge with no watchdog armed at all.
#[test]
fn a_wedged_grid_point_becomes_an_error_row() {
    let report = SimBuilder::new(ProtocolKind::Snooping)
        .nodes(8)
        .fabric(FabricSpec::new(TopologyKind::Ring))
        .locking_microbench(64, Duration::ZERO)
        .seed(0xF00D)
        .robustness(
            RobustnessSpec::new()
                .fault_plane(FaultPlaneConfig::lossy(0xDEAD, 0.3).unprotected())
                .allow_unprotected_wedges(true),
        )
        .warmup_ns(20_000)
        .measure_ns(40_000)
        .run();
    assert!(report.runs.is_empty(), "the only seed wedged");
    assert_eq!(report.errors.len(), 1);
    let err = &report.errors[0];
    assert!(matches!(err.kind, PointErrorKind::Wedged));
    assert_eq!(err.attempts, 1, "wedges are deterministic; never retried");
    assert!(err.message.starts_with("Wedged: "), "got: {}", err.message);
    assert_eq!(report.workload, "<all seeds failed>");
}
