//! Shape tests for the paper's headline results, run at reduced scale so
//! they fit in the test suite. The full-resolution versions live in the
//! `bash-experiments` binary; these guard the *qualitative* claims:
//! who wins where, and where the crossovers fall. Everything runs through
//! the `SimBuilder` facade.

use bash::{
    CacheGeometry, Duration, FabricSpec, ProtocolKind, RunReport, SimBuilder, WorkloadParams,
};

const NODES: u16 = 32; // reduced from the paper's 64 for test runtime

fn micro(proto: ProtocolKind, mbps: u64) -> RunReport {
    SimBuilder::new(proto)
        .nodes(NODES)
        .bandwidth_mbps(mbps)
        .cache(CacheGeometry { sets: 512, ways: 4 })
        .locking_microbench(512, Duration::ZERO)
        .seed(21)
        .warmup_ns(100_000)
        .measure_ns(200_000)
        .run()
}

#[test]
fn figure1_directory_wins_scarce_snooping_wins_plentiful() {
    // The defining crossover of Figure 1.
    let scarce_s = micro(ProtocolKind::Snooping, 200);
    let scarce_d = micro(ProtocolKind::Directory, 200);
    assert!(
        scarce_d.ops_per_sec.mean > 1.3 * scarce_s.ops_per_sec.mean,
        "directory must dominate at 200 MB/s: D {} vs S {}",
        scarce_d.ops_per_sec.mean,
        scarce_s.ops_per_sec.mean
    );
    let rich_s = micro(ProtocolKind::Snooping, 25_600);
    let rich_d = micro(ProtocolKind::Directory, 25_600);
    assert!(
        rich_s.ops_per_sec.mean > 1.3 * rich_d.ops_per_sec.mean,
        "snooping must dominate at 25.6 GB/s: S {} vs D {}",
        rich_s.ops_per_sec.mean,
        rich_d.ops_per_sec.mean
    );
}

#[test]
fn figure1_bash_tracks_the_winner_at_both_ends() {
    let scarce_b = micro(ProtocolKind::Bash, 200);
    let scarce_d = micro(ProtocolKind::Directory, 200);
    // Paper: BASH is ~10% worse than Directory at the far-low end (extra
    // marker messages).
    let ratio = scarce_b.ops_per_sec.mean / scarce_d.ops_per_sec.mean;
    assert!(
        ratio > 0.8,
        "BASH must track Directory when bandwidth is scarce: ratio {ratio}"
    );
    let rich_b = micro(ProtocolKind::Bash, 25_600);
    let rich_s = micro(ProtocolKind::Snooping, 25_600);
    let ratio = rich_b.ops_per_sec.mean / rich_s.ops_per_sec.mean;
    assert!(
        ratio > 0.97,
        "BASH must converge to Snooping when bandwidth is plentiful: ratio {ratio}"
    );
}

#[test]
fn figure6_utilization_ordering() {
    // Snooping over-utilizes, Directory under-utilizes, BASH pins the 75%
    // target in between.
    let s = micro(ProtocolKind::Snooping, 800);
    let b = micro(ProtocolKind::Bash, 800);
    let d = micro(ProtocolKind::Directory, 800);
    assert!(
        s.link_utilization.mean > 0.85,
        "snooping: {}",
        s.link_utilization.mean
    );
    assert!(
        (b.link_utilization.mean - 0.75).abs() < 0.06,
        "bash pins the target: {}",
        b.link_utilization.mean
    );
    assert!(
        d.link_utilization.mean < 0.6,
        "directory: {}",
        d.link_utilization.mean
    );
}

#[test]
fn figure8_snooping_directory_crossover_with_size() {
    // Per-processor performance: snooping wins small systems, directory
    // wins large ones (fixed per-processor bandwidth).
    let run = |proto, nodes: u16| {
        let report = SimBuilder::new(proto)
            .nodes(nodes)
            .bandwidth_mbps(1600)
            .cache(CacheGeometry { sets: 256, ways: 4 })
            .locking_microbench(16 * nodes as u64, Duration::ZERO)
            .seed(31)
            .warmup_ns(60_000)
            .measure_ns(150_000)
            .run();
        report.ops_per_sec.mean / nodes as f64
    };
    let small_s = run(ProtocolKind::Snooping, 8);
    let small_d = run(ProtocolKind::Directory, 8);
    assert!(
        small_s > 1.2 * small_d,
        "8p: snooping {small_s} must beat directory {small_d}"
    );
    let large_s = run(ProtocolKind::Snooping, 128);
    let large_d = run(ProtocolKind::Directory, 128);
    assert!(
        large_d > 1.5 * large_s,
        "128p: directory {large_d} must beat snooping {large_s}"
    );
}

#[test]
fn figure9_snooping_latency_falls_with_think_time() {
    // Workload-intensity adaptation: at think 0 snooping is congested; at
    // think 1000 its latency approaches the uncontended 125 ns + queueless
    // floor and beats the directory's indirection.
    let run = |proto, think: u64| {
        let report = SimBuilder::new(proto)
            .nodes(NODES)
            .bandwidth_mbps(1600)
            .cache(CacheGeometry { sets: 512, ways: 4 })
            .locking_microbench(512, Duration::from_cycles(think))
            .seed(41)
            .warmup_ns(100_000)
            .measure_ns(200_000)
            .run();
        report.miss_latency_ns.mean
    };
    let busy = run(ProtocolKind::Snooping, 0);
    let idle = run(ProtocolKind::Snooping, 1000);
    assert!(
        busy > idle + 30.0,
        "snooping latency must fall with think time: {busy} -> {idle}"
    );
    let dir_idle = run(ProtocolKind::Directory, 1000);
    assert!(
        dir_idle > idle + 50.0,
        "at low intensity snooping ({idle}) must beat directory ({dir_idle})"
    );
}

#[test]
fn figure12_workload_dependence() {
    // SPECjbb (low sharing) favors the directory; Barnes-Hut (high sharing,
    // low miss rate) favors snooping — at 1600 MB/s with 4x broadcast cost.
    let run = |proto, params: WorkloadParams| {
        let report = SimBuilder::new(proto)
            .nodes(16)
            .fabric(FabricSpec::default().broadcast_cost(4))
            .cache(CacheGeometry { sets: 512, ways: 4 })
            .synthetic(params)
            .seed(51)
            .warmup_ns(80_000)
            .measure_ns(250_000)
            .run();
        report.instructions_per_sec.mean
    };
    let jbb_s = run(ProtocolKind::Snooping, WorkloadParams::specjbb());
    let jbb_d = run(ProtocolKind::Directory, WorkloadParams::specjbb());
    assert!(
        jbb_d > 1.05 * jbb_s,
        "SPECjbb: directory {jbb_d} must beat snooping {jbb_s}"
    );
    let barnes_s = run(ProtocolKind::Snooping, WorkloadParams::barnes_hut());
    let barnes_d = run(ProtocolKind::Directory, WorkloadParams::barnes_hut());
    assert!(
        barnes_s > 1.02 * barnes_d,
        "Barnes-Hut: snooping {barnes_s} must beat directory {barnes_d}"
    );
}

#[test]
fn bash_beats_both_bases_in_the_midrange() {
    // The paper's mid-range claim (Figure 5: "BASH outperforms both
    // protocols by up to 25%" near the crossover). Find the crossover
    // bandwidth among a few candidates, then require BASH ≥ both there.
    let mut best_gap = f64::MIN;
    let mut seen = Vec::new();
    for mbps in [800u64, 1600, 3200] {
        let s = micro(ProtocolKind::Snooping, mbps).ops_per_sec.mean;
        let d = micro(ProtocolKind::Directory, mbps).ops_per_sec.mean;
        let b = micro(ProtocolKind::Bash, mbps).ops_per_sec.mean;
        seen.push((mbps, s, d, b));
        best_gap = best_gap.max(b / s.max(d));
    }
    assert!(
        best_gap >= 1.0,
        "BASH must match or beat the best base protocol somewhere in the \
         mid-range: {seen:?}"
    );
}
