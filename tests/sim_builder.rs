//! Contract tests for the `SimBuilder` facade: validation, paper-default
//! parity with `SystemConfig`, and seed-aggregation determinism.

use bash::{
    BuildError, CaptureSpec, Duration, FabricSpec, FaultPlaneConfig, Jitter, ProtocolKind,
    RobustnessSpec, RunReport, SimBuilder, SystemConfig, TopologyKind, WatchdogBudget,
};

fn valid() -> SimBuilder {
    SimBuilder::new(ProtocolKind::Bash)
        .nodes(8)
        .bandwidth_mbps(800)
        .locking_microbench(128, Duration::ZERO)
        .warmup_ns(30_000)
        .measure_ns(60_000)
}

#[test]
fn zero_nodes_rejected() {
    assert_eq!(
        valid().nodes(0).try_run().unwrap_err(),
        BuildError::ZeroNodes
    );
}

#[test]
fn zero_bandwidth_rejected() {
    assert_eq!(
        valid().bandwidth_mbps(0).try_run().unwrap_err(),
        BuildError::ZeroBandwidth
    );
    assert_eq!(
        valid().bandwidths([800, 0, 1600]).try_run().unwrap_err(),
        BuildError::ZeroBandwidth
    );
}

#[test]
fn empty_sweep_rejected() {
    assert_eq!(
        valid().bandwidths([]).try_run_sweep().unwrap_err(),
        BuildError::EmptySweep
    );
}

#[test]
fn missing_workload_rejected() {
    let err = SimBuilder::new(ProtocolKind::Snooping)
        .try_run()
        .unwrap_err();
    assert_eq!(err, BuildError::MissingWorkload);
}

#[test]
fn zero_seeds_and_empty_measurement_rejected() {
    assert_eq!(
        valid().seeds(0).try_run().unwrap_err(),
        BuildError::ZeroSeeds
    );
    assert_eq!(
        valid().measure(Duration::ZERO).try_run().unwrap_err(),
        BuildError::EmptyMeasurement
    );
}

#[test]
fn zero_retry_capacity_rejected() {
    assert_eq!(
        valid().retry_capacity(0).try_run().unwrap_err(),
        BuildError::ZeroRetryCapacity
    );
}

#[test]
fn build_system_returns_err_not_panic_for_bad_configs() {
    // The escape hatch must report the same errors as try_run for
    // everything System::new would otherwise panic on.
    assert_eq!(
        valid().retry_capacity(0).build_system().err(),
        Some(BuildError::ZeroRetryCapacity)
    );
    assert_eq!(
        valid()
            .cache(bash::CacheGeometry { sets: 0, ways: 4 })
            .build_system()
            .err(),
        Some(BuildError::BadCacheGeometry)
    );
    assert_eq!(
        valid().nodes(0).build_system().err(),
        Some(BuildError::ZeroNodes)
    );
    assert!(valid().build_system().is_ok());
}

#[test]
fn build_errors_display_a_reason() {
    let msg = format!("{}", BuildError::ZeroBandwidth);
    assert!(msg.contains("bandwidth"), "unhelpful message: {msg}");
}

#[test]
fn defaults_match_paper_default_config() {
    // The builder's untouched configuration must be exactly the paper's
    // target system for the same (protocol, nodes, bandwidth) triple.
    for proto in ProtocolKind::ALL {
        let b = SimBuilder::new(proto).nodes(64).bandwidth_mbps(3200);
        let got = b.config(3200, 0);
        let want = SystemConfig::paper_default(proto, 64, 3200);
        assert_eq!(got.protocol, want.protocol);
        assert_eq!(got.nodes, want.nodes);
        assert_eq!(got.link_mbps, want.link_mbps);
        assert_eq!(got.traversal, want.traversal);
        assert_eq!(got.dram_latency, want.dram_latency);
        assert_eq!(got.cache_provide_latency, want.cache_provide_latency);
        assert_eq!(got.cache_geometry.sets, want.cache_geometry.sets);
        assert_eq!(got.cache_geometry.ways, want.cache_geometry.ways);
        assert_eq!(
            got.broadcast_cost_multiplier,
            want.broadcast_cost_multiplier
        );
        assert_eq!(got.serialize_dram, want.serialize_dram);
        assert_eq!(got.retry_capacity, want.retry_capacity);
        assert_eq!(got.coverage, want.coverage);
        assert_eq!(got.seed, want.seed);
        assert!(matches!(got.jitter, Jitter::None));
    }
}

#[test]
fn single_seed_runs_get_no_perturbation_jitter() {
    let cfg = valid().config(800, 0);
    assert!(
        matches!(cfg.jitter, Jitter::None),
        "a single-seed run must stay unperturbed"
    );
    let cfg = valid().seeds(3).config(800, 1);
    assert!(
        matches!(cfg.jitter, Jitter::Uniform { .. }),
        "multi-seed runs are perturbed"
    );
}

#[test]
fn same_seed_gives_identical_reports() {
    // Seed-aggregation determinism: the whole RunReport — every metric,
    // every per-seed RunStats — must be a pure function of the builder
    // configuration.
    let run = || valid().seeds(3).seed(0xDECAF).run();
    let a: RunReport = run();
    let b: RunReport = run();
    assert_eq!(a, b);
    assert_eq!(a.runs.len(), 3);
    assert_eq!(a.seeds, 3);
}

#[test]
fn different_seeds_give_different_reports() {
    let a = valid().seed(1).run();
    let b = valid().seed(2).run();
    assert_ne!(a.runs[0].ops_completed, b.runs[0].ops_completed);
}

#[test]
fn aggregation_spreads_are_sane() {
    let report = valid().seeds(4).run();
    assert_eq!(report.runs.len(), 4);
    let m = report.ops_per_sec;
    assert!(m.min <= m.mean && m.mean <= m.max, "{m:?}");
    assert!(m.stddev >= 0.0);
    // Perturbed runs should not all be byte-identical.
    let first = &report.runs[0];
    assert!(
        report
            .runs
            .iter()
            .any(|r| r.ops_completed != first.ops_completed || r.link_bytes != first.link_bytes),
        "perturbation had no effect at all"
    );
}

#[test]
fn sweep_reports_cover_every_bandwidth_in_order() {
    let reports = valid().bandwidths([400, 800, 1600]).run_sweep();
    let bws: Vec<u64> = reports.iter().map(|r| r.bandwidth_mbps).collect();
    assert_eq!(bws, vec![400, 800, 1600]);
    // More bandwidth, more completed work (monotone for this workload).
    assert!(reports[0].ops_per_sec.mean < reports[2].ops_per_sec.mean);
}

#[test]
fn perf_picks_the_paper_metric_per_workload_kind() {
    // The microbenchmark retires no instructions: perf = ops/s.
    let micro = valid().run();
    assert_eq!(micro.perf, micro.ops_per_sec);
    // Macro workloads retire instructions: perf = instructions/s.
    let mac = valid().synthetic(bash::WorkloadParams::specjbb()).run();
    assert_eq!(mac.perf, mac.instructions_per_sec);
    assert!(mac.instructions_per_sec.mean > 0.0);
}

#[test]
fn unprotected_lossy_without_watchdog_rejected() {
    // The cross-field rule: an unprotected lossy plane silently loses
    // messages, so the builder demands a watchdog budget (or an explicit
    // opt-in) before it will run one.
    let lossy = || {
        valid()
            .fabric(FabricSpec::new(TopologyKind::Ring))
            .robustness(
                RobustnessSpec::new()
                    .fault_plane(FaultPlaneConfig::lossy(0xBAD, 0.2).unprotected()),
            )
    };
    assert_eq!(
        lossy().try_run().unwrap_err(),
        BuildError::UnprotectedLossyNeedsWatchdog
    );
    // Either arming a watchdog or opting into unguarded wedges clears it.
    let armed = lossy().robustness(
        RobustnessSpec::new()
            .fault_plane(FaultPlaneConfig::lossy(0xBAD, 0.2).unprotected())
            .watchdog(WatchdogBudget::events(1_000_000)),
    );
    assert!(armed.validate().is_ok());
    let opted = lossy().robustness(
        RobustnessSpec::new()
            .fault_plane(FaultPlaneConfig::lossy(0xBAD, 0.2).unprotected())
            .allow_unprotected_wedges(true),
    );
    assert!(opted.validate().is_ok());
    // A *protected* lossy plane retransmits, so it never needs one.
    let protected = valid()
        .fabric(FabricSpec::new(TopologyKind::Ring))
        .robustness(RobustnessSpec::new().fault_plane(FaultPlaneConfig::lossy(0xBAD, 0.2)));
    assert!(protected.validate().is_ok());
}

#[test]
fn fault_plane_still_needs_a_routed_fabric() {
    let err = valid()
        .robustness(RobustnessSpec::new().fault_plane(FaultPlaneConfig::lossy(0xBAD, 0.2)))
        .try_run()
        .unwrap_err();
    assert_eq!(err, BuildError::FaultPlaneNeedsFabric);
}

#[test]
#[allow(deprecated)]
fn deprecated_flat_setters_still_land_in_the_specs() {
    // The pre-spec flat setters survive one deprecation cycle as shims;
    // they must write through to the grouped specs.
    let b = valid()
        .topology(TopologyKind::Mesh2D)
        .broadcast_cost(4)
        .fault_plane(FaultPlaneConfig::lossy(0xFA57, 0.01))
        .watchdog(WatchdogBudget::events(1_000_000))
        .trace_policy(true)
        .capture_completions(true);
    let cfg = b.config(800, 0);
    assert_eq!(cfg.broadcast_cost_multiplier, 4);
    assert!(cfg.fault_plane.is_some());
    assert!(cfg.watchdog.is_some());
    assert!(b.validate().is_ok());
}

#[test]
fn trace_policy_lands_in_the_report() {
    let report = valid()
        .capture(CaptureSpec::new().policy(true))
        .warmup(Duration::ZERO)
        .measure_ns(100_000)
        .run();
    let trace = report.policy_trace.as_deref().expect("trace recorded");
    assert!(!trace.is_empty());
    let without = valid().run();
    assert!(without.policy_trace.is_none());
}
