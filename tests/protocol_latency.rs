//! Uncontended-latency tests: the paper's §4.2 timing assumptions.
//!
//! "These assumed latencies result in a 180 ns latency to obtain a block
//! from memory in all three protocols, a 125 ns latency for a cache-to-cache
//! transfer for both a Snooping and a broadcast BASH request, and a 255 ns
//! latency for a cache-to-cache transfer for a Directory and a unicast BASH
//! request."
//!
//! We run at very high bandwidth so transmission time is negligible and
//! check each completion against the paper's number (±3 ns of wire time).

use bash::{
    AdaptorConfig, BlockAddr, CacheGeometry, DecisionMode, Duration, NodeId, ProcOp, ProtocolKind,
    ScriptWorkload, System, SystemConfig,
};

const FAST_LINK: u64 = 1_000_000; // MB/s — transmission ≈ 0

/// Builds a 4-node system running `proto` with the given BASH decision
/// mode, runs the script to idle, and returns per-completion latencies
/// (completion minus issue, from the workload's own records) in the order
/// the operations were issued.
fn run_script(
    proto: ProtocolKind,
    mode: DecisionMode,
    script: ScriptWorkload,
    expected_ops: usize,
) -> Vec<f64> {
    let mut adaptor = AdaptorConfig::paper_default();
    adaptor.mode = mode;
    let cfg = SystemConfig::paper_default(proto, 4, FAST_LINK)
        .with_adaptor(adaptor)
        .with_cache(CacheGeometry { sets: 64, ways: 2 });
    let mut sys = System::new(cfg, script);
    sys.run_to_idle();
    assert!(sys.is_quiescent(), "system must drain");
    let mut completions: Vec<_> = sys.workload().completions().to_vec();
    assert_eq!(completions.len(), expected_ops, "every op completes");
    completions.sort_by_key(|c| c.issued_at);
    completions
        .iter()
        .map(|c| c.at.since(c.issued_at).as_ps() as f64 / 1000.0)
        .collect()
}

/// Store to a cold (memory-owned) block, then a store by another node
/// (cache-to-cache), then a load by a third (cache-to-cache read).
fn three_step_script() -> (ScriptWorkload, usize) {
    let block = BlockAddr(1);
    let mut s = ScriptWorkload::new(4);
    s.push(
        NodeId(0),
        Duration::ZERO,
        ProcOp::Store {
            block,
            word: 0,
            value: 1,
        },
    );
    s.push(
        NodeId(2),
        Duration::from_ns(10_000),
        ProcOp::Store {
            block,
            word: 2,
            value: 2,
        },
    );
    s.push(
        NodeId(3),
        Duration::from_ns(20_000),
        ProcOp::Load { block, word: 2 },
    );
    (s, 3)
}

fn assert_close(actual: f64, expect: f64, what: &str) {
    assert!(
        (actual - expect).abs() < 3.0,
        "{what}: expected ~{expect} ns, measured {actual:.2} ns"
    );
}

#[test]
fn snooping_latencies_match_the_paper() {
    let (script, n) = three_step_script();
    let lat = run_script(ProtocolKind::Snooping, DecisionMode::Adaptive, script, n);
    assert_close(lat[0], 180.0, "memory-to-cache");
    assert_close(lat[1], 125.0, "cache-to-cache store");
    assert_close(lat[2], 125.0, "cache-to-cache load");
}

#[test]
fn bash_broadcast_latencies_match_snooping() {
    let (script, n) = three_step_script();
    let lat = run_script(ProtocolKind::Bash, DecisionMode::AlwaysBroadcast, script, n);
    assert_close(lat[0], 180.0, "memory-to-cache");
    assert_close(lat[1], 125.0, "cache-to-cache store");
    assert_close(lat[2], 125.0, "cache-to-cache load");
}

#[test]
fn directory_latencies_match_the_paper() {
    let (script, n) = three_step_script();
    let lat = run_script(ProtocolKind::Directory, DecisionMode::Adaptive, script, n);
    assert_close(lat[0], 180.0, "memory-to-cache");
    assert_close(lat[1], 255.0, "cache-to-cache store (indirection)");
    assert_close(lat[2], 255.0, "cache-to-cache load (indirection)");
}

#[test]
fn bash_unicast_latencies_match_directory() {
    let (script, n) = three_step_script();
    let lat = run_script(ProtocolKind::Bash, DecisionMode::AlwaysUnicast, script, n);
    // A unicast finding data at the home costs the same 180 ns; an
    // insufficient unicast retried by the home matches the directory's
    // 255 ns (paper footnote 3).
    assert_close(lat[0], 180.0, "memory-to-cache");
    assert_close(lat[1], 255.0, "cache-to-cache store (retry)");
    assert_close(lat[2], 255.0, "cache-to-cache load (retry)");
}

#[test]
fn upgrades_complete_at_the_marker() {
    // O → M upgrade: the owner already has data; completion happens at its
    // own marker (~50 ns: one traversal), not after a data transfer.
    let block = BlockAddr(2);
    let mut s = ScriptWorkload::new(4);
    // P1 takes M, P3 reads (P1 → O), then P1 upgrades O → M.
    s.push(
        NodeId(1),
        Duration::ZERO,
        ProcOp::Store {
            block,
            word: 1,
            value: 1,
        },
    );
    s.push(
        NodeId(3),
        Duration::from_ns(10_000),
        ProcOp::Load { block, word: 1 },
    );
    s.push(
        NodeId(1),
        Duration::from_ns(20_000),
        ProcOp::Store {
            block,
            word: 1,
            value: 2,
        },
    );
    let lat = run_script(ProtocolKind::Snooping, DecisionMode::Adaptive, s, 3);
    assert_close(lat[2], 50.0, "upgrade completes at own marker");
}

#[test]
fn store_hit_in_m_is_free() {
    let block = BlockAddr(3);
    for proto in [
        ProtocolKind::Snooping,
        ProtocolKind::Directory,
        ProtocolKind::Bash,
    ] {
        let mut s = ScriptWorkload::new(4);
        s.push(
            NodeId(0),
            Duration::ZERO,
            ProcOp::Store {
                block,
                word: 0,
                value: 1,
            },
        );
        s.push(
            NodeId(0),
            Duration::from_ns(10_000),
            ProcOp::Store {
                block,
                word: 0,
                value: 2,
            },
        );
        s.push(
            NodeId(0),
            Duration::from_ns(20_000),
            ProcOp::Load { block, word: 0 },
        );
        let lat = run_script(proto, DecisionMode::Adaptive, s, 3);
        assert!(lat[1] < 1.0, "{proto:?}: store hit must be immediate");
        assert!(lat[2] < 1.0, "{proto:?}: load hit must be immediate");
    }
}

#[test]
fn loads_read_what_stores_wrote_across_protocols() {
    for proto in [
        ProtocolKind::Snooping,
        ProtocolKind::Directory,
        ProtocolKind::Bash,
    ] {
        let block = BlockAddr(5);
        let mut s = ScriptWorkload::new(4);
        s.push(
            NodeId(0),
            Duration::ZERO,
            ProcOp::Store {
                block,
                word: 0,
                value: 77,
            },
        );
        s.push(
            NodeId(1),
            Duration::from_ns(10_000),
            ProcOp::Load { block, word: 0 },
        );
        s.push(
            NodeId(2),
            Duration::from_ns(20_000),
            ProcOp::Store {
                block,
                word: 2,
                value: 88,
            },
        );
        s.push(
            NodeId(3),
            Duration::from_ns(30_000),
            ProcOp::Load { block, word: 0 },
        );
        s.push(
            NodeId(3),
            Duration::from_ns(1_000),
            ProcOp::Load { block, word: 2 },
        );
        let mut adaptor = AdaptorConfig::paper_default();
        adaptor.initial_policy = 128;
        let cfg = SystemConfig::paper_default(proto, 4, FAST_LINK).with_adaptor(adaptor);
        let mut sys = System::new(cfg, s);
        sys.run_to_idle();
        let values: Vec<(u16, u64)> = sys
            .workload()
            .completions()
            .iter()
            .filter(|c| matches!(c.op, ProcOp::Load { .. }))
            .map(|c| (c.node.0, c.value))
            .collect();
        assert_eq!(
            values,
            vec![(1, 77), (3, 77), (3, 88)],
            "{proto:?}: wrong load values"
        );
    }
}
