//! Cross-protocol semantic equivalence: identical workloads must produce
//! identical *values* under all three protocols — protocols change timing,
//! never semantics. Runs through the `bash` facade.

use bash::{
    AdaptorConfig, BlockAddr, CacheGeometry, DecisionMode, Duration, NodeId, ProcOp, ProtocolKind,
    ScriptWorkload, SimBuilder, System, SystemConfig,
};

/// A deterministic multi-node script touching shared blocks with a
/// serialized schedule (large gaps ⇒ identical logical outcome under every
/// protocol).
fn serialized_script(nodes: u16) -> ScriptWorkload {
    let mut s = ScriptWorkload::new(nodes);
    let gap = Duration::from_ns(50_000); // far larger than any miss latency
    for round in 0..6u64 {
        for n in 0..nodes {
            let block = BlockAddr((round + n as u64) % 4);
            if (round + n as u64).is_multiple_of(3) {
                s.push(
                    NodeId(n),
                    gap,
                    ProcOp::Store {
                        block,
                        word: n as usize % 8,
                        value: round * 100 + n as u64,
                    },
                );
            } else {
                s.push(NodeId(n), gap, ProcOp::Load { block, word: 0 });
            }
        }
    }
    s
}

#[test]
fn serialized_values_are_identical_across_protocols() {
    let mut results: Vec<Vec<(u16, u64)>> = Vec::new();
    for proto in [
        ProtocolKind::Snooping,
        ProtocolKind::Directory,
        ProtocolKind::Bash,
    ] {
        let mut adaptor = AdaptorConfig::paper_default();
        adaptor.initial_policy = 128; // make BASH actually mix casts
        let cfg = SystemConfig::paper_default(proto, 4, 800)
            .with_adaptor(adaptor)
            .with_cache(CacheGeometry { sets: 8, ways: 2 });
        let mut sys = System::new(cfg, serialized_script(4));
        sys.run_to_idle();
        assert!(sys.is_quiescent(), "{proto:?} must drain");
        let mut vals: Vec<(u16, u64)> = sys
            .workload()
            .completions()
            .iter()
            .map(|c| (c.node.0, c.value))
            .collect();
        vals.sort();
        results.push(vals);
    }
    assert_eq!(results[0], results[1], "Snooping vs Directory");
    assert_eq!(results[0], results[2], "Snooping vs BASH");
}

#[test]
fn microbench_acquire_counts_are_comparable() {
    // All three protocols execute the same acquire stream; over a fixed
    // window the counts differ only via timing, and at generous bandwidth
    // they should be within a modest band of each other.
    let mut counts = Vec::new();
    for proto in [
        ProtocolKind::Snooping,
        ProtocolKind::Directory,
        ProtocolKind::Bash,
    ] {
        let report = SimBuilder::new(proto)
            .nodes(8)
            .bandwidth_mbps(25_000)
            .cache(CacheGeometry { sets: 128, ways: 4 })
            .locking_microbench(128, Duration::ZERO)
            .seed(3)
            .warmup_ns(50_000)
            .measure_ns(200_000)
            .run();
        assert!(report.stats().misses > 100, "{proto:?} made no progress");
        counts.push((proto, report.stats().ops_completed));
    }
    let max = counts.iter().map(|&(_, c)| c).max().unwrap() as f64;
    let min = counts.iter().map(|&(_, c)| c).min().unwrap() as f64;
    assert!(
        min / max > 0.5,
        "protocols diverge too much at high bandwidth: {counts:?}"
    );
}

#[test]
fn bash_with_always_broadcast_equals_snooping_exactly() {
    // With the adaptor pinned to broadcast, BASH must match Snooping's
    // acquire count exactly at any bandwidth (same messages, same order,
    // same timing) — the hybrid degenerates to its base protocol.
    let run = |proto, mode| {
        let mut adaptor = AdaptorConfig::paper_default();
        adaptor.mode = mode;
        SimBuilder::new(proto)
            .nodes(8)
            .bandwidth_mbps(1600)
            .adaptor(adaptor)
            .cache(CacheGeometry { sets: 128, ways: 4 })
            .locking_microbench(128, Duration::ZERO)
            .seed(9)
            .warmup_ns(50_000)
            .measure_ns(200_000)
            .run()
    };
    let snoop = run(ProtocolKind::Snooping, DecisionMode::Adaptive);
    let bash = run(ProtocolKind::Bash, DecisionMode::AlwaysBroadcast);
    assert_eq!(snoop.stats().ops_completed, bash.stats().ops_completed);
    assert_eq!(snoop.stats().misses, bash.stats().misses);
    assert!((snoop.miss_latency_ns.mean - bash.miss_latency_ns.mean).abs() < 1e-9);
}

#[test]
fn runs_are_deterministic_for_a_seed() {
    let run = |seed| {
        let report = SimBuilder::new(ProtocolKind::Bash)
            .nodes(8)
            .bandwidth_mbps(800)
            .locking_microbench(256, Duration::ZERO)
            .seed(seed)
            .warmup_ns(50_000)
            .measure_ns(150_000)
            .run();
        let s = report.stats();
        (s.ops_completed, s.misses, s.link_bytes, s.retries)
    };
    assert_eq!(run(5), run(5));
    assert_ne!(run(5), run(6));
}
