//! Cross-protocol semantic equivalence: identical workloads must produce
//! identical *values* under all three protocols — protocols change timing,
//! never semantics.

use bash_adaptive::AdaptorConfig;
use bash_coherence::{BlockAddr, CacheGeometry, ProcOp, ProtocolKind};
use bash_kernel::Duration;
use bash_net::NodeId;
use bash_sim::{System, SystemConfig};
use bash_workloads::{LockingMicrobench, ScriptWorkload, Workload};

/// A deterministic multi-node script touching shared blocks with a
/// serialized schedule (large gaps ⇒ identical logical outcome under every
/// protocol).
fn serialized_script(nodes: u16) -> ScriptWorkload {
    let mut s = ScriptWorkload::new(nodes);
    let gap = Duration::from_ns(50_000); // far larger than any miss latency
    for round in 0..6u64 {
        for n in 0..nodes {
            let block = BlockAddr((round + n as u64) % 4);
            if (round + n as u64) % 3 == 0 {
                s.push(
                    NodeId(n),
                    gap,
                    ProcOp::Store {
                        block,
                        word: n as usize % 8,
                        value: round * 100 + n as u64,
                    },
                );
            } else {
                s.push(NodeId(n), gap, ProcOp::Load { block, word: 0 });
            }
        }
    }
    s
}

#[test]
fn serialized_values_are_identical_across_protocols() {
    let mut results: Vec<Vec<(u16, u64)>> = Vec::new();
    for proto in [ProtocolKind::Snooping, ProtocolKind::Directory, ProtocolKind::Bash] {
        let mut adaptor = AdaptorConfig::paper_default();
        adaptor.initial_policy = 128; // make BASH actually mix casts
        let cfg = SystemConfig::paper_default(proto, 4, 800)
            .with_adaptor(adaptor)
            .with_cache(CacheGeometry { sets: 8, ways: 2 });
        let mut sys = System::new(cfg, serialized_script(4));
        sys.run_to_idle();
        assert!(sys.is_quiescent(), "{proto:?} must drain");
        let mut vals: Vec<(u16, u64)> = sys
            .workload()
            .completions()
            .iter()
            .map(|c| (c.node.0, c.value))
            .collect();
        vals.sort();
        results.push(vals);
    }
    assert_eq!(results[0], results[1], "Snooping vs Directory");
    assert_eq!(results[0], results[2], "Snooping vs BASH");
}

#[test]
fn microbench_acquire_counts_are_comparable() {
    // All three protocols execute the same acquire stream; over a fixed
    // window the counts differ only via timing, and at generous bandwidth
    // they should be within a modest band of each other.
    let mut counts = Vec::new();
    for proto in [ProtocolKind::Snooping, ProtocolKind::Directory, ProtocolKind::Bash] {
        let cfg = SystemConfig::paper_default(proto, 8, 25_000)
            .with_cache(CacheGeometry { sets: 128, ways: 4 });
        let wl = LockingMicrobench::new(8, 128, Duration::ZERO, 3);
        let stats = System::run(cfg, wl, Duration::from_ns(50_000), Duration::from_ns(200_000));
        assert!(stats.misses > 100, "{proto:?} made no progress");
        counts.push((proto, stats.ops_completed));
    }
    let max = counts.iter().map(|&(_, c)| c).max().unwrap() as f64;
    let min = counts.iter().map(|&(_, c)| c).min().unwrap() as f64;
    assert!(
        min / max > 0.5,
        "protocols diverge too much at high bandwidth: {counts:?}"
    );
}

#[test]
fn bash_with_always_broadcast_equals_snooping_exactly() {
    // With the adaptor pinned to broadcast, BASH must match Snooping's
    // acquire count exactly at any bandwidth (same messages, same order,
    // same timing) — the hybrid degenerates to its base protocol.
    let run = |proto, mode| {
        let mut adaptor = AdaptorConfig::paper_default();
        adaptor.mode = mode;
        let cfg = SystemConfig::paper_default(proto, 8, 1600)
            .with_adaptor(adaptor)
            .with_cache(CacheGeometry { sets: 128, ways: 4 });
        let wl = LockingMicrobench::new(8, 128, Duration::ZERO, 9);
        System::run(cfg, wl, Duration::from_ns(50_000), Duration::from_ns(200_000))
    };
    let snoop = run(
        ProtocolKind::Snooping,
        bash_adaptive::DecisionMode::Adaptive,
    );
    let bash = run(
        ProtocolKind::Bash,
        bash_adaptive::DecisionMode::AlwaysBroadcast,
    );
    assert_eq!(snoop.ops_completed, bash.ops_completed);
    assert_eq!(snoop.misses, bash.misses);
    assert!((snoop.avg_miss_latency_ns - bash.avg_miss_latency_ns).abs() < 1e-9);
}

#[test]
fn runs_are_deterministic_for_a_seed() {
    let run = |seed| {
        let cfg = SystemConfig::paper_default(ProtocolKind::Bash, 8, 800).with_seed(seed);
        let wl = LockingMicrobench::new(8, 256, Duration::ZERO, seed);
        let s = System::run(cfg, wl, Duration::from_ns(50_000), Duration::from_ns(150_000));
        (s.ops_completed, s.misses, s.link_bytes, s.retries)
    };
    assert_eq!(run(5), run(5));
    assert_ne!(run(5), run(6));
}
