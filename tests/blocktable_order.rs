//! Hash-order independence gate for the open-addressed block tables.
//!
//! Every coherence controller resolves per-block state through a
//! [`bash::coherence::BlockTable`], whose slot order depends on the
//! probe seed. Nothing observable may depend on that order: iteration
//! feeding canonical report text must go through the table's sorted
//! drain, and the remaining full-table walks must be order-independent
//! folds (quiescence booleans). This binary proves it end to end, the
//! same way PR 8's `heap_and_calendar_queues_produce_identical_reports`
//! pinned the queue swap: replay the committed mini-traces under the
//! default probe seed and under a scrambling one, and require **byte
//! identical** canonical reports.
//!
//! The probe seed is a process-wide test hook, so this lives in its own
//! integration-test binary: cargo gives it a dedicated process and the
//! seed flip cannot race any other test.

use std::path::{Path, PathBuf};

use bash::coherence::blocktable::set_probe_seed;
use bash::{sweep_canonical_text, ProtocolKind, SimBuilder, Trace};

const BANDWIDTHS: [u64; 3] = [400, 800, 1600];
const SEED: u64 = 0xF00D;
const WARMUP_NS: u64 = 5_000;
const MEASURE_NS: u64 = 20_000;

const PROTOCOLS: [ProtocolKind; 3] = [
    ProtocolKind::Snooping,
    ProtocolKind::Directory,
    ProtocolKind::Bash,
];

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn mini_trace(scenario: &str) -> Trace {
    let path = golden_dir().join(format!("{scenario}.trace"));
    Trace::read_from(&path)
        .unwrap_or_else(|e| panic!("committed trace {} is invalid: {e}", path.display()))
}

fn replay(trace: &Trace, proto: ProtocolKind) -> String {
    sweep_canonical_text(
        &SimBuilder::new(proto)
            .trace_in(trace.clone())
            .bandwidths(BANDWIDTHS)
            .seed(SEED)
            .warmup_ns(WARMUP_NS)
            .measure_ns(MEASURE_NS)
            .run_sweep(),
    )
}

/// Replays the committed mini-traces through all three protocols under
/// the default probe seed and under a seed that permutes every table's
/// slot order, and requires byte-identical canonical reports.
#[test]
fn reports_are_identical_under_both_probe_seeds() {
    for scenario in ["migratory", "zipf", "phase-shift"] {
        let trace = mini_trace(scenario);
        for proto in PROTOCOLS {
            set_probe_seed(0);
            let default_order = replay(&trace, proto);
            set_probe_seed(0x5EED_FACE_CAFE_F00D);
            let scrambled_order = replay(&trace, proto);
            set_probe_seed(0);
            assert_eq!(
                default_order, scrambled_order,
                "{scenario}/{proto:?}: canonical report depends on block-table hash order"
            );
        }
    }
}
