#!/usr/bin/env bash
# Regenerates the golden-report regression fixtures under tests/golden/:
# re-captures any *missing* mini-trace (committed traces are never
# overwritten — they are the stable reference streams) and rewrites every
# golden report text from the current engine. Review and commit the diff;
# CI's golden-reports job fails on any un-blessed drift.
#
#   scripts/update_goldens.sh
set -euo pipefail
cd "$(dirname "$0")/.."
BASH_BLESS=1 cargo test --release --test golden_reports -- --nocapture
echo "goldens updated; review with: git diff tests/golden"
