#!/usr/bin/env bash
# Regenerates the golden-report regression fixtures under tests/golden/:
# re-captures any *missing* mini-trace (committed traces are never
# overwritten — they are the stable reference streams) and rewrites every
# golden report text from the current engine. Review and commit the diff;
# CI's golden-reports job fails on any un-blessed drift.
#
#   scripts/update_goldens.sh             bless goldens (+ capture missing traces)
#   scripts/update_goldens.sh --migrate   also re-encode committed traces as v2
#
# --migrate is record-preserving: it streams each tests/golden/*.trace
# through `bash-experiments trace migrate`, which re-containers the same
# reference stream in the current (v2 chunked) format. The pinned
# v1-compat fixture (zipf.v1.trace) is deliberately excluded — its whole
# job is to stay v1 forever so the trace-compat CI step keeps proving
# backward-compatible decode.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--migrate" ]]; then
  cargo build --release -p bash-experiments
  for f in tests/golden/*.trace; do
    [[ "$f" == *.v1.trace ]] && continue
    ./target/release/bash-experiments trace migrate "$f" "$f.v2"
    mv "$f.v2" "$f"
  done
  echo "traces re-encoded as v2; replaying to confirm the goldens still match..."
fi

BASH_BLESS=1 cargo test --release --test golden_reports -- --nocapture
echo "goldens updated; review with: git diff tests/golden"
