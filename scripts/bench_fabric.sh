#!/usr/bin/env bash
# Produces BENCH_fabric.json — the interconnect fabric's throughput
# baseline (events/sec, 16-node BASH: 4x4 mesh vs. crossbar, plus the
# mesh under a 1% lossy fault plane with the reliable transport on).
# Run from anywhere:
#
#   scripts/bench_fabric.sh [output.json]
#
# The JSON is the artifact CI's bench-smoke job uploads; commit-to-commit
# comparisons of the mesh_vs_crossbar factor track what routed delivery
# costs the engine.
set -euo pipefail
cd "$(dirname "$0")/.."
OUT="${1:-BENCH_fabric.json}"
cargo run --release -q -p bash-bench --bin fabric_throughput -- "$OUT"

# Fail loudly if the bench silently produced nothing: CI uploads this file
# as the perf-trajectory artifact, and an empty artifact is worse than a
# red job.
if [[ ! -s "$OUT" ]]; then
  echo "bench_fabric: $OUT is missing or empty" >&2
  exit 1
fi
if ! grep -q '"mesh_vs_crossbar"' "$OUT"; then
  echo "bench_fabric: $OUT has no mesh_vs_crossbar field — bench output is malformed" >&2
  exit 1
fi
# The lossy point (mesh-16 at 1% loss under the reliable transport)
# tracks what fault bookkeeping + retransmission cost the fabric; the
# target trajectory for lossy_vs_mesh is >= ~0.85 (< 15% events/sec
# regression), watched commit to commit rather than hard-gated.
if ! grep -q '"lossy_vs_mesh"' "$OUT"; then
  echo "bench_fabric: $OUT has no lossy_vs_mesh field — bench output is malformed" >&2
  exit 1
fi
