#!/usr/bin/env bash
# Produces BENCH_engine.json — the engine perf baseline (events/sec per
# protocol + sweep wall time serial vs. parallel). Run from anywhere:
#
#   scripts/bench_baseline.sh [output.json]
#
# The JSON is the artifact CI's bench-smoke job uploads; commit-to-commit
# comparisons of it are the repo's perf trajectory.
set -euo pipefail
cd "$(dirname "$0")/.."
OUT="${1:-BENCH_engine.json}"
cargo run --release -q -p bash-bench --bin engine_baseline -- "$OUT"

# Fail loudly if the bench silently produced nothing: CI uploads this file
# as the perf-trajectory artifact, and an empty artifact is worse than a
# red job.
if [[ ! -s "$OUT" ]]; then
  echo "bench_baseline: $OUT is missing or empty" >&2
  exit 1
fi
if ! grep -q '"events_per_sec"' "$OUT"; then
  echo "bench_baseline: $OUT has no events_per_sec section — bench output is malformed" >&2
  exit 1
fi

# Calendar-queue gates. Ratios (not absolute timings) so shared-runner
# noise mostly cancels:
#   * calendar_vs_heap_256 — queue churn at 256-node load must hold the
#     tentpole's scaling win (>= 3.0x over the heap it replaced);
#   * each 16-node end-to-end point must not regress (>= 0.95x heap).
ratio() { # ratio <key>  -> prints the numeric value of "key": N.NNN
  sed -n 's/^[[:space:]]*"'"$1"'":[[:space:]]*\([0-9.]*\).*/\1/p' "$OUT" | head -n1
}
fail=0
r256="$(ratio calendar_vs_heap_256)"
if [[ -z "$r256" ]]; then
  echo "bench_baseline: $OUT has no calendar_vs_heap_256 — bench output is malformed" >&2
  fail=1
elif awk -v r="$r256" 'BEGIN { exit !(r < 3.0) }'; then
  echo "bench_baseline: calendar_vs_heap_256 = $r256 < 3.0 — calendar queue lost its scaling win" >&2
  fail=1
fi
for key in Snooping_16 BASH_16 Directory_16; do
  r="$(ratio "$key")"
  if [[ -z "$r" ]]; then
    echo "bench_baseline: $OUT has no $key ratio — bench output is malformed" >&2
    fail=1
  elif awk -v r="$r" 'BEGIN { exit !(r < 0.95) }'; then
    echo "bench_baseline: $key = $r < 0.95 — calendar queue regressed a 16-node point" >&2
    fail=1
  fi
done

# Scale gates (adaptive sharer sets + open-addressed block tables):
#   * the 1024-node hierarchical point must exist — its absence means the
#     scale sweep silently stopped running past the old 256-node cap;
#   * smallset_vs_bitset_16 — the adaptive NodeSet against the retired
#     fixed bitset on a 16-node working pattern must hold >= 0.95x, so
#     scaling to 4096 nodes never taxes the paper-sized runs.
if [[ -z "$(ratio events_per_sec_1024)" ]]; then
  echo "bench_baseline: $OUT has no events_per_sec_1024 — scale section missing" >&2
  fail=1
fi
rset="$(ratio smallset_vs_bitset_16)"
if [[ -z "$rset" ]]; then
  echo "bench_baseline: $OUT has no smallset_vs_bitset_16 ratio — scale section malformed" >&2
  fail=1
elif awk -v r="$rset" 'BEGIN { exit !(r < 0.95) }'; then
  echo "bench_baseline: smallset_vs_bitset_16 = $rset < 0.95 — adaptive NodeSet regressed the 16-node pattern" >&2
  fail=1
fi
exit "$fail"
