#!/usr/bin/env bash
# Produces BENCH_engine.json — the engine perf baseline (events/sec per
# protocol + sweep wall time serial vs. parallel). Run from anywhere:
#
#   scripts/bench_baseline.sh [output.json]
#
# The JSON is the artifact CI's bench-smoke job uploads; commit-to-commit
# comparisons of it are the repo's perf trajectory.
set -euo pipefail
cd "$(dirname "$0")/.."
OUT="${1:-BENCH_engine.json}"
cargo run --release -q -p bash-bench --bin engine_baseline -- "$OUT"
