#!/usr/bin/env bash
# Produces BENCH_engine.json — the engine perf baseline (events/sec per
# protocol + sweep wall time serial vs. parallel). Run from anywhere:
#
#   scripts/bench_baseline.sh [output.json]
#
# The JSON is the artifact CI's bench-smoke job uploads; commit-to-commit
# comparisons of it are the repo's perf trajectory.
set -euo pipefail
cd "$(dirname "$0")/.."
OUT="${1:-BENCH_engine.json}"
cargo run --release -q -p bash-bench --bin engine_baseline -- "$OUT"

# Fail loudly if the bench silently produced nothing: CI uploads this file
# as the perf-trajectory artifact, and an empty artifact is worse than a
# red job.
if [[ ! -s "$OUT" ]]; then
  echo "bench_baseline: $OUT is missing or empty" >&2
  exit 1
fi
if ! grep -q '"events_per_sec"' "$OUT"; then
  echo "bench_baseline: $OUT has no events_per_sec section — bench output is malformed" >&2
  exit 1
fi
