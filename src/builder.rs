//! The fluent [`SimBuilder`] entry point and its structured [`RunReport`]
//! result.
//!
//! Every consumer of the simulator — examples, integration tests, the
//! experiment harness — goes through this layer instead of hand-assembling
//! `SystemConfig` + workload + `System::run` calls. The builder owns the
//! paper's measurement methodology: warmup to steady state, measure a
//! window, and optionally aggregate over several seed-perturbed runs
//! (mean ± stddev, the paper's error-bar method) or sweep a list of
//! bandwidths.

use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use bash_adaptive::AdaptorConfig;
use bash_coherence::{CacheGeometry, HierarchyConfig, ProtocolKind};
use bash_kernel::pool;
use bash_kernel::stats::RunningStat;
use bash_kernel::{Duration, QueueKind, Time};
use bash_net::{FaultPlaneConfig, Jitter, TopologyKind};
use bash_sim::{RunError, RunStats, System, SystemConfig, WatchdogBudget};
use bash_trace::{Trace, TraceReader};
use bash_workloads::{
    catalog, LockingMicrobench, ScriptWorkload, StreamingTraceWorkload, SyntheticWorkload,
    TraceWorkload, Workload, WorkloadParams,
};

/// A type-erased workload, as produced by [`SimBuilder`] workload factories.
pub type BoxedWorkload = Box<dyn Workload>;

/// One executed grid point: its measured stats plus (for the first grid
/// point only, when enabled) the policy trace and the captured op trace.
struct PointResult {
    stats: RunStats,
    policy_trace: Option<Vec<(Time, f64)>>,
    captured: Option<Trace>,
}

/// How a grid point can fail without sinking the rest of the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointErrorKind {
    /// The watchdog tripped: the point exceeded its event or virtual-time
    /// budget (or stalled with work outstanding) and was cut off with a
    /// structured [`bash_sim::WedgeDiagnostic`].
    Wedged,
    /// The point's simulation panicked; the panic was caught at the grid
    /// executor and, after the retry budget, recorded here instead of
    /// aborting the sweep.
    Panicked,
}

impl PointErrorKind {
    /// Stable lower-case name (used in the canonical report text).
    pub fn name(self) -> &'static str {
        match self {
            PointErrorKind::Wedged => "wedged",
            PointErrorKind::Panicked => "panicked",
        }
    }
}

/// One failed grid point of a [`RunReport`]: the sweep executor isolates
/// wedges and panics per (bandwidth × seed) point, so a single poisoned
/// configuration degrades that point instead of aborting the campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointError {
    /// Which seed-perturbed run of this bandwidth point failed.
    pub seed_index: u32,
    /// How many times the point was attempted (panics are retried once;
    /// wedges are deterministic and never retried).
    pub attempts: u32,
    /// Wedged (watchdog) or panicked (caught unwind).
    pub kind: PointErrorKind,
    /// The wedge diagnostic or panic payload, rendered.
    pub message: String,
}

impl fmt::Display for PointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seed {} {} after {} attempt(s): {}",
            self.seed_index,
            self.kind.name(),
            self.attempts,
            self.message
        )
    }
}

/// Why a [`SimBuilder`] configuration was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The system needs at least one node.
    ZeroNodes,
    /// Endpoint links need positive bandwidth.
    ZeroBandwidth,
    /// A bandwidth sweep needs at least one point.
    EmptySweep,
    /// Seed aggregation needs at least one run.
    ZeroSeeds,
    /// The measurement window must be non-empty.
    EmptyMeasurement,
    /// No workload was configured.
    MissingWorkload,
    /// The broadcast cost multiplier must be at least 1.
    BadBroadcastCost,
    /// The BASH retry buffer needs at least one entry.
    ZeroRetryCapacity,
    /// The cache needs at least one set and one way.
    BadCacheGeometry,
    /// [`SimBuilder::scenario`] was given a name the catalog does not know.
    UnknownScenario(String),
    /// [`SimBuilder::trace_in`] trace was captured on a different node
    /// count than the builder is configured for.
    TraceNodeMismatch {
        /// Node count in the trace header.
        trace: u16,
        /// Node count the builder is configured for.
        nodes: u16,
    },
    /// [`SimBuilder::trace_out_all_points`] was enabled without a
    /// [`SimBuilder::trace_out`] path to derive the bundle paths from.
    AllPointsWithoutTraceOut,
    /// [`SimBuilder::trace_in_path`] could not open or decode the trace
    /// file's header.
    TraceUnreadable {
        /// The offending path.
        path: PathBuf,
        /// The decode error, rendered.
        error: String,
    },
    /// A fault plane was configured together with the crossbar topology,
    /// which has no links to inject faults on.
    FaultPlaneNeedsFabric,
    /// An *unprotected* lossy fault plane was configured without a
    /// watchdog budget: messages are silently lost, so wedges are the
    /// expected outcome, and an unbudgeted run can only be cut off by the
    /// drained-queue stall check — which never fires while retransmission
    /// timers or samplers keep the queue alive. Either arm a
    /// [`RobustnessSpec::watchdog`], or opt in to unguarded wedges with
    /// [`RobustnessSpec::allow_unprotected_wedges`].
    UnprotectedLossyNeedsWatchdog,
    /// A [`HierarchySpec`] was configured with a zero cluster size.
    ZeroClusterSize,
    /// A [`HierarchySpec`] was configured with zero directory-spine banks.
    ZeroHierarchyBanks,
    /// The hierarchy's cluster size does not divide the node count.
    ClusterSizeMismatch {
        /// Configured nodes per cluster.
        cluster_size: u16,
        /// Configured node count.
        nodes: u16,
    },
    /// The hierarchy's bank count does not divide the node count.
    BankCountMismatch {
        /// Configured directory-spine banks.
        banks: u16,
        /// Configured node count.
        nodes: u16,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::ZeroNodes => f.write_str("need at least one node"),
            BuildError::ZeroBandwidth => f.write_str("bandwidth must be positive"),
            BuildError::EmptySweep => f.write_str("bandwidth sweep needs at least one point"),
            BuildError::ZeroSeeds => f.write_str("seed aggregation needs at least one run"),
            BuildError::EmptyMeasurement => f.write_str("measurement window must be non-empty"),
            BuildError::MissingWorkload => f.write_str("no workload configured"),
            BuildError::BadBroadcastCost => f.write_str("broadcast cost multiplier must be >= 1"),
            BuildError::ZeroRetryCapacity => f.write_str("BASH needs at least one retry buffer"),
            BuildError::BadCacheGeometry => f.write_str("cache needs at least one set and one way"),
            BuildError::UnknownScenario(name) => write!(
                f,
                "unknown scenario {name:?} (known: {})",
                catalog::names().join(", ")
            ),
            BuildError::TraceNodeMismatch { trace, nodes } => write!(
                f,
                "trace was captured on {trace} nodes but the builder is configured for {nodes}"
            ),
            BuildError::AllPointsWithoutTraceOut => {
                f.write_str("trace_out_all_points needs a trace_out path to derive bundle paths")
            }
            BuildError::TraceUnreadable { path, error } => {
                write!(f, "trace file {}: {error}", path.display())
            }
            BuildError::FaultPlaneNeedsFabric => {
                f.write_str("the fault plane needs a fabric topology (the crossbar has no links)")
            }
            BuildError::UnprotectedLossyNeedsWatchdog => f.write_str(
                "an unprotected lossy fault plane needs a watchdog budget \
                 (or RobustnessSpec::allow_unprotected_wedges to opt in to unguarded wedges)",
            ),
            BuildError::ZeroClusterSize => f.write_str("hierarchy cluster size must be at least 1"),
            BuildError::ZeroHierarchyBanks => {
                f.write_str("hierarchy bank count must be at least 1")
            }
            BuildError::ClusterSizeMismatch {
                cluster_size,
                nodes,
            } => write!(
                f,
                "hierarchy cluster size {cluster_size} does not divide the node count {nodes}"
            ),
            BuildError::BankCountMismatch { banks, nodes } => write!(
                f,
                "hierarchy bank count {banks} does not divide the node count {nodes}"
            ),
        }
    }
}

impl std::error::Error for BuildError {}

/// A summary statistic over the per-seed runs of one report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metric {
    /// Mean over all runs.
    pub mean: f64,
    /// Sample standard deviation over runs (0 for a single run).
    pub stddev: f64,
    /// Smallest per-run value.
    pub min: f64,
    /// Largest per-run value.
    pub max: f64,
}

impl Metric {
    /// Aggregates raw per-run samples (via the kernel's [`RunningStat`],
    /// so mean/stddev semantics match every other statistic the simulator
    /// reports).
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "metric needs at least one sample");
        let mut stat = RunningStat::new();
        for &s in samples {
            stat.push(s);
        }
        Metric {
            mean: stat.mean(),
            stddev: stat.stddev(),
            min: stat.min().expect("non-empty"),
            max: stat.max().expect("non-empty"),
        }
    }
}

impl fmt::Display for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4} ± {:.4}", self.mean, self.stddev)
    }
}

/// The structured result of one [`SimBuilder`] run: every headline number
/// of the paper's figures, aggregated over the configured seeds, plus the
/// raw per-seed [`RunStats`].
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Protocol the report was measured under.
    pub protocol: ProtocolKind,
    /// Workload display name.
    pub workload: String,
    /// System size in nodes.
    pub nodes: u16,
    /// Endpoint link bandwidth of this report (one sweep point).
    pub bandwidth_mbps: u64,
    /// Number of seed-perturbed runs aggregated here.
    pub seeds: u32,
    /// Performance: instructions/s when the workload retires instructions,
    /// operations/s otherwise (the paper's micro vs. macro metric).
    pub perf: Metric,
    /// Completed memory operations per second.
    pub ops_per_sec: Metric,
    /// Instructions retired per second.
    pub instructions_per_sec: Metric,
    /// Mean demand-miss latency in ns (Figure 9's y-axis).
    pub miss_latency_ns: Metric,
    /// Mean endpoint link utilization in `[0,1]` (Figure 6's y-axis).
    pub link_utilization: Metric,
    /// Fraction of cache requests broadcast (1 = snooping-like behaviour).
    pub broadcast_fraction: Metric,
    /// Per-sampling-window mean policy-counter trace of the first seed,
    /// when enabled with [`SimBuilder::trace_policy`].
    pub policy_trace: Option<Vec<(Time, f64)>>,
    /// The raw measured-window statistics of every seed that completed,
    /// in seed order. Failed seeds appear in [`errors`](Self::errors)
    /// instead, so `runs.len() + errors.len() == seeds`.
    pub runs: Vec<RunStats>,
    /// The seeds that wedged or panicked instead of completing (empty on
    /// every healthy run — the normal case). The metrics above aggregate
    /// only the completed seeds.
    pub errors: Vec<PointError>,
}

impl RunReport {
    /// The first (or only) completed seed's raw statistics.
    ///
    /// # Panics
    ///
    /// Panics when every seed of this point failed (see
    /// [`errors`](Self::errors)).
    pub fn stats(&self) -> &RunStats {
        &self.runs[0]
    }
}

/// How the builder manufactures a workload for each run.
enum WorkloadSpec {
    /// The paper's locking microbenchmark.
    Micro { locks: u64, think: Duration },
    /// One of the five synthetic macro workloads.
    Macro(WorkloadParams),
    /// A fixed, deterministic script (cloned per seed).
    Script(ScriptWorkload),
    /// A named catalog scenario (resolved at build time; validated first).
    Scenario(String),
    /// A recorded reference stream, replayed per run (shared, not cloned,
    /// across the sweep grid — replay queues are rebuilt per run).
    Trace(Arc<Trace>),
    /// A trace file replayed *streaming*: every run re-opens the file and
    /// pulls records through a [`TraceReader`] on demand, so the trace is
    /// never resident — the multi-GB path. The node count was read from
    /// the header at [`SimBuilder::trace_in_path`] time.
    TraceFile {
        /// The on-disk trace (either format version).
        path: PathBuf,
        /// Node count from the file header.
        nodes: u16,
    },
    /// An arbitrary factory: `(nodes, seed) -> workload`. `Send + Sync`
    /// so the parallel sweep executor can build workloads on worker
    /// threads.
    Factory(Box<dyn Fn(u16, u64) -> BoxedWorkload + Send + Sync>),
}

impl WorkloadSpec {
    fn build(&self, nodes: u16, seed: u64) -> BoxedWorkload {
        match self {
            WorkloadSpec::Micro { locks, think } => {
                Box::new(LockingMicrobench::new(nodes, *locks, *think, seed ^ 0xA5))
            }
            WorkloadSpec::Macro(params) => {
                Box::new(SyntheticWorkload::new(nodes, params.clone(), seed ^ 0xA5))
            }
            WorkloadSpec::Script(script) => Box::new(script.clone()),
            WorkloadSpec::Scenario(name) => {
                catalog::build(name, nodes, seed ^ 0xA5).expect("validated scenario name")
            }
            WorkloadSpec::Trace(trace) => {
                Box::new(TraceWorkload::from_trace(trace).expect("validated trace"))
            }
            WorkloadSpec::TraceFile { path, .. } => {
                // The header was validated when the path was configured; a
                // file that vanished or rotted since is an environment
                // failure, kept loud like the capture-side panics.
                let file = std::fs::File::open(path)
                    .unwrap_or_else(|e| panic!("trace file {}: {e}", path.display()));
                let reader = TraceReader::new(std::io::BufReader::new(file))
                    .unwrap_or_else(|e| panic!("trace file {}: {e}", path.display()));
                Box::new(StreamingTraceWorkload::new(reader))
            }
            WorkloadSpec::Factory(f) => f(nodes, seed),
        }
    }
}

/// The interconnect half of a [`SimBuilder`] configuration: topology,
/// endpoint bandwidth sweep, broadcast cost and latency jitter — the
/// knobs that describe the *network*, grouped so a campaign can carry
/// them around as one value and hand them to [`SimBuilder::fabric`].
///
/// ```
/// use bash::{FabricSpec, TopologyKind};
///
/// let spec = FabricSpec::new(TopologyKind::Mesh2D).bandwidth_mbps(800);
/// ```
#[derive(Debug, Clone)]
pub struct FabricSpec {
    /// Interconnect topology. The default, [`TopologyKind::Crossbar`], is
    /// the paper's contended-endpoint crossbar; every other kind routes
    /// messages hop-by-hop through the fabric engine with
    /// per-directed-link contention and per-link stats in
    /// [`RunStats::links`](bash_sim::RunStats).
    pub topology: TopologyKind,
    /// Endpoint link bandwidths in MB/s: the sweep axis of
    /// [`SimBuilder::run_sweep`] (the paper's x-axis);
    /// [`SimBuilder::run`] uses the first point.
    pub bandwidths: Vec<u64>,
    /// Bandwidth multiplier for full broadcasts (4 in Figure 11).
    pub broadcast_cost: u32,
    /// Explicit message-latency jitter forced on *every* run, overriding
    /// the multi-seed perturbation default.
    pub jitter: Option<Jitter>,
}

impl Default for FabricSpec {
    fn default() -> Self {
        FabricSpec {
            topology: TopologyKind::Crossbar,
            bandwidths: vec![1600],
            broadcast_cost: 1,
            jitter: None,
        }
    }
}

impl FabricSpec {
    /// A spec for `topology` with the paper-default 1600 MB/s links.
    pub fn new(topology: TopologyKind) -> Self {
        FabricSpec {
            topology,
            ..FabricSpec::default()
        }
    }

    /// Sets a single endpoint link bandwidth in MB/s.
    pub fn bandwidth_mbps(mut self, mbps: u64) -> Self {
        self.bandwidths = vec![mbps];
        self
    }

    /// Sets the bandwidth sweep.
    pub fn bandwidths(mut self, mbps: impl IntoIterator<Item = u64>) -> Self {
        self.bandwidths = mbps.into_iter().collect();
        self
    }

    /// Sets the broadcast bandwidth multiplier.
    pub fn broadcast_cost(mut self, multiplier: u32) -> Self {
        self.broadcast_cost = multiplier;
        self
    }

    /// Forces an explicit latency jitter on every run.
    pub fn jitter(mut self, jitter: Jitter) -> Self {
        self.jitter = Some(jitter);
        self
    }
}

/// The robustness half of a [`SimBuilder`] configuration: deterministic
/// link faults, the quiescence watchdog, and the sweep executor's panic
/// isolation. Handed to [`SimBuilder::robustness`] as one value, with the
/// cross-field rules checked together at
/// [`validate`](SimBuilder::validate) time (an unprotected lossy plane
/// without a watchdog is rejected unless explicitly allowed).
#[derive(Debug, Clone)]
pub struct RobustnessSpec {
    /// Deterministic link faults (drops, corruption, delay, outages)
    /// injected into the routed fabric. With [`FaultPlaneConfig::lossy`]
    /// (transport enabled) the reliable-delivery layer retransmits until
    /// every message lands; with [`FaultPlaneConfig::unprotected`]
    /// messages are simply lost. Requires a fabric topology.
    pub fault_plane: Option<FaultPlaneConfig>,
    /// Quiescence watchdog: a run exceeding the budget is cut off with a
    /// structured [`bash_sim::WedgeDiagnostic`] instead of spinning
    /// forever; in a sweep the wedge becomes a [`PointError`] row.
    pub watchdog: Option<WatchdogBudget>,
    /// How many times the sweep executor re-attempts a grid point whose
    /// simulation panicked (for environmental flakes) before recording a
    /// `kind=panicked` [`PointError`] row. Default 1.
    pub panic_retries: u32,
    /// Opts out of [`BuildError::UnprotectedLossyNeedsWatchdog`]: run an
    /// unprotected lossy plane with no watchdog budget, relying on the
    /// drained-queue stall check alone to diagnose the expected wedges.
    pub allow_unprotected_wedges: bool,
}

impl Default for RobustnessSpec {
    fn default() -> Self {
        RobustnessSpec {
            fault_plane: None,
            watchdog: None,
            panic_retries: 1,
            allow_unprotected_wedges: false,
        }
    }
}

impl RobustnessSpec {
    /// The default spec: no faults, no watchdog, one panic retry.
    pub fn new() -> Self {
        RobustnessSpec::default()
    }

    /// Injects deterministic link faults.
    pub fn fault_plane(mut self, plane: FaultPlaneConfig) -> Self {
        self.fault_plane = Some(plane);
        self
    }

    /// Arms the quiescence watchdog.
    pub fn watchdog(mut self, budget: WatchdogBudget) -> Self {
        self.watchdog = Some(budget);
        self
    }

    /// Sets the panic retry budget of the sweep executor.
    pub fn panic_retries(mut self, retries: u32) -> Self {
        self.panic_retries = retries;
        self
    }

    /// Allows an unprotected lossy plane to run without a watchdog.
    pub fn allow_unprotected_wedges(mut self, on: bool) -> Self {
        self.allow_unprotected_wedges = on;
        self
    }
}

/// The observability half of a [`SimBuilder`] configuration: what a run
/// records beyond its [`RunReport`]. Handed to [`SimBuilder::capture`]
/// as one value.
#[derive(Debug, Clone, Default)]
pub struct CaptureSpec {
    /// Captures the op stream of the first grid point (first bandwidth,
    /// seed 0) and writes it here in the compact binary form when the run
    /// finishes; feed the file back through [`SimBuilder::trace_in_path`]
    /// to replay it under any protocol, bandwidth, or thread count. The
    /// run **panics** if the path cannot be opened for writing (probed up
    /// front) or the capture turns out unusable — capture failures are
    /// programmer errors, not configuration errors.
    pub ops_out: Option<PathBuf>,
    /// Captures **every** (bandwidth × seed) grid point into a trace
    /// bundle next to [`ops_out`](Self::ops_out) (with a `.b<mbps>.s<seed>`
    /// infix), not just the first. Requires `ops_out`;
    /// [`SimBuilder::validate`] rejects the combination otherwise.
    pub all_points: bool,
    /// Stamps every captured op with its issue→complete latency, so the
    /// captures are **completion-bearing** traces — the input the
    /// differential latency pass ([`bash_tester::differential_trace`])
    /// summarizes per protocol. Off by default: reference-stream goldens
    /// stay lean and timing-free.
    pub completions: bool,
    /// Records the mean policy-counter trace (one point per adaptive
    /// sampling window) of the first seed into
    /// [`RunReport::policy_trace`].
    pub policy: bool,
}

impl CaptureSpec {
    /// The default spec: capture nothing.
    pub fn new() -> Self {
        CaptureSpec::default()
    }

    /// Captures the first grid point's op stream to `path`.
    pub fn ops_to(mut self, path: impl Into<PathBuf>) -> Self {
        self.ops_out = Some(path.into());
        self
    }

    /// Captures every grid point, not just the first.
    pub fn all_points(mut self, on: bool) -> Self {
        self.all_points = on;
        self
    }

    /// Stamps captured ops with completion latencies.
    pub fn completions(mut self, on: bool) -> Self {
        self.completions = on;
        self
    }

    /// Records the adaptive policy trace into the report.
    pub fn policy(mut self, on: bool) -> Self {
        self.policy = on;
        self
    }
}

/// The two-level-hierarchy half of a [`SimBuilder`] configuration:
/// nodes grouped into snooping clusters under a directory spine sharded
/// across address-interleaved banks. Handed to
/// [`SimBuilder::hierarchy`] as one value; both knobs must divide the
/// node count ([`SimBuilder::validate`] rejects misfits).
///
/// Under a hierarchy every protocol personality rides the hierarchical
/// BASH engine: Snooping cluster-casts every request, Directory
/// dualcasts to the spine bank, and BASH chooses per cluster via the
/// paper's adaptive mechanism fed with cluster-mean utilization. See
/// `docs/HIERARCHY.md`.
///
/// ```
/// use bash::{HierarchySpec, ProtocolKind, SimBuilder};
///
/// let b = SimBuilder::new(ProtocolKind::Bash)
///     .nodes(64)
///     .hierarchy(HierarchySpec::new(8, 4));
/// assert!(b.validate().is_err()); // no workload yet — but the shape fits
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchySpec {
    /// Nodes per snooping cluster (≥ 1, must divide the node count).
    pub cluster_size: u16,
    /// Address-interleaved directory-spine banks (≥ 1, must divide the
    /// node count).
    pub banks: u16,
}

impl HierarchySpec {
    /// A hierarchy of `cluster_size`-node clusters under `banks` spine
    /// banks.
    pub fn new(cluster_size: u16, banks: u16) -> Self {
        HierarchySpec {
            cluster_size,
            banks,
        }
    }

    /// Sets the nodes per cluster.
    pub fn cluster_size(mut self, cluster_size: u16) -> Self {
        self.cluster_size = cluster_size;
        self
    }

    /// Sets the directory-spine bank count.
    pub fn banks(mut self, banks: u16) -> Self {
        self.banks = banks;
        self
    }

    /// The coherence-layer shape this spec configures.
    pub fn config(&self) -> HierarchyConfig {
        HierarchyConfig::new(self.cluster_size, self.banks)
    }
}

/// Values set through the deprecated per-field [`SimBuilder`] shims that
/// must survive a later [`SimBuilder::fabric`] replacing the whole spec —
/// without this, `.topology(Mesh2D).fabric(spec)` and
/// `.fabric(spec).topology(Mesh2D)` would disagree.
#[derive(Debug, Clone, Default)]
struct FabricOverrides {
    topology: Option<TopologyKind>,
    broadcast_cost: Option<u32>,
    jitter: Option<Jitter>,
}

impl FabricOverrides {
    fn apply(&self, spec: &mut FabricSpec) {
        if let Some(topology) = self.topology {
            spec.topology = topology;
        }
        if let Some(cost) = self.broadcast_cost {
            spec.broadcast_cost = cost;
        }
        if let Some(jitter) = &self.jitter {
            spec.jitter = Some(jitter.clone());
        }
    }
}

/// Shim values that must survive [`SimBuilder::robustness`] (see
/// [`FabricOverrides`]).
#[derive(Debug, Clone, Default)]
struct RobustnessOverrides {
    fault_plane: Option<FaultPlaneConfig>,
    watchdog: Option<WatchdogBudget>,
}

impl RobustnessOverrides {
    fn apply(&self, spec: &mut RobustnessSpec) {
        if let Some(plane) = &self.fault_plane {
            spec.fault_plane = Some(plane.clone());
        }
        if let Some(budget) = self.watchdog {
            spec.watchdog = Some(budget);
        }
    }
}

/// Shim values that must survive [`SimBuilder::capture`] (see
/// [`FabricOverrides`]).
#[derive(Debug, Clone, Default)]
struct CaptureOverrides {
    ops_out: Option<PathBuf>,
    all_points: Option<bool>,
    completions: Option<bool>,
    policy: Option<bool>,
}

impl CaptureOverrides {
    fn apply(&self, spec: &mut CaptureSpec) {
        if let Some(path) = &self.ops_out {
            spec.ops_out = Some(path.clone());
        }
        if let Some(all) = self.all_points {
            spec.all_points = all;
        }
        if let Some(completions) = self.completions {
            spec.completions = completions;
        }
        if let Some(policy) = self.policy {
            spec.policy = policy;
        }
    }
}

/// Fluent configuration of one simulation campaign.
///
/// Defaults mirror [`SystemConfig::paper_default`]: the paper's latencies,
/// cache geometry, adaptive mechanism, retry capacity and seed, with 16
/// nodes at 1600 MB/s. See the crate-level docs for a quickstart.
///
/// Cross-cutting concerns are grouped into typed sub-configs —
/// [`FabricSpec`] ([`fabric`](Self::fabric)), [`RobustnessSpec`]
/// ([`robustness`](Self::robustness)) and [`CaptureSpec`]
/// ([`capture`](Self::capture)) — whose interactions are validated
/// together. The historical per-field setters remain as deprecated shims.
pub struct SimBuilder {
    protocol: ProtocolKind,
    nodes: u16,
    fabric: FabricSpec,
    robustness: RobustnessSpec,
    capture: CaptureSpec,
    hierarchy: Option<HierarchySpec>,
    fabric_overrides: FabricOverrides,
    robustness_overrides: RobustnessOverrides,
    capture_overrides: CaptureOverrides,
    warmup: Duration,
    measure: Duration,
    seeds: u32,
    base_seed: u64,
    perturbation: Duration,
    adaptor: Option<AdaptorConfig>,
    cache: Option<CacheGeometry>,
    retry_capacity: Option<usize>,
    serialize_dram: Option<bool>,
    coverage: bool,
    threads: Option<usize>,
    queue: QueueKind,
    workload: Option<WorkloadSpec>,
}

impl SimBuilder {
    /// Starts a builder for `protocol` with the paper-default system:
    /// 16 nodes, 1600 MB/s links, a 100 µs warmup and 400 µs measurement.
    pub fn new(protocol: ProtocolKind) -> Self {
        SimBuilder {
            protocol,
            nodes: 16,
            fabric: FabricSpec::default(),
            robustness: RobustnessSpec::default(),
            capture: CaptureSpec::default(),
            hierarchy: None,
            fabric_overrides: FabricOverrides::default(),
            robustness_overrides: RobustnessOverrides::default(),
            capture_overrides: CaptureOverrides::default(),
            warmup: Duration::from_ns(100_000),
            measure: Duration::from_ns(400_000),
            seeds: 1,
            base_seed: SystemConfig::paper_default(protocol, 16, 1600).seed,
            perturbation: Duration::from_ns(3),
            adaptor: None,
            cache: None,
            retry_capacity: None,
            serialize_dram: None,
            coverage: false,
            threads: None,
            queue: QueueKind::default(),
            workload: None,
        }
    }

    /// Replaces the whole interconnect configuration (topology, bandwidth
    /// sweep, broadcast cost, jitter) with `spec`. Fields previously set
    /// through the deprecated per-field shims
    /// ([`topology`](Self::topology), [`broadcast_cost`](Self::broadcast_cost),
    /// [`jitter`](Self::jitter)) survive the replacement — setter order
    /// never changes the configuration.
    pub fn fabric(mut self, spec: FabricSpec) -> Self {
        self.fabric = spec;
        self.fabric_overrides.apply(&mut self.fabric);
        self
    }

    /// Replaces the whole robustness configuration (fault plane, watchdog,
    /// panic retries) with `spec`. The cross-field rules — a fault plane
    /// needs a fabric topology; an unprotected lossy plane needs a
    /// watchdog or an explicit opt-out — are checked at
    /// [`validate`](Self::validate) / run time. Fields previously set
    /// through the deprecated [`fault_plane`](Self::fault_plane) /
    /// [`watchdog`](Self::watchdog) shims survive the replacement.
    pub fn robustness(mut self, spec: RobustnessSpec) -> Self {
        self.robustness = spec;
        self.robustness_overrides.apply(&mut self.robustness);
        self
    }

    /// Replaces the whole capture configuration (op-trace output,
    /// completion stamps, policy trace) with `spec`. Fields previously
    /// set through the deprecated [`trace_out`](Self::trace_out) /
    /// [`trace_out_all_points`](Self::trace_out_all_points) /
    /// [`capture_completions`](Self::capture_completions) /
    /// [`trace_policy`](Self::trace_policy) shims survive the
    /// replacement.
    pub fn capture(mut self, spec: CaptureSpec) -> Self {
        self.capture = spec;
        self.capture_overrides.apply(&mut self.capture);
        self
    }

    /// Groups the nodes into a two-level hierarchy: snooping clusters of
    /// [`HierarchySpec::cluster_size`] nodes under a directory spine
    /// sharded across [`HierarchySpec::banks`] address-interleaved
    /// banks. Both counts must divide the node count;
    /// [`validate`](Self::validate) rejects misfits. See
    /// `docs/HIERARCHY.md`.
    pub fn hierarchy(mut self, spec: HierarchySpec) -> Self {
        self.hierarchy = Some(spec);
        self
    }

    /// Returns the system to a flat (single-level) organization.
    pub fn flat(mut self) -> Self {
        self.hierarchy = None;
        self
    }

    /// Switches the protocol.
    pub fn protocol(mut self, protocol: ProtocolKind) -> Self {
        self.protocol = protocol;
        self
    }

    /// Sets the system size in nodes.
    pub fn nodes(mut self, nodes: u16) -> Self {
        self.nodes = nodes;
        self
    }

    /// Sets the interconnect topology.
    #[deprecated(note = "use `.fabric(FabricSpec::new(topology))` (or set it on a FabricSpec)")]
    pub fn topology(mut self, topology: TopologyKind) -> Self {
        self.fabric.topology = topology;
        self.fabric_overrides.topology = Some(topology);
        self
    }

    /// Sets a single endpoint link bandwidth in MB/s (shorthand for the
    /// [`FabricSpec::bandwidth_mbps`] field of [`fabric`](Self::fabric)).
    pub fn bandwidth_mbps(mut self, mbps: u64) -> Self {
        self.fabric.bandwidths = vec![mbps];
        self
    }

    /// Sets the bandwidth sweep for [`run_sweep`](Self::run_sweep) (the
    /// paper's x-axis). [`run`](Self::run) uses the first point.
    pub fn bandwidths(mut self, mbps: impl IntoIterator<Item = u64>) -> Self {
        self.fabric.bandwidths = mbps.into_iter().collect();
        self
    }

    /// Sets the warmup window run before measurement starts.
    pub fn warmup(mut self, warmup: Duration) -> Self {
        self.warmup = warmup;
        self
    }

    /// Sets the warmup window in nanoseconds.
    pub fn warmup_ns(self, ns: u64) -> Self {
        self.warmup(Duration::from_ns(ns))
    }

    /// Sets the measurement window.
    pub fn measure(mut self, measure: Duration) -> Self {
        self.measure = measure;
        self
    }

    /// Sets the measurement window in nanoseconds.
    pub fn measure_ns(self, ns: u64) -> Self {
        self.measure(Duration::from_ns(ns))
    }

    /// Sets both warmup and measurement windows at once.
    pub fn plan(mut self, warmup: Duration, measure: Duration) -> Self {
        self.warmup = warmup;
        self.measure = measure;
        self
    }

    /// Aggregates every report over `seeds` perturbed runs (the paper's
    /// methodology: deterministic runs perturbed with small random request
    /// delays, mean ± stddev reported). With more than one seed, runs
    /// after the first get a small injection-latency jitter; see
    /// [`perturbation`](Self::perturbation).
    pub fn seeds(mut self, seeds: u32) -> Self {
        self.seeds = seeds;
        self
    }

    /// Sets the base RNG seed. Run `s` uses `base + s * 7919`.
    pub fn seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Sets the maximum injection delay used to perturb multi-seed runs
    /// (default 3 ns, the experiments' historical value).
    pub fn perturbation(mut self, max_delay: Duration) -> Self {
        self.perturbation = max_delay;
        self
    }

    /// Forces an explicit message-latency jitter on *every* run,
    /// overriding the multi-seed perturbation default.
    #[deprecated(note = "use `.fabric(...)` with `FabricSpec::jitter`")]
    pub fn jitter(mut self, jitter: Jitter) -> Self {
        self.fabric.jitter = Some(jitter.clone());
        self.fabric_overrides.jitter = Some(jitter);
        self
    }

    /// Sets the bandwidth multiplier for full broadcasts (4 in Figure 11).
    #[deprecated(note = "use `.fabric(...)` with `FabricSpec::broadcast_cost`")]
    pub fn broadcast_cost(mut self, multiplier: u32) -> Self {
        self.fabric.broadcast_cost = multiplier;
        self.fabric_overrides.broadcast_cost = Some(multiplier);
        self
    }

    /// Overrides the adaptive mechanism's configuration (BASH only).
    pub fn adaptor(mut self, adaptor: AdaptorConfig) -> Self {
        self.adaptor = Some(adaptor);
        self
    }

    /// Overrides the L2 cache geometry.
    pub fn cache(mut self, geometry: CacheGeometry) -> Self {
        self.cache = Some(geometry);
        self
    }

    /// Overrides the BASH home retry-buffer capacity.
    pub fn retry_capacity(mut self, capacity: usize) -> Self {
        self.retry_capacity = Some(capacity);
        self
    }

    /// Serializes DRAM accesses (the memory-occupancy ablation).
    pub fn serialize_dram(mut self, on: bool) -> Self {
        self.serialize_dram = Some(on);
        self
    }

    /// Records transition coverage (Table 1 runs).
    pub fn coverage(mut self, on: bool) -> Self {
        self.coverage = on;
        self
    }

    /// Records the mean policy-counter trace (one point per adaptive
    /// sampling window) of the first seed into
    /// [`RunReport::policy_trace`].
    #[deprecated(note = "use `.capture(...)` with `CaptureSpec::policy`")]
    pub fn trace_policy(mut self, on: bool) -> Self {
        self.capture.policy = on;
        self.capture_overrides.policy = Some(on);
        self
    }

    /// Uses the paper's locking microbenchmark: `locks` mostly-uncontended
    /// locks with `think` time between release and the next acquire.
    pub fn locking_microbench(mut self, locks: u64, think: Duration) -> Self {
        self.workload = Some(WorkloadSpec::Micro { locks, think });
        self
    }

    /// Uses one of the synthetic macro workloads (Table 2 stand-ins).
    pub fn synthetic(mut self, params: WorkloadParams) -> Self {
        self.workload = Some(WorkloadSpec::Macro(params));
        self
    }

    /// Uses a fixed, deterministic script (cloned per seed).
    pub fn script(mut self, script: ScriptWorkload) -> Self {
        self.workload = Some(WorkloadSpec::Script(script));
        self
    }

    /// Uses a named scenario from the workload catalog (e.g.
    /// `"migratory"`, `"producer-consumer"`, `"zipf"`; see
    /// [`catalog::names`]). Unknown names are rejected at
    /// [`validate`](Self::validate) / run time.
    pub fn scenario(mut self, name: impl Into<String>) -> Self {
        self.workload = Some(WorkloadSpec::Scenario(name.into()));
        self
    }

    /// Replays a recorded reference trace instead of generating a
    /// workload. Adopts the trace's node count (override it afterwards at
    /// your peril: [`validate`](Self::validate) insists they match, since
    /// trace records address capture-time nodes).
    pub fn trace_in(mut self, trace: Trace) -> Self {
        self.nodes = trace.nodes;
        self.workload = Some(WorkloadSpec::Trace(Arc::new(trace)));
        self
    }

    /// Replays a trace **file** instead of generating a workload, decoding
    /// it *streaming*: every run of the grid re-opens `path` and pulls
    /// records through a [`TraceReader`] on demand, so a multi-GB trace
    /// never has to fit in memory (unlike [`trace_in`](Self::trace_in),
    /// which buffers the whole record list). The file header is read (and
    /// the node count adopted) here; a missing or corrupt header is
    /// reported immediately.
    ///
    /// # Errors
    ///
    /// [`BuildError::TraceUnreadable`] when `path` cannot be opened or its
    /// header fails to decode.
    pub fn trace_in_path(mut self, path: impl Into<PathBuf>) -> Result<Self, BuildError> {
        let path = path.into();
        let unreadable = |error: String, path: &PathBuf| BuildError::TraceUnreadable {
            path: path.clone(),
            error,
        };
        let file = std::fs::File::open(&path).map_err(|e| unreadable(e.to_string(), &path))?;
        let reader = TraceReader::new(std::io::BufReader::new(file))
            .map_err(|e| unreadable(e.to_string(), &path))?;
        let nodes = reader.header().nodes;
        self.nodes = nodes;
        self.workload = Some(WorkloadSpec::TraceFile { path, nodes });
        Ok(self)
    }

    /// Captures the op stream of the first grid point (first bandwidth,
    /// seed 0) and writes it to `path` in the compact binary form when the
    /// run finishes. Capture once, then feed the file back through
    /// [`trace_in`](Self::trace_in) to replay it under any protocol,
    /// bandwidth, or thread count. To capture **every** (bandwidth × seed)
    /// grid point instead of just the first, add
    /// [`trace_out_all_points`](Self::trace_out_all_points). See
    /// [`try_run_captured`](Self::try_run_captured) for what the capture
    /// covers on multi-seed runs.
    ///
    /// The run (including `try_run`/`try_run_sweep`) **panics** if `path`
    /// cannot be opened for writing (probed up front, before any
    /// simulation runs) or the capture turns out unusable (the workload
    /// yielded no ops) — capture failures are programmer errors, not
    /// configuration errors, so they are not `BuildError`s.
    #[deprecated(note = "use `.capture(...)` with `CaptureSpec::ops_to`")]
    pub fn trace_out(mut self, path: impl Into<PathBuf>) -> Self {
        let path = path.into();
        self.capture.ops_out = Some(path.clone());
        self.capture_overrides.ops_out = Some(path);
        self
    }

    /// Stamps every captured op with its issue→complete latency, so
    /// [`trace_out`](Self::trace_out) /
    /// [`run_captured`](Self::run_captured) produce **completion-bearing**
    /// traces — the input the differential latency pass
    /// ([`bash_tester::differential_trace`]) summarizes per protocol.
    /// Off by default: reference-stream goldens stay lean and
    /// timing-free.
    #[deprecated(note = "use `.capture(...)` with `CaptureSpec::completions`")]
    pub fn capture_completions(mut self, on: bool) -> Self {
        self.capture.completions = on;
        self.capture_overrides.completions = Some(on);
        self
    }

    /// Captures **every** (bandwidth × seed) grid point of the run into a
    /// trace bundle, not just the first. Each point is written next to the
    /// [`trace_out`](Self::trace_out) path with a `.b<mbps>.s<seed>`
    /// infix — `traces/run.trace` becomes `traces/run.b400.s0.trace`,
    /// `traces/run.b400.s1.trace`, … — and the first grid point is still
    /// written to the plain path itself. Requires `trace_out`;
    /// [`validate`](Self::validate) rejects the combination otherwise.
    #[deprecated(note = "use `.capture(...)` with `CaptureSpec::all_points`")]
    pub fn trace_out_all_points(mut self, on: bool) -> Self {
        self.capture.all_points = on;
        self.capture_overrides.all_points = Some(on);
        self
    }

    /// Uses an arbitrary workload factory, called once per run with the
    /// system size and that run's seed. The factory must be `Send + Sync`
    /// because runs of a sweep may build their workloads on worker threads.
    pub fn workload_with(
        mut self,
        factory: impl Fn(u16, u64) -> BoxedWorkload + Send + Sync + 'static,
    ) -> Self {
        self.workload = Some(WorkloadSpec::Factory(Box::new(factory)));
        self
    }

    /// Injects deterministic link faults (drops, corruption, delay,
    /// outages) into the routed fabric, per the plane's per-directed-link
    /// profiles. With [`FaultPlaneConfig::lossy`] (transport enabled) the
    /// reliable-delivery layer retransmits until every message lands and
    /// results stay byte-identical to the fault-free run; with
    /// [`FaultPlaneConfig::unprotected`] messages are simply lost —
    /// combine that with [`watchdog`](Self::watchdog) to turn the
    /// resulting wedges into structured [`PointError`] rows. Requires a
    /// fabric topology ([`validate`](Self::validate) rejects the
    /// crossbar, which has no links).
    #[deprecated(note = "use `.robustness(...)` with `RobustnessSpec::fault_plane`")]
    pub fn fault_plane(mut self, plane: FaultPlaneConfig) -> Self {
        self.robustness.fault_plane = Some(plane.clone());
        self.robustness_overrides.fault_plane = Some(plane);
        self
    }

    /// Arms the quiescence watchdog: a run exceeding the budget (events
    /// processed or virtual time) is cut off with a structured
    /// [`bash_sim::WedgeDiagnostic`] instead of spinning forever. In a
    /// sweep the wedge becomes a [`PointError`] row of the report; the
    /// other grid points keep running.
    #[deprecated(note = "use `.robustness(...)` with `RobustnessSpec::watchdog`")]
    pub fn watchdog(mut self, budget: WatchdogBudget) -> Self {
        self.robustness.watchdog = Some(budget);
        self.robustness_overrides.watchdog = Some(budget);
        self
    }

    /// Caps the number of worker threads used to execute the
    /// (bandwidth × seed) grid of [`run`](Self::run) /
    /// [`run_sweep`](Self::run_sweep).
    ///
    /// Defaults to [`available_parallelism`](std::thread::available_parallelism)
    /// (`0` restores that default); `1` forces fully sequential execution
    /// on the calling thread. The thread count **never changes results**:
    /// every grid point is an independent, self-seeded simulation, and
    /// reports are assembled in grid order — `.threads(8)` is byte-identical
    /// to `.threads(1)`.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = if threads == 0 { None } else { Some(threads) };
        self
    }

    /// Selects the kernel's event-queue implementation — an engine A/B
    /// knob, not a modeling one. The default calendar queue pops in
    /// exactly the binary heap's order, so reports are byte-identical
    /// either way; switch to [`QueueKind::Heap`] to measure the
    /// difference.
    pub fn queue(mut self, queue: QueueKind) -> Self {
        self.queue = queue;
        self
    }

    /// Checks the configuration without running anything.
    pub fn validate(&self) -> Result<(), BuildError> {
        if self.seeds == 0 {
            return Err(BuildError::ZeroSeeds);
        }
        if self.measure.is_zero() {
            return Err(BuildError::EmptyMeasurement);
        }
        self.check_config()?;
        if self.workload.is_none() {
            return Err(BuildError::MissingWorkload);
        }
        Ok(())
    }

    /// Every plan-independent configuration check — system shape, the
    /// grouped specs, and their cross-field interactions — consolidated
    /// in one place and shared by [`validate`](Self::validate) (full
    /// campaigns) and [`check_runnable`](Self::check_runnable) (plan-less
    /// entry points like [`build_system`](Self::build_system)).
    fn check_config(&self) -> Result<(), BuildError> {
        if self.nodes == 0 {
            return Err(BuildError::ZeroNodes);
        }
        if self.fabric.bandwidths.is_empty() {
            return Err(BuildError::EmptySweep);
        }
        if self.fabric.bandwidths.contains(&0) {
            return Err(BuildError::ZeroBandwidth);
        }
        if self.fabric.broadcast_cost < 1 {
            return Err(BuildError::BadBroadcastCost);
        }
        if self.retry_capacity == Some(0) {
            return Err(BuildError::ZeroRetryCapacity);
        }
        if let Some(g) = self.cache {
            if g.sets == 0 || g.ways == 0 {
                return Err(BuildError::BadCacheGeometry);
            }
        }
        if let Some(h) = &self.hierarchy {
            if h.cluster_size == 0 {
                return Err(BuildError::ZeroClusterSize);
            }
            if h.banks == 0 {
                return Err(BuildError::ZeroHierarchyBanks);
            }
            if !self.nodes.is_multiple_of(h.cluster_size) {
                return Err(BuildError::ClusterSizeMismatch {
                    cluster_size: h.cluster_size,
                    nodes: self.nodes,
                });
            }
            if !self.nodes.is_multiple_of(h.banks) {
                return Err(BuildError::BankCountMismatch {
                    banks: h.banks,
                    nodes: self.nodes,
                });
            }
        }
        if self.capture.all_points && self.capture.ops_out.is_none() {
            return Err(BuildError::AllPointsWithoutTraceOut);
        }
        if let Some(plane) = &self.robustness.fault_plane {
            if self.fabric.topology == TopologyKind::Crossbar {
                return Err(BuildError::FaultPlaneNeedsFabric);
            }
            if plane.breaks_delivery()
                && self.robustness.watchdog.is_none()
                && !self.robustness.allow_unprotected_wedges
            {
                return Err(BuildError::UnprotectedLossyNeedsWatchdog);
            }
        }
        if let Some(spec) = &self.workload {
            self.check_spec(spec)?;
        }
        Ok(())
    }

    /// The spec checks `WorkloadSpec::build` relies on (shared by
    /// [`validate`](Self::validate) and [`build_system`](Self::build_system)).
    fn check_spec(&self, spec: &WorkloadSpec) -> Result<(), BuildError> {
        match spec {
            WorkloadSpec::Scenario(name) if catalog::find(name).is_none() => {
                Err(BuildError::UnknownScenario(name.clone()))
            }
            WorkloadSpec::Trace(trace) if trace.nodes != self.nodes => {
                Err(BuildError::TraceNodeMismatch {
                    trace: trace.nodes,
                    nodes: self.nodes,
                })
            }
            WorkloadSpec::TraceFile { nodes, .. } if *nodes != self.nodes => {
                Err(BuildError::TraceNodeMismatch {
                    trace: *nodes,
                    nodes: self.nodes,
                })
            }
            _ => Ok(()),
        }
    }

    /// The `SystemConfig` run `seed_index` would use at `mbps` — the
    /// paper defaults plus every builder override.
    pub fn config(&self, mbps: u64, seed_index: u32) -> SystemConfig {
        let mut cfg = SystemConfig::paper_default(self.protocol, self.nodes, mbps)
            .with_topology(self.fabric.topology)
            .with_broadcast_cost(self.fabric.broadcast_cost)
            .with_queue(self.queue)
            .with_seed(self.base_seed.wrapping_add(seed_index as u64 * 7919));
        if let Some(h) = &self.hierarchy {
            cfg = cfg.with_hierarchy(h.config());
        }
        if let Some(adaptor) = &self.adaptor {
            cfg = cfg.with_adaptor(adaptor.clone());
        }
        if let Some(geometry) = self.cache {
            cfg = cfg.with_cache(geometry);
        }
        if let Some(capacity) = self.retry_capacity {
            cfg.retry_capacity = capacity;
        }
        if let Some(serialize) = self.serialize_dram {
            cfg.serialize_dram = serialize;
        }
        if let Some(plane) = &self.robustness.fault_plane {
            cfg = cfg.with_fault_plane(plane.clone());
        }
        if let Some(budget) = self.robustness.watchdog {
            cfg = cfg.with_watchdog(budget);
        }
        if self.coverage {
            cfg = cfg.with_coverage();
        }
        if let Some(jitter) = &self.fabric.jitter {
            cfg = cfg.with_jitter(jitter.clone());
        } else if self.seeds > 1 {
            // Perturbation methodology: a small random injection delay per
            // request, seeded per run so every report is reproducible.
            cfg = cfg.with_jitter(Jitter::Uniform {
                injection_max: self.perturbation,
                traversal_max: Duration::ZERO,
                seed: 0x9E37u64.wrapping_add(seed_index as u64),
            });
        }
        cfg
    }

    /// Builds a primed [`System`] for the first bandwidth point and base
    /// seed without running it — the escape hatch for callers that drive
    /// time themselves (`run_until`, `run_to_idle`, traces).
    pub fn build_system(&self) -> Result<System<BoxedWorkload>, BuildError> {
        let spec = self.check_runnable()?;
        let cfg = self.config(self.fabric.bandwidths[0], 0);
        let workload = spec.build(self.nodes, cfg.seed);
        Ok(System::new(cfg, workload))
    }

    /// The checks shared by every plan-less entry point
    /// ([`build_system`](Self::build_system), [`try_verify`](Self::try_verify)):
    /// a system can be built without a measurement plan; reject everything
    /// `System::new` itself would panic on, plus a missing workload.
    fn check_runnable(&self) -> Result<&WorkloadSpec, BuildError> {
        self.check_config()?;
        self.workload.as_ref().ok_or(BuildError::MissingWorkload)
    }

    /// Runs the configured workload through the verification harness:
    /// the builder's protocol, node count, first bandwidth point, seed,
    /// and cache/jitter overrides, with the generalized value oracle,
    /// quiescence check and structural invariant sweep enabled. Endless
    /// workloads are capped at `ops_per_node` operations per node so the
    /// run reaches quiescence; a [`trace_in`](Self::trace_in) replay
    /// ignores the cap and always runs the whole trace (it is the
    /// reproduction path for captured failures).
    ///
    /// Unlike [`run`](Self::run), this ignores the measurement plan: a
    /// verification run always executes to idle and sweeps invariants at
    /// quiescence. The returned report carries the instrumented op trace,
    /// ready for [`tester::minimize_trace`](bash_tester::minimize_trace)
    /// if the run failed.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] when the configuration is invalid.
    pub fn try_verify(&self, ops_per_node: u64) -> Result<bash_tester::VerifyReport, BuildError> {
        let spec = self.check_runnable()?;
        let cfg = self.config(self.fabric.bandwidths[0], 0);
        let mut vcfg = bash_tester::VerifyConfig::new(self.protocol, cfg.seed);
        vcfg.nodes = self.nodes;
        vcfg.link_mbps = self.fabric.bandwidths[0];
        vcfg.topology = self.fabric.topology;
        vcfg.ops_per_node = ops_per_node;
        if self.fabric.jitter.is_some() {
            vcfg.jitter = self.fabric.jitter.clone();
        }
        if let Some(geometry) = self.cache {
            vcfg.cache = geometry;
        }
        vcfg.fault_plane = self.robustness.fault_plane.clone();
        vcfg.watchdog = self.robustness.watchdog;
        vcfg.hierarchy = self.hierarchy.map(|h| h.config());
        if let WorkloadSpec::Trace(trace) = spec {
            // A replay must reproduce the whole captured stream: the
            // trace's own length, not the op cap, bounds the run.
            return Ok(bash_tester::run_verify_trace(&vcfg, trace));
        }
        if let WorkloadSpec::TraceFile { path, .. } = spec {
            // Verification re-captures and may minimize, so it wants the
            // whole trace in hand; load it once here.
            let trace = Trace::read_from(path).map_err(|e| BuildError::TraceUnreadable {
                path: path.clone(),
                error: e.to_string(),
            })?;
            return Ok(bash_tester::run_verify_trace(&vcfg, &trace));
        }
        let workload = spec.build(self.nodes, cfg.seed);
        Ok(bash_tester::run_verify(&vcfg, workload))
    }

    /// Runs the verification harness (see [`try_verify`](Self::try_verify)).
    ///
    /// # Panics
    ///
    /// Panics when the configuration is invalid.
    pub fn verify(&self, ops_per_node: u64) -> bash_tester::VerifyReport {
        self.try_verify(ops_per_node)
            .expect("invalid SimBuilder configuration")
    }

    /// Runs the first bandwidth point, aggregating over the configured
    /// seeds (in parallel across seeds when more than one thread is
    /// available).
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] when the configuration is invalid.
    pub fn try_run(&self) -> Result<RunReport, BuildError> {
        self.validate()?;
        let bandwidths = &self.fabric.bandwidths[..1];
        Ok(self
            .run_grid(bandwidths, self.capture.ops_out.is_some())
            .0
            .pop()
            .expect("one bandwidth point"))
    }

    /// Runs the first bandwidth point, aggregating over the configured
    /// seeds.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is invalid; use
    /// [`try_run`](Self::try_run) to handle errors.
    pub fn run(&self) -> RunReport {
        self.try_run().expect("invalid SimBuilder configuration")
    }

    /// Runs every configured bandwidth point in order, one report each.
    ///
    /// The full (bandwidth × seed) grid is fanned out across worker
    /// threads (see [`threads`](Self::threads)); results are collected
    /// back in deterministic grid order, so the reports are identical to a
    /// sequential run.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] when the configuration is invalid.
    pub fn try_run_sweep(&self) -> Result<Vec<RunReport>, BuildError> {
        self.validate()?;
        Ok(self
            .run_grid(&self.fabric.bandwidths, self.capture.ops_out.is_some())
            .0)
    }

    /// Runs every configured bandwidth point in order, one report each
    /// (in parallel; see [`try_run_sweep`](Self::try_run_sweep)).
    ///
    /// # Panics
    ///
    /// Panics when the configuration is invalid; use
    /// [`try_run_sweep`](Self::try_run_sweep) to handle errors.
    pub fn run_sweep(&self) -> Vec<RunReport> {
        self.try_run_sweep()
            .expect("invalid SimBuilder configuration")
    }

    /// Runs the first bandwidth point and also returns the reference
    /// trace captured from its first seed — the programmatic form of
    /// [`trace_out`](Self::trace_out). Feed the trace back through
    /// [`trace_in`](Self::trace_in) (same plan and config) and the replay
    /// reproduces the returned report byte-for-byte, at any thread count.
    ///
    /// The byte-for-byte contract holds for single-seed runs (the
    /// default). With [`seeds`](Self::seeds) `> 1`, only seed 0's stream
    /// is captured: the live report aggregates a *distinct* generated
    /// stream per seed, while a replay feeds every seed the same recorded
    /// stream (under the usual per-seed injection perturbation), so the
    /// aggregates differ.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] when the configuration is invalid.
    pub fn try_run_captured(&self) -> Result<(RunReport, Trace), BuildError> {
        self.validate()?;
        let (mut reports, trace) = self.run_grid(&self.fabric.bandwidths[..1], true);
        Ok((
            reports.pop().expect("one bandwidth point"),
            trace.expect("capture ran (did the first grid point wedge or panic?)"),
        ))
    }

    /// Runs the first bandwidth point and returns the report plus the
    /// captured trace (see [`try_run_captured`](Self::try_run_captured)).
    ///
    /// # Panics
    ///
    /// Panics when the configuration is invalid.
    pub fn run_captured(&self) -> (RunReport, Trace) {
        self.try_run_captured()
            .expect("invalid SimBuilder configuration")
    }

    /// Executes one (bandwidth, seed) grid point: build, warm up, measure.
    /// A watchdog trip surfaces as a [`PointError`] instead of spinning.
    fn run_point(
        &self,
        mbps: u64,
        seed_index: u32,
        capture: bool,
    ) -> Result<PointResult, PointError> {
        let spec = self.workload.as_ref().expect("validated");
        let mut cfg = self.config(mbps, seed_index);
        if capture {
            cfg = if self.capture.completions {
                cfg.with_capture_completions()
            } else {
                cfg.with_capture()
            };
        }
        let workload = spec.build(self.nodes, cfg.seed);
        let mut sys = System::new(cfg, workload);
        let trace = self.capture.policy && seed_index == 0;
        if trace {
            sys.enable_policy_trace();
        }
        let measured = (|| -> Result<RunStats, RunError> {
            sys.try_run_until(Time::ZERO + self.warmup)?;
            sys.begin_measurement();
            sys.try_finish(Time::ZERO + self.warmup + self.measure)
        })();
        let stats = match measured {
            Ok(stats) => stats,
            Err(err) => {
                // A wedge is deterministic, so one attempt is definitive.
                return Err(PointError {
                    seed_index,
                    attempts: 1,
                    kind: PointErrorKind::Wedged,
                    message: err.to_string(),
                });
            }
        };
        let policy_trace = if trace {
            sys.policy_trace().map(|t| t.to_vec())
        } else {
            None
        };
        Ok(PointResult {
            stats,
            policy_trace,
            captured: sys.take_captured_trace(),
        })
    }

    /// Fans the full (bandwidth × seed) grid out across the thread pool
    /// and folds the results back into per-bandwidth reports in grid
    /// order. Every grid point is an independent simulation with its own
    /// deterministic seeding, so the thread count cannot affect any
    /// reported number — only the wall-clock time.
    ///
    /// With `capture`, the first grid point (first bandwidth, seed 0) also
    /// records its op stream; the trace is returned and, when
    /// [`trace_out`](Self::trace_out) is set, written to disk.
    fn run_grid(&self, bandwidths: &[u64], capture: bool) -> (Vec<RunReport>, Option<Trace>) {
        if let (true, Some(path)) = (capture, &self.capture.ops_out) {
            // Probe the output path before burning the whole grid's
            // compute on it: open-for-append creates a missing file and
            // surfaces an unwritable one, without clobbering any existing
            // trace should the run itself fail.
            std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .unwrap_or_else(|e| panic!("trace_out path {} unwritable: {e}", path.display()));
        }
        let seeds = self.seeds as usize;
        let tasks = bandwidths.len() * seeds;
        let threads = self
            .threads
            .unwrap_or_else(pool::available_threads)
            .min(tasks.max(1));
        let capture_all = capture && self.capture.all_points && self.capture.ops_out.is_some();
        // Panic isolation: a grid point that panics (after the configured
        // retry budget, for environmental flakes) becomes an error row of
        // its report instead of unwinding through the whole sweep. Wedges
        // come back as `Err(PointError)` from `run_point` itself and are
        // never retried.
        let retries = self.robustness.panic_retries;
        let mut results: Vec<Result<PointResult, PointError>> =
            pool::run_indexed_isolated(tasks, threads, retries, |i| {
                self.run_point(
                    bandwidths[i / seeds],
                    (i % seeds) as u32,
                    capture && (i == 0 || capture_all),
                )
            })
            .into_iter()
            .map(|slot| match slot {
                Ok(point) => point,
                Err(panic) => Err(PointError {
                    seed_index: (panic.index % seeds) as u32,
                    attempts: panic.attempts,
                    kind: PointErrorKind::Panicked,
                    message: panic.message,
                }),
            })
            .collect();
        let captured = results[0].as_mut().ok().and_then(|p| p.captured.take());
        if let Some(trace) = &captured {
            // A capture that fails validation (e.g. the workload yielded
            // zero ops) would be unloadable by every decode path; fail at
            // the source instead of persisting a poisoned artifact.
            trace
                .validate()
                .unwrap_or_else(|e| panic!("captured trace is unusable: {e}"));
        }
        if let (Some(path), Some(trace)) = (&self.capture.ops_out, &captured) {
            trace
                .write_to(path)
                .unwrap_or_else(|e| panic!("writing trace to {}: {e}", path.display()));
            if capture_all {
                self.write_point_trace(path, bandwidths[0], 0, trace);
            }
        }
        if capture_all {
            let path = self.capture.ops_out.as_ref().expect("checked above");
            for (i, result) in results.iter_mut().enumerate().skip(1) {
                // A failed point captured nothing; its error row stands in.
                let Ok(point) = result else { continue };
                let trace = point.captured.take().expect("all points captured");
                trace
                    .validate()
                    .unwrap_or_else(|e| panic!("captured trace is unusable: {e}"));
                self.write_point_trace(path, bandwidths[i / seeds], (i % seeds) as u32, &trace);
            }
        }
        let reports = bandwidths
            .iter()
            .map(|&mbps| {
                let mut policy_trace = None;
                let mut runs = Vec::new();
                let mut errors = Vec::new();
                for slot in results.drain(..seeds) {
                    match slot {
                        Ok(mut p) => {
                            if policy_trace.is_none() {
                                policy_trace = p.policy_trace.take();
                            }
                            runs.push(p.stats);
                        }
                        Err(e) => errors.push(e),
                    }
                }
                self.report_for(mbps, runs, errors, policy_trace)
            })
            .collect();
        (reports, captured)
    }

    /// Writes one grid point's captured trace next to the `trace_out`
    /// base path, tagged with its bandwidth and seed index:
    /// `run.trace` → `run.b<mbps>.s<seed>.trace`.
    fn write_point_trace(&self, base: &Path, mbps: u64, seed_index: u32, trace: &Trace) {
        let stem = base
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "trace".to_string());
        let ext = base
            .extension()
            .map(|e| format!(".{}", e.to_string_lossy()))
            .unwrap_or_default();
        let path = base.with_file_name(format!("{stem}.b{mbps}.s{seed_index}{ext}"));
        trace
            .write_to(&path)
            .unwrap_or_else(|e| panic!("writing trace to {}: {e}", path.display()));
    }

    /// Aggregates one bandwidth point's per-seed runs into a report.
    /// Failed seeds contribute error rows instead of samples; when every
    /// seed failed, the metrics degrade to zeros rather than panicking, so
    /// the rest of the sweep still reports.
    fn report_for(
        &self,
        mbps: u64,
        runs: Vec<RunStats>,
        errors: Vec<PointError>,
        policy_trace: Option<Vec<(Time, f64)>>,
    ) -> RunReport {
        let workload_name = runs
            .last()
            .map(|r| r.workload.clone())
            .unwrap_or_else(|| "<all seeds failed>".to_string());
        let metric = |f: &dyn Fn(&RunStats) -> f64| {
            if runs.is_empty() {
                return Metric {
                    mean: 0.0,
                    stddev: 0.0,
                    min: 0.0,
                    max: 0.0,
                };
            }
            Metric::from_samples(&runs.iter().map(f).collect::<Vec<_>>())
        };
        let ops = metric(&|r| r.ops_per_sec());
        let instr = metric(&|r| r.instructions_per_sec());
        // Micro workloads retire no instructions; macro workloads do. Pick
        // the metric the paper plots for each kind.
        let perf = if runs.iter().any(|r| r.retired_instructions > 0) {
            instr
        } else {
            ops
        };
        RunReport {
            protocol: self.protocol,
            workload: workload_name,
            nodes: self.nodes,
            bandwidth_mbps: mbps,
            seeds: self.seeds,
            perf,
            ops_per_sec: ops,
            instructions_per_sec: instr,
            miss_latency_ns: metric(&|r| r.avg_miss_latency_ns),
            link_utilization: metric(&|r| r.link_utilization),
            broadcast_fraction: metric(&|r| r.broadcast_fraction()),
            policy_trace,
            runs,
            errors,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_aggregates() {
        let m = Metric::from_samples(&[1.0, 2.0, 3.0]);
        assert!((m.mean - 2.0).abs() < 1e-12);
        assert!((m.stddev - 1.0).abs() < 1e-12);
        assert_eq!((m.min, m.max), (1.0, 3.0));
    }

    #[test]
    fn single_sample_has_zero_stddev() {
        let m = Metric::from_samples(&[5.0]);
        assert_eq!(m.stddev, 0.0);
        assert_eq!(m.mean, 5.0);
    }

    #[test]
    fn validation_catches_empty_configs() {
        let b = SimBuilder::new(ProtocolKind::Bash);
        assert_eq!(b.validate(), Err(BuildError::MissingWorkload));
        let b = b.locking_microbench(64, Duration::ZERO);
        assert_eq!(b.validate(), Ok(()));
        assert_eq!(b.nodes(0).validate(), Err(BuildError::ZeroNodes));
    }

    #[test]
    fn validation_catches_misfit_hierarchies() {
        let with = |spec| {
            SimBuilder::new(ProtocolKind::Bash)
                .nodes(16)
                .hierarchy(spec)
                .check_config()
        };
        assert_eq!(
            with(HierarchySpec::new(0, 4)),
            Err(BuildError::ZeroClusterSize)
        );
        assert_eq!(
            with(HierarchySpec::new(4, 0)),
            Err(BuildError::ZeroHierarchyBanks)
        );
        assert_eq!(
            with(HierarchySpec::new(3, 4)),
            Err(BuildError::ClusterSizeMismatch {
                cluster_size: 3,
                nodes: 16,
            })
        );
        assert_eq!(
            with(HierarchySpec::new(4, 3)),
            Err(BuildError::BankCountMismatch {
                banks: 3,
                nodes: 16
            })
        );
        assert_eq!(with(HierarchySpec::new(4, 4)), Ok(()));
    }

    #[test]
    fn hierarchy_reaches_the_system_config() {
        let b = SimBuilder::new(ProtocolKind::Snooping)
            .nodes(16)
            .hierarchy(HierarchySpec::new(4, 2));
        let cfg = b.config(1600, 0);
        let h = cfg.hierarchy.expect("hierarchy configured");
        assert_eq!((h.cluster_size, h.banks), (4, 2));
        assert!(b.flat().config(1600, 0).hierarchy.is_none());
    }

    /// The order-dependence regression: a deprecated per-field shim
    /// followed by a grouped-spec setter used to lose the shim's value
    /// (the spec replacement overwrote it), so `.topology(..).fabric(..)`
    /// and `.fabric(..).topology(..)` built different systems.
    #[test]
    #[allow(deprecated)]
    fn shim_then_spec_equals_spec_then_shim() {
        let spec = FabricSpec::new(TopologyKind::Mesh2D).bandwidths([400, 800]);
        let shim_first = SimBuilder::new(ProtocolKind::Bash)
            .broadcast_cost(4)
            .fabric(spec.clone());
        let spec_first = SimBuilder::new(ProtocolKind::Bash)
            .fabric(spec)
            .broadcast_cost(4);
        assert_eq!(shim_first.fabric.broadcast_cost, 4);
        assert_eq!(shim_first.fabric.topology, TopologyKind::Mesh2D);
        assert_eq!(
            shim_first.fabric.broadcast_cost,
            spec_first.fabric.broadcast_cost
        );
        assert_eq!(shim_first.fabric.topology, spec_first.fabric.topology);
        assert_eq!(shim_first.fabric.bandwidths, spec_first.fabric.bandwidths);

        let budget = WatchdogBudget::events(1_000_000);
        let shim_first = SimBuilder::new(ProtocolKind::Bash)
            .watchdog(budget)
            .robustness(RobustnessSpec::new());
        assert_eq!(shim_first.robustness.watchdog, Some(budget));

        let shim_first = SimBuilder::new(ProtocolKind::Bash)
            .trace_policy(true)
            .capture(CaptureSpec::new());
        assert!(shim_first.capture.policy);
    }
}
