//! # bash — the one-stop facade for the Bandwidth Adaptive Snooping
//! reproduction
//!
//! This crate re-exports the whole simulator workspace behind a single
//! import and adds the fluent [`SimBuilder`] entry point: configure a
//! protocol, a system, a workload and a measurement plan, then
//! [`run`](SimBuilder::run) it to get a structured [`RunReport`] —
//! optionally aggregated over several perturbed seeds (the paper's
//! error-bar methodology), or swept across bandwidths with
//! [`run_sweep`](SimBuilder::run_sweep).
//!
//! # Quickstart
//!
//! ```
//! use bash::{ProtocolKind, SimBuilder};
//!
//! let report = SimBuilder::new(ProtocolKind::Bash)
//!     .nodes(8)
//!     .bandwidth_mbps(1600)
//!     .locking_microbench(256, bash::Duration::ZERO)
//!     .warmup_ns(50_000)
//!     .measure_ns(100_000)
//!     .run();
//! assert!(report.runs[0].misses > 0);
//! assert!(report.perf.mean > 0.0);
//! ```
//!
//! Lower-level pieces stay reachable through the re-exported workspace
//! crates ([`kernel`], [`net`], [`coherence`], [`adaptive`], [`workloads`],
//! [`sim`], [`queueing`], [`tester`]) and through the flat re-exports
//! below, so examples and tests never need to depend on more than this one
//! crate.

#![deny(missing_docs)]

/// The bandwidth-adaptive mechanism (utilization + policy counters).
pub use bash_adaptive as adaptive;
/// The three MOSI coherence protocol engines.
pub use bash_coherence as coherence;
/// The discrete-event kernel: time, event queue, RNG, statistics.
pub use bash_kernel as kernel;
/// The interconnect models: the paper's crossbar plus the routed
/// multi-topology fabric.
pub use bash_net as net;
/// The closed queueing model behind Figure 2.
pub use bash_queueing as queueing;
/// The system driver (`System`, `SystemConfig`, `RunStats`).
pub use bash_sim as sim;
/// The randomized protocol tester.
pub use bash_tester as tester;
/// Versioned on-disk reference traces (binary + text, capture/replay).
pub use bash_trace as trace;
/// Workload generators (microbenchmark, synthetic macros, scripts,
/// sharing patterns, the scenario catalog, trace replay).
pub use bash_workloads as workloads;

pub use bash_adaptive::{AdaptorConfig, BandwidthAdaptor, DecisionMode, UtilizationCounter};
pub use bash_coherence::{
    BlockAddr, CacheGeometry, HierarchyConfig, ProcOp, ProtocolKind, TransitionLog,
};
// Kernel internals (the event queue, the deterministic RNG, busy-time
// trackers) stay behind [`kernel`]: the facade's flat namespace carries
// only the vocabulary a simulation user configures or reads back
// (`QueueKind` qualifies — it is a `SystemConfig`/builder knob).
pub use bash_kernel::{Duration, QueueKind, Time};
pub use bash_net::{
    FaultPlaneConfig, FaultStats, Jitter, LinkFaultProfile, NodeId, NodeSet, OrderingMode,
    TopologyKind, TransportConfig,
};
pub use bash_sim::{
    FaultInjection, HierarchyStats, LinkStat, RunError, RunStats, System, SystemConfig,
    WatchdogBudget, WedgeCause, WedgeDiagnostic,
};
pub use bash_tester::{
    differential_trace, minimize_trace, run_random_test, run_verify, run_verify_trace,
    verify_catalog, CheckViolation, DiffMismatch, DifferentialReport, LatencyDiff, LatencySummary,
    MinimizeOutcome, TesterConfig, TesterReport, VerifyConfig, VerifyReport, VerifyVerdict,
};
pub use bash_trace::{
    ChunkIndex, SeekableTrace, Trace, TraceCapture, TraceError, TraceHeader, TraceReader,
    TraceRecord, TraceWriter,
};
pub use bash_workloads::{
    catalog, Completion, LockingMicrobench, PatternKind, PatternParams, PatternWorkload, Scenario,
    ScriptWorkload, StreamingTraceWorkload, SyntheticWorkload, TraceWorkload, WorkItem, Workload,
    WorkloadParams,
};

mod builder;
mod report_text;

pub use builder::{
    BoxedWorkload, BuildError, CaptureSpec, FabricSpec, HierarchySpec, Metric, PointError,
    PointErrorKind, RobustnessSpec, RunReport, SimBuilder,
};
pub use report_text::{sweep_canonical_text, REPORT_TEXT_VERSION};

/// The one-line import for the common workflow: configure a
/// [`SimBuilder`], run it, read the [`RunReport`].
///
/// Pulls in the builder with its three spec groups ([`FabricSpec`],
/// [`RobustnessSpec`], [`CaptureSpec`]), the enums they are configured
/// with, the time vocabulary, and the report types — and nothing else.
/// Anything deeper (the event queue, protocol engines, trace codecs)
/// stays behind the re-exported workspace crates ([`kernel`], [`net`],
/// [`coherence`], ...).
///
/// ```
/// use bash::prelude::*;
///
/// let report = SimBuilder::new(ProtocolKind::Bash)
///     .nodes(8)
///     .locking_microbench(256, Duration::ZERO)
///     .warmup_ns(50_000)
///     .measure_ns(100_000)
///     .run();
/// assert!(report.perf.mean > 0.0);
/// ```
pub mod prelude {
    pub use crate::builder::{
        BuildError, CaptureSpec, FabricSpec, HierarchySpec, Metric, PointError, PointErrorKind,
        RobustnessSpec, RunReport, SimBuilder,
    };
    pub use bash_coherence::{CacheGeometry, ProtocolKind};
    pub use bash_kernel::{Duration, Time};
    pub use bash_net::{FaultPlaneConfig, Jitter, TopologyKind};
    pub use bash_sim::WatchdogBudget;
    pub use bash_workloads::WorkloadParams;
}

/// Verifies a named catalog scenario under one protocol with the
/// harness's hostile defaults (4 nodes, tiny thrashing cache, jittered
/// latencies, 400 ops per node): the one-call entry point to the
/// invariant suite.
///
/// ```
/// let report = bash::verify_scenario("migratory", bash::ProtocolKind::Bash).unwrap();
/// assert!(report.passed());
/// ```
///
/// # Errors
///
/// Returns [`BuildError::UnknownScenario`] for a name the catalog does
/// not know.
pub fn verify_scenario(scenario: &str, protocol: ProtocolKind) -> Result<VerifyReport, BuildError> {
    SimBuilder::new(protocol)
        .nodes(4)
        .scenario(scenario)
        .try_verify(400)
}
