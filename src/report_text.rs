//! Canonical text serialization of [`RunReport`] — the byte-exact form
//! the golden-report regression gates diff.
//!
//! The format is versioned, line-oriented and fully deterministic: field
//! order is fixed, floats print with Rust's shortest round-trip formatting
//! (identical bytes for identical bits), and every number the simulator
//! reports is included — so any behavioural drift in the engine, the
//! protocols, or the statistics shows up as a one-line diff against the
//! checked-in goldens. The canonical text of a run is a pure function of
//! the [`RunReport`]; thread counts, wall-clock time and host platform
//! never appear in it.

use std::fmt::Write as _;

use crate::builder::{Metric, RunReport};

/// Version tag of the canonical text layout (bump when fields change).
pub const REPORT_TEXT_VERSION: u32 = 1;

fn push_metric(out: &mut String, name: &str, m: &Metric) {
    let _ = writeln!(
        out,
        "{name} mean={:?} stddev={:?} min={:?} max={:?}",
        m.mean, m.stddev, m.min, m.max
    );
}

impl RunReport {
    /// Renders the byte-exact canonical text form of this report.
    pub fn canonical_text(&self) -> String {
        let mut out = String::with_capacity(1024);
        let _ = writeln!(out, "run-report v{REPORT_TEXT_VERSION}");
        let _ = writeln!(out, "protocol={}", self.protocol.name());
        let _ = writeln!(out, "workload={}", self.workload);
        let _ = writeln!(out, "nodes={}", self.nodes);
        let _ = writeln!(out, "bandwidth_mbps={}", self.bandwidth_mbps);
        let _ = writeln!(out, "seeds={}", self.seeds);
        push_metric(&mut out, "perf", &self.perf);
        push_metric(&mut out, "ops_per_sec", &self.ops_per_sec);
        push_metric(&mut out, "instructions_per_sec", &self.instructions_per_sec);
        push_metric(&mut out, "miss_latency_ns", &self.miss_latency_ns);
        push_metric(&mut out, "link_utilization", &self.link_utilization);
        push_metric(&mut out, "broadcast_fraction", &self.broadcast_fraction);
        // Failed grid points only: healthy reports have no errors block,
        // so pre-existing goldens stay byte-identical.
        if !self.errors.is_empty() {
            let _ = writeln!(out, "errors={}", self.errors.len());
            for e in &self.errors {
                let _ = writeln!(
                    out,
                    "  seed {} kind={} attempts={} message={}",
                    e.seed_index,
                    e.kind.name(),
                    e.attempts,
                    e.message.replace('\n', "; ")
                );
            }
        }
        match &self.policy_trace {
            None => {
                let _ = writeln!(out, "policy_trace none");
            }
            Some(points) => {
                let _ = writeln!(out, "policy_trace points={}", points.len());
                for (t, v) in points {
                    let _ = writeln!(out, "  {} {:?}", t.as_ps(), v);
                }
            }
        }
        for (i, r) in self.runs.iter().enumerate() {
            let _ = writeln!(out, "run {i}");
            let _ = writeln!(out, "  duration_ps={}", r.duration.as_ps());
            let _ = writeln!(out, "  ops_completed={}", r.ops_completed);
            let _ = writeln!(out, "  retired_instructions={}", r.retired_instructions);
            let _ = writeln!(out, "  misses={}", r.misses);
            let _ = writeln!(out, "  hits={}", r.hits);
            let _ = writeln!(out, "  sharing_misses={}", r.sharing_misses);
            let _ = writeln!(out, "  avg_miss_latency_ns={:?}", r.avg_miss_latency_ns);
            let _ = writeln!(
                out,
                "  stddev_miss_latency_ns={:?}",
                r.stddev_miss_latency_ns
            );
            let _ = writeln!(out, "  max_miss_latency_ns={:?}", r.max_miss_latency_ns);
            let _ = writeln!(out, "  link_utilization={:?}", r.link_utilization);
            let _ = writeln!(out, "  link_bytes={}", r.link_bytes);
            let _ = writeln!(out, "  broadcasts={}", r.broadcasts);
            let _ = writeln!(out, "  unicasts={}", r.unicasts);
            let _ = writeln!(out, "  writebacks={}", r.writebacks);
            let _ = writeln!(out, "  retries={}", r.retries);
            let _ = writeln!(out, "  broadcast_escalations={}", r.broadcast_escalations);
            let _ = writeln!(out, "  nacks={}", r.nacks);
            let _ = writeln!(out, "  events_processed={}", r.events_processed);
            let _ = writeln!(out, "  peak_queue_len={}", r.peak_queue_len);
            // Routed-fabric runs only: the crossbar reports no per-link
            // stats, so its canonical text is byte-identical to v1 reports
            // produced before topologies existed.
            if !r.links.is_empty() {
                let _ = writeln!(out, "  links={}", r.links.len());
                for l in &r.links {
                    let _ = writeln!(
                        out,
                        "    link {}->{} bytes={} messages={} peak_demand={} busy_fraction={:?}",
                        l.from, l.to, l.bytes, l.messages, l.peak_demand, l.busy_fraction
                    );
                }
            }
            // Hierarchical runs only: flat runs carry no cluster/bank
            // split, so their canonical text (and the goldens) is
            // unchanged.
            if let Some(h) = &r.hierarchy {
                let _ = writeln!(
                    out,
                    "  hierarchy clusters={} banks={} intra_bytes={} inter_bytes={} \
                     inter_fraction={:?} bank_balance={:?}",
                    h.clusters,
                    h.banks,
                    h.intra_cluster_bytes,
                    h.inter_cluster_bytes,
                    h.inter_cluster_fraction(),
                    h.bank_balance()
                );
                let _ = write!(out, "  bank_requests=");
                for (i, b) in h.bank_requests.iter().enumerate() {
                    if i > 0 {
                        out.push(' ');
                    }
                    let _ = write!(out, "{b}");
                }
                out.push('\n');
            }
            // Fault-plane runs only: fault-free runs carry no counters, so
            // their canonical text (and the goldens) is unchanged.
            if let Some(fs) = &r.fault {
                let _ = writeln!(
                    out,
                    "  fault dropped={} corrupted={} down_drops={} retransmits={} \
                     dead_links={} rerouted={} undeliverable={}",
                    fs.dropped,
                    fs.corrupted,
                    fs.down_drops,
                    fs.retransmits,
                    fs.dead_links,
                    fs.rerouted,
                    fs.undeliverable
                );
            }
        }
        out
    }
}

/// Renders a sweep (one report per bandwidth point) as one canonical
/// document, reports separated by a blank line.
pub fn sweep_canonical_text(reports: &[RunReport]) -> String {
    let mut out = String::new();
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&r.canonical_text());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimBuilder;
    use bash_coherence::ProtocolKind;
    use bash_kernel::Duration;

    fn tiny_report() -> RunReport {
        SimBuilder::new(ProtocolKind::Snooping)
            .nodes(2)
            .locking_microbench(16, Duration::ZERO)
            .warmup_ns(2_000)
            .measure_ns(5_000)
            .run()
    }

    #[test]
    fn canonical_text_is_stable_per_report() {
        let a = tiny_report();
        let b = tiny_report();
        assert_eq!(a.canonical_text(), b.canonical_text());
        assert!(a.canonical_text().starts_with("run-report v1\n"));
        assert!(a.canonical_text().contains("protocol=Snooping"));
    }

    #[test]
    fn sweep_text_concatenates_in_order() {
        let reports = vec![tiny_report(), tiny_report()];
        let text = sweep_canonical_text(&reports);
        assert_eq!(text.matches("run-report v1").count(), 2);
    }

    #[test]
    fn hierarchy_block_only_on_hierarchical_runs() {
        assert!(!tiny_report().canonical_text().contains("hierarchy "));
        let report = SimBuilder::new(ProtocolKind::Bash)
            .nodes(8)
            .hierarchy(crate::HierarchySpec::new(4, 2))
            .locking_microbench(32, Duration::ZERO)
            .warmup_ns(2_000)
            .measure_ns(5_000)
            .run();
        let text = report.canonical_text();
        assert!(text.contains("hierarchy clusters=2 banks=2"));
        assert!(text.contains("bank_requests="));
    }
}
