//! Trace round trip: capture a live run into the versioned trace format,
//! push it through both encodings, and replay it across every protocol
//! and thread count — demonstrating the capture-once / replay-anywhere
//! workflow the golden-report CI gates are built on.
//!
//! ```text
//! cargo run --release --example trace_roundtrip [scenario]
//! ```
//!
//! `scenario` is any catalog name (default `phase-shift`); run with an
//! unknown name to see the catalog listing.

use bash::{catalog, sweep_canonical_text, ProtocolKind, SimBuilder, Trace};

const NODES: u16 = 8;
const WARMUP_NS: u64 = 20_000;
const MEASURE_NS: u64 = 60_000;

fn builder(proto: ProtocolKind, scenario: &str) -> SimBuilder {
    SimBuilder::new(proto)
        .nodes(NODES)
        .bandwidth_mbps(1600)
        .scenario(scenario)
        .seed(0xF00D)
        .warmup_ns(WARMUP_NS)
        .measure_ns(MEASURE_NS)
}

fn main() {
    let scenario = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "phase-shift".to_string());
    if catalog::find(&scenario).is_none() {
        eprintln!("unknown scenario {scenario:?}; the catalog:");
        for s in catalog::CATALOG {
            eprintln!("  {:<18} {}", s.name, s.summary);
        }
        std::process::exit(2);
    }

    // 1. Capture: run the scenario once under BASH with the op-capture
    //    hook enabled.
    let (live, trace) = builder(ProtocolKind::Bash, &scenario).run_captured();
    println!(
        "captured {:>6} ops from a live '{scenario}' run ({} nodes, seed {:#x})",
        trace.records.len(),
        trace.nodes,
        trace.seed
    );

    // 2. Round-trip through both encodings.
    let bytes = trace.to_bytes();
    let via_binary = Trace::from_bytes(&bytes).expect("binary decode");
    let text = trace.to_text();
    let via_text = Trace::from_text(&text).expect("text decode");
    assert_eq!(via_binary, trace);
    assert_eq!(via_text, trace);
    println!(
        "binary form: {} bytes ({:.1} B/record); text form: {} bytes — both decode identically",
        bytes.len(),
        bytes.len() as f64 / trace.records.len() as f64,
        text.len()
    );
    let path = std::env::temp_dir().join("bash_trace_roundtrip.trace");
    trace.write_to(&path).expect("write trace");
    let from_disk = Trace::read_from(&path).expect("read trace");
    assert_eq!(from_disk, trace);
    println!("on-disk round trip via {} ok", path.display());
    std::fs::remove_file(&path).ok();

    // 3. Replay byte-identically: same protocol, same plan, any threads.
    let replayed = builder(ProtocolKind::Bash, &scenario)
        .trace_in(trace.clone())
        .run();
    assert_eq!(
        live.canonical_text(),
        replayed.canonical_text(),
        "replay must reproduce the captured run"
    );
    let serial = sweep_canonical_text(
        &builder(ProtocolKind::Bash, &scenario)
            .trace_in(trace.clone())
            .bandwidths([400, 1600, 6400])
            .threads(1)
            .run_sweep(),
    );
    let parallel = sweep_canonical_text(
        &builder(ProtocolKind::Bash, &scenario)
            .trace_in(trace.clone())
            .bandwidths([400, 1600, 6400])
            .threads(4)
            .run_sweep(),
    );
    assert_eq!(serial, parallel);
    println!("replay is byte-identical to the live run, threads(1) == threads(4)\n");

    // 4. The payoff: one captured stream, compared across all protocols.
    println!(
        "{:<10} {:>10} {:>10} {:>8} {:>10}",
        "protocol", "ops/ms", "latency", "util", "broadcast"
    );
    for proto in [
        ProtocolKind::Snooping,
        ProtocolKind::Bash,
        ProtocolKind::Directory,
    ] {
        let report = builder(proto, &scenario).trace_in(trace.clone()).run();
        println!(
            "{:<10} {:>10.1} {:>8.1}ns {:>7.1}% {:>9.1}%",
            report.protocol.name(),
            report.ops_per_sec.mean / 1e6,
            report.miss_latency_ns.mean,
            report.link_utilization.mean * 100.0,
            report.broadcast_fraction.mean * 100.0,
        );
    }
    println!("\n(same reference stream in all three rows — that's the point)");
}
