//! Trace round trip: capture a live run into the versioned trace format,
//! push it through both encodings, and replay it across every protocol
//! and thread count — demonstrating the capture-once / replay-anywhere
//! workflow the golden-report CI gates are built on.
//!
//! ```text
//! cargo run --release --example trace_roundtrip [scenario]
//! ```
//!
//! `scenario` is any catalog name (default `phase-shift`); run with an
//! unknown name to see the catalog listing.

use bash::{catalog, sweep_canonical_text, ProtocolKind, SimBuilder, Trace};

const NODES: u16 = 8;
const WARMUP_NS: u64 = 20_000;
const MEASURE_NS: u64 = 60_000;

/// A strided reference stream over a wide address space: each node scans
/// its own 2^32-based region with a fixed stride — the scan/DMA-like
/// shape the v2 per-node delta encoding is built for.
fn strided_stream() -> Trace {
    let nodes = 8u16;
    let records = (0..8_000u64)
        .map(|i| {
            let node = (i % nodes as u64) as u16;
            let step = i / nodes as u64;
            bash::TraceRecord {
                node: bash::NodeId(node),
                think: bash::Duration::from_ns(10),
                instructions: 40,
                op: bash::ProcOp::Load {
                    block: bash::BlockAddr((1 << 32) + ((node as u64) << 36) + step * 16),
                    word: (i % 8) as usize,
                },
                completion: None,
            }
        })
        .collect();
    Trace {
        nodes,
        seed: 0,
        workload: "strided-scan".to_string(),
        records,
    }
}

fn builder(proto: ProtocolKind, scenario: &str) -> SimBuilder {
    SimBuilder::new(proto)
        .nodes(NODES)
        .bandwidth_mbps(1600)
        .scenario(scenario)
        .seed(0xF00D)
        .warmup_ns(WARMUP_NS)
        .measure_ns(MEASURE_NS)
}

fn main() {
    let scenario = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "phase-shift".to_string());
    if catalog::find(&scenario).is_none() {
        eprintln!("unknown scenario {scenario:?}; the catalog:");
        for s in catalog::CATALOG {
            eprintln!("  {:<18} {}", s.name, s.summary);
        }
        std::process::exit(2);
    }

    // 1. Capture: run the scenario once under BASH with the op-capture
    //    hook enabled.
    let (live, trace) = builder(ProtocolKind::Bash, &scenario).run_captured();
    println!(
        "captured {:>6} ops from a live '{scenario}' run ({} nodes, seed {:#x})",
        trace.records.len(),
        trace.nodes,
        trace.seed
    );

    // 2. Round-trip through both encodings (and the legacy v1 container).
    let bytes = trace.to_bytes();
    let via_binary = Trace::from_bytes(&bytes).expect("binary decode");
    let text = trace.to_text();
    let via_text = Trace::from_text(&text).expect("text decode");
    assert_eq!(via_binary, trace);
    assert_eq!(via_text, trace);
    let v1 = trace.to_bytes_v1();
    assert_eq!(Trace::from_bytes(&v1).expect("v1 decode"), trace);
    println!(
        "v2 chunked form: {} bytes ({:.2} B/record); v1 form: {} bytes (ratio {:.3}); \
         text form: {} bytes — all decode identically",
        bytes.len(),
        bytes.len() as f64 / trace.records.len() as f64,
        v1.len(),
        bytes.len() as f64 / v1.len() as f64,
        text.len()
    );

    // 2b. Where the v2 per-node delta encoding pays off: strided streams
    //     over a large address space (each node walking its own region).
    //     The adaptive encoder never does worse than v1 — on this shape
    //     it does far better.
    let strided = strided_stream();
    let (v2s, v1s) = (strided.to_bytes().len(), strided.to_bytes_v1().len());
    println!(
        "strided stream ({} records over {} nodes): v2 {} bytes vs v1 {} bytes \
         — {:.1}% smaller (ratio {:.3})",
        strided.records.len(),
        strided.nodes,
        v2s,
        v1s,
        (1.0 - v2s as f64 / v1s as f64) * 100.0,
        v2s as f64 / v1s as f64
    );
    let path = std::env::temp_dir().join("bash_trace_roundtrip.trace");
    trace.write_to(&path).expect("write trace");
    let from_disk = Trace::read_from(&path).expect("read trace");
    assert_eq!(from_disk, trace);
    println!("on-disk round trip via {} ok", path.display());
    std::fs::remove_file(&path).ok();

    // 3. Replay byte-identically: same protocol, same plan, any threads.
    let replayed = builder(ProtocolKind::Bash, &scenario)
        .trace_in(trace.clone())
        .run();
    assert_eq!(
        live.canonical_text(),
        replayed.canonical_text(),
        "replay must reproduce the captured run"
    );
    let serial = sweep_canonical_text(
        &builder(ProtocolKind::Bash, &scenario)
            .trace_in(trace.clone())
            .bandwidths([400, 1600, 6400])
            .threads(1)
            .run_sweep(),
    );
    let parallel = sweep_canonical_text(
        &builder(ProtocolKind::Bash, &scenario)
            .trace_in(trace.clone())
            .bandwidths([400, 1600, 6400])
            .threads(4)
            .run_sweep(),
    );
    assert_eq!(serial, parallel);
    println!("replay is byte-identical to the live run, threads(1) == threads(4)\n");

    // 4. The payoff: one captured stream, compared across all protocols.
    println!(
        "{:<10} {:>10} {:>10} {:>8} {:>10}",
        "protocol", "ops/ms", "latency", "util", "broadcast"
    );
    for proto in [
        ProtocolKind::Snooping,
        ProtocolKind::Bash,
        ProtocolKind::Directory,
    ] {
        let report = builder(proto, &scenario).trace_in(trace.clone()).run();
        println!(
            "{:<10} {:>10.1} {:>8.1}ns {:>7.1}% {:>9.1}%",
            report.protocol.name(),
            report.ops_per_sec.mean / 1e6,
            report.miss_latency_ns.mean,
            report.link_utilization.mean * 100.0,
            report.broadcast_fraction.mean * 100.0,
        );
    }
    println!("\n(same reference stream in all three rows — that's the point)");
}
