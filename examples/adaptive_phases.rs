//! Watch the adaptive mechanism react to a workload phase change: the
//! policy counter climbs toward unicast when the lock pool becomes hot
//! (high intensity) and decays back to broadcast when think time rises.
//!
//! This mirrors the paper's §1 motivation: "a given workload's demand on
//! system bandwidth varies dynamically over time". It also shows the
//! builder's escape hatch: a custom [`Workload`] plugged in with
//! `workload_with`, and `build_system` for callers that drive simulated
//! time themselves.
//!
//! ```text
//! cargo run --release --example adaptive_phases
//! ```

use bash::kernel::DetRng;
use bash::{
    BlockAddr, CacheGeometry, Duration, NodeId, ProcOp, ProtocolKind, SimBuilder, Time, WorkItem,
    Workload,
};

/// A microbenchmark whose think time alternates between phases: full
/// intensity, then light load, repeating.
struct PhasedWorkload {
    rngs: Vec<DetRng>,
    counters: Vec<u64>,
    locks: u64,
    phase_ns: u64,
}

impl PhasedWorkload {
    fn new(nodes: u16, locks: u64, phase_ns: u64, seed: u64) -> Self {
        let mut root = DetRng::seed_from(seed);
        PhasedWorkload {
            rngs: (0..nodes).map(|i| root.fork(i as u64)).collect(),
            counters: vec![0; nodes as usize],
            locks,
            phase_ns,
        }
    }
}

impl Workload for PhasedWorkload {
    fn next_item(&mut self, node: NodeId, now: Time) -> Option<WorkItem> {
        let idx = node.index();
        let hot = (now.as_ns() / self.phase_ns).is_multiple_of(2);
        let think = if hot {
            Duration::ZERO
        } else {
            Duration::from_ns(2_000)
        };
        self.counters[idx] += 1;
        let lock = self.rngs[idx].below(self.locks);
        Some(WorkItem {
            think,
            instructions: 0,
            op: ProcOp::Store {
                block: BlockAddr(lock),
                word: idx % 8,
                value: self.counters[idx],
            },
        })
    }

    fn name(&self) -> &str {
        "phased-microbenchmark"
    }
}

fn main() {
    let nodes = 32u16;
    let phase_ns = 200_000;
    let mut sys = SimBuilder::new(ProtocolKind::Bash)
        .nodes(nodes)
        .bandwidth_mbps(800)
        .cache(CacheGeometry { sets: 512, ways: 4 })
        .workload_with(move |nodes, _seed| Box::new(PhasedWorkload::new(nodes, 512, phase_ns, 99)))
        .build_system()
        .expect("valid configuration");
    sys.enable_policy_trace();
    sys.run_until(Time::from_ns(4 * phase_ns));
    println!("Adaptive mechanism vs workload phases (hot ↔ light every {phase_ns} ns)");
    println!("policy counter: 0 = always broadcast … 255 = always unicast\n");
    let trace = sys.policy_trace().expect("trace enabled").to_vec();
    // Downsample to ~40 rows with a bar per row.
    let step = (trace.len() / 40).max(1);
    for chunk in trace.chunks(step) {
        let (t, p) = chunk[chunk.len() - 1];
        let hot = (t.as_ns() / phase_ns) % 2 == 0;
        let bar = "#".repeat((p / 4.0).round() as usize);
        println!(
            "{:>9} {:>5} |{bar:<64}| {p:>5.1}",
            t.to_string(),
            if hot { "hot" } else { "light" },
        );
    }
    println!(
        "\nfinal unicast probability: {:.2}",
        sys.mean_unicast_probability()
    );
}
