//! Quickstart: run the three protocols on the locking microbenchmark at one
//! bandwidth point and print the headline statistics.
//!
//! ```text
//! cargo run --release --example quickstart [-p bash-sim]
//! ```

use bash_coherence::{CacheGeometry, ProtocolKind};
use bash_kernel::Duration;
use bash_sim::{System, SystemConfig};
use bash_workloads::LockingMicrobench;

fn main() {
    let nodes = 16u16;
    let bandwidth_mbps = 1600;
    println!("BASH quickstart: {nodes} processors, {bandwidth_mbps} MB/s endpoint links");
    println!("(locking microbenchmark, 256 locks, zero think time)\n");
    println!(
        "{:<10} {:>12} {:>10} {:>8} {:>10} {:>9}",
        "protocol", "acquires/ms", "latency", "util", "broadcast", "retries"
    );
    for proto in [ProtocolKind::Snooping, ProtocolKind::Bash, ProtocolKind::Directory] {
        let cfg = SystemConfig::paper_default(proto, nodes, bandwidth_mbps)
            .with_cache(CacheGeometry { sets: 256, ways: 4 });
        let workload = LockingMicrobench::new(nodes, 256, Duration::ZERO, 42);
        let stats = System::run(
            cfg,
            workload,
            Duration::from_ns(100_000), // warmup
            Duration::from_ns(400_000), // measurement
        );
        println!(
            "{:<10} {:>12.1} {:>8.1}ns {:>7.1}% {:>9.1}% {:>9}",
            stats.protocol,
            stats.ops_per_sec() / 1e6,
            stats.avg_miss_latency_ns,
            stats.link_utilization * 100.0,
            stats.broadcast_fraction() * 100.0,
            stats.retries,
        );
    }
    println!("\nTry the full paper harness: cargo run --release -p bash-experiments -- all");
}
