//! Quickstart: run the three protocols on the locking microbenchmark at one
//! bandwidth point through the `SimBuilder` facade and print the headline
//! statistics of each `RunReport`.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use bash::{CacheGeometry, Duration, ProtocolKind, SimBuilder};

fn main() {
    let nodes = 16u16;
    let bandwidth_mbps = 1600;
    println!("BASH quickstart: {nodes} processors, {bandwidth_mbps} MB/s endpoint links");
    println!("(locking microbenchmark, 256 locks, zero think time)\n");
    println!(
        "{:<10} {:>12} {:>10} {:>8} {:>10} {:>9}",
        "protocol", "acquires/ms", "latency", "util", "broadcast", "retries"
    );
    for proto in [
        ProtocolKind::Snooping,
        ProtocolKind::Bash,
        ProtocolKind::Directory,
    ] {
        let report = SimBuilder::new(proto)
            .nodes(nodes)
            .bandwidth_mbps(bandwidth_mbps)
            .cache(CacheGeometry { sets: 256, ways: 4 })
            .locking_microbench(256, Duration::ZERO)
            .seed(42)
            .warmup_ns(100_000)
            .measure_ns(400_000)
            .run();
        println!(
            "{:<10} {:>12.1} {:>8.1}ns {:>7.1}% {:>9.1}% {:>9}",
            report.protocol.name(),
            report.ops_per_sec.mean / 1e6,
            report.miss_latency_ns.mean,
            report.link_utilization.mean * 100.0,
            report.broadcast_fraction.mean * 100.0,
            report.stats().retries,
        );
    }
    println!("\nTry the full paper harness: cargo run --release -p bash-experiments -- all");
}
