//! A miniature Figure 1: sweep endpoint bandwidth and watch the
//! snooping/directory crossover and BASH tracking the winner.
//!
//! ```text
//! cargo run --release --example bandwidth_sweep
//! ```

use bash_coherence::{CacheGeometry, ProtocolKind};
use bash_kernel::Duration;
use bash_sim::{System, SystemConfig};
use bash_workloads::LockingMicrobench;

fn main() {
    let nodes = 32u16;
    println!("Mini Figure 1: {nodes} processors, locking microbenchmark");
    println!("(performance in acquires/ms; the paper's Figure 1 shape)\n");
    println!(
        "{:>9} {:>12} {:>12} {:>12}   winner",
        "MB/s", "Snooping", "BASH", "Directory"
    );
    for mbps in [100u64, 200, 400, 800, 1600, 3200, 6400, 12800] {
        let mut perfs = Vec::new();
        for proto in [ProtocolKind::Snooping, ProtocolKind::Bash, ProtocolKind::Directory] {
            let cfg = SystemConfig::paper_default(proto, nodes, mbps)
                .with_cache(CacheGeometry { sets: 512, ways: 4 });
            let wl = LockingMicrobench::new(nodes, 512, Duration::ZERO, 7);
            let stats = System::run(
                cfg,
                wl,
                Duration::from_ns(80_000),
                Duration::from_ns(200_000),
            );
            perfs.push(stats.ops_per_sec() / 1e6);
        }
        let winner = if perfs[0] > perfs[2] * 1.02 {
            "Snooping"
        } else if perfs[2] > perfs[0] * 1.02 {
            "Directory"
        } else {
            "tie"
        };
        let bash_note = if perfs[1] + 0.01 >= perfs[0].max(perfs[2]) * 0.98 {
            " (BASH keeps up)"
        } else {
            ""
        };
        println!(
            "{:>9} {:>12.1} {:>12.1} {:>12.1}   {winner}{bash_note}",
            mbps, perfs[0], perfs[1], perfs[2]
        );
    }
}
