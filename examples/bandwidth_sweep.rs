//! A miniature Figure 1: sweep endpoint bandwidth with
//! `SimBuilder::run_sweep` and watch the snooping/directory crossover and
//! BASH tracking the winner.
//!
//! ```text
//! cargo run --release --example bandwidth_sweep
//! ```

use bash::{CacheGeometry, Duration, ProtocolKind, RunReport, SimBuilder};

const BANDWIDTHS: [u64; 8] = [100, 200, 400, 800, 1600, 3200, 6400, 12800];

fn sweep(proto: ProtocolKind, nodes: u16) -> Vec<RunReport> {
    SimBuilder::new(proto)
        .nodes(nodes)
        .bandwidths(BANDWIDTHS)
        .cache(CacheGeometry { sets: 512, ways: 4 })
        .locking_microbench(512, Duration::ZERO)
        .seed(7)
        .warmup_ns(80_000)
        .measure_ns(200_000)
        .run_sweep()
}

fn main() {
    let nodes = 32u16;
    println!("Mini Figure 1: {nodes} processors, locking microbenchmark");
    println!("(performance in acquires/ms; the paper's Figure 1 shape)\n");
    println!(
        "{:>9} {:>12} {:>12} {:>12}   winner",
        "MB/s", "Snooping", "BASH", "Directory"
    );
    let snoop = sweep(ProtocolKind::Snooping, nodes);
    let bash = sweep(ProtocolKind::Bash, nodes);
    let dir = sweep(ProtocolKind::Directory, nodes);
    for ((s, b), d) in snoop.iter().zip(&bash).zip(&dir) {
        let perfs = [
            s.ops_per_sec.mean / 1e6,
            b.ops_per_sec.mean / 1e6,
            d.ops_per_sec.mean / 1e6,
        ];
        let winner = if perfs[0] > perfs[2] * 1.02 {
            "Snooping"
        } else if perfs[2] > perfs[0] * 1.02 {
            "Directory"
        } else {
            "tie"
        };
        let bash_note = if perfs[1] + 0.01 >= perfs[0].max(perfs[2]) * 0.98 {
            " (BASH keeps up)"
        } else {
            ""
        };
        println!(
            "{:>9} {:>12.1} {:>12.1} {:>12.1}   {winner}{bash_note}",
            s.bandwidth_mbps, perfs[0], perfs[1], perfs[2]
        );
    }
}
