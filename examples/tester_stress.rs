//! The hostile tester sweep: the nack storm plus ten seeds of every
//! protocol. Exits loudly on any coherence violation.
//!
//! `cargo run --release --example tester_stress`

use bash::{run_random_test, ProtocolKind, TesterConfig};

fn main() {
    // Nack storm: one retry buffer, all unicast.
    let report = run_random_test(TesterConfig::nack_storm(7));
    println!(
        "nack_storm: retries={} nacks={} escalations={} violations={}",
        report.retries,
        report.nacks,
        report.escalations,
        report.violations.len()
    );
    for v in report.violations.iter().take(3) {
        println!("  VIOLATION: {}", v.what);
    }
    // Many seeds, all protocols.
    let mut total_viol = 0;
    for seed in 0..10 {
        for proto in [
            ProtocolKind::Snooping,
            ProtocolKind::Directory,
            ProtocolKind::Bash,
        ] {
            let mut cfg = TesterConfig::hostile(proto, seed);
            cfg.ops_per_node = 1000;
            let r = run_random_test(cfg);
            if !r.passed() {
                println!(
                    "{proto:?} seed {seed}: {} violations! e.g. {}",
                    r.violations.len(),
                    r.violations[0].what
                );
            }
            total_viol += r.violations.len();
        }
    }
    println!("sweep done, total violations: {total_viol}");
}
