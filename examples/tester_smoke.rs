//! Runs the random coherence tester once per protocol and prints a
//! one-line summary (see `tester_stress` for the hostile sweep).
//!
//! `cargo run --release --example tester_smoke [snooping|directory|bash]`

use bash::{run_random_test, ProtocolKind, TesterConfig};

fn main() {
    let protos: Vec<ProtocolKind> = match std::env::args().nth(1).as_deref() {
        Some("snooping") => vec![ProtocolKind::Snooping],
        Some("directory") => vec![ProtocolKind::Directory],
        Some("bash") => vec![ProtocolKind::Bash],
        _ => vec![
            ProtocolKind::Snooping,
            ProtocolKind::Directory,
            ProtocolKind::Bash,
        ],
    };
    for proto in protos {
        eprintln!("running {proto:?}...");
        let mut cfg = TesterConfig::hostile(proto, 42);
        cfg.ops_per_node = 500;
        let report = run_random_test(cfg);
        println!(
            "{:?}: ops={} loads={} stores={} retries={} nacks={} squashed={} stale={} violations={}",
            proto, report.ops, report.loads_checked, report.stores_applied,
            report.retries, report.nacks, report.writebacks_squashed,
            report.writebacks_stale, report.violations.len()
        );
        for v in report.violations.iter().take(5) {
            println!("  VIOLATION: {}", v.what);
        }
    }
}
