//! A miniature Figure 12: the five synthetic commercial/scientific
//! workloads at 1600 MB/s with 4x broadcast cost — which protocol wins
//! depends on the workload, and BASH adapts.
//!
//! ```text
//! cargo run --release --example workload_comparison
//! ```

use bash_coherence::{CacheGeometry, ProtocolKind};
use bash_kernel::Duration;
use bash_sim::{System, SystemConfig};
use bash_workloads::{SyntheticWorkload, WorkloadParams};

fn main() {
    println!("Mini Figure 12: 16 processors, 1600 MB/s, 4x broadcast cost");
    println!("(instructions/s normalized to BASH)\n");
    println!(
        "{:<14} {:>8} {:>10} {:>10}  note",
        "workload", "BASH", "Snooping", "Directory"
    );
    for params in WorkloadParams::all_macro() {
        let mut perf = Vec::new();
        for proto in [ProtocolKind::Bash, ProtocolKind::Snooping, ProtocolKind::Directory] {
            let cfg = SystemConfig::paper_default(proto, 16, 1600)
                .with_broadcast_cost(4)
                .with_cache(CacheGeometry { sets: 512, ways: 4 });
            let wl = SyntheticWorkload::new(16, params.clone(), 3);
            let stats = System::run(
                cfg,
                wl,
                Duration::from_ns(80_000),
                Duration::from_ns(300_000),
            );
            perf.push(stats.instructions_per_sec());
        }
        let note = if perf[1] > perf[2] * 1.02 {
            "snooping-friendly"
        } else if perf[2] > perf[1] * 1.02 {
            "directory-friendly"
        } else {
            "balanced"
        };
        println!(
            "{:<14} {:>8.3} {:>10.3} {:>10.3}  {note}",
            params.name,
            1.0,
            perf[1] / perf[0],
            perf[2] / perf[0]
        );
    }
}
