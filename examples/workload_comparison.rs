//! A miniature Figure 12: the five synthetic commercial/scientific
//! workloads at 1600 MB/s with 4x broadcast cost — which protocol wins
//! depends on the workload, and BASH adapts.
//!
//! ```text
//! cargo run --release --example workload_comparison
//! ```

use bash::{CacheGeometry, FabricSpec, ProtocolKind, SimBuilder, WorkloadParams};

fn main() {
    println!("Mini Figure 12: 16 processors, 1600 MB/s, 4x broadcast cost");
    println!("(instructions/s normalized to BASH)\n");
    println!(
        "{:<14} {:>8} {:>10} {:>10}  note",
        "workload", "BASH", "Snooping", "Directory"
    );
    for params in WorkloadParams::all_macro() {
        let mut perf = Vec::new();
        for proto in [
            ProtocolKind::Bash,
            ProtocolKind::Snooping,
            ProtocolKind::Directory,
        ] {
            let report = SimBuilder::new(proto)
                .nodes(16)
                .fabric(FabricSpec::default().broadcast_cost(4))
                .cache(CacheGeometry { sets: 512, ways: 4 })
                .synthetic(params.clone())
                .seed(3)
                .warmup_ns(80_000)
                .measure_ns(300_000)
                .run();
            perf.push(report.instructions_per_sec.mean);
        }
        let note = if perf[1] > perf[2] * 1.02 {
            "snooping-friendly"
        } else if perf[2] > perf[1] * 1.02 {
            "directory-friendly"
        } else {
            "balanced"
        };
        println!(
            "{:<14} {:>8.3} {:>10.3} {:>10.3}  {note}",
            params.name,
            1.0,
            perf[1] / perf[0],
            perf[2] / perf[0]
        );
    }
}
