//! Engine throughput / paper-shape probe: 64-processor microbenchmark
//! points at three bandwidths with wall-clock timings.
//!
//! `cargo run --release --example tester_perf_probe`

use bash::{CacheGeometry, Duration, LockingMicrobench, ProtocolKind, System, SystemConfig};

fn main() {
    for (proto, mbps) in [
        (ProtocolKind::Snooping, 1600),
        (ProtocolKind::Directory, 1600),
        (ProtocolKind::Bash, 1600),
        (ProtocolKind::Snooping, 400),
        (ProtocolKind::Directory, 400),
        (ProtocolKind::Bash, 400),
        (ProtocolKind::Snooping, 12800),
        (ProtocolKind::Directory, 12800),
        (ProtocolKind::Bash, 12800),
    ] {
        let nodes = 64u16;
        let cfg = SystemConfig::paper_default(proto, nodes, mbps).with_cache(CacheGeometry {
            sets: 2048,
            ways: 4,
        });
        let wl = LockingMicrobench::new(nodes, 1024, Duration::ZERO, 1);
        let wall = std::time::Instant::now();
        let stats = System::run(
            cfg,
            wl,
            Duration::from_ns(100_000),
            Duration::from_ns(400_000),
        );
        println!(
            "{:9} {:6} MB/s: perf={:9.1} ops/ms lat={:6.1}ns util={:4.2} bcast={:4.2} shar={:4.2} retries={} wall={:?} ev={}",
            stats.protocol, mbps,
            stats.ops_per_sec() / 1e6,
            stats.avg_miss_latency_ns,
            stats.link_utilization,
            stats.broadcast_fraction(),
            stats.sharing_fraction(),
            stats.retries,
            wall.elapsed(),
            stats.events_processed,
        );
    }
}
