//! MOSI cache-coherence protocol engines for the BASH reproduction:
//! **Snooping** (§3.1), a GS320-style **Directory** (§3.2), and the
//! **Bandwidth Adaptive Snooping Hybrid** itself (§3.3).
//!
//! All three protocols are write-invalidate MOSI with silent S→I downgrade,
//! GetS / GetM / PutM transactions, blocking processors and sequential
//! consistency, exactly as assumed by the paper. Controllers are pure state
//! machines emitting [`actions::Action`]s into a reusable
//! [`actions::ActionSink`], which makes every race unit-testable without a
//! network and keeps the hot path allocation-free; the system driver lives
//! in `bash-sim`.
//!
//! Module map:
//!
//! * [`types`] — blocks, transactions, protocol messages, the sufficiency
//!   predicate at the heart of BASH;
//! * [`cache`] — the set-associative data array;
//! * [`snoopcache`] — the ordered-network cache controller shared by
//!   Snooping and BASH (the paper: processors "react identically to
//!   requests, regardless of whether they are unicasts, multicasts, or
//!   broadcasts");
//! * [`snooping`] — the snooping memory controller;
//! * [`directory`] — the directory cache + home controllers;
//! * [`bash`] — the BASH home controller (sufficiency check, retries,
//!   broadcast escalation, nacks);
//! * [`blocktable`] — the open-addressed combined per-block state table
//!   all controllers resolve block state through (one probe per event);
//! * [`hierarchy`] — cluster/bank geometry for two-level coherence
//!   (snooping clusters under a sharded directory spine);
//! * [`protocol`] — protocol selection, dispatch, and message routing;
//! * [`registry`] — transition coverage (Table 1).

pub mod actions;
pub mod bash;
pub mod blocktable;
pub mod cache;
pub mod common;
#[cfg(test)]
mod dircache_tests;
pub mod directory;
pub mod hierarchy;
#[cfg(test)]
mod memctrl_tests;
pub mod protocol;
pub mod registry;
pub mod snoopcache;
#[cfg(test)]
mod snoopcache_tests;
pub mod snooping;
#[cfg(test)]
mod test_support;
pub mod types;

pub use actions::{AccessOutcome, Action, ActionSink};
pub use blocktable::BlockTable;
pub use cache::{CacheArray, CacheGeometry, Mosi};
pub use hierarchy::{home_of, HierarchyConfig};
pub use protocol::{route, CacheCtrl, MemCtrl, ProtocolKind, Routing};
pub use registry::TransitionLog;
pub use types::{
    is_sufficient, BlockAddr, BlockData, Owner, ProcOp, ProtoMsg, Request, TxnId, TxnKind,
};
