//! Test-only adapters bridging the sink-based controller handlers back to
//! collected `Vec<Action>`s, so white-box tests can keep asserting on
//! action lists. One definition, stamped onto each controller type by the
//! `impl_deliver!` / `impl_access_collect!` macros.

use bash_kernel::Time;
use bash_net::Message;

use crate::actions::{AccessOutcome, Action};
use crate::types::{ProcOp, ProtoMsg};

/// Deliver a message and collect the emitted actions.
pub(crate) trait Deliver {
    fn deliver(&mut self, now: Time, msg: &Message<ProtoMsg>, order: Option<u64>) -> Vec<Action>;
}

/// Run a processor access and collect the emitted actions.
pub(crate) trait AccessCollect {
    fn access_collect(&mut self, now: Time, op: ProcOp) -> (AccessOutcome, Vec<Action>);
}

macro_rules! impl_deliver {
    ($($ty:ty),+ $(,)?) => {$(
        impl crate::test_support::Deliver for $ty {
            fn deliver(
                &mut self,
                now: bash_kernel::Time,
                msg: &bash_net::Message<crate::types::ProtoMsg>,
                order: Option<u64>,
            ) -> Vec<crate::actions::Action> {
                let mut sink = crate::actions::ActionSink::new();
                self.on_delivery(now, msg, order, &mut sink);
                sink.into_vec()
            }
        }
    )+};
}

macro_rules! impl_access_collect {
    ($($ty:ty),+ $(,)?) => {$(
        impl crate::test_support::AccessCollect for $ty {
            fn access_collect(
                &mut self,
                now: bash_kernel::Time,
                op: crate::types::ProcOp,
            ) -> (
                crate::actions::AccessOutcome,
                Vec<crate::actions::Action>,
            ) {
                let mut sink = crate::actions::ActionSink::new();
                let outcome = self.access(now, op, &mut sink);
                (outcome, sink.into_vec())
            }
        }
    )+};
}

pub(crate) use {impl_access_collect, impl_deliver};
