//! A set-associative cache array with LRU replacement.
//!
//! Holds only *stable* MOSI states; transient transaction state lives in the
//! controllers' MSHR / writeback buffers. The paper's target is a 4 MB
//! 4-way unified L2 with 64-byte blocks; the geometry is configurable.

use crate::types::{BlockAddr, BlockData};
use std::fmt;

/// Stable MOSI states. `I` is represented by absence from the array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mosi {
    /// Modified: sole, dirty, owned copy.
    M,
    /// Owned: dirty, shared with S copies elsewhere; this cache responds.
    O,
    /// Shared: clean read-only copy.
    S,
}

impl Mosi {
    /// True for the ownership states (M and O): this cache must supply data.
    pub fn is_owner(self) -> bool {
        matches!(self, Mosi::M | Mosi::O)
    }

    /// Short name for traces and the transition registry.
    pub fn name(self) -> &'static str {
        match self {
            Mosi::M => "M",
            Mosi::O => "O",
            Mosi::S => "S",
        }
    }
}

impl fmt::Display for Mosi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One resident cache line.
#[derive(Debug, Clone)]
struct Line {
    block: BlockAddr,
    state: Mosi,
    data: BlockData,
    lru: u64,
}

/// A block evicted to make room for a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Victim {
    /// The evicted block.
    pub block: BlockAddr,
    /// Its state at eviction (M/O victims must be written back).
    pub state: Mosi,
    /// Its data (needed for the writeback).
    pub data: BlockData,
}

/// Cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Number of sets (power of two not required).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
}

impl CacheGeometry {
    /// The paper's L2: 4 MB, 4-way, 64-byte blocks = 16384 sets × 4 ways.
    pub fn paper_l2() -> Self {
        CacheGeometry {
            sets: 16384,
            ways: 4,
        }
    }

    /// Total lines.
    pub fn lines(&self) -> usize {
        self.sets * self.ways
    }
}

/// The set-associative array.
///
/// # Example
///
/// ```
/// use bash_coherence::cache::{CacheArray, CacheGeometry, Mosi};
/// use bash_coherence::types::{BlockAddr, BlockData};
///
/// let mut cache = CacheArray::new(CacheGeometry { sets: 2, ways: 1 });
/// assert!(cache.insert(BlockAddr(0), Mosi::S, BlockData::ZERO).is_none());
/// // Same set (2 sets ⇒ blocks 0 and 2 collide), 1 way ⇒ eviction.
/// let victim = cache.insert(BlockAddr(2), Mosi::M, BlockData::ZERO).unwrap();
/// assert_eq!(victim.block, BlockAddr(0));
/// ```
#[derive(Debug, Clone)]
pub struct CacheArray {
    geometry: CacheGeometry,
    sets: Vec<Vec<Line>>,
    stamp: u64,
}

impl CacheArray {
    /// Builds an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if sets or ways is zero.
    pub fn new(geometry: CacheGeometry) -> Self {
        assert!(geometry.sets > 0 && geometry.ways > 0);
        CacheArray {
            geometry,
            sets: (0..geometry.sets).map(|_| Vec::new()).collect(),
            stamp: 0,
        }
    }

    /// The geometry this cache was built with.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    fn set_of(&self, block: BlockAddr) -> usize {
        (block.0 % self.geometry.sets as u64) as usize
    }

    /// Current state of `block`, or `None` when invalid (not resident).
    pub fn state(&self, block: BlockAddr) -> Option<Mosi> {
        let set = &self.sets[self.set_of(block)];
        set.iter().find(|l| l.block == block).map(|l| l.state)
    }

    /// Reads the block's data without touching LRU (snoop responses).
    pub fn data(&self, block: BlockAddr) -> Option<BlockData> {
        let set = &self.sets[self.set_of(block)];
        set.iter().find(|l| l.block == block).map(|l| l.data)
    }

    /// A processor access: returns the state and bumps LRU on hit.
    pub fn touch(&mut self, block: BlockAddr) -> Option<Mosi> {
        self.stamp += 1;
        let stamp = self.stamp;
        let set_idx = self.set_of(block);
        let set = &mut self.sets[set_idx];
        set.iter_mut().find(|l| l.block == block).map(|l| {
            l.lru = stamp;
            l.state
        })
    }

    /// Changes the state of a resident block.
    ///
    /// # Panics
    ///
    /// Panics if the block is not resident.
    pub fn set_state(&mut self, block: BlockAddr, state: Mosi) {
        let set_idx = self.set_of(block);
        let line = self.sets[set_idx]
            .iter_mut()
            .find(|l| l.block == block)
            .expect("set_state on non-resident block");
        line.state = state;
    }

    /// Overwrites one word of a resident block (a store hit).
    ///
    /// # Panics
    ///
    /// Panics if the block is not resident.
    pub fn write_word(&mut self, block: BlockAddr, word: usize, value: u64) {
        let set_idx = self.set_of(block);
        let line = self.sets[set_idx]
            .iter_mut()
            .find(|l| l.block == block)
            .expect("write_word on non-resident block");
        line.data.write(word, value);
    }

    /// Removes a block (silent S→I drop, invalidation, or writeback start).
    /// Returns its data if it was resident.
    pub fn invalidate(&mut self, block: BlockAddr) -> Option<BlockData> {
        let set_idx = self.set_of(block);
        let set = &mut self.sets[set_idx];
        let pos = set.iter().position(|l| l.block == block)?;
        Some(set.swap_remove(pos).data)
    }

    /// Fills `block` with `state`/`data`, evicting the LRU line of the set
    /// if it is full. The victim (if any) is returned so the controller can
    /// write back M/O victims.
    ///
    /// # Panics
    ///
    /// Panics if the block is already resident (fills only happen for
    /// invalid blocks).
    pub fn insert(&mut self, block: BlockAddr, state: Mosi, data: BlockData) -> Option<Victim> {
        self.stamp += 1;
        let stamp = self.stamp;
        let ways = self.geometry.ways;
        let set_idx = self.set_of(block);
        let set = &mut self.sets[set_idx];
        assert!(
            set.iter().all(|l| l.block != block),
            "insert of already-resident block"
        );
        let victim = if set.len() >= ways {
            let (pos, _) = set
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.lru)
                .expect("non-empty set");
            let evicted = set.swap_remove(pos);
            Some(Victim {
                block: evicted.block,
                state: evicted.state,
                data: evicted.data,
            })
        } else {
            None
        };
        set.push(Line {
            block,
            state,
            data,
            lru: stamp,
        });
        victim
    }

    /// Iterates `(block, state)` over all resident lines (invariant checks).
    pub fn iter(&self) -> impl Iterator<Item = (BlockAddr, Mosi)> + '_ {
        self.sets
            .iter()
            .flat_map(|s| s.iter().map(|l| (l.block, l.state)))
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }

    /// True when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geo(sets: usize, ways: usize) -> CacheGeometry {
        CacheGeometry { sets, ways }
    }

    #[test]
    fn miss_then_hit() {
        let mut c = CacheArray::new(geo(4, 2));
        assert_eq!(c.touch(BlockAddr(9)), None);
        c.insert(BlockAddr(9), Mosi::S, BlockData::ZERO);
        assert_eq!(c.touch(BlockAddr(9)), Some(Mosi::S));
        assert_eq!(c.state(BlockAddr(9)), Some(Mosi::S));
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = CacheArray::new(geo(1, 2));
        c.insert(BlockAddr(1), Mosi::S, BlockData::ZERO);
        c.insert(BlockAddr(2), Mosi::S, BlockData::ZERO);
        c.touch(BlockAddr(1)); // block 2 is now LRU
        let v = c.insert(BlockAddr(3), Mosi::M, BlockData::ZERO).unwrap();
        assert_eq!(v.block, BlockAddr(2));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn victim_carries_state_and_data() {
        let mut c = CacheArray::new(geo(1, 1));
        let mut d = BlockData::ZERO;
        d.write(0, 42);
        c.insert(BlockAddr(5), Mosi::M, d);
        let v = c.insert(BlockAddr(6), Mosi::S, BlockData::ZERO).unwrap();
        assert_eq!(v.state, Mosi::M);
        assert_eq!(v.data.read(0), 42);
    }

    #[test]
    fn invalidate_removes() {
        let mut c = CacheArray::new(geo(2, 2));
        c.insert(BlockAddr(0), Mosi::O, BlockData::ZERO);
        assert!(c.invalidate(BlockAddr(0)).is_some());
        assert_eq!(c.state(BlockAddr(0)), None);
        assert!(c.invalidate(BlockAddr(0)).is_none());
    }

    #[test]
    fn write_word_updates_data() {
        let mut c = CacheArray::new(geo(2, 2));
        c.insert(BlockAddr(0), Mosi::M, BlockData::ZERO);
        c.write_word(BlockAddr(0), 3, 77);
        assert_eq!(c.data(BlockAddr(0)).unwrap().read(3), 77);
    }

    #[test]
    fn blocks_map_to_distinct_sets() {
        let mut c = CacheArray::new(geo(2, 1));
        c.insert(BlockAddr(0), Mosi::S, BlockData::ZERO);
        // Block 1 → set 1: no eviction despite 1 way.
        assert!(c.insert(BlockAddr(1), Mosi::S, BlockData::ZERO).is_none());
        assert_eq!(c.len(), 2);
    }

    #[test]
    #[should_panic(expected = "already-resident")]
    fn double_insert_panics() {
        let mut c = CacheArray::new(geo(2, 2));
        c.insert(BlockAddr(0), Mosi::S, BlockData::ZERO);
        c.insert(BlockAddr(0), Mosi::M, BlockData::ZERO);
    }

    #[test]
    fn paper_l2_geometry() {
        let g = CacheGeometry::paper_l2();
        // 4 MB / 64 B = 65536 lines.
        assert_eq!(g.lines(), 65536);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;
        use std::collections::HashMap;

        #[derive(Debug, Clone)]
        enum Op {
            Touch(u64),
            Insert(u64),
            Invalidate(u64),
            Write(u64, usize, u64),
        }

        fn op_strategy() -> impl Strategy<Value = Op> {
            prop_oneof![
                (0u64..64).prop_map(Op::Touch),
                (0u64..64).prop_map(Op::Insert),
                (0u64..64).prop_map(Op::Invalidate),
                ((0u64..64), (0usize..8), any::<u64>()).prop_map(|(b, w, v)| Op::Write(b, w, v)),
            ]
        }

        proptest! {
            /// Model-based test against a hash-map reference: residency,
            /// per-set capacity, data round-trips and eviction bookkeeping
            /// all agree after any operation sequence.
            #[test]
            fn prop_cache_matches_reference_model(
                ops in proptest::collection::vec(op_strategy(), 1..300),
            ) {
                let geometry = CacheGeometry { sets: 4, ways: 2 };
                let mut cache = CacheArray::new(geometry);
                let mut model: HashMap<u64, BlockData> = HashMap::new();
                for op in ops {
                    match op {
                        Op::Touch(b) => {
                            prop_assert_eq!(
                                cache.touch(BlockAddr(b)).is_some(),
                                model.contains_key(&b)
                            );
                        }
                        Op::Insert(b) => {
                            if model.contains_key(&b) {
                                continue; // fills only happen for invalid blocks
                            }
                            let mut d = BlockData::ZERO;
                            d.write(0, b + 1);
                            if let Some(v) = cache.insert(BlockAddr(b), Mosi::M, d) {
                                // The victim must be from the same set and
                                // must have been resident in the model.
                                prop_assert_eq!(v.block.0 % 4, b % 4);
                                prop_assert!(model.remove(&v.block.0).is_some());
                                prop_assert_eq!(v.data, model.get(&v.block.0).copied().unwrap_or(v.data));
                            }
                            model.insert(b, d);
                        }
                        Op::Invalidate(b) => {
                            prop_assert_eq!(
                                cache.invalidate(BlockAddr(b)).is_some(),
                                model.remove(&b).is_some()
                            );
                        }
                        Op::Write(b, w, val) => {
                            if let Some(d) = model.get_mut(&b) {
                                d.write(w, val);
                                cache.write_word(BlockAddr(b), w, val);
                            }
                        }
                    }
                    // Global invariants after every step.
                    prop_assert_eq!(cache.len(), model.len());
                    for (&b, d) in &model {
                        prop_assert_eq!(cache.data(BlockAddr(b)), Some(*d));
                    }
                    // Per-set capacity is never exceeded.
                    let mut per_set = [0usize; 4];
                    for (b, _) in cache.iter() {
                        per_set[(b.0 % 4) as usize] += 1;
                    }
                    prop_assert!(per_set.iter().all(|&n| n <= 2));
                }
            }

            /// The LRU victim is always the least recently touched line of
            /// its set.
            #[test]
            fn prop_lru_evicts_least_recent(
                touches in proptest::collection::vec(0u64..3, 0..20),
            ) {
                // One set (sets=1, ways=2): blocks 0 and 1 resident, then
                // insert 2 and check the victim.
                let mut cache = CacheArray::new(CacheGeometry { sets: 1, ways: 2 });
                cache.insert(BlockAddr(0), Mosi::S, BlockData::ZERO);
                cache.insert(BlockAddr(1), Mosi::S, BlockData::ZERO);
                let mut last_touch: HashMap<u64, usize> = HashMap::from([(0, 0), (1, 1)]);
                for (i, &b) in touches.iter().enumerate() {
                    if b < 2 {
                        cache.touch(BlockAddr(b));
                        last_touch.insert(b, i + 2);
                    }
                }
                let expected = if last_touch[&0] < last_touch[&1] { 0 } else { 1 };
                let victim = cache.insert(BlockAddr(2), Mosi::M, BlockData::ZERO).unwrap();
                prop_assert_eq!(victim.block.0, expected);
            }
        }
    }
}
