//! Open-addressed per-block state tables for the coherence controllers.
//!
//! Every controller used to resolve a block through two to four separate
//! SipHash `HashMap`s per event (state map + data store, writeback map +
//! tracked-sharer map). [`BlockTable`] replaces those pairs with one
//! open-addressed, multiply-hashed table holding a *combined* entry per
//! block, so the per-event hot path costs a single probe sequence over a
//! contiguous slot array.
//!
//! Design points:
//!
//! * **Multiplicative (Fibonacci) hashing** — `(key ^ seed) * 2^64/φ`,
//!   top bits select the bucket. Block addresses are dense, sequential
//!   and strided in practice; the golden-ratio multiply scatters those
//!   patterns without SipHash's per-lookup setup cost.
//! * **Linear probing** over a power-of-two slot array, resized at 7/8
//!   load. Entries are never removed: transient sub-state (an open
//!   writeback window, a tracked sharer set) lives in `Option`/emptiable
//!   fields of the combined entry and is simply cleared, so the table
//!   needs no tombstones and probe chains never decay.
//! * **No ordering guarantees** on [`BlockTable::values`]: controllers
//!   may use it only for order-independent folds (quiescence booleans).
//!   Anything feeding canonical report text must go through
//!   [`BlockTable::sorted_keys`], which drains in block-address order.
//!
//! The probe seed is normally a fixed constant; tests inject alternate
//! seeds through [`set_probe_seed`] to prove no observable output
//! depends on slot order (the goldens-under-both-seeds gate).

use std::sync::atomic::{AtomicU64, Ordering};

use crate::types::BlockAddr;

/// 2^64 / φ — the classic Fibonacci-hashing multiplier.
const FIB: u64 = 0x9E37_79B9_7F4A_7C15;

/// Minimum non-empty capacity (power of two).
const MIN_CAP: usize = 16;

/// Process-wide probe seed newly created tables pick up. Zero in normal
/// operation; the order-independence tests flip it between runs.
static PROBE_SEED: AtomicU64 = AtomicU64::new(0);

/// Overrides the probe seed used by tables created from now on.
///
/// Testing hook only: changing the seed permutes every table's slot
/// order without changing its contents, which the report-determinism
/// tests use to prove canonical output never leaks hash order. Not for
/// production use — runs mixing seeds are still deterministic but their
/// tables hash differently.
#[doc(hidden)]
pub fn set_probe_seed(seed: u64) {
    PROBE_SEED.store(seed, Ordering::Relaxed);
}

/// An open-addressed map from [`BlockAddr`] to a combined per-block
/// entry. See the module docs for the probing scheme and the ordering
/// contract.
#[derive(Debug, Clone)]
pub struct BlockTable<V> {
    slots: Box<[Option<(BlockAddr, V)>]>,
    len: usize,
    /// `64 - log2(capacity)`; meaningless while the table is empty.
    shift: u32,
    seed: u64,
}

impl<V> Default for BlockTable<V> {
    fn default() -> Self {
        BlockTable::new()
    }
}

impl<V> BlockTable<V> {
    /// An empty table. Allocates nothing until the first insert, so the
    /// per-node controllers of a 4096-node system stay cheap while
    /// untouched.
    pub fn new() -> Self {
        BlockTable {
            slots: Box::default(),
            len: 0,
            shift: 64,
            seed: PROBE_SEED.load(Ordering::Relaxed),
        }
    }

    /// Number of blocks with an entry.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no block has an entry.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn bucket(&self, block: BlockAddr) -> usize {
        (((block.0 ^ self.seed).wrapping_mul(FIB)) >> self.shift) as usize
    }

    /// Slot index holding `block`, if present.
    fn find(&self, block: BlockAddr) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = self.bucket(block);
        loop {
            match &self.slots[i] {
                Some((k, _)) if *k == block => return Some(i),
                Some(_) => i = (i + 1) & mask,
                None => return None,
            }
        }
    }

    /// The entry for `block`, if present.
    pub fn get(&self, block: BlockAddr) -> Option<&V> {
        self.find(block)
            .map(|i| &self.slots[i].as_ref().expect("found slot").1)
    }

    /// The entry for `block`, if present (mutable).
    pub fn get_mut(&mut self, block: BlockAddr) -> Option<&mut V> {
        self.find(block)
            .map(|i| &mut self.slots[i].as_mut().expect("found slot").1)
    }

    /// The entry for `block`, inserting `init()` if absent.
    pub fn or_insert_with(&mut self, block: BlockAddr, init: impl FnOnce() -> V) -> &mut V {
        if self.needs_grow() {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = self.bucket(block);
        loop {
            match &self.slots[i] {
                Some((k, _)) if *k == block => break,
                Some(_) => i = (i + 1) & mask,
                None => {
                    self.slots[i] = Some((block, init()));
                    self.len += 1;
                    break;
                }
            }
        }
        &mut self.slots[i].as_mut().expect("filled above").1
    }

    /// The entry for `block`, inserting the default if absent.
    pub fn or_default(&mut self, block: BlockAddr) -> &mut V
    where
        V: Default,
    {
        self.or_insert_with(block, V::default)
    }

    /// Entries in **unspecified (slot) order** — for order-independent
    /// folds only (quiescence booleans, counters). Canonical output must
    /// use [`BlockTable::sorted_keys`].
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.slots.iter().flatten().map(|(_, v)| v)
    }

    /// All block addresses, sorted ascending — the explicit deterministic
    /// drain order for anything feeding report text or aggregated stats.
    pub fn sorted_keys(&self) -> Vec<BlockAddr> {
        let mut keys: Vec<BlockAddr> = self.slots.iter().flatten().map(|(k, _)| *k).collect();
        keys.sort_unstable_by_key(|b| b.0);
        keys
    }

    fn needs_grow(&self) -> bool {
        // Grow at 7/8 load (or when empty).
        self.slots.is_empty() || (self.len + 1) * 8 > self.slots.len() * 7
    }

    fn grow(&mut self) {
        let new_cap = (self.slots.len() * 2).max(MIN_CAP);
        let old = std::mem::replace(
            &mut self.slots,
            (0..new_cap).map(|_| None).collect::<Vec<_>>().into(),
        );
        self.shift = 64 - new_cap.trailing_zeros();
        let mask = new_cap - 1;
        for (k, v) in old.into_vec().into_iter().flatten() {
            let mut i = self.bucket(k);
            while self.slots[i].is_some() {
                i = (i + 1) & mask;
            }
            self.slots[i] = Some((k, v));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    #[test]
    fn insert_get_grow() {
        let mut t: BlockTable<u64> = BlockTable::new();
        assert!(t.is_empty());
        assert!(t.get(BlockAddr(7)).is_none());
        for i in 0..1000u64 {
            *t.or_default(BlockAddr(i)) = i * 3;
        }
        assert_eq!(t.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(t.get(BlockAddr(i)), Some(&(i * 3)));
            *t.get_mut(BlockAddr(i)).unwrap() += 1;
        }
        assert_eq!(t.get(BlockAddr(999)), Some(&(999 * 3 + 1)));
        assert!(t.get(BlockAddr(1000)).is_none());
        // or_insert_with on an existing key must not overwrite.
        assert_eq!(*t.or_insert_with(BlockAddr(0), || 555), 1);
    }

    #[test]
    fn sorted_keys_are_sorted_regardless_of_seed() {
        for seed in [0u64, 0xDEAD_BEEF] {
            set_probe_seed(seed);
            let mut t: BlockTable<u8> = BlockTable::new();
            for i in [9u64, 2, 77, 31, 4, 0] {
                t.or_default(BlockAddr(i));
            }
            let keys: Vec<u64> = t.sorted_keys().iter().map(|b| b.0).collect();
            assert_eq!(keys, vec![0, 2, 4, 9, 31, 77]);
        }
        set_probe_seed(0);
    }

    proptest! {
        /// The table agrees with a `HashMap` across arbitrary key sets —
        /// including the clustered/strided addresses block maps see.
        #[test]
        fn prop_matches_hashmap(
            keys in proptest::collection::vec(0u64..10_000, 0..300),
            stride in 1u64..64,
        ) {
            let mut t: BlockTable<u64> = BlockTable::new();
            let mut m: HashMap<u64, u64> = HashMap::new();
            for (n, &k) in keys.iter().enumerate() {
                let k = k * stride;
                *t.or_default(BlockAddr(k)) = n as u64;
                m.insert(k, n as u64);
            }
            prop_assert_eq!(t.len(), m.len());
            for (&k, v) in &m {
                prop_assert_eq!(t.get(BlockAddr(k)), Some(v));
            }
            let mut want: Vec<u64> = m.keys().copied().collect();
            want.sort_unstable();
            let got: Vec<u64> = t.sorted_keys().iter().map(|b| b.0).collect();
            prop_assert_eq!(got, want);
            prop_assert_eq!(t.values().count(), m.len());
        }
    }
}
