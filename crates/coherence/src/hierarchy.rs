//! Two-level hierarchical coherence: clusters of snooping peers under a
//! sharded inter-cluster directory spine.
//!
//! Nodes are grouped into fixed-size **clusters**; each cluster is an
//! ordered intra-cluster broadcast domain riding the existing totally
//! ordered request network. Above the clusters sits a **directory
//! spine** sharded across `banks` address-interleaved banks; the bank
//! homing a block tracks its owner (exact node) and a sharer superset at
//! **cluster granularity**, and forwards GetS/GetM/PutM across cluster
//! boundaries through the BASH retry machinery:
//!
//! * a "broadcast" request becomes a **cluster-cast** — the requestor's
//!   whole cluster plus the block's home bank (the spine sees every
//!   request, like the home in flat BASH);
//! * a "unicast" stays the dualcast {home bank, self};
//! * when the cluster-cast misses the owner or a sharing cluster, the
//!   bank's sufficiency check fails and it retries toward
//!   {sharing clusters ∪ owner ∪ requestor ∪ bank}, escalating to a full
//!   broadcast on the third retry exactly as in flat BASH — the spine's
//!   cross-cluster forwarding is the retry path;
//! * sharer state is kept cluster-expanded **identically** on both the
//!   bank and the owning cache (footnote 2), so their sufficiency
//!   verdicts always agree.
//!
//! All three protocol personalities ride this one engine under a
//! hierarchy: Snooping pins every request to a cluster-cast, Directory
//! pins every request to the dualcast, and BASH chooses per cluster via
//! the paper's adaptive mechanism fed with cluster-mean utilization (see
//! `bash-sim`'s sampling). See `docs/HIERARCHY.md` for the full flows.

use bash_net::{NodeId, NodeSet};

use crate::types::BlockAddr;

/// Shape of the two-level hierarchy: how nodes group into snooping
/// clusters and how home state shards across directory-spine banks.
///
/// Both `cluster_size` and `banks` must divide the node count (validated
/// by the system configuration / builder before any controller is
/// built): clusters are the contiguous node ranges
/// `[k·cluster_size, (k+1)·cluster_size)`, and bank `b` lives on node
/// `b · (nodes / banks)` — banks land on distinct clusters first, then
/// wrap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// Nodes per snooping cluster (≥ 1, divides the node count).
    pub cluster_size: u16,
    /// Address-interleaved directory-spine banks (≥ 1, divides the node
    /// count).
    pub banks: u16,
}

impl HierarchyConfig {
    /// A hierarchy of `cluster_size`-node clusters with `banks` spine
    /// banks.
    pub fn new(cluster_size: u16, banks: u16) -> Self {
        HierarchyConfig {
            cluster_size,
            banks,
        }
    }

    /// Checks this shape against a node count. Returns a human-readable
    /// reason when it does not fit.
    pub fn check(&self, nodes: u16) -> Result<(), String> {
        if self.cluster_size == 0 {
            return Err("hierarchy cluster size must be at least 1".into());
        }
        if self.banks == 0 {
            return Err("hierarchy bank count must be at least 1".into());
        }
        if !nodes.is_multiple_of(self.cluster_size) {
            return Err(format!(
                "cluster size {} does not divide the node count {nodes}",
                self.cluster_size
            ));
        }
        if !nodes.is_multiple_of(self.banks) {
            return Err(format!(
                "bank count {} does not divide the node count {nodes}",
                self.banks
            ));
        }
        Ok(())
    }

    /// Number of clusters at `nodes` nodes.
    pub fn clusters(&self, nodes: u16) -> u16 {
        nodes / self.cluster_size
    }

    /// The cluster index of `node`.
    pub fn cluster_of(&self, node: NodeId) -> u16 {
        node.0 / self.cluster_size
    }

    /// All members of `node`'s cluster (including `node` itself).
    ///
    /// Built as one lazy contiguous span: at 4096 nodes a cluster mask
    /// (and the cluster-casts unioned from it) never materializes
    /// per-node bits — the fabric expands it member-by-member only at
    /// delivery fan-out.
    pub fn cluster_set(&self, node: NodeId) -> NodeSet {
        let first = self.cluster_of(node) * self.cluster_size;
        NodeSet::range(first, first + self.cluster_size)
    }

    /// The spine bank homing `block` (blocks interleave across banks).
    pub fn bank_of(&self, block: BlockAddr) -> u16 {
        (block.0 % self.banks as u64) as u16
    }

    /// The node hosting spine bank `bank`.
    pub fn bank_node(&self, bank: u16, nodes: u16) -> NodeId {
        NodeId(bank * (nodes / self.banks))
    }

    /// The home node of `block` under this hierarchy: the node hosting
    /// its spine bank. Replaces the flat `BlockAddr::home` interleaving.
    pub fn home(&self, block: BlockAddr, nodes: u16) -> NodeId {
        self.bank_node(self.bank_of(block), nodes)
    }

    /// True when `a` and `b` are in the same cluster.
    pub fn same_cluster(&self, a: NodeId, b: NodeId) -> bool {
        self.cluster_of(a) == self.cluster_of(b)
    }
}

/// The home node of `block`: the hierarchical bank mapping when a
/// hierarchy is configured, the flat per-node interleaving otherwise.
pub fn home_of(block: BlockAddr, nodes: u16, hier: Option<&HierarchyConfig>) -> NodeId {
    match hier {
        Some(h) => h.home(block, nodes),
        None => block.home(nodes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clusters_partition_the_nodes() {
        let h = HierarchyConfig::new(4, 4);
        assert!(h.check(16).is_ok());
        assert_eq!(h.clusters(16), 4);
        assert_eq!(h.cluster_of(NodeId(0)), 0);
        assert_eq!(h.cluster_of(NodeId(3)), 0);
        assert_eq!(h.cluster_of(NodeId(4)), 1);
        assert_eq!(h.cluster_of(NodeId(15)), 3);
        let c1 = h.cluster_set(NodeId(5));
        assert_eq!(c1.len(), 4);
        for n in 4..8 {
            assert!(c1.contains(NodeId(n)));
        }
        assert!(!c1.contains(NodeId(3)));
        assert!(h.same_cluster(NodeId(4), NodeId(7)));
        assert!(!h.same_cluster(NodeId(3), NodeId(4)));
    }

    #[test]
    fn banks_interleave_blocks_and_land_on_stride_nodes() {
        let h = HierarchyConfig::new(4, 4);
        assert_eq!(h.bank_of(BlockAddr(0)), 0);
        assert_eq!(h.bank_of(BlockAddr(5)), 1);
        assert_eq!(h.bank_of(BlockAddr(7)), 3);
        // 16 nodes / 4 banks: banks at nodes 0, 4, 8, 12 — one per cluster.
        assert_eq!(h.bank_node(0, 16), NodeId(0));
        assert_eq!(h.bank_node(3, 16), NodeId(12));
        assert_eq!(h.home(BlockAddr(6), 16), NodeId(8));
        assert_eq!(home_of(BlockAddr(6), 16, Some(&h)), NodeId(8));
        assert_eq!(home_of(BlockAddr(6), 16, None), NodeId(6));
    }

    #[test]
    fn check_rejects_misfits() {
        assert!(HierarchyConfig::new(0, 1).check(8).is_err());
        assert!(HierarchyConfig::new(4, 0).check(8).is_err());
        assert!(HierarchyConfig::new(3, 1).check(8).is_err());
        assert!(HierarchyConfig::new(4, 3).check(8).is_err());
        assert!(HierarchyConfig::new(4, 2).check(8).is_ok());
        assert!(HierarchyConfig::new(8, 8).check(8).is_ok());
        assert!(HierarchyConfig::new(16, 4).check(64).is_ok());
    }
}
