//! The ordered-request-network cache controller used by both **Snooping**
//! and **BASH** (the paper derives BASH from its snooping protocol, §3.3;
//! processors "react identically to requests, regardless of whether they are
//! unicasts, multicasts, or broadcasts").
//!
//! # Protocol walk-through
//!
//! A demand miss issues a GetS/GetM on the totally ordered request network.
//! Snooping always broadcasts; BASH consults the adaptive mechanism and
//! either broadcasts or *dualcasts* to {home, self} (the paper's "unicast" —
//! the self-copy is needed as the order **marker**). The requestor's own
//! copy returning from the network fixes the transaction's place in the
//! total order.
//!
//! ## Responding and the defer discipline
//!
//! Every cache processes ordered requests for a block strictly in delivery
//! (= total) order. A request is answered by the block's *serialized owner*
//! at the request's order point:
//!
//! * a cache in stable M/O (or holding a still-valid writeback buffer entry)
//!   responds directly — in BASH only if the request's destination mask
//!   covers the sharers it tracks (paper footnote 2), since an insufficient
//!   request will be retried by the home and must not be answered twice;
//! * a cache that has seen its own GetM marker but not yet its data (an
//!   *owner-elect*) cannot respond yet; it **defers** such requests and
//!   replays them when its data arrives;
//! * everyone else invalidates on GetM (silent S drop is always safe) or
//!   ignores.
//!
//! ## BASH retries and the serialization tag
//!
//! An insufficient BASH request is retried by the home as a multicast; the
//! transaction then *serializes* at the first sufficient copy, not at the
//! original marker. Deferred requests ordered **before** that serialization
//! point belong to the previous owner and must be replayed as no-ops; those
//! **after** it are this cache's responsibility. To split the deferred
//! queue exactly, data responses carry the network order number of the
//! sufficient request copy they answer ([`ProtoMsg::Data::serialized_at`] —
//! the role the GS320 plays with its marker messages).
//!
//! ## Writebacks
//!
//! PutM travels on the ordered network (broadcast in Snooping, dualcast in
//! BASH). Until its own PutM marker arrives the evicting cache remains the
//! owner and serves requests from the writeback buffer; a foreign GetM
//! ordered first *squashes* the writeback (the entry turns invalid and no
//! data is sent — the home, which tracks the owner's identity, ignores the
//! stale PutM). On an unsquashed marker the cache sends the data to the
//! home, which stalls the block until the data arrives.

use bash_adaptive::{AdaptorConfig, BandwidthAdaptor, Cast};
use bash_kernel::{Duration, Time};
use bash_net::{Message, NodeId, NodeSet, VnetId};

use crate::actions::{AccessOutcome, Action, ActionSink};
use crate::blocktable::BlockTable;
use crate::cache::{CacheArray, CacheGeometry, Mosi};
use crate::common::{CacheStats, DeferredReq, Mshr, WbEntry};
use crate::hierarchy::{home_of, HierarchyConfig};
use crate::registry::TransitionLog;
use crate::types::{
    BlockAddr, BlockData, ProcOp, ProtoMsg, Request, TxnId, TxnKind, CONTROL_MSG_BYTES,
    DATA_MSG_BYTES,
};

/// Which protocol personality this controller runs with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnoopMode {
    /// Pure snooping: every request broadcast, no retries or nacks exist.
    Snooping,
    /// BASH: adaptive broadcast/dualcast, sufficiency checks, retries,
    /// nack-triggered broadcast reissue.
    Bash,
}

/// Per-block side state combined into one open-addressed table entry:
/// the writeback buffer slot and (BASH footnote 2) the sharer set
/// tracked while this cache owns the block. One probe resolves both.
#[derive(Debug, Clone, Default)]
struct SideBlock {
    wb: Option<WbEntry>,
    tracked: NodeSet,
}

/// A deferred request together with its network order number.
#[derive(Debug, Clone)]
struct OrderedDeferred {
    inner: DeferredReq,
    order: u64,
}

/// The cache-side controller for Snooping and BASH.
#[derive(Debug)]
pub struct SnoopCacheCtrl {
    node: NodeId,
    nodes: u16,
    mode: SnoopMode,
    /// Two-level hierarchy, when configured: "broadcast" requests become
    /// cluster-casts (own cluster ∪ home bank), home lookups go through
    /// the bank map, and tracked sharer sets are kept cluster-expanded in
    /// lockstep with the spine bank's records.
    hier: Option<HierarchyConfig>,
    adaptor: Option<BandwidthAdaptor>,
    cache: CacheArray,
    mshr: Option<Mshr>,
    deferred: Vec<OrderedDeferred>,
    /// Scratch buffer the deferred queue is swapped into while replaying,
    /// so replays reuse one allocation instead of `drain(..).collect()`ing
    /// a fresh `Vec` every time.
    replay_scratch: Vec<OrderedDeferred>,
    /// Combined per-block side state (writeback slot + tracked sharers).
    side: BlockTable<SideBlock>,
    /// Number of writeback entries currently open in `side` (quiescence
    /// checks without a table scan).
    wb_in_flight: usize,
    stalled_op: Option<(ProcOp, TxnId, Time)>,
    txn_seq: u64,
    provide_latency: Duration,
    /// Drop (and count) deliveries that violate the network contract
    /// instead of panicking — set by the driver for the broken-network
    /// fault injections.
    tolerant: bool,
    stats: CacheStats,
    log: TransitionLog,
}

impl SnoopCacheCtrl {
    /// Builds a pure-snooping cache controller.
    pub fn new_snooping(
        node: NodeId,
        nodes: u16,
        geometry: CacheGeometry,
        provide_latency: Duration,
        coverage: bool,
    ) -> Self {
        Self::build(
            node,
            nodes,
            geometry,
            provide_latency,
            SnoopMode::Snooping,
            None,
            None,
            coverage,
        )
    }

    /// Builds a BASH cache controller with the given adaptive mechanism
    /// configuration (shared by reference across every node's controller).
    pub fn new_bash(
        node: NodeId,
        nodes: u16,
        geometry: CacheGeometry,
        provide_latency: Duration,
        adaptor: &AdaptorConfig,
        coverage: bool,
    ) -> Self {
        let a = BandwidthAdaptor::new(adaptor, node.0 as u64 + 1);
        Self::build(
            node,
            nodes,
            geometry,
            provide_latency,
            SnoopMode::Bash,
            None,
            Some(a),
            coverage,
        )
    }

    /// Builds a hierarchical cache controller: the BASH engine with
    /// cluster-cast "broadcasts" and bank-mapped homes. The protocol
    /// personality is carried entirely by `adaptor.mode` (pinned
    /// AlwaysBroadcast for Snooping, AlwaysUnicast for Directory,
    /// Adaptive for BASH).
    pub fn new_hierarchical(
        node: NodeId,
        nodes: u16,
        geometry: CacheGeometry,
        provide_latency: Duration,
        adaptor: &AdaptorConfig,
        hier: HierarchyConfig,
        coverage: bool,
    ) -> Self {
        let a = BandwidthAdaptor::new(adaptor, node.0 as u64 + 1);
        Self::build(
            node,
            nodes,
            geometry,
            provide_latency,
            SnoopMode::Bash,
            Some(hier),
            Some(a),
            coverage,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        node: NodeId,
        nodes: u16,
        geometry: CacheGeometry,
        provide_latency: Duration,
        mode: SnoopMode,
        hier: Option<HierarchyConfig>,
        adaptor: Option<BandwidthAdaptor>,
        coverage: bool,
    ) -> Self {
        SnoopCacheCtrl {
            node,
            nodes,
            mode,
            hier,
            adaptor,
            cache: CacheArray::new(geometry),
            mshr: None,
            deferred: Vec::new(),
            replay_scratch: Vec::new(),
            side: BlockTable::new(),
            wb_in_flight: 0,
            stalled_op: None,
            txn_seq: 0,
            provide_latency,
            tolerant: false,
            stats: CacheStats::default(),
            log: if coverage {
                TransitionLog::enabled()
            } else {
                TransitionLog::new()
            },
        }
    }

    /// This controller's node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// The transition coverage log (enabled in tester/Table 1 runs).
    pub fn log(&self) -> &TransitionLog {
        &self.log
    }

    /// The adaptive mechanism (BASH only); the driver feeds it utilization
    /// samples.
    pub fn adaptor_mut(&mut self) -> Option<&mut BandwidthAdaptor> {
        self.adaptor.as_mut()
    }

    /// Read access to the cache array (invariant checks in tests).
    pub fn cache(&self) -> &CacheArray {
        &self.cache
    }

    /// Makes unexpected deliveries (duplicated or reordered network
    /// traffic) drop — counted in `spurious_dropped` — instead of panic.
    /// The verification harness enables this for its broken-network fault
    /// injections, which deliberately violate the delivery contract the
    /// asserts encode; normal runs keep every assert armed.
    pub fn set_tolerant(&mut self, tolerant: bool) {
        self.tolerant = tolerant;
    }

    /// True when no transaction or writeback is in flight.
    pub fn is_quiescent(&self) -> bool {
        self.mshr.is_none() && self.wb_in_flight == 0 && self.stalled_op.is_none()
    }

    // ------------------------------------------------------------------
    // Processor interface
    // ------------------------------------------------------------------

    /// Handles a processor load/store, emitting any resulting actions into
    /// `sink`. At most one demand miss may be outstanding (blocking
    /// processor).
    ///
    /// # Panics
    ///
    /// Panics if called while a demand miss is outstanding.
    pub fn access(&mut self, now: Time, op: ProcOp, sink: &mut ActionSink) -> AccessOutcome {
        assert!(
            self.mshr.is_none() && self.stalled_op.is_none(),
            "blocking processor issued a second outstanding access"
        );
        let block = op.block();
        let ev = match op {
            ProcOp::Load { .. } => "Load",
            ProcOp::Store { .. } => "Store",
        };

        // A miss to a block whose writeback is still in flight waits for the
        // writeback to resolve, then issues.
        if self.wb_entry(block).is_some() {
            let before = self.label(block);
            let txn = self.next_txn();
            self.stalled_op = Some((op, txn, now));
            self.stats.misses += 1;
            self.log.record(before, ev, before);
            return AccessOutcome::Miss { txn };
        }

        let state = self.cache.touch(block);
        match (op, state) {
            (ProcOp::Load { word, .. }, Some(_)) => {
                let value = self.cache.data(block).expect("resident").read(word);
                self.stats.hits += 1;
                let s = self.label(block);
                self.log.record(s, "Load", s);
                AccessOutcome::Hit { value }
            }
            (ProcOp::Store { word, value, .. }, Some(Mosi::M)) => {
                self.cache.write_word(block, word, value);
                self.stats.hits += 1;
                self.log.record("M", "Store", "M");
                AccessOutcome::Hit { value }
            }
            _ => {
                // Miss: Load from I → GetS; Store from I/S/O → GetM.
                let before = self.label(block);
                let txn = self.next_txn();
                self.issue_miss(now, op, txn, sink);
                self.log.record(before, ev, self.label(block));
                AccessOutcome::Miss { txn }
            }
        }
    }

    fn next_txn(&mut self) -> TxnId {
        self.txn_seq += 1;
        TxnId {
            node: self.node,
            seq: self.txn_seq,
        }
    }

    fn issue_miss(&mut self, now: Time, op: ProcOp, txn: TxnId, sink: &mut ActionSink) {
        let kind = op.miss_kind();
        let block = op.block();
        self.stats.misses += 1;
        self.mshr = Some(Mshr::new(op, kind, txn, now));
        let mask = self.request_mask(block);
        sink.send(self.request_msg(kind, block, txn, mask));
    }

    /// The home node of `block`: the spine bank under a hierarchy, the
    /// flat per-node interleaving otherwise.
    fn home(&self, block: BlockAddr) -> NodeId {
        home_of(block, self.nodes, self.hier.as_ref())
    }

    /// The "broadcast" destination set: every node in the flat protocols,
    /// the requestor's cluster plus the block's home bank under a
    /// hierarchy (the spine must see every request, like the home in flat
    /// BASH; cross-cluster reach comes from the bank's retries).
    fn broadcast_mask(&self, block: BlockAddr) -> NodeSet {
        match &self.hier {
            None => NodeSet::all(self.nodes as usize),
            Some(h) => {
                let mut m = h.cluster_set(self.node);
                m.insert(self.home(block));
                m
            }
        }
    }

    /// Chooses the destination mask for a demand request.
    fn request_mask(&mut self, block: BlockAddr) -> NodeSet {
        match self.mode {
            SnoopMode::Snooping => {
                self.stats.broadcasts_sent += 1;
                self.broadcast_mask(block)
            }
            SnoopMode::Bash => {
                let cast = self.adaptor.as_mut().expect("bash adaptor").decide();
                match cast {
                    Cast::Broadcast => {
                        self.stats.broadcasts_sent += 1;
                        self.broadcast_mask(block)
                    }
                    Cast::Unicast => {
                        self.stats.unicasts_sent += 1;
                        // The paper's "unicast" is a dualcast: home for the
                        // data, self for the order marker.
                        NodeSet::from_nodes([self.home(block), self.node])
                    }
                }
            }
        }
    }

    fn request_msg(
        &self,
        kind: TxnKind,
        block: BlockAddr,
        txn: TxnId,
        mask: NodeSet,
    ) -> Message<ProtoMsg> {
        Message::ordered(
            self.node,
            mask,
            CONTROL_MSG_BYTES,
            ProtoMsg::Request(Request {
                kind,
                block,
                requestor: self.node,
                txn,
                retry: 0,
                from_dir: false,
            }),
        )
    }

    // ------------------------------------------------------------------
    // Network interface
    // ------------------------------------------------------------------

    /// Handles a delivery from the crossbar, emitting resulting actions
    /// into `sink`. `order` is the network's total order number for ordered
    /// messages.
    pub fn on_delivery(
        &mut self,
        now: Time,
        msg: &Message<ProtoMsg>,
        order: Option<u64>,
        sink: &mut ActionSink,
    ) {
        match &msg.payload {
            ProtoMsg::Request(req) => {
                let order = order.expect("requests travel on the ordered network");
                if req.requestor == self.node {
                    self.on_own_request(now, req, &msg.dests, order, sink)
                } else {
                    self.on_foreign_request(now, req, &msg.dests, order, false, sink)
                }
            }
            ProtoMsg::Data {
                txn,
                block,
                data,
                from_cache,
                ..
            } => self.on_data(now, *txn, *block, *data, *from_cache, msg, sink),
            ProtoMsg::Nack { txn, block } => self.on_nack(now, *txn, *block, sink),
            ProtoMsg::WbAck { .. } => {
                unreachable!("WbAck does not exist in Snooping/BASH")
            }
            ProtoMsg::WbData { .. } => {
                unreachable!("WbData is addressed to memory controllers")
            }
        }
    }

    // ---- own request copies (markers, retries, writeback markers) ----

    fn on_own_request(
        &mut self,
        now: Time,
        req: &Request,
        mask: &NodeSet,
        order: u64,
        sink: &mut ActionSink,
    ) {
        match req.kind {
            TxnKind::PutM => self.on_own_putm_marker(now, req, sink),
            TxnKind::GetS | TxnKind::GetM => {
                let matches = self
                    .mshr
                    .as_ref()
                    .map(|m| m.txn == req.txn)
                    .unwrap_or(false);
                if !matches {
                    // A retry copy of a transaction that already completed,
                    // or (impossible in Snooping) a stray marker.
                    debug_assert!(
                        self.mode == SnoopMode::Bash,
                        "snooping saw an unmatched own request"
                    );
                    return;
                }
                if req.retry == 0 {
                    self.on_own_marker(now, req, mask, order, sink)
                } else {
                    self.on_own_retry(now, req, mask, order, sink)
                }
            }
        }
    }

    /// Our original request returned: the marker fixing our place in the
    /// total order.
    fn on_own_marker(
        &mut self,
        now: Time,
        req: &Request,
        mask: &NodeSet,
        order: u64,
        sink: &mut ActionSink,
    ) {
        let block = req.block;
        let before = self.label(block);
        {
            let m = self.mshr.as_mut().expect("checked");
            debug_assert!(!m.have_marker, "duplicate marker");
            m.have_marker = true;
        }

        // Owner upgrade (O → M): we already hold the data; the question is
        // only whether this request copy reached every tracked sharer.
        if req.kind == TxnKind::GetM && self.cache.state(block) == Some(Mosi::O) {
            let sufficient = match self.mode {
                SnoopMode::Snooping => true,
                SnoopMode::Bash => {
                    let sharers = self.tracked_sharers(block);
                    mask.is_superset(&sharers)
                }
            };
            if sufficient {
                self.complete_upgrade(now, sink);
                self.log.record(before, "OwnReq", self.label(block));
                return;
            }
            self.mshr
                .as_mut()
                .expect("checked")
                .awaiting_sufficient_upgrade = true;
            self.log.record(before, "OwnReq", self.label(block));
            return;
        }

        let have_data = self.mshr.as_ref().expect("checked").data.is_some();
        if have_data {
            // Data arrived before the marker: serialization is the marker.
            self.complete_miss(now, Some(order), sink);
        }
        self.log.record(before, "OwnReq", self.label(block));
    }

    /// A home-injected retry of our own transaction (BASH).
    fn on_own_retry(
        &mut self,
        now: Time,
        req: &Request,
        mask: &NodeSet,
        _order: u64,
        sink: &mut ActionSink,
    ) {
        debug_assert_eq!(self.mode, SnoopMode::Bash);
        let block = req.block;
        let m = self.mshr.as_ref().expect("checked");
        if m.awaiting_sufficient_upgrade {
            let sharers = self.tracked_sharers(block);
            if mask.is_superset(&sharers) {
                let before = self.label(block);
                self.complete_upgrade(now, sink);
                self.log.record(before, "OwnRetry", self.label(block));
            }
        }
        // Otherwise informational only: the responder acts on this copy.
    }

    /// Our PutM returned: if the writeback was not squashed by an earlier
    /// ordered GetM, send the data to the home.
    fn on_own_putm_marker(&mut self, now: Time, req: &Request, sink: &mut ActionSink) {
        let block = req.block;
        let before = self.label(block);
        let entry = self
            .side
            .get_mut(block)
            .and_then(|b| {
                b.tracked = NodeSet::EMPTY;
                b.wb.take()
            })
            .expect("own PutM without wb entry");
        self.wb_in_flight -= 1;
        if entry.valid {
            sink.send_after(
                self.provide_latency,
                Message::unordered(
                    self.node,
                    self.home(block),
                    VnetId::DATA,
                    DATA_MSG_BYTES,
                    ProtoMsg::WbData {
                        block,
                        from: self.node,
                        data: entry.data,
                    },
                ),
            );
        }
        self.log.record(before, "OwnPutM", self.label(block));
        // A processor access stalled behind this writeback can now issue.
        if let Some((op, txn, _issued)) = self.stalled_op.take() {
            if op.block() == block {
                self.stats.misses -= 1; // issue_miss will recount it
                self.issue_miss(now, op, txn, sink);
            } else {
                self.stalled_op = Some((op, txn, _issued));
            }
        }
    }

    // ---- foreign requests ----

    /// Handles a foreign request (or replays a deferred one when `replay`).
    fn on_foreign_request(
        &mut self,
        _now: Time,
        req: &Request,
        mask: &NodeSet,
        order: u64,
        replay: bool,
        sink: &mut ActionSink,
    ) {
        let block = req.block;
        if req.kind == TxnKind::PutM {
            // Foreign writeback: only the home cares.
            return;
        }

        // Defer discipline: a non-owner that has seen its own marker cannot
        // process later requests for the block until its transaction
        // completes (it may be the owner-elect obliged to answer them).
        if !replay {
            let must_defer = self
                .mshr
                .as_ref()
                .map(|m| m.block == block && m.have_marker && !self.is_local_owner(block))
                .unwrap_or(false);
            if must_defer {
                self.deferred.push(OrderedDeferred {
                    inner: DeferredReq {
                        req: *req,
                        mask: mask.clone(),
                    },
                    order,
                });
                return;
            }
        }

        let before = self.label(block);
        let ev: &'static str = match (req.kind, req.retry > 0) {
            (TxnKind::GetS, false) => "ForGetS",
            (TxnKind::GetM, false) => "ForGetM",
            (TxnKind::GetS, true) => "ForRetryGetS",
            (TxnKind::GetM, true) => "ForRetryGetM",
            (TxnKind::PutM, _) => unreachable!(),
        };

        if self.is_local_owner(block) {
            // BASH: answer only sufficient requests; the home retries the
            // rest and our silence prevents a double response. The check
            // must mirror `is_sufficient` exactly: a GetS only needs the
            // owner (which received this very message), a GetM additionally
            // needs every tracked sharer covered so invalidations reach
            // them.
            let sufficient = match (self.mode, req.kind) {
                (SnoopMode::Snooping, _) => true,
                (SnoopMode::Bash, TxnKind::GetS) => true,
                (SnoopMode::Bash, TxnKind::GetM) => {
                    let sharers = self.tracked_sharers(block);
                    mask.is_superset(&sharers)
                }
                (SnoopMode::Bash, TxnKind::PutM) => unreachable!(),
            };
            if sufficient {
                self.respond_with_data(req, order, sink);
                match req.kind {
                    TxnKind::GetS => {
                        // Stay owner: M→O (or O→O / writeback entry stays).
                        if self.cache.state(block) == Some(Mosi::M) {
                            self.cache.set_state(block, Mosi::O);
                        }
                        // Under a hierarchy the spine records sharers at
                        // cluster granularity; track the requestor's whole
                        // cluster so our sufficiency verdicts stay in
                        // lockstep with the bank's.
                        let hier = self.hier;
                        let tracked = &mut self.side.or_default(block).tracked;
                        match &hier {
                            None => {
                                tracked.insert(req.requestor);
                            }
                            Some(h) => *tracked = tracked.union(&h.cluster_set(req.requestor)),
                        }
                    }
                    TxnKind::GetM => {
                        // Ownership moves to the requestor.
                        if self.cache.state(block).is_some() {
                            self.cache.invalidate(block);
                        } else if let Some(entry) =
                            self.side.get_mut(block).and_then(|b| b.wb.as_mut())
                        {
                            entry.valid = false;
                            self.stats.writebacks_squashed += 1;
                        }
                        if let Some(b) = self.side.get_mut(block) {
                            b.tracked = NodeSet::EMPTY;
                        }
                        // A pending O→M upgrade just lost its data: fall
                        // back to waiting for the new owner's response.
                        if let Some(m) = self.mshr.as_mut() {
                            if m.block == block {
                                m.awaiting_sufficient_upgrade = false;
                            }
                        }
                    }
                    TxnKind::PutM => unreachable!(),
                }
            }
        } else {
            // Not the owner: a GetM invalidates any S copy (always safe,
            // even for requests that will be retried).
            if req.kind == TxnKind::GetM && self.cache.state(block) == Some(Mosi::S) {
                self.cache.invalidate(block);
            }
        }
        self.log.record(before, ev, self.label(block));
    }

    /// True when this cache is the block's current owner (stable M/O or a
    /// still-valid writeback buffer entry).
    fn is_local_owner(&self, block: BlockAddr) -> bool {
        matches!(self.cache.state(block), Some(Mosi::M) | Some(Mosi::O))
            || self.wb_entry(block).map(|e| e.valid).unwrap_or(false)
    }

    /// The open writeback entry for `block`, if any.
    fn wb_entry(&self, block: BlockAddr) -> Option<&WbEntry> {
        self.side.get(block).and_then(|b| b.wb.as_ref())
    }

    /// The sharer set tracked for `block` (footnote 2), empty when none.
    fn tracked_sharers(&self, block: BlockAddr) -> NodeSet {
        self.side
            .get(block)
            .map(|b| b.tracked.clone())
            .unwrap_or(NodeSet::EMPTY)
    }

    fn respond_with_data(&mut self, req: &Request, order: u64, sink: &mut ActionSink) {
        let block = req.block;
        let data = self
            .cache
            .data(block)
            .or_else(|| self.wb_entry(block).map(|e| e.data))
            .expect("owner has data");
        self.stats.snoop_responses += 1;
        sink.send_after(
            self.provide_latency,
            Message::unordered(
                self.node,
                req.requestor,
                VnetId::DATA,
                DATA_MSG_BYTES,
                ProtoMsg::Data {
                    txn: req.txn,
                    block,
                    data,
                    from_cache: true,
                    serialized_at: Some(order),
                },
            ),
        );
    }

    // ---- responses ----

    #[allow(clippy::too_many_arguments)]
    fn on_data(
        &mut self,
        now: Time,
        txn: TxnId,
        block: BlockAddr,
        data: BlockData,
        from_cache: bool,
        msg: &Message<ProtoMsg>,
        sink: &mut ActionSink,
    ) {
        let serialized_at = match &msg.payload {
            ProtoMsg::Data { serialized_at, .. } => *serialized_at,
            _ => None,
        };
        let before = self.label(block);
        if self.tolerant && self.mshr.as_ref().is_none_or(|m| m.txn != txn) {
            // Data for a transaction we no longer (or never) had open — a
            // duplicated/reordered network delivered it to a closed miss.
            self.stats.spurious_dropped += 1;
            return;
        }
        let have_marker = {
            let m = self.mshr.as_mut().expect("data without outstanding miss");
            assert_eq!(m.txn, txn, "data for a foreign transaction");
            debug_assert_eq!(m.block, block);
            m.data = Some((data, from_cache));
            m.have_marker
        };
        if have_marker {
            self.complete_miss(now, serialized_at, sink);
        } // else IS_A / IM_A: wait for the marker
        self.log.record(before, "Data", self.label(block));
    }

    fn on_nack(&mut self, now: Time, txn: TxnId, block: BlockAddr, sink: &mut ActionSink) {
        assert_eq!(self.mode, SnoopMode::Bash, "nacks exist only in BASH");
        let before = self.label(block);
        if self.tolerant && self.mshr.as_ref().is_none_or(|m| m.txn != txn) {
            // A nack for a transaction that already completed (duplicated
            // or reordered network): replaying the deferred queue or
            // reissuing would corrupt an unrelated in-flight miss.
            self.stats.spurious_dropped += 1;
            return;
        }
        self.stats.nacks_received += 1;
        // The failed attempt changed no global state: replay anything we
        // deferred as a bystander, then reissue as a broadcast (guaranteed
        // sufficient, resolving the potential deadlock). Even under a
        // hierarchy this stays a *full* broadcast — a cluster-cast could
        // miss a foreign-cluster owner and nack again forever.
        let mut replays = std::mem::take(&mut self.replay_scratch);
        std::mem::swap(&mut self.deferred, &mut replays);
        for d in replays.drain(..) {
            self.on_foreign_request(now, &d.inner.req, &d.inner.mask, d.order, true, sink);
        }
        self.replay_scratch = replays;
        let m = self.mshr.as_mut().expect("nack without outstanding miss");
        assert_eq!(m.txn, txn, "nack for a foreign transaction");
        m.have_marker = false;
        m.attempts += 1;
        self.stats.nack_reissues += 1;
        self.stats.broadcasts_sent += 1;
        let kind = m.kind;
        let mask = NodeSet::all(self.nodes as usize);
        sink.send(self.request_msg(kind, block, txn, mask));
        self.log.record(before, "Nack", self.label(block));
    }

    // ---- completion ----

    /// Completes an O→M upgrade from our own data.
    fn complete_upgrade(&mut self, now: Time, sink: &mut ActionSink) {
        let m = self.mshr.take().expect("upgrade without mshr");
        let block = m.block;
        debug_assert_eq!(self.cache.state(block), Some(Mosi::O));
        self.cache.set_state(block, Mosi::M);
        let value = match m.op {
            ProcOp::Store { word, value, .. } => {
                self.cache.write_word(block, word, value);
                value
            }
            ProcOp::Load { .. } => unreachable!("upgrades are stores"),
        };
        // Our sufficient GetM invalidated every tracked sharer.
        self.side.or_default(block).tracked = NodeSet::EMPTY;
        sink.push(Action::MissDone {
            txn: m.txn,
            kind: m.kind,
            block,
            value,
            from_cache: true,
        });
        self.replay_deferred(now, None, sink);
    }

    /// Completes a miss once both the marker and the data have arrived.
    /// `serialized_at` is the order number of the sufficient request copy
    /// (None when original == sufficient, as in Snooping).
    fn complete_miss(&mut self, now: Time, serialized_at: Option<u64>, sink: &mut ActionSink) {
        let m = self.mshr.take().expect("complete without mshr");
        let block = m.block;
        let (data, from_cache) = m.data.expect("complete without data");
        if from_cache {
            self.stats.sharing_misses += 1;
        }

        let new_state = match m.kind {
            TxnKind::GetS => Mosi::S,
            TxnKind::GetM => Mosi::M,
            TxnKind::PutM => unreachable!(),
        };
        // An S→M upgrade still holds a (stale) copy: drop it first so the
        // fill below replaces it with the authoritative data. The freed way
        // guarantees the insert evicts nothing extra.
        if self.cache.state(block).is_some() {
            self.cache.invalidate(block);
        }
        self.insert_with_eviction(block, new_state, data, sink);

        let value = match m.op {
            ProcOp::Load { word, .. } => self.cache.data(block).expect("resident").read(word),
            ProcOp::Store { word, value, .. } => {
                self.cache.write_word(block, word, value);
                value
            }
        };
        if m.kind == TxnKind::GetM {
            self.side.or_default(block).tracked = NodeSet::EMPTY;
        }
        sink.push(Action::MissDone {
            txn: m.txn,
            kind: m.kind,
            block,
            value,
            from_cache,
        });
        self.replay_deferred(now, serialized_at, sink);
    }

    /// Inserts a filled block, starting a writeback for any M/O victim.
    fn insert_with_eviction(
        &mut self,
        block: BlockAddr,
        state: Mosi,
        data: BlockData,
        sink: &mut ActionSink,
    ) {
        if let Some(victim) = self.cache.insert(block, state, data) {
            match victim.state {
                Mosi::S => {} // silent S→I
                Mosi::M | Mosi::O => {
                    let before = self.label(victim.block);
                    self.stats.writebacks += 1;
                    let slot = &mut self.side.or_default(victim.block).wb;
                    debug_assert!(slot.is_none(), "victim already has a writeback in flight");
                    *slot = Some(WbEntry {
                        data: victim.data,
                        state_was: victim.state,
                        valid: true,
                    });
                    self.wb_in_flight += 1;
                    // Writebacks are dualcast {home, self} in both modes:
                    // the PutM still takes a slot in the request total order
                    // (the self-copy is the squash-detection marker), but
                    // only the home must observe it — other caches ignore
                    // foreign PutMs. Real snooping systems likewise send
                    // writebacks point-to-point to the memory bank.
                    let mask = NodeSet::from_nodes([self.home(victim.block), self.node]);
                    let txn = self.next_txn();
                    sink.send(self.request_msg(TxnKind::PutM, victim.block, txn, mask));
                    self.log.record(before, "Replace", self.label(victim.block));
                }
            }
        }
    }

    /// Replays deferred requests after completion. Requests ordered before
    /// the serialization point were the previous owner's responsibility and
    /// replay as no-ops; later ones are processed normally from the (owner)
    /// state we just reached. The deferred queue is swapped into a reusable
    /// scratch buffer, so replaying allocates nothing in steady state.
    fn replay_deferred(&mut self, now: Time, serialized_at: Option<u64>, sink: &mut ActionSink) {
        let mut drained = std::mem::take(&mut self.replay_scratch);
        std::mem::swap(&mut self.deferred, &mut drained);
        for d in drained.drain(..) {
            let bystander = serialized_at.map(|s| d.order < s).unwrap_or(false);
            if bystander {
                continue;
            }
            self.on_foreign_request(now, &d.inner.req, &d.inner.mask, d.order, true, sink);
        }
        self.replay_scratch = drained;
    }

    // ------------------------------------------------------------------
    // Transition registry labels
    // ------------------------------------------------------------------

    /// Human-readable transient/stable state label for the block (feeds
    /// Table 1).
    fn label(&self, block: BlockAddr) -> &'static str {
        if let Some(m) = &self.mshr {
            if m.block == block {
                let upgrade = self.cache.state(block) == Some(Mosi::O);
                return match (m.kind, upgrade, m.have_marker, m.data.is_some()) {
                    (TxnKind::GetS, _, false, false) => "IS_AD",
                    (TxnKind::GetS, _, true, false) => "IS_D",
                    (TxnKind::GetS, _, false, true) => "IS_A",
                    (TxnKind::GetS, _, true, true) => "IS_done",
                    (TxnKind::GetM, true, false, _) => "OM_A",
                    (TxnKind::GetM, true, true, _) => "OM_W",
                    (TxnKind::GetM, false, false, false) => "IM_AD",
                    (TxnKind::GetM, false, true, false) => "IM_D",
                    (TxnKind::GetM, false, false, true) => "IM_A",
                    (TxnKind::GetM, false, true, true) => "IM_done",
                    (TxnKind::PutM, ..) => unreachable!("PutM has no mshr"),
                };
            }
        }
        if let Some((op, ..)) = &self.stalled_op {
            if op.block() == block {
                return "WB_STALL";
            }
        }
        if let Some(e) = self.wb_entry(block) {
            return match (e.valid, e.state_was) {
                (true, Mosi::M) => "MI_A",
                (true, Mosi::O) => "OI_A",
                (true, Mosi::S) => unreachable!("S is never written back"),
                (false, _) => "II_A",
            };
        }
        match self.cache.state(block) {
            Some(Mosi::M) => "M",
            Some(Mosi::O) => "O",
            Some(Mosi::S) => "S",
            None => "I",
        }
    }
}
