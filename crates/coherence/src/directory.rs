//! The **Directory** protocol (§3.2), modeled after the AlphaServer GS320.
//!
//! Three virtual networks: an unordered request network to the home (VN0),
//! a **totally ordered** forwarded-request/marker network (VN1), and an
//! unordered response network (VN2). The directory is the ordering point:
//! it processes requests atomically in arrival order and either responds
//! (data on VN2 + a marker on VN1) or forwards the request on VN1 to
//! {owner ∪ sharers ∪ requestor}. The total order of VN1 eliminates
//! invalidation acknowledgments, exactly as in the GS320.
//!
//! Writebacks carry their data on VN0 (one message), so ownership returns
//! to memory atomically at the directory's processing instant — there is no
//! writeback-pending window at the directory at all. A PutM that lost an
//! ownership race (the directory already forwarded a GetM to the writer) is
//! acknowledged as *stale*; the writer keeps serving requests from its
//! writeback buffer until the ack arrives on ordered VN1 (which, by the
//! total order, follows any forwarded request it must still answer).

use std::collections::HashMap;

use bash_kernel::{Duration, Time};
use bash_net::{Message, NodeId, NodeSet, Ordered, VnetId};

use crate::actions::{AccessOutcome, Action, ActionSink};
use crate::blocktable::BlockTable;
use crate::cache::{CacheArray, CacheGeometry, Mosi};
use crate::common::{CacheStats, MemStats, Mshr, WbEntry};
use crate::registry::TransitionLog;
use crate::types::{
    BlockAddr, BlockData, Owner, ProcOp, ProtoMsg, Request, TxnId, TxnKind, CONTROL_MSG_BYTES,
    DATA_MSG_BYTES,
};

// ---------------------------------------------------------------------
// Cache controller
// ---------------------------------------------------------------------

/// The Directory protocol's cache-side controller.
#[derive(Debug)]
pub struct DirectoryCacheCtrl {
    node: NodeId,
    nodes: u16,
    cache: CacheArray,
    mshr: Option<Mshr>,
    deferred: Vec<(Request, NodeSet)>,
    /// Scratch buffer the deferred queue is swapped into while replaying
    /// (reuses one allocation instead of collecting a fresh `Vec`).
    replay_scratch: Vec<(Request, NodeSet)>,
    wb: HashMap<BlockAddr, WbEntry>,
    stalled_op: Option<(ProcOp, TxnId, Time)>,
    txn_seq: u64,
    provide_latency: Duration,
    /// Drop (and count) deliveries that violate the network contract
    /// instead of panicking — set by the driver for the broken-network
    /// fault injections.
    tolerant: bool,
    stats: CacheStats,
    log: TransitionLog,
}

impl DirectoryCacheCtrl {
    /// Builds the controller.
    pub fn new(
        node: NodeId,
        nodes: u16,
        geometry: CacheGeometry,
        provide_latency: Duration,
        coverage: bool,
    ) -> Self {
        DirectoryCacheCtrl {
            node,
            nodes,
            cache: CacheArray::new(geometry),
            mshr: None,
            deferred: Vec::new(),
            replay_scratch: Vec::new(),
            wb: HashMap::new(),
            stalled_op: None,
            txn_seq: 0,
            provide_latency,
            tolerant: false,
            stats: CacheStats::default(),
            log: if coverage {
                TransitionLog::enabled()
            } else {
                TransitionLog::new()
            },
        }
    }

    /// This controller's node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// The transition coverage log.
    pub fn log(&self) -> &TransitionLog {
        &self.log
    }

    /// Read access to the cache array (invariant checks).
    pub fn cache(&self) -> &CacheArray {
        &self.cache
    }

    /// True when no transaction or writeback is in flight.
    pub fn is_quiescent(&self) -> bool {
        self.mshr.is_none() && self.wb.is_empty() && self.stalled_op.is_none()
    }

    /// Makes unexpected deliveries (duplicated or reordered network
    /// traffic) drop — counted in `spurious_dropped` — instead of panic.
    /// The verification harness enables this for its broken-network fault
    /// injections, which deliberately violate the delivery contract the
    /// asserts encode; normal runs keep every assert armed.
    pub fn set_tolerant(&mut self, tolerant: bool) {
        self.tolerant = tolerant;
    }

    /// Handles a processor load/store (blocking processor: one at a time),
    /// emitting any resulting actions into `sink`.
    ///
    /// # Panics
    ///
    /// Panics if called while a demand miss is outstanding.
    pub fn access(&mut self, now: Time, op: ProcOp, sink: &mut ActionSink) -> AccessOutcome {
        assert!(
            self.mshr.is_none() && self.stalled_op.is_none(),
            "blocking processor issued a second outstanding access"
        );
        let block = op.block();
        let ev = match op {
            ProcOp::Load { .. } => "Load",
            ProcOp::Store { .. } => "Store",
        };
        if self.wb.contains_key(&block) {
            let before = self.label(block);
            let txn = self.next_txn();
            self.stalled_op = Some((op, txn, now));
            self.stats.misses += 1;
            self.log.record(before, ev, before);
            return AccessOutcome::Miss { txn };
        }
        let state = self.cache.touch(block);
        match (op, state) {
            (ProcOp::Load { word, .. }, Some(_)) => {
                let value = self.cache.data(block).expect("resident").read(word);
                self.stats.hits += 1;
                let s = self.label(block);
                self.log.record(s, "Load", s);
                AccessOutcome::Hit { value }
            }
            (ProcOp::Store { word, value, .. }, Some(Mosi::M)) => {
                self.cache.write_word(block, word, value);
                self.stats.hits += 1;
                self.log.record("M", "Store", "M");
                AccessOutcome::Hit { value }
            }
            _ => {
                let before = self.label(block);
                let txn = self.next_txn();
                self.issue_miss(now, op, txn, sink);
                self.log.record(before, ev, self.label(block));
                AccessOutcome::Miss { txn }
            }
        }
    }

    fn next_txn(&mut self) -> TxnId {
        self.txn_seq += 1;
        TxnId {
            node: self.node,
            seq: self.txn_seq,
        }
    }

    fn issue_miss(&mut self, now: Time, op: ProcOp, txn: TxnId, sink: &mut ActionSink) {
        let kind = op.miss_kind();
        let block = op.block();
        self.stats.misses += 1;
        self.stats.unicasts_sent += 1;
        self.mshr = Some(Mshr::new(op, kind, txn, now));
        sink.send(Message {
            src: self.node,
            dests: NodeSet::singleton(block.home(self.nodes)),
            vnet: VnetId::DIR_REQUEST,
            ordered: Ordered::None,
            size: CONTROL_MSG_BYTES,
            payload: ProtoMsg::Request(Request {
                kind,
                block,
                requestor: self.node,
                txn,
                retry: 0,
                from_dir: false,
            }),
        });
    }

    /// Handles a delivery (forwarded requests and writeback acks on VN1,
    /// data on VN2), emitting resulting actions into `sink`.
    pub fn on_delivery(
        &mut self,
        now: Time,
        msg: &Message<ProtoMsg>,
        _order: Option<u64>,
        sink: &mut ActionSink,
    ) {
        match &msg.payload {
            ProtoMsg::Request(req) => {
                debug_assert!(req.from_dir, "caches only see dir-forwarded requests");
                if req.requestor == self.node {
                    self.on_own_marker(now, req, sink)
                } else {
                    self.on_foreign_fwd(now, req, &msg.dests, false, sink)
                }
            }
            ProtoMsg::Data {
                txn,
                block,
                data,
                from_cache,
                ..
            } => self.on_data(now, *txn, *block, *data, *from_cache, sink),
            ProtoMsg::WbAck { block, to, stale } => {
                debug_assert_eq!(*to, self.node);
                self.on_wb_ack(now, *block, *stale, sink)
            }
            other => unreachable!("unexpected message at directory cache: {other:?}"),
        }
    }

    /// Our forwarded copy: the marker fixing our place in the VN1 total
    /// order.
    fn on_own_marker(&mut self, now: Time, req: &Request, sink: &mut ActionSink) {
        let block = req.block;
        let before = self.label(block);
        if self.tolerant
            && self
                .mshr
                .as_ref()
                .is_none_or(|m| m.txn != req.txn || m.have_marker)
        {
            // A duplicated home re-forward: either our transaction already
            // closed, or we already saw the real marker for it.
            self.stats.spurious_dropped += 1;
            return;
        }
        let m = self.mshr.as_mut().expect("marker without outstanding miss");
        assert_eq!(m.txn, req.txn, "marker for a foreign transaction");
        debug_assert!(!m.have_marker);
        m.have_marker = true;

        // O→M upgrade: we are the owner the directory forwarded to; the
        // forward reached every directory-known sharer, so complete from our
        // own data.
        if req.kind == TxnKind::GetM && self.cache.state(block) == Some(Mosi::O) {
            self.complete_upgrade(now, sink);
            self.log.record(before, "OwnFwd", self.label(block));
            return;
        }
        if m.data.is_some() {
            self.complete_miss(now, sink);
        }
        self.log.record(before, "OwnFwd", self.label(block));
    }

    /// A directory-forwarded foreign request: we are the owner (respond), a
    /// sharer (invalidate on GetM), or an owner-elect (defer).
    fn on_foreign_fwd(
        &mut self,
        _now: Time,
        req: &Request,
        mask: &NodeSet,
        replay: bool,
        sink: &mut ActionSink,
    ) {
        let block = req.block;
        if !replay {
            let must_defer = self
                .mshr
                .as_ref()
                .map(|m| m.block == block && m.have_marker && !self.is_local_owner(block))
                .unwrap_or(false);
            if must_defer {
                self.deferred.push((*req, mask.clone()));
                return;
            }
        }
        let before = self.label(block);
        let ev = match req.kind {
            TxnKind::GetS => "ForGetS",
            TxnKind::GetM => "ForGetM",
            TxnKind::PutM => unreachable!("PutM is never forwarded"),
        };
        if self.is_local_owner(block) {
            self.respond_with_data(req, sink);
            match req.kind {
                TxnKind::GetS => {
                    if self.cache.state(block) == Some(Mosi::M) {
                        self.cache.set_state(block, Mosi::O);
                    }
                }
                TxnKind::GetM => {
                    if self.cache.state(block).is_some() {
                        self.cache.invalidate(block);
                    } else if let Some(e) = self.wb.get_mut(&block) {
                        e.valid = false;
                        self.stats.writebacks_squashed += 1;
                    }
                }
                TxnKind::PutM => unreachable!(),
            }
        } else if req.kind == TxnKind::GetM && self.cache.state(block) == Some(Mosi::S) {
            self.cache.invalidate(block);
        }
        self.log.record(before, ev, self.label(block));
    }

    fn is_local_owner(&self, block: BlockAddr) -> bool {
        matches!(self.cache.state(block), Some(Mosi::M) | Some(Mosi::O))
            || self.wb.get(&block).map(|e| e.valid).unwrap_or(false)
    }

    fn respond_with_data(&mut self, req: &Request, sink: &mut ActionSink) {
        let block = req.block;
        let data = self
            .cache
            .data(block)
            .or_else(|| self.wb.get(&block).map(|e| e.data))
            .expect("owner has data");
        self.stats.snoop_responses += 1;
        sink.send_after(
            self.provide_latency,
            Message::unordered(
                self.node,
                req.requestor,
                VnetId::DATA,
                DATA_MSG_BYTES,
                ProtoMsg::Data {
                    txn: req.txn,
                    block,
                    data,
                    from_cache: true,
                    serialized_at: None,
                },
            ),
        );
    }

    fn on_data(
        &mut self,
        now: Time,
        txn: TxnId,
        block: BlockAddr,
        data: BlockData,
        from_cache: bool,
        sink: &mut ActionSink,
    ) {
        let before = self.label(block);
        if self.tolerant && self.mshr.as_ref().is_none_or(|m| m.txn != txn) {
            // Data answering a transaction that already closed (the old
            // owner responding to a duplicated forward).
            self.stats.spurious_dropped += 1;
            return;
        }
        let have_marker = {
            let m = self.mshr.as_mut().expect("data without outstanding miss");
            assert_eq!(m.txn, txn, "data for a foreign transaction");
            debug_assert_eq!(m.block, block);
            m.data = Some((data, from_cache));
            m.have_marker
        };
        if have_marker {
            self.complete_miss(now, sink);
        }
        self.log.record(before, "Data", self.label(block));
    }

    fn on_wb_ack(&mut self, now: Time, block: BlockAddr, stale: bool, sink: &mut ActionSink) {
        let before = self.label(block);
        let Some(entry) = self.wb.remove(&block) else {
            if self.tolerant {
                self.stats.spurious_dropped += 1;
                return;
            }
            panic!("ack without wb entry");
        };
        // Under a reordering network a *stale* ack can overtake the
        // forwarded GetM that squashes the entry, so the entry may still
        // look valid here; tolerant mode accepts that (the data is lost,
        // which is exactly the corruption the oracle must then flag).
        debug_assert!(
            self.tolerant || !stale || !entry.valid,
            "directory saw the writeback as stale but we still thought we owned it"
        );
        self.log.record(before, "WbAck", self.label(block));
        if let Some((op, txn, issued)) = self.stalled_op.take() {
            if op.block() == block {
                self.stats.misses -= 1; // issue_miss recounts
                self.issue_miss(now, op, txn, sink);
            } else {
                self.stalled_op = Some((op, txn, issued));
            }
        }
    }

    fn complete_upgrade(&mut self, now: Time, sink: &mut ActionSink) {
        let m = self.mshr.take().expect("upgrade without mshr");
        let block = m.block;
        self.cache.set_state(block, Mosi::M);
        let value = match m.op {
            ProcOp::Store { word, value, .. } => {
                self.cache.write_word(block, word, value);
                value
            }
            ProcOp::Load { .. } => unreachable!("upgrades are stores"),
        };
        sink.push(Action::MissDone {
            txn: m.txn,
            kind: m.kind,
            block,
            value,
            from_cache: true,
        });
        self.replay_deferred(now, sink);
    }

    fn complete_miss(&mut self, now: Time, sink: &mut ActionSink) {
        let m = self.mshr.take().expect("complete without mshr");
        let block = m.block;
        let (data, from_cache) = m.data.expect("complete without data");
        if from_cache {
            self.stats.sharing_misses += 1;
        }
        let new_state = match m.kind {
            TxnKind::GetS => Mosi::S,
            TxnKind::GetM => Mosi::M,
            TxnKind::PutM => unreachable!(),
        };
        if self.cache.state(block).is_some() {
            self.cache.invalidate(block);
        }
        self.insert_with_eviction(block, new_state, data, sink);
        let value = match m.op {
            ProcOp::Load { word, .. } => self.cache.data(block).expect("resident").read(word),
            ProcOp::Store { word, value, .. } => {
                self.cache.write_word(block, word, value);
                value
            }
        };
        sink.push(Action::MissDone {
            txn: m.txn,
            kind: m.kind,
            block,
            value,
            from_cache,
        });
        self.replay_deferred(now, sink);
    }

    fn insert_with_eviction(
        &mut self,
        block: BlockAddr,
        state: Mosi,
        data: BlockData,
        sink: &mut ActionSink,
    ) {
        if let Some(victim) = self.cache.insert(block, state, data) {
            match victim.state {
                Mosi::S => {}
                Mosi::M | Mosi::O => {
                    let before = self.label(victim.block);
                    self.stats.writebacks += 1;
                    self.wb.insert(
                        victim.block,
                        WbEntry {
                            data: victim.data,
                            state_was: victim.state,
                            valid: true,
                        },
                    );
                    // The PutM and its data are one VN0 message: ownership
                    // returns to memory atomically at the directory.
                    sink.send(Message {
                        src: self.node,
                        dests: NodeSet::singleton(victim.block.home(self.nodes)),
                        vnet: VnetId::DIR_REQUEST,
                        ordered: Ordered::None,
                        size: DATA_MSG_BYTES,
                        payload: ProtoMsg::WbData {
                            block: victim.block,
                            from: self.node,
                            data: victim.data,
                        },
                    });
                    self.log.record(before, "Replace", self.label(victim.block));
                }
            }
        }
    }

    /// In the Directory protocol the VN1 marker *is* the serialization
    /// point, so every deferred request replays normally. The deferred
    /// queue is swapped into a reusable scratch buffer so replays allocate
    /// nothing in steady state.
    fn replay_deferred(&mut self, now: Time, sink: &mut ActionSink) {
        let mut drained = std::mem::take(&mut self.replay_scratch);
        std::mem::swap(&mut self.deferred, &mut drained);
        for (req, mask) in drained.drain(..) {
            self.on_foreign_fwd(now, &req, &mask, true, sink);
        }
        self.replay_scratch = drained;
    }

    fn label(&self, block: BlockAddr) -> &'static str {
        if let Some(m) = &self.mshr {
            if m.block == block {
                let upgrade = self.cache.state(block) == Some(Mosi::O);
                return match (m.kind, upgrade, m.have_marker, m.data.is_some()) {
                    (TxnKind::GetS, _, false, false) => "IS_AD",
                    (TxnKind::GetS, _, true, false) => "IS_D",
                    (TxnKind::GetS, _, false, true) => "IS_A",
                    (TxnKind::GetS, _, true, true) => "IS_done",
                    (TxnKind::GetM, true, _, _) => "OM_A",
                    (TxnKind::GetM, false, false, false) => "IM_AD",
                    (TxnKind::GetM, false, true, false) => "IM_D",
                    (TxnKind::GetM, false, false, true) => "IM_A",
                    (TxnKind::GetM, false, true, true) => "IM_done",
                    (TxnKind::PutM, ..) => unreachable!(),
                };
            }
        }
        if let Some((op, ..)) = &self.stalled_op {
            if op.block() == block {
                return "WB_STALL";
            }
        }
        if let Some(e) = self.wb.get(&block) {
            return match (e.valid, e.state_was) {
                (true, Mosi::M) => "MI_A",
                (true, Mosi::O) => "OI_A",
                (true, Mosi::S) => unreachable!(),
                (false, _) => "II_A",
            };
        }
        match self.cache.state(block) {
            Some(Mosi::M) => "M",
            Some(Mosi::O) => "O",
            Some(Mosi::S) => "S",
            None => "I",
        }
    }
}

// ---------------------------------------------------------------------
// Directory controller
// ---------------------------------------------------------------------

/// Per-block directory entry: owner plus a (superset of the) sharer set.
#[derive(Debug, Clone, Default)]
pub struct DirEntry {
    /// Current owner.
    pub owner: Owner,
    /// Superset of the sharers (silent S evictions leave stale members).
    pub sharers: NodeSet,
}

/// Per-block home state *and* stored contents, combined so one table
/// probe resolves both on the hot path.
#[derive(Debug, Clone)]
struct DirBlock {
    owner: Owner,
    sharers: NodeSet,
    data: BlockData,
}

impl Default for DirBlock {
    fn default() -> Self {
        DirBlock {
            owner: Owner::default(),
            sharers: NodeSet::EMPTY,
            data: BlockData::ZERO,
        }
    }
}

/// The Directory protocol's home/memory controller.
#[derive(Debug)]
pub struct DirectoryCtrl {
    node: NodeId,
    nodes: u16,
    dir: BlockTable<DirBlock>,
    dram_latency: Duration,
    serialize_dram: bool,
    dram_free: Time,
    stats: MemStats,
    log: TransitionLog,
}

impl DirectoryCtrl {
    /// Builds the controller.
    pub fn new(
        node: NodeId,
        nodes: u16,
        dram_latency: Duration,
        serialize_dram: bool,
        coverage: bool,
    ) -> Self {
        DirectoryCtrl {
            node,
            nodes,
            dir: BlockTable::new(),
            dram_latency,
            serialize_dram,
            dram_free: Time::ZERO,
            stats: MemStats::default(),
            log: if coverage {
                TransitionLog::enabled()
            } else {
                TransitionLog::new()
            },
        }
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// The transition coverage log.
    pub fn log(&self) -> &TransitionLog {
        &self.log
    }

    /// The directory entry for a block (for invariant checks).
    pub fn entry(&self, block: BlockAddr) -> DirEntry {
        self.dir
            .get(block)
            .map(|b| DirEntry {
                owner: b.owner,
                sharers: b.sharers.clone(),
            })
            .unwrap_or_default()
    }

    /// Fault injection (`StaleSharerMask`): silently erase the
    /// directory's record of `node` — drop its sharer bit and, if it is
    /// the recorded owner, reset ownership to memory. The directory will
    /// subsequently skip `node` when invalidating, or serve stale DRAM
    /// data while `node` owns the only dirty copy. Harness self-tests
    /// only.
    pub fn fault_forget_sharer(&mut self, block: BlockAddr, node: NodeId) {
        if let Some(e) = self.dir.get_mut(block) {
            e.sharers.remove(node);
            if e.owner == Owner::Node(node) {
                e.owner = Owner::Memory;
            }
        }
    }

    /// The stored contents of a block (defaults to zeros).
    pub fn stored_data(&self, block: BlockAddr) -> BlockData {
        self.dir
            .get(block)
            .map(|b| b.data)
            .unwrap_or(BlockData::ZERO)
    }

    /// Handles a VN0 delivery (requests and data-carrying writebacks),
    /// emitting resulting actions into `sink`.
    pub fn on_delivery(
        &mut self,
        now: Time,
        msg: &Message<ProtoMsg>,
        _order: Option<u64>,
        sink: &mut ActionSink,
    ) {
        match &msg.payload {
            ProtoMsg::Request(req) => {
                debug_assert_eq!(req.block.home(self.nodes), self.node);
                debug_assert!(!req.from_dir);
                self.on_request(now, req, sink)
            }
            ProtoMsg::WbData { block, from, data } => self.on_putm(now, *block, *from, *data, sink),
            other => unreachable!("unexpected message at directory: {other:?}"),
        }
    }

    fn on_request(&mut self, now: Time, req: &Request, sink: &mut ActionSink) {
        let block = req.block;
        let before = self.label(block);
        let delay = self.dram_delay(now);
        let (owner, sharers) = {
            let e = self.dir.or_default(block);
            (e.owner, e.sharers.clone())
        };
        match (req.kind, owner) {
            (TxnKind::GetS, Owner::Memory) => {
                // Respond directly: data on VN2 plus a marker on VN1.
                sink.push(self.data_response(delay, req));
                sink.push(self.forward(delay, req, NodeSet::singleton(req.requestor)));
                self.stats.data_responses += 1;
                self.dir
                    .get_mut(block)
                    .expect("present")
                    .sharers
                    .insert(req.requestor);
            }
            (TxnKind::GetS, Owner::Node(p)) => {
                let mask = NodeSet::from_nodes([p, req.requestor]);
                sink.push(self.forward(delay, req, mask));
                self.stats.forwards += 1;
                self.dir
                    .get_mut(block)
                    .expect("present")
                    .sharers
                    .insert(req.requestor);
            }
            (TxnKind::GetM, Owner::Memory) => {
                sink.push(self.data_response(delay, req));
                let mut mask = sharers;
                mask.insert(req.requestor);
                sink.push(self.forward(delay, req, mask));
                self.stats.data_responses += 1;
                let e = self.dir.get_mut(block).expect("present");
                e.owner = Owner::Node(req.requestor);
                e.sharers = NodeSet::EMPTY;
            }
            (TxnKind::GetM, Owner::Node(p)) => {
                let mut mask = sharers;
                mask.insert(p);
                mask.insert(req.requestor);
                sink.push(self.forward(delay, req, mask));
                self.stats.forwards += 1;
                let e = self.dir.get_mut(block).expect("present");
                e.owner = Owner::Node(req.requestor);
                e.sharers = NodeSet::EMPTY;
            }
            (TxnKind::PutM, _) => unreachable!("PutM arrives as WbData"),
        }
        self.log.record(before, req.kind.name(), self.label(block));
    }

    fn on_putm(
        &mut self,
        now: Time,
        block: BlockAddr,
        from: NodeId,
        data: BlockData,
        sink: &mut ActionSink,
    ) {
        let before = self.label(block);
        let delay = self.dram_delay(now);
        let stale = {
            let e = self.dir.or_default(block);
            let stale = e.owner != Owner::Node(from);
            if !stale {
                e.owner = Owner::Memory;
                e.data = data;
            }
            stale
        };
        if stale {
            self.stats.writebacks_stale += 1;
        } else {
            self.stats.writebacks_accepted += 1;
        }
        self.log.record(before, "PutM", self.label(block));
        sink.send_after(
            delay,
            Message::ordered(
                self.node,
                NodeSet::singleton(from),
                CONTROL_MSG_BYTES,
                ProtoMsg::WbAck {
                    block,
                    to: from,
                    stale,
                },
            ),
        );
    }

    fn data_response(&mut self, delay: Duration, req: &Request) -> Action {
        let data = self.stored_data(req.block);
        Action::send_after(
            delay,
            Message::unordered(
                self.node,
                req.requestor,
                VnetId::DATA,
                DATA_MSG_BYTES,
                ProtoMsg::Data {
                    txn: req.txn,
                    block: req.block,
                    data,
                    from_cache: false,
                    serialized_at: None,
                },
            ),
        )
    }

    /// Forwards (or echoes as a marker) a request on totally ordered VN1.
    fn forward(&mut self, delay: Duration, req: &Request, mask: NodeSet) -> Action {
        Action::send_after(
            delay,
            Message::ordered(
                self.node,
                mask,
                CONTROL_MSG_BYTES,
                ProtoMsg::Request(Request {
                    from_dir: true,
                    ..*req
                }),
            ),
        )
    }

    fn dram_delay(&mut self, now: Time) -> Duration {
        if self.serialize_dram {
            let start = now.max(self.dram_free);
            self.dram_free = start + self.dram_latency;
            self.dram_free.since(now)
        } else {
            self.dram_latency
        }
    }

    fn label(&self, block: BlockAddr) -> &'static str {
        match self.dir.get(block) {
            None => "Mem",
            Some(e) => match (e.owner, e.sharers.is_empty()) {
                (Owner::Memory, true) => "Mem",
                (Owner::Memory, false) => "MemS",
                (Owner::Node(_), true) => "Own",
                (Owner::Node(_), false) => "OwnS",
            },
        }
    }
}
