//! The **Snooping** protocol's memory controller (§3.1).
//!
//! Memory snoops every ordered request for blocks it is home to and keeps
//! per-block owner state; when memory is the owner it responds with data.
//! The paper models this after the Synapse N+1 owner bit; we track the owner
//! *identity* instead, because with a split-transaction ordered network a
//! stale PutM (squashed by a GetM ordered before it) is otherwise
//! indistinguishable from a valid one (see DESIGN.md §3.5).
//!
//! A valid PutM opens a `WbPending` window: the block's requests stall at
//! memory until the writeback data arrives on the response network, then
//! drain in order.

use std::collections::VecDeque;

use bash_kernel::{Duration, Time};
use bash_net::{Message, NodeId, VnetId};

use crate::actions::ActionSink;
use crate::blocktable::BlockTable;
use crate::common::MemStats;
use crate::registry::TransitionLog;
use crate::types::{BlockAddr, BlockData, Owner, ProtoMsg, Request, TxnKind, DATA_MSG_BYTES};

/// A writeback in flight toward this memory controller.
#[derive(Debug, Clone)]
struct WbPending {
    from: NodeId,
    /// Ordered requests for the block that arrived inside the window, with
    /// their network order numbers.
    queued: VecDeque<(Request, u64)>,
}

/// Per-block memory-side state *and* stored contents, combined so the
/// per-event hot path resolves a block with one table probe instead of
/// separate state/store map lookups.
#[derive(Debug, Clone)]
struct BlockState {
    owner: Owner,
    wb: Option<WbPending>,
    /// Writeback data that outran its own PutM marker. The data network
    /// is unordered, so when the ordered chain toward this home lags
    /// (e.g. a retransmission under the fault plane), the data legally
    /// arrives before the marker that opens the window; it waits here
    /// and completes the writeback the instant the window opens.
    early_wb: Vec<(NodeId, BlockData)>,
    /// The DRAM contents (zeros until a writeback lands).
    data: BlockData,
}

impl Default for BlockState {
    fn default() -> Self {
        BlockState {
            owner: Owner::default(),
            wb: None,
            early_wb: Vec::new(),
            data: BlockData::ZERO,
        }
    }
}

/// The Snooping memory controller for one node's slice of memory.
#[derive(Debug)]
pub struct SnoopingMemCtrl {
    node: NodeId,
    nodes: u16,
    blocks: BlockTable<BlockState>,
    dram_latency: Duration,
    /// When true, DRAM accesses serialize (one at a time); the paper's model
    /// has contention only at the network endpoints, so this defaults off.
    serialize_dram: bool,
    dram_free: Time,
    /// Drop (and count) deliveries that violate the network contract
    /// instead of panicking — set by the driver for the broken-network
    /// fault injections.
    tolerant: bool,
    stats: MemStats,
    log: TransitionLog,
}

impl SnoopingMemCtrl {
    /// Builds the controller.
    pub fn new(
        node: NodeId,
        nodes: u16,
        dram_latency: Duration,
        serialize_dram: bool,
        coverage: bool,
    ) -> Self {
        SnoopingMemCtrl {
            node,
            nodes,
            blocks: BlockTable::new(),
            dram_latency,
            serialize_dram,
            dram_free: Time::ZERO,
            tolerant: false,
            stats: MemStats::default(),
            log: if coverage {
                TransitionLog::enabled()
            } else {
                TransitionLog::new()
            },
        }
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// The transition coverage log.
    pub fn log(&self) -> &TransitionLog {
        &self.log
    }

    /// Current owner of a block (for invariant checks).
    pub fn owner_of(&self, block: BlockAddr) -> Owner {
        self.blocks.get(block).map(|b| b.owner).unwrap_or_default()
    }

    /// Fault injection (`StaleSharerMask`): if `node` is the recorded
    /// owner, silently reset ownership to memory — the home will then
    /// serve stale DRAM data while `node` still holds the dirty copy.
    /// (Snooping tracks no sharer bitmap.) Harness self-tests only.
    pub fn fault_forget_sharer(&mut self, block: BlockAddr, node: NodeId) {
        if let Some(b) = self.blocks.get_mut(block) {
            if b.owner == Owner::Node(node) {
                b.owner = Owner::Memory;
            }
        }
    }

    /// The stored contents of a block (for checks; defaults to zeros).
    pub fn stored_data(&self, block: BlockAddr) -> BlockData {
        self.blocks
            .get(block)
            .map(|b| b.data)
            .unwrap_or(BlockData::ZERO)
    }

    /// True when no writeback windows are open and no early writeback
    /// data waits for its marker.
    pub fn is_quiescent(&self) -> bool {
        self.blocks
            .values()
            .all(|b| b.wb.is_none() && b.early_wb.is_empty())
    }

    /// Makes unexpected deliveries (duplicated or reordered network
    /// traffic) drop — counted in `spurious_dropped` — instead of panic.
    /// The verification harness enables this for its broken-network fault
    /// injections, which deliberately violate the delivery contract the
    /// asserts encode; normal runs keep every assert armed.
    pub fn set_tolerant(&mut self, tolerant: bool) {
        self.tolerant = tolerant;
    }

    /// Handles a delivery, emitting resulting actions into `sink`. The
    /// driver routes a message here only when this node is the block's
    /// home.
    pub fn on_delivery(
        &mut self,
        now: Time,
        msg: &Message<ProtoMsg>,
        order: Option<u64>,
        sink: &mut ActionSink,
    ) {
        match &msg.payload {
            ProtoMsg::Request(req) => {
                debug_assert_eq!(req.block.home(self.nodes), self.node);
                let order = order.expect("ordered request network");
                self.on_request(now, req, order, sink)
            }
            ProtoMsg::WbData { block, from, data } => {
                self.on_wb_data(now, *block, *from, *data, sink)
            }
            other => unreachable!("unexpected message at snooping memory: {other:?}"),
        }
    }

    fn on_request(&mut self, now: Time, req: &Request, order: u64, sink: &mut ActionSink) {
        let block = req.block;
        let before = self.state_label(block);

        // Requests inside a writeback window stall until the data arrives.
        let stalled = {
            let st = self.blocks.or_default(block);
            if let Some(wb) = st.wb.as_mut() {
                if req.kind != TxnKind::PutM {
                    wb.queued.push_back((*req, order));
                    true
                } else {
                    false
                }
            } else {
                false
            }
        };
        if stalled {
            self.log
                .record(before, req.kind.name(), self.state_label(block));
            return;
        }

        self.process_request(now, req, order, sink);
        self.log
            .record(before, req.kind.name(), self.state_label(block));
    }

    fn process_request(&mut self, now: Time, req: &Request, order: u64, sink: &mut ActionSink) {
        let block = req.block;
        let owner = self.blocks.or_default(block).owner;
        match req.kind {
            TxnKind::GetS => match owner {
                Owner::Memory => self.respond_with_data(now, req, order, sink),
                Owner::Node(_) => {} // the owning cache responds
            },
            TxnKind::GetM => {
                if owner == Owner::Memory {
                    self.respond_with_data(now, req, order, sink);
                }
                self.blocks.get_mut(block).expect("present").owner = Owner::Node(req.requestor);
            }
            TxnKind::PutM => {
                let early = {
                    let st = self.blocks.get_mut(block).expect("present");
                    if st.owner == Owner::Node(req.requestor) {
                        // Valid writeback: open the window; data will
                        // follow on the response network (the writer sends
                        // it at its own PutM marker, which precedes this
                        // delivery... this delivery *is* memory's copy of
                        // that marker).
                        st.wb = Some(WbPending {
                            from: req.requestor,
                            queued: VecDeque::new(),
                        });
                        // The data may already have outrun this marker.
                        st.early_wb
                            .iter()
                            .position(|(f, _)| *f == req.requestor)
                            .map(|i| st.early_wb.remove(i))
                    } else {
                        // Stale: the writer lost ownership to an earlier
                        // GetM and sent no data.
                        self.stats.writebacks_stale += 1;
                        None
                    }
                };
                if let Some((from, data)) = early {
                    self.on_wb_data(now, block, from, data, sink);
                }
            }
        }
    }

    fn on_wb_data(
        &mut self,
        now: Time,
        block: BlockAddr,
        from: NodeId,
        data: BlockData,
        sink: &mut ActionSink,
    ) {
        let before = self.state_label(block);
        let st = self.blocks.or_default(block);
        if st.wb.as_ref().is_none_or(|wb| wb.from != from) {
            if self.tolerant {
                // A corrupted owner record (duplicated/reordered request
                // traffic) can leave writeback data arriving with no open
                // window, or from a node the window no longer credits.
                // Drop it — the dirty data is lost, which is exactly the
                // corruption the oracle must then flag.
                self.stats.spurious_dropped += 1;
            } else {
                // The unordered data network outran the ordered PutM
                // marker (skewed per-destination chains, e.g. under a
                // retransmitting fault plane). Hold the data; the marker
                // is guaranteed to follow — the writer only sends data
                // after observing its own marker in the total order, so
                // this home will observe it too and open the window.
                st.early_wb.push((from, data));
            }
            return;
        }
        let wb = st.wb.take().expect("window checked above");
        st.owner = Owner::Memory;
        st.data = data;
        self.stats.writebacks_accepted += 1;
        // Drain the stalled requests in their network order.
        for (req, order) in wb.queued {
            let mid = self.state_label(block);
            self.process_request(now, &req, order, sink);
            self.log
                .record(mid, req.kind.name(), self.state_label(block));
        }
        self.log.record(before, "WbData", self.state_label(block));
    }

    fn respond_with_data(&mut self, now: Time, req: &Request, order: u64, sink: &mut ActionSink) {
        let data = self.stored_data(req.block);
        self.stats.data_responses += 1;
        let delay = self.dram_delay(now);
        sink.send_after(
            delay,
            Message::unordered(
                self.node,
                req.requestor,
                VnetId::DATA,
                DATA_MSG_BYTES,
                ProtoMsg::Data {
                    txn: req.txn,
                    block: req.block,
                    data,
                    from_cache: false,
                    serialized_at: Some(order),
                },
            ),
        );
    }

    fn dram_delay(&mut self, now: Time) -> Duration {
        if self.serialize_dram {
            let start = now.max(self.dram_free);
            self.dram_free = start + self.dram_latency;
            self.dram_free.since(now)
        } else {
            self.dram_latency
        }
    }

    fn state_label(&self, block: BlockAddr) -> &'static str {
        match self.blocks.get(block) {
            None => "Mem",
            Some(b) if b.wb.is_some() => "WbPending",
            Some(b) => match b.owner {
                Owner::Memory => "Mem",
                Owner::Node(_) => "Owned",
            },
        }
    }
}
