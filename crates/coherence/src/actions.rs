//! The controller ↔ driver interface.
//!
//! Protocol controllers are pure state machines: they consume deliveries and
//! processor operations and emit [`Action`]s. The system driver (in
//! `bash-sim`) interprets the actions — scheduling sends on the crossbar and
//! unblocking processors. This keeps every controller unit-testable without
//! a network or event loop.

use bash_kernel::Duration;
use bash_net::Message;

use crate::types::{BlockAddr, ProtoMsg, TxnId, TxnKind};

/// What a controller wants the outside world to do.
#[derive(Debug, Clone)]
pub enum Action {
    /// Inject a message into the crossbar after `delay` (controller
    /// occupancy: 25 ns for a cache to provide data, 80 ns for a DRAM or
    /// directory access).
    SendAfter {
        /// Controller-side latency before the message enters the node's
        /// link queue.
        delay: Duration,
        /// The message to send.
        msg: Message<ProtoMsg>,
    },
    /// The node's outstanding demand miss completed; the processor may
    /// resume. `value` is the loaded word (loads) or the stored value
    /// (stores), for end-to-end checking.
    MissDone {
        /// The completed transaction.
        txn: TxnId,
        /// GetS or GetM.
        kind: TxnKind,
        /// The block.
        block: BlockAddr,
        /// Loaded/stored word value.
        value: u64,
        /// True if the miss was served by another cache (a sharing miss /
        /// cache-to-cache transfer) rather than by memory.
        from_cache: bool,
    },
}

impl Action {
    /// Convenience constructor for an immediate send.
    pub fn send(msg: Message<ProtoMsg>) -> Action {
        Action::SendAfter {
            delay: Duration::ZERO,
            msg,
        }
    }

    /// Convenience constructor for a delayed send.
    pub fn send_after(delay: Duration, msg: Message<ProtoMsg>) -> Action {
        Action::SendAfter { delay, msg }
    }
}

/// The outcome of a processor access against the cache controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The access hit; `value` is the loaded word (loads) or the stored
    /// value (stores).
    Hit {
        /// Word value.
        value: u64,
    },
    /// The access missed; a [`Action::MissDone`] will follow. The processor
    /// blocks (at most one outstanding demand miss per processor, as in the
    /// paper's simulations).
    Miss {
        /// The transaction that will eventually complete.
        txn: TxnId,
    },
}
