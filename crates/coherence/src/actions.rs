//! The controller ↔ driver interface.
//!
//! Protocol controllers are pure state machines: they consume deliveries and
//! processor operations and emit [`Action`]s into a caller-owned
//! [`ActionSink`]. The system driver (in `bash-sim`) interprets the actions
//! — scheduling sends on the crossbar and unblocking processors — and
//! reuses one sink across every event, so the hot event loop performs no
//! per-event allocation. This keeps every controller unit-testable without
//! a network or event loop.

use bash_kernel::Duration;
use bash_net::Message;

use crate::types::{BlockAddr, ProtoMsg, TxnId, TxnKind};

/// What a controller wants the outside world to do.
#[derive(Debug, Clone)]
pub enum Action {
    /// Inject a message into the crossbar after `delay` (controller
    /// occupancy: 25 ns for a cache to provide data, 80 ns for a DRAM or
    /// directory access).
    SendAfter {
        /// Controller-side latency before the message enters the node's
        /// link queue.
        delay: Duration,
        /// The message to send.
        msg: Message<ProtoMsg>,
    },
    /// The node's outstanding demand miss completed; the processor may
    /// resume. `value` is the loaded word (loads) or the stored value
    /// (stores), for end-to-end checking.
    MissDone {
        /// The completed transaction.
        txn: TxnId,
        /// GetS or GetM.
        kind: TxnKind,
        /// The block.
        block: BlockAddr,
        /// Loaded/stored word value.
        value: u64,
        /// True if the miss was served by another cache (a sharing miss /
        /// cache-to-cache transfer) rather than by memory.
        from_cache: bool,
    },
}

impl Action {
    /// Convenience constructor for an immediate send.
    pub fn send(msg: Message<ProtoMsg>) -> Action {
        Action::SendAfter {
            delay: Duration::ZERO,
            msg,
        }
    }

    /// Convenience constructor for a delayed send.
    pub fn send_after(delay: Duration, msg: Message<ProtoMsg>) -> Action {
        Action::SendAfter { delay, msg }
    }
}

/// A reusable buffer the controllers emit their [`Action`]s into.
///
/// Controller handlers take `&mut ActionSink` instead of returning
/// `Vec<Action>`: the driver owns **one** sink, drains it after every
/// handler call, and hands the same (already-grown) buffer to the next
/// event. After warmup the event loop therefore emits actions with zero
/// heap allocation, where the old return-a-`Vec` interface allocated on
/// nearly every event.
///
/// Actions are interpreted strictly in push order, which is what preserves
/// the simulator's deterministic event ordering.
///
/// # Example
///
/// ```
/// use bash_coherence::actions::{Action, ActionSink};
///
/// let mut sink = ActionSink::new();
/// assert!(sink.is_empty());
/// // a controller would sink.push(...) / sink.send(...) here
/// for action in sink.drain() {
///     let _: Action = action; // driver interprets each action
/// }
/// ```
#[derive(Debug, Default)]
pub struct ActionSink {
    actions: Vec<Action>,
}

impl ActionSink {
    /// An empty sink.
    pub fn new() -> Self {
        ActionSink {
            actions: Vec::new(),
        }
    }

    /// An empty sink with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        ActionSink {
            actions: Vec::with_capacity(cap),
        }
    }

    /// Appends one action.
    pub fn push(&mut self, action: Action) {
        self.actions.push(action);
    }

    /// Appends an immediate send.
    pub fn send(&mut self, msg: Message<ProtoMsg>) {
        self.actions.push(Action::send(msg));
    }

    /// Appends a delayed send.
    pub fn send_after(&mut self, delay: Duration, msg: Message<ProtoMsg>) {
        self.actions.push(Action::send_after(delay, msg));
    }

    /// Number of buffered actions.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// True when no actions are buffered.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// The buffered actions, in push order.
    pub fn as_slice(&self) -> &[Action] {
        &self.actions
    }

    /// Removes and yields every buffered action in push order, keeping the
    /// buffer's capacity for reuse.
    pub fn drain(&mut self) -> std::vec::Drain<'_, Action> {
        self.actions.drain(..)
    }

    /// Empties the sink, keeping its capacity.
    pub fn clear(&mut self) {
        self.actions.clear();
    }

    /// Consumes the sink into a plain `Vec` (test and tooling convenience).
    pub fn into_vec(self) -> Vec<Action> {
        self.actions
    }
}

/// The outcome of a processor access against the cache controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The access hit; `value` is the loaded word (loads) or the stored
    /// value (stores).
    Hit {
        /// Word value.
        value: u64,
    },
    /// The access missed; a [`Action::MissDone`] will follow. The processor
    /// blocks (at most one outstanding demand miss per processor, as in the
    /// paper's simulations).
    Miss {
        /// The transaction that will eventually complete.
        txn: TxnId,
    },
}
