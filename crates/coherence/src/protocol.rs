//! Protocol selection and controller dispatch.

use bash_adaptive::{AdaptorConfig, BandwidthAdaptor, DecisionMode};
use bash_kernel::{Duration, Time};
use bash_net::{Message, NodeId};

use crate::actions::{AccessOutcome, ActionSink};
use crate::bash::BashMemCtrl;
use crate::cache::CacheGeometry;
use crate::common::{CacheStats, MemStats};
use crate::directory::{DirectoryCacheCtrl, DirectoryCtrl};
use crate::hierarchy::{home_of, HierarchyConfig};
use crate::registry::TransitionLog;
use crate::snoopcache::SnoopCacheCtrl;
use crate::snooping::SnoopingMemCtrl;
use crate::types::{ProcOp, ProtoMsg};

/// The three protocols the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// Aggressive MOSI broadcast snooping (§3.1).
    Snooping,
    /// GS320-style directory (§3.2).
    Directory,
    /// The bandwidth adaptive snooping hybrid (§3.3).
    Bash,
}

impl ProtocolKind {
    /// Display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::Snooping => "Snooping",
            ProtocolKind::Directory => "Directory",
            ProtocolKind::Bash => "BASH",
        }
    }

    /// All three protocols, in the paper's plotting order.
    pub const ALL: [ProtocolKind; 3] = [
        ProtocolKind::Snooping,
        ProtocolKind::Bash,
        ProtocolKind::Directory,
    ];
}

/// Where an incoming message must be routed within a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Routing {
    /// Deliver to the node's cache controller.
    pub to_cache: bool,
    /// Deliver to the node's memory/directory controller.
    pub to_mem: bool,
}

/// Computes message routing for a delivery at `node`.
///
/// Under a two-level hierarchy (`hier` set) every protocol personality
/// rides the BASH engine, so requests route snooping-style — to the cache
/// always, and additionally to the memory side on the node hosting the
/// block's directory-spine bank.
pub fn route(
    kind: ProtocolKind,
    node: NodeId,
    nodes: u16,
    hier: Option<&HierarchyConfig>,
    msg: &Message<ProtoMsg>,
) -> Routing {
    match &msg.payload {
        ProtoMsg::Request(req) => match (hier, kind) {
            (Some(_), _) | (None, ProtocolKind::Snooping | ProtocolKind::Bash) => Routing {
                to_cache: true,
                to_mem: home_of(req.block, nodes, hier) == node,
            },
            (None, ProtocolKind::Directory) => {
                if req.from_dir {
                    Routing {
                        to_cache: true,
                        to_mem: false,
                    }
                } else {
                    Routing {
                        to_cache: false,
                        to_mem: true,
                    }
                }
            }
        },
        ProtoMsg::Data { .. } | ProtoMsg::WbAck { .. } | ProtoMsg::Nack { .. } => Routing {
            to_cache: true,
            to_mem: false,
        },
        ProtoMsg::WbData { .. } => Routing {
            to_cache: false,
            to_mem: true,
        },
    }
}

/// A cache controller of any protocol.
#[derive(Debug)]
pub enum CacheCtrl {
    /// Snooping or BASH (the shared ordered-network engine).
    Snoop(SnoopCacheCtrl),
    /// Directory.
    Directory(DirectoryCacheCtrl),
}

impl CacheCtrl {
    /// Builds the cache controller for `kind`.
    ///
    /// With a hierarchy every personality uses the hierarchical BASH
    /// engine; the protocol only pins the cast decision — Snooping always
    /// cluster-casts, Directory always dualcasts to the spine bank, and
    /// BASH adapts per cluster.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        kind: ProtocolKind,
        node: NodeId,
        nodes: u16,
        geometry: CacheGeometry,
        provide_latency: Duration,
        adaptor: &AdaptorConfig,
        hier: Option<HierarchyConfig>,
        coverage: bool,
    ) -> Self {
        if let Some(h) = hier {
            let mut cfg = adaptor.clone();
            cfg.mode = match kind {
                ProtocolKind::Snooping => DecisionMode::AlwaysBroadcast,
                ProtocolKind::Directory => DecisionMode::AlwaysUnicast,
                ProtocolKind::Bash => cfg.mode,
            };
            return CacheCtrl::Snoop(SnoopCacheCtrl::new_hierarchical(
                node,
                nodes,
                geometry,
                provide_latency,
                &cfg,
                h,
                coverage,
            ));
        }
        match kind {
            ProtocolKind::Snooping => CacheCtrl::Snoop(SnoopCacheCtrl::new_snooping(
                node,
                nodes,
                geometry,
                provide_latency,
                coverage,
            )),
            ProtocolKind::Bash => CacheCtrl::Snoop(SnoopCacheCtrl::new_bash(
                node,
                nodes,
                geometry,
                provide_latency,
                adaptor,
                coverage,
            )),
            ProtocolKind::Directory => CacheCtrl::Directory(DirectoryCacheCtrl::new(
                node,
                nodes,
                geometry,
                provide_latency,
                coverage,
            )),
        }
    }

    /// Processor access (see the per-protocol docs). Actions are emitted
    /// into the caller-owned `sink`.
    pub fn access(&mut self, now: Time, op: ProcOp, sink: &mut ActionSink) -> AccessOutcome {
        match self {
            CacheCtrl::Snoop(c) => c.access(now, op, sink),
            CacheCtrl::Directory(c) => c.access(now, op, sink),
        }
    }

    /// Network delivery. Actions are emitted into the caller-owned `sink`.
    pub fn on_delivery(
        &mut self,
        now: Time,
        msg: &Message<ProtoMsg>,
        order: Option<u64>,
        sink: &mut ActionSink,
    ) {
        match self {
            CacheCtrl::Snoop(c) => c.on_delivery(now, msg, order, sink),
            CacheCtrl::Directory(c) => c.on_delivery(now, msg, order, sink),
        }
    }

    /// The adaptive mechanism, when this is a BASH controller.
    pub fn adaptor_mut(&mut self) -> Option<&mut BandwidthAdaptor> {
        match self {
            CacheCtrl::Snoop(c) => c.adaptor_mut(),
            CacheCtrl::Directory(_) => None,
        }
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &CacheStats {
        match self {
            CacheCtrl::Snoop(c) => c.stats(),
            CacheCtrl::Directory(c) => c.stats(),
        }
    }

    /// The transition coverage log.
    pub fn log(&self) -> &TransitionLog {
        match self {
            CacheCtrl::Snoop(c) => c.log(),
            CacheCtrl::Directory(c) => c.log(),
        }
    }

    /// Read access to the cache array.
    pub fn cache(&self) -> &crate::cache::CacheArray {
        match self {
            CacheCtrl::Snoop(c) => c.cache(),
            CacheCtrl::Directory(c) => c.cache(),
        }
    }

    /// True when nothing is in flight at this controller.
    pub fn is_quiescent(&self) -> bool {
        match self {
            CacheCtrl::Snoop(c) => c.is_quiescent(),
            CacheCtrl::Directory(c) => c.is_quiescent(),
        }
    }

    /// Makes unexpected deliveries drop (counted) instead of panic — set
    /// by the driver for the broken-network fault injections, which
    /// deliberately violate the delivery contract the asserts encode.
    pub fn set_tolerant(&mut self, tolerant: bool) {
        match self {
            CacheCtrl::Snoop(c) => c.set_tolerant(tolerant),
            CacheCtrl::Directory(c) => c.set_tolerant(tolerant),
        }
    }
}

/// A memory/directory controller of any protocol.
#[derive(Debug)]
pub enum MemCtrl {
    /// Snooping memory (owner tracking).
    Snooping(SnoopingMemCtrl),
    /// Directory controller.
    Directory(DirectoryCtrl),
    /// BASH home controller (directory state + sufficiency/retry logic).
    Bash(BashMemCtrl),
}

impl MemCtrl {
    /// Builds the memory-side controller for `kind`. With a hierarchy the
    /// node hosts a directory-spine bank, which is always the BASH home
    /// controller regardless of personality.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        kind: ProtocolKind,
        node: NodeId,
        nodes: u16,
        dram_latency: Duration,
        serialize_dram: bool,
        retry_capacity: usize,
        hier: Option<HierarchyConfig>,
        coverage: bool,
    ) -> Self {
        if let Some(h) = hier {
            return MemCtrl::Bash(BashMemCtrl::new_hierarchical(
                node,
                nodes,
                h,
                dram_latency,
                serialize_dram,
                retry_capacity,
                coverage,
            ));
        }
        match kind {
            ProtocolKind::Snooping => MemCtrl::Snooping(SnoopingMemCtrl::new(
                node,
                nodes,
                dram_latency,
                serialize_dram,
                coverage,
            )),
            ProtocolKind::Directory => MemCtrl::Directory(DirectoryCtrl::new(
                node,
                nodes,
                dram_latency,
                serialize_dram,
                coverage,
            )),
            ProtocolKind::Bash => MemCtrl::Bash(BashMemCtrl::new(
                node,
                nodes,
                dram_latency,
                serialize_dram,
                retry_capacity,
                coverage,
            )),
        }
    }

    /// Network delivery. Actions are emitted into the caller-owned `sink`.
    pub fn on_delivery(
        &mut self,
        now: Time,
        msg: &Message<ProtoMsg>,
        order: Option<u64>,
        sink: &mut ActionSink,
    ) {
        match self {
            MemCtrl::Snooping(m) => m.on_delivery(now, msg, order, sink),
            MemCtrl::Directory(m) => m.on_delivery(now, msg, order, sink),
            MemCtrl::Bash(m) => m.on_delivery(now, msg, order, sink),
        }
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &MemStats {
        match self {
            MemCtrl::Snooping(m) => m.stats(),
            MemCtrl::Directory(m) => m.stats(),
            MemCtrl::Bash(m) => m.stats(),
        }
    }

    /// The transition coverage log.
    pub fn log(&self) -> &TransitionLog {
        match self {
            MemCtrl::Snooping(m) => m.log(),
            MemCtrl::Directory(m) => m.log(),
            MemCtrl::Bash(m) => m.log(),
        }
    }

    /// True when no writeback windows / retry buffers are outstanding.
    pub fn is_quiescent(&self) -> bool {
        match self {
            MemCtrl::Snooping(m) => m.is_quiescent(),
            MemCtrl::Directory(_) => true, // the directory has no transient state
            MemCtrl::Bash(m) => m.is_quiescent(),
        }
    }

    /// Makes unexpected deliveries drop (counted) instead of panic — set
    /// by the driver for the broken-network fault injections. The
    /// directory controller is a total state machine (every delivery is
    /// legal in every state), so it has nothing to relax.
    pub fn set_tolerant(&mut self, tolerant: bool) {
        match self {
            MemCtrl::Snooping(m) => m.set_tolerant(tolerant),
            MemCtrl::Directory(_) => {}
            MemCtrl::Bash(m) => m.set_tolerant(tolerant),
        }
    }

    /// Fault injection (`StaleSharerMask`): silently erase the home's
    /// record of `node` for `block` — remove it from the sharer bitmap
    /// and, if it is the recorded owner, reset ownership to memory. The
    /// block's actual cached copies are untouched, so the record now
    /// disagrees with reality; the verification harness must catch the
    /// fallout (stale values or a structural mismatch). Never called
    /// outside harness self-tests.
    pub fn fault_forget_sharer(&mut self, block: crate::types::BlockAddr, node: NodeId) {
        match self {
            MemCtrl::Snooping(m) => m.fault_forget_sharer(block, node),
            MemCtrl::Directory(m) => m.fault_forget_sharer(block, node),
            MemCtrl::Bash(m) => m.fault_forget_sharer(block, node),
        }
    }

    /// The recorded owner of a home block (invariant checks).
    pub fn owner_record(&self, block: crate::types::BlockAddr) -> crate::types::Owner {
        match self {
            MemCtrl::Snooping(m) => m.owner_of(block),
            MemCtrl::Directory(m) => m.entry(block).owner,
            MemCtrl::Bash(m) => m.owner_of(block),
        }
    }

    /// The sharer superset recorded for a home block (empty for Snooping,
    /// which does not track sharers).
    pub fn sharer_record(&self, block: crate::types::BlockAddr) -> bash_net::NodeSet {
        match self {
            MemCtrl::Snooping(_) => bash_net::NodeSet::EMPTY,
            MemCtrl::Directory(m) => m.entry(block).sharers,
            MemCtrl::Bash(m) => m.sharers_of(block),
        }
    }

    /// The stored memory contents of a home block.
    pub fn stored_data(&self, block: crate::types::BlockAddr) -> crate::types::BlockData {
        match self {
            MemCtrl::Snooping(m) => m.stored_data(block),
            MemCtrl::Directory(m) => m.stored_data(block),
            MemCtrl::Bash(m) => m.stored_data(block),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{BlockAddr, Request, TxnId, TxnKind};
    use bash_net::{NodeSet, Ordered, VnetId};

    fn req_msg(from_dir: bool, block: u64) -> Message<ProtoMsg> {
        Message {
            src: NodeId(1),
            dests: NodeSet::all(4),
            vnet: VnetId::REQUEST,
            ordered: Ordered::Total,
            size: 8,
            payload: ProtoMsg::Request(Request {
                kind: TxnKind::GetM,
                block: BlockAddr(block),
                requestor: NodeId(1),
                txn: TxnId {
                    node: NodeId(1),
                    seq: 1,
                },
                retry: 0,
                from_dir,
            }),
        }
    }

    #[test]
    fn snooping_requests_go_to_cache_and_home_memory() {
        // Block 2 is homed at node 2 of 4.
        let at_home = route(
            ProtocolKind::Snooping,
            NodeId(2),
            4,
            None,
            &req_msg(false, 2),
        );
        assert_eq!(
            at_home,
            Routing {
                to_cache: true,
                to_mem: true
            }
        );
        let elsewhere = route(
            ProtocolKind::Snooping,
            NodeId(3),
            4,
            None,
            &req_msg(false, 2),
        );
        assert_eq!(
            elsewhere,
            Routing {
                to_cache: true,
                to_mem: false
            }
        );
    }

    #[test]
    fn directory_splits_by_from_dir() {
        let vn0 = route(
            ProtocolKind::Directory,
            NodeId(2),
            4,
            None,
            &req_msg(false, 2),
        );
        assert_eq!(
            vn0,
            Routing {
                to_cache: false,
                to_mem: true
            }
        );
        let vn1 = route(
            ProtocolKind::Directory,
            NodeId(3),
            4,
            None,
            &req_msg(true, 2),
        );
        assert_eq!(
            vn1,
            Routing {
                to_cache: true,
                to_mem: false
            }
        );
    }

    #[test]
    fn hierarchical_requests_route_to_the_spine_bank_for_every_protocol() {
        // 8 nodes, 2 banks: bank 0 at node 0, bank 1 at node 4.
        // Block 3 → bank 1 → home node 4.
        let h = HierarchyConfig::new(4, 2);
        for kind in ProtocolKind::ALL {
            let at_bank = route(kind, NodeId(4), 8, Some(&h), &req_msg(false, 3));
            assert_eq!(
                at_bank,
                Routing {
                    to_cache: true,
                    to_mem: true
                },
                "{kind:?}"
            );
            let elsewhere = route(kind, NodeId(3), 8, Some(&h), &req_msg(false, 3));
            assert_eq!(
                elsewhere,
                Routing {
                    to_cache: true,
                    to_mem: false
                },
                "{kind:?}"
            );
        }
    }

    #[test]
    fn protocol_names() {
        assert_eq!(ProtocolKind::Bash.name(), "BASH");
        assert_eq!(ProtocolKind::ALL.len(), 3);
    }
}
