//! White-box unit tests for the Directory protocol's cache controller.

use bash_kernel::{Duration, Time};
use bash_net::{Message, NodeId, NodeSet};

use crate::actions::{AccessOutcome, Action};
use crate::cache::{CacheGeometry, Mosi};
use crate::directory::DirectoryCacheCtrl;
use crate::test_support::{AccessCollect, Deliver};
use crate::types::{
    BlockAddr, BlockData, ProcOp, ProtoMsg, Request, TxnId, TxnKind, CONTROL_MSG_BYTES,
    DATA_MSG_BYTES,
};

const NODES: u16 = 4;

crate::test_support::impl_deliver!(DirectoryCacheCtrl);
crate::test_support::impl_access_collect!(DirectoryCacheCtrl);

fn ctrl(node: u16) -> DirectoryCacheCtrl {
    DirectoryCacheCtrl::new(
        NodeId(node),
        NODES,
        CacheGeometry { sets: 4, ways: 2 },
        Duration::from_ns(25),
        true,
    )
}

fn t(ns: u64) -> Time {
    Time::from_ns(ns)
}

fn fwd(kind: TxnKind, block: u64, requestor: u16, seq: u64, mask: NodeSet) -> Message<ProtoMsg> {
    Message::ordered(
        NodeId(block as u16 % NODES),
        mask,
        CONTROL_MSG_BYTES,
        ProtoMsg::Request(Request {
            kind,
            block: BlockAddr(block),
            requestor: NodeId(requestor),
            txn: TxnId {
                node: NodeId(requestor),
                seq,
            },
            retry: 0,
            from_dir: true,
        }),
    )
}

fn data(to: u16, txn_seq: u64, block: u64, value: u64) -> Message<ProtoMsg> {
    let mut d = BlockData::ZERO;
    d.write(0, value);
    Message::unordered(
        NodeId(0),
        NodeId(to),
        bash_net::VnetId::DATA,
        DATA_MSG_BYTES,
        ProtoMsg::Data {
            txn: TxnId {
                node: NodeId(to),
                seq: txn_seq,
            },
            block: BlockAddr(block),
            data: d,
            from_cache: false,
            serialized_at: None,
        },
    )
}

fn wb_ack(to: u16, block: u64, stale: bool) -> Message<ProtoMsg> {
    Message::ordered(
        NodeId(block as u16 % NODES),
        NodeSet::singleton(NodeId(to)),
        CONTROL_MSG_BYTES,
        ProtoMsg::WbAck {
            block: BlockAddr(block),
            to: NodeId(to),
            stale,
        },
    )
}

/// Completes a store miss on `block`, returning the txn seq used.
fn install_m(c: &mut DirectoryCacheCtrl, node: u16, block: u64, at: u64) -> u64 {
    let (outcome, actions) = c.access_collect(
        t(at),
        ProcOp::Store {
            block: BlockAddr(block),
            word: 0,
            value: block + 1,
        },
    );
    let txn = match outcome {
        AccessOutcome::Miss { txn } => txn,
        _ => panic!("expected a miss"),
    };
    // The request must be a unicast to the home on the directory request
    // network.
    match &actions[0] {
        Action::SendAfter { msg, .. } => {
            assert_eq!(msg.dests, NodeSet::singleton(BlockAddr(block).home(NODES)));
            assert_eq!(msg.vnet, bash_net::VnetId::DIR_REQUEST);
        }
        other => panic!("expected a send, got {other:?}"),
    }
    // Marker (our forwarded copy), then data.
    c.deliver(
        t(at + 5),
        &fwd(
            TxnKind::GetM,
            block,
            node,
            txn.seq,
            NodeSet::singleton(NodeId(node)),
        ),
        Some(0),
    );
    let acts = c.deliver(t(at + 10), &data(node, txn.seq, block, 0), None);
    assert!(acts.iter().any(|a| matches!(a, Action::MissDone { .. })));
    txn.seq
}

#[test]
fn miss_completes_with_marker_and_data() {
    let mut c = ctrl(2);
    install_m(&mut c, 2, 1, 0);
    assert_eq!(c.cache().state(BlockAddr(1)), Some(Mosi::M));
    assert!(c.is_quiescent());
}

#[test]
fn owner_answers_forwarded_gets_and_downgrades() {
    let mut c = ctrl(2);
    install_m(&mut c, 2, 1, 0);
    let acts = c.deliver(
        t(100),
        &fwd(
            TxnKind::GetS,
            1,
            3,
            1,
            NodeSet::from_nodes([NodeId(2), NodeId(3)]),
        ),
        Some(1),
    );
    assert!(acts.iter().any(|a| matches!(
        a,
        Action::SendAfter {
            msg: Message {
                payload: ProtoMsg::Data { .. },
                ..
            },
            ..
        }
    )));
    assert_eq!(c.cache().state(BlockAddr(1)), Some(Mosi::O));
}

#[test]
fn sharer_invalidates_on_forwarded_getm() {
    let mut c = ctrl(2);
    // Get an S copy: load miss → marker → data.
    let (outcome, _) = c.access_collect(
        t(0),
        ProcOp::Load {
            block: BlockAddr(1),
            word: 0,
        },
    );
    let txn = match outcome {
        AccessOutcome::Miss { txn } => txn,
        _ => panic!(),
    };
    c.deliver(
        t(5),
        &fwd(TxnKind::GetS, 1, 2, txn.seq, NodeSet::singleton(NodeId(2))),
        Some(0),
    );
    c.deliver(t(10), &data(2, txn.seq, 1, 7), None);
    assert_eq!(c.cache().state(BlockAddr(1)), Some(Mosi::S));
    // Forwarded foreign GetM (we are in the sharers part of the mask).
    c.deliver(
        t(20),
        &fwd(
            TxnKind::GetM,
            1,
            3,
            1,
            NodeSet::from_nodes([NodeId(2), NodeId(3)]),
        ),
        Some(1),
    );
    assert_eq!(c.cache().state(BlockAddr(1)), None);
}

#[test]
fn o_to_m_upgrade_completes_at_the_marker_without_data() {
    let mut c = ctrl(2);
    install_m(&mut c, 2, 1, 0);
    // Downgrade to O via a forwarded GetS.
    c.deliver(
        t(100),
        &fwd(
            TxnKind::GetS,
            1,
            3,
            1,
            NodeSet::from_nodes([NodeId(2), NodeId(3)]),
        ),
        Some(1),
    );
    // Upgrade store: the directory forwards our own GetM back (mask covers
    // the sharers); we complete from our own data at the marker.
    let (outcome, _) = c.access_collect(
        t(200),
        ProcOp::Store {
            block: BlockAddr(1),
            word: 0,
            value: 99,
        },
    );
    let txn = match outcome {
        AccessOutcome::Miss { txn } => txn,
        _ => panic!(),
    };
    let acts = c.deliver(
        t(210),
        &fwd(
            TxnKind::GetM,
            1,
            2,
            txn.seq,
            NodeSet::from_nodes([NodeId(2), NodeId(3)]),
        ),
        Some(2),
    );
    assert!(acts.iter().any(|a| matches!(a, Action::MissDone { .. })));
    assert_eq!(c.cache().state(BlockAddr(1)), Some(Mosi::M));
    assert_eq!(c.cache().data(BlockAddr(1)).unwrap().read(0), 99);
}

#[test]
fn eviction_sends_data_carrying_putm_and_waits_for_ack() {
    let mut c = ctrl(2);
    // Blocks 1, 5, 9 all map to set 1 with sets=4; ways=2 ⇒ third install
    // evicts.
    install_m(&mut c, 2, 1, 0);
    install_m(&mut c, 2, 5, 100);
    let (outcome, actions) = c.access_collect(
        t(200),
        ProcOp::Store {
            block: BlockAddr(9),
            word: 0,
            value: 9,
        },
    );
    let txn = match outcome {
        AccessOutcome::Miss { txn } => txn,
        _ => panic!(),
    };
    c.deliver(
        t(205),
        &fwd(TxnKind::GetM, 9, 2, txn.seq, NodeSet::singleton(NodeId(2))),
        Some(2),
    );
    let acts = c.deliver(t(210), &data(2, txn.seq, 9, 0), None);
    let wb = acts
        .iter()
        .find_map(|a| match a {
            Action::SendAfter { msg, .. } => match &msg.payload {
                ProtoMsg::WbData { block, data, .. } => Some((*block, *data, msg.size)),
                _ => None,
            },
            _ => None,
        })
        .expect("eviction must emit a data-carrying writeback");
    assert_eq!(wb.0, BlockAddr(1));
    assert_eq!(wb.1.read(0), 2, "victim data travels with the PutM");
    assert_eq!(wb.2, DATA_MSG_BYTES);
    assert!(
        !c.is_quiescent(),
        "writeback entry outstanding until the ack"
    );
    // While unacked, we still answer forwarded requests from the buffer.
    let acts = c.deliver(
        t(220),
        &fwd(
            TxnKind::GetS,
            1,
            3,
            7,
            NodeSet::from_nodes([NodeId(2), NodeId(3)]),
        ),
        Some(3),
    );
    assert!(acts.iter().any(|a| matches!(
        a,
        Action::SendAfter {
            msg: Message {
                payload: ProtoMsg::Data { .. },
                ..
            },
            ..
        }
    )));
    // The ack retires the buffer.
    c.deliver(t(230), &wb_ack(2, 1, false), Some(4));
    assert!(c.is_quiescent());
    let _ = actions;
}

#[test]
fn stale_ack_after_losing_the_race_is_clean() {
    let mut c = ctrl(2);
    install_m(&mut c, 2, 1, 0);
    install_m(&mut c, 2, 5, 100);
    // Evict block 1 (install 9), then a forwarded GetM for block 1 beats
    // our PutM at the directory: we respond and the writeback is squashed.
    let (outcome, _) = c.access_collect(
        t(200),
        ProcOp::Store {
            block: BlockAddr(9),
            word: 0,
            value: 9,
        },
    );
    let txn = match outcome {
        AccessOutcome::Miss { txn } => txn,
        _ => panic!(),
    };
    c.deliver(
        t(205),
        &fwd(TxnKind::GetM, 9, 2, txn.seq, NodeSet::singleton(NodeId(2))),
        Some(2),
    );
    c.deliver(t(210), &data(2, txn.seq, 9, 0), None);
    let acts = c.deliver(
        t(220),
        &fwd(
            TxnKind::GetM,
            1,
            3,
            8,
            NodeSet::from_nodes([NodeId(2), NodeId(3)]),
        ),
        Some(3),
    );
    assert!(acts.iter().any(|a| matches!(
        a,
        Action::SendAfter {
            msg: Message {
                payload: ProtoMsg::Data { .. },
                ..
            },
            ..
        }
    )));
    assert_eq!(c.stats().writebacks_squashed, 1);
    // The directory's stale ack retires the (now invalid) buffer.
    c.deliver(t(230), &wb_ack(2, 1, true), Some(4));
    assert!(c.is_quiescent());
}

#[test]
fn access_to_a_block_with_writeback_in_flight_stalls_then_issues() {
    let mut c = ctrl(2);
    install_m(&mut c, 2, 1, 0);
    install_m(&mut c, 2, 5, 100);
    let (outcome, _) = c.access_collect(
        t(200),
        ProcOp::Store {
            block: BlockAddr(9),
            word: 0,
            value: 9,
        },
    );
    let txn = match outcome {
        AccessOutcome::Miss { txn } => txn,
        _ => panic!(),
    };
    c.deliver(
        t(205),
        &fwd(TxnKind::GetM, 9, 2, txn.seq, NodeSet::singleton(NodeId(2))),
        Some(2),
    );
    c.deliver(t(210), &data(2, txn.seq, 9, 0), None);
    // Re-access the evicted block 1 while its writeback is unacked.
    let (outcome, acts) = c.access_collect(
        t(220),
        ProcOp::Load {
            block: BlockAddr(1),
            word: 0,
        },
    );
    assert!(matches!(outcome, AccessOutcome::Miss { .. }));
    assert!(acts.is_empty(), "stalled: no request until the ack");
    // The ack releases the stalled access as a fresh GetS to the home.
    let acts = c.deliver(t(230), &wb_ack(2, 1, false), Some(3));
    let sent = acts
        .iter()
        .find_map(|a| match a {
            Action::SendAfter { msg, .. } => match &msg.payload {
                ProtoMsg::Request(r) => Some(*r),
                _ => None,
            },
            _ => None,
        })
        .expect("stalled access must issue after the ack");
    assert_eq!(sent.kind, TxnKind::GetS);
    assert_eq!(sent.block, BlockAddr(1));
}
