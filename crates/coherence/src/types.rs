//! Types shared by all three protocol engines.

use bash_net::{NodeId, NodeSet};
use std::fmt;

/// Number of 64-bit words per cache block (64-byte blocks, as in the paper).
pub const WORDS_PER_BLOCK: usize = 8;

/// Control-message size in bytes (requests, forwarded requests, retries,
/// markers, nacks, writeback acks).
pub const CONTROL_MSG_BYTES: u32 = 8;

/// Data-message size in bytes: a 64-byte block plus an 8-byte header.
pub const DATA_MSG_BYTES: u32 = 72;

/// A cache-block address (block number, not byte address).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockAddr(pub u64);

impl BlockAddr {
    /// The home node of this block: memory is block-interleaved across all
    /// nodes' memory controllers.
    pub fn home(self, nodes: u16) -> NodeId {
        NodeId((self.0 % nodes as u64) as u16)
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{:#x}", self.0)
    }
}

/// The contents of one cache block: eight 64-bit words. Carried by data
/// messages end to end so that coherence can be validated on real values
/// (the random tester stores/loads distinct words of shared blocks — false
/// sharing — and checks every load).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BlockData(pub [u64; WORDS_PER_BLOCK]);

impl BlockData {
    /// A block of zeros (the initial contents of all of memory).
    pub const ZERO: BlockData = BlockData([0; WORDS_PER_BLOCK]);

    /// Reads one word.
    ///
    /// # Panics
    ///
    /// Panics if `word >= WORDS_PER_BLOCK`.
    pub fn read(&self, word: usize) -> u64 {
        self.0[word]
    }

    /// Writes one word.
    ///
    /// # Panics
    ///
    /// Panics if `word >= WORDS_PER_BLOCK`.
    pub fn write(&mut self, word: usize, value: u64) {
        self.0[word] = value;
    }
}

/// Coherence transaction kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxnKind {
    /// Get a shared (read-only) copy.
    GetS,
    /// Get an exclusive (writable) copy, invalidating sharers.
    GetM,
    /// Write back an M or O copy to memory.
    PutM,
}

impl TxnKind {
    /// Short name for traces and the transition registry.
    pub fn name(self) -> &'static str {
        match self {
            TxnKind::GetS => "GetS",
            TxnKind::GetM => "GetM",
            TxnKind::PutM => "PutM",
        }
    }
}

/// Globally unique transaction identifier: issuing node plus local sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TxnId {
    /// Issuing node.
    pub node: NodeId,
    /// Node-local sequence number.
    pub seq: u64,
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.node, self.seq)
    }
}

/// Ownership of a block as recorded at its home memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Owner {
    /// Memory owns the block (responds with data itself).
    #[default]
    Memory,
    /// The named node's cache owns the block (M or O there).
    Node(NodeId),
}

/// A coherence request (or a memory-injected retry of one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Transaction kind.
    pub kind: TxnKind,
    /// The block being requested.
    pub block: BlockAddr,
    /// The node that wants the block (not necessarily the message source:
    /// BASH retries are injected by the home memory controller).
    pub requestor: NodeId,
    /// Transaction id (stable across retries and nack-reissues).
    pub txn: TxnId,
    /// 0 for an original request; n>0 for the home's n-th retry multicast
    /// (BASH only).
    pub retry: u8,
    /// True when this copy was forwarded by the directory on the ordered
    /// forwarded-request network (Directory protocol VN1).
    pub from_dir: bool,
}

/// Protocol message payloads (the `P` of `bash_net::Message<P>`).
#[derive(Debug, Clone, PartialEq)]
pub enum ProtoMsg {
    /// A request, forwarded request, retry, or marker copy.
    Request(Request),
    /// A data response to the requestor of `txn`.
    Data {
        /// The transaction being answered.
        txn: TxnId,
        /// The block.
        block: BlockAddr,
        /// Block contents.
        data: BlockData,
        /// True when supplied by another cache (a sharing miss /
        /// cache-to-cache transfer), false when supplied by memory.
        from_cache: bool,
        /// The network total-order number of the *sufficient* request copy
        /// this data answers (BASH). A retried transaction serializes at
        /// its first sufficient copy, not at its original marker; the
        /// requestor uses this tag to split its deferred-request queue into
        /// bystander (earlier) and owner (later) halves. `None` when the
        /// original request was the serialization point (Snooping,
        /// Directory).
        serialized_at: Option<u64>,
    },
    /// Writeback data travelling to the home memory controller. In Snooping
    /// and BASH this follows the ordered PutM request on the data network;
    /// in the Directory protocol this single message *is* the writeback
    /// request (data travels with the PutM, closing the ownership gap at the
    /// directory).
    WbData {
        /// The block being written back.
        block: BlockAddr,
        /// The writer (must match the home's owner record).
        from: NodeId,
        /// Block contents.
        data: BlockData,
    },
    /// Directory-protocol writeback acknowledgment on the ordered network.
    WbAck {
        /// The block written back.
        block: BlockAddr,
        /// The writer being acknowledged.
        to: NodeId,
        /// True when the writeback lost a race and was ignored (the writer
        /// had already lost ownership to an earlier-ordered GetM).
        stale: bool,
    },
    /// BASH deadlock-resolution negative acknowledgment: the home could not
    /// allocate a retry buffer; the requestor must reissue as a broadcast.
    Nack {
        /// The transaction being nacked.
        txn: TxnId,
        /// The block.
        block: BlockAddr,
    },
}

impl ProtoMsg {
    /// The block this message concerns.
    pub fn block(&self) -> BlockAddr {
        match self {
            ProtoMsg::Request(r) => r.block,
            ProtoMsg::Data { block, .. } => *block,
            ProtoMsg::WbData { block, .. } => *block,
            ProtoMsg::WbAck { block, .. } => *block,
            ProtoMsg::Nack { block, .. } => *block,
        }
    }

    /// Short name for traces and the transition registry.
    pub fn name(&self) -> &'static str {
        match self {
            ProtoMsg::Request(r) => r.kind.name(),
            ProtoMsg::Data { .. } => "Data",
            ProtoMsg::WbData { .. } => "WbData",
            ProtoMsg::WbAck { .. } => "WbAck",
            ProtoMsg::Nack { .. } => "Nack",
        }
    }
}

/// A processor-issued memory operation (after L1 filtering; the paper's
/// blocking-processor model issues these to the unified L2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcOp {
    /// Read one word of a block.
    Load {
        /// Target block.
        block: BlockAddr,
        /// Word within the block.
        word: usize,
    },
    /// Write one word of a block.
    Store {
        /// Target block.
        block: BlockAddr,
        /// Word within the block.
        word: usize,
        /// Value to write.
        value: u64,
    },
}

impl ProcOp {
    /// The block this operation targets.
    pub fn block(&self) -> BlockAddr {
        match self {
            ProcOp::Load { block, .. } | ProcOp::Store { block, .. } => *block,
        }
    }

    /// The coherence transaction a miss on this op requires.
    pub fn miss_kind(&self) -> TxnKind {
        match self {
            ProcOp::Load { .. } => TxnKind::GetS,
            ProcOp::Store { .. } => TxnKind::GetM,
        }
    }
}

/// Which set of nodes a cache request was sent to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestScope {
    /// Full broadcast (snooping behaviour).
    Broadcast,
    /// Dualcast {home, requestor} (BASH unicast) or unicast to home
    /// (directory).
    Unicast,
}

/// The helper predicate at the heart of BASH's home controller: was this
/// request sent to every node that must observe it?
///
/// * GetS needs the owner (so it can respond).
/// * GetM needs the owner and every (potential) sharer.
/// * The requestor is in the destination set by construction.
pub fn is_sufficient(
    kind: TxnKind,
    mask: &NodeSet,
    owner: Owner,
    sharers: &NodeSet,
    home: NodeId,
) -> bool {
    let owner_covered = match owner {
        Owner::Memory => mask.contains(home),
        Owner::Node(p) => mask.contains(p),
    };
    match kind {
        TxnKind::GetS => owner_covered,
        TxnKind::GetM => owner_covered && mask.is_superset(sharers),
        TxnKind::PutM => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn home_interleaves_blocks() {
        assert_eq!(BlockAddr(0).home(4), NodeId(0));
        assert_eq!(BlockAddr(5).home(4), NodeId(1));
        assert_eq!(BlockAddr(7).home(4), NodeId(3));
    }

    #[test]
    fn block_data_read_write() {
        let mut d = BlockData::ZERO;
        d.write(3, 0xDEAD);
        assert_eq!(d.read(3), 0xDEAD);
        assert_eq!(d.read(0), 0);
    }

    #[test]
    fn sufficiency_gets_needs_owner_only() {
        let home = NodeId(0);
        let sharers = NodeSet::from_nodes([NodeId(2), NodeId(3)]);
        let dual = NodeSet::from_nodes([NodeId(0), NodeId(1)]);
        // Memory owner: dualcast includes home → sufficient.
        assert!(is_sufficient(
            TxnKind::GetS,
            &dual,
            Owner::Memory,
            &sharers,
            home
        ));
        // Cache owner not in mask → insufficient.
        assert!(!is_sufficient(
            TxnKind::GetS,
            &dual,
            Owner::Node(NodeId(2)),
            &sharers,
            home
        ));
        // Owner in mask → sufficient even with sharers elsewhere.
        let with_owner = NodeSet::from_nodes([NodeId(0), NodeId(1), NodeId(2)]);
        assert!(is_sufficient(
            TxnKind::GetS,
            &with_owner,
            Owner::Node(NodeId(2)),
            &sharers,
            home
        ));
    }

    #[test]
    fn sufficiency_getm_needs_owner_and_sharers() {
        let home = NodeId(0);
        let sharers = NodeSet::from_nodes([NodeId(2), NodeId(3)]);
        let dual = NodeSet::from_nodes([NodeId(0), NodeId(1)]);
        assert!(!is_sufficient(
            TxnKind::GetM,
            &dual,
            Owner::Memory,
            &sharers,
            home
        ));
        let full = NodeSet::all(4);
        assert!(is_sufficient(
            TxnKind::GetM,
            &full,
            Owner::Memory,
            &sharers,
            home
        ));
        assert!(is_sufficient(
            TxnKind::GetM,
            &full,
            Owner::Node(NodeId(3)),
            &sharers,
            home
        ));
        // No sharers, memory owner: the dualcast suffices.
        assert!(is_sufficient(
            TxnKind::GetM,
            &dual,
            Owner::Memory,
            &NodeSet::EMPTY,
            home
        ));
    }

    #[test]
    fn putm_is_always_sufficient() {
        assert!(is_sufficient(
            TxnKind::PutM,
            &NodeSet::singleton(NodeId(0)),
            Owner::Node(NodeId(5)),
            &NodeSet::all(8),
            NodeId(0)
        ));
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(TxnKind::GetS.name(), "GetS");
        let r = ProtoMsg::Request(Request {
            kind: TxnKind::GetM,
            block: BlockAddr(1),
            requestor: NodeId(0),
            txn: TxnId {
                node: NodeId(0),
                seq: 1,
            },
            retry: 0,
            from_dir: false,
        });
        assert_eq!(r.name(), "GetM");
        assert_eq!(r.block(), BlockAddr(1));
    }
}
