//! State shared by the cache-side controllers of all three protocols:
//! the miss-status holding register (MSHR), the writeback buffer, and the
//! per-controller statistics block.

use bash_kernel::Time;
use bash_net::{NodeId, NodeSet};
use std::collections::VecDeque;

use crate::cache::Mosi;
use crate::types::{BlockAddr, BlockData, ProcOp, Request, TxnId, TxnKind};

/// The single miss-status holding register of a blocking processor's cache
/// controller (the paper's processors have at most one outstanding demand
/// miss).
#[derive(Debug, Clone)]
pub struct Mshr {
    /// The block being fetched.
    pub block: BlockAddr,
    /// GetS or GetM.
    pub kind: TxnKind,
    /// Transaction id (stable across BASH retries and nack reissues).
    pub txn: TxnId,
    /// When the processor issued the operation (for miss-latency stats).
    pub issued_at: Time,
    /// The operation to apply when the miss completes.
    pub op: ProcOp,
    /// True once our own request has been observed on the ordered network
    /// (the *marker*, fixing the transaction's place in the total order).
    pub have_marker: bool,
    /// Data response, once received, with its came-from-a-cache flag.
    pub data: Option<(BlockData, bool)>,
    /// Ordered requests for this block observed *after* our marker; they
    /// must be processed only after our transaction completes (we may be
    /// the owner-elect obliged to respond to them).
    pub deferred: VecDeque<DeferredReq>,
    /// Number of times this transaction has been issued by the requestor
    /// (1 = original; 2 = the guaranteed-broadcast reissue after a BASH
    /// nack).
    pub attempts: u8,
    /// BASH owner-upgrade case: we are the O-state owner waiting for a
    /// sufficient copy of our own GetM (the original unicast did not cover
    /// the sharers we track).
    pub awaiting_sufficient_upgrade: bool,
}

/// An ordered request deferred behind an in-flight transaction, with the
/// destination mask it was delivered with (BASH sufficiency checks need it).
#[derive(Debug, Clone)]
pub struct DeferredReq {
    /// The request.
    pub req: Request,
    /// The destination set it was multicast to.
    pub mask: NodeSet,
}

impl Mshr {
    /// Creates an MSHR for a freshly issued demand miss.
    pub fn new(op: ProcOp, kind: TxnKind, txn: TxnId, now: Time) -> Self {
        Mshr {
            block: op.block(),
            kind,
            txn,
            issued_at: now,
            op,
            have_marker: false,
            data: None,
            deferred: VecDeque::new(),
            attempts: 1,
            awaiting_sufficient_upgrade: false,
        }
    }
}

/// A writeback in flight. Between starting the writeback and its resolution
/// (own PutM marker in Snooping/BASH; WbAck in Directory) this node is still
/// the block's owner and must respond to requests from the buffered data.
#[derive(Debug, Clone)]
pub struct WbEntry {
    /// The buffered block contents.
    pub data: BlockData,
    /// M or O at eviction (labels the transient state for the registry).
    pub state_was: Mosi,
    /// False once ownership was lost to a foreign GetM ordered before our
    /// PutM — the writeback is squashed and no data will be sent.
    pub valid: bool,
}

/// Statistics kept by every cache controller.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheStats {
    /// Processor accesses that hit.
    pub hits: u64,
    /// Processor accesses that missed (demand misses issued).
    pub misses: u64,
    /// Misses served by another cache (sharing misses).
    pub sharing_misses: u64,
    /// Writebacks started (PutM issued).
    pub writebacks: u64,
    /// Writebacks squashed by a racing GetM.
    pub writebacks_squashed: u64,
    /// Requests this node broadcast.
    pub broadcasts_sent: u64,
    /// Requests this node unicast (dualcast in BASH, home unicast in
    /// Directory).
    pub unicasts_sent: u64,
    /// BASH: nacks received (deadlock-resolution path).
    pub nacks_received: u64,
    /// BASH: reissues after a nack (always broadcast).
    pub nack_reissues: u64,
    /// Snoops of foreign requests answered with data.
    pub snoop_responses: u64,
    /// Deliveries dropped in fault-tolerant mode because they addressed a
    /// transaction this controller no longer (or never) had open —
    /// duplicated or reordered network traffic from the harness's
    /// broken-network fault injections.
    pub spurious_dropped: u64,
}

/// Statistics kept by every memory/directory controller.
#[derive(Debug, Clone, Copy, Default)]
pub struct MemStats {
    /// Requests for which memory supplied the data.
    pub data_responses: u64,
    /// Directory: requests forwarded to a cache owner.
    pub forwards: u64,
    /// BASH: retries injected on the ordered network.
    pub retries_sent: u64,
    /// BASH: requests that escalated to a full-broadcast retry.
    pub broadcast_escalations: u64,
    /// BASH: nacks sent because the retry buffer was full.
    pub nacks_sent: u64,
    /// Writebacks accepted.
    pub writebacks_accepted: u64,
    /// Writebacks ignored as stale (lost an ownership race).
    pub writebacks_stale: u64,
    /// Deliveries dropped in fault-tolerant mode (writeback data with no
    /// open window, or from a node the owner record no longer credits) —
    /// duplicated or reordered network traffic from the harness's
    /// broken-network fault injections.
    pub spurious_dropped: u64,
}

/// Identifies one node's view of who it is relative to a request.
pub fn is_own(req: &Request, node: NodeId) -> bool {
    req.requestor == node
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mshr_initial_state() {
        let op = ProcOp::Store {
            block: BlockAddr(4),
            word: 1,
            value: 9,
        };
        let m = Mshr::new(
            op,
            TxnKind::GetM,
            TxnId {
                node: NodeId(2),
                seq: 7,
            },
            Time::from_ns(5),
        );
        assert_eq!(m.block, BlockAddr(4));
        assert!(!m.have_marker);
        assert!(m.data.is_none());
        assert_eq!(m.attempts, 1);
        assert!(m.deferred.is_empty());
    }
}
