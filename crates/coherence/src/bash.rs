//! The **BASH** hybrid's home memory controller (§3.3–3.4).
//!
//! Like the Directory protocol it keeps an owner + sharer-superset per
//! block; like Snooping it observes requests on the totally ordered request
//! network. Its job per request:
//!
//! * compare the request's destination mask against {owner ∪ needed
//!   sharers} ([`crate::types::is_sufficient`]);
//! * **sufficient** → update directory state; respond with data if memory
//!   is the owner (the owning cache otherwise answers on its own, reaching
//!   the same verdict from the sharer set it tracks — paper footnote 2);
//! * **insufficient** → *retry*: re-inject the request on the ordered
//!   network as a multicast to {owner ∪ sharers ∪ requestor ∪ home},
//!   without touching directory state. The window of vulnerability between
//!   the original and the retry can invalidate the retry's mask, so each
//!   re-check recomputes it; the **third retry escalates to a full
//!   broadcast**, which is sufficient by construction (livelock freedom);
//! * if no retry buffer can be allocated → **nack** the requestor on the
//!   data network; it reissues as a broadcast (deadlock resolution).
//!
//! Writebacks: a PutM from the recorded owner opens a `WbPending` window
//! (requests stall at the home until the data arrives on the response
//! network); a PutM from anyone else is stale — the writer was overtaken by
//! an earlier-ordered GetM and sent no data.

use std::collections::{HashMap, VecDeque};

use crate::blocktable::BlockTable;

use bash_kernel::{Duration, Time};
use bash_net::{Message, NodeId, NodeSet, VnetId};

use crate::actions::ActionSink;
use crate::common::MemStats;
use crate::hierarchy::{home_of, HierarchyConfig};
use crate::registry::TransitionLog;
use crate::types::{
    is_sufficient, BlockAddr, BlockData, Owner, ProtoMsg, Request, TxnId, TxnKind,
    CONTROL_MSG_BYTES, DATA_MSG_BYTES,
};

/// Retry escalation point: the paper broadcasts "on its third retry".
const BROADCAST_RETRY: u8 = 3;

/// A writeback window at the home.
#[derive(Debug, Clone)]
struct WbPending {
    from: NodeId,
    queued: VecDeque<(Request, NodeSet, u64)>,
}

/// Per-block home state *and* stored contents, combined so the
/// per-event hot path resolves a block with one table probe instead of
/// separate state/store map lookups.
#[derive(Debug, Clone)]
struct BlockState {
    owner: Owner,
    sharers: NodeSet,
    wb: Option<WbPending>,
    /// Writeback data that outran its own PutM marker (the data network
    /// is unordered; the ordered chain toward this home can lag under
    /// the fault plane's retransmission delays). It waits here and
    /// completes the writeback the instant the window opens.
    early_wb: Vec<(NodeId, BlockData)>,
    /// The DRAM contents (zeros until a writeback lands).
    data: BlockData,
}

impl Default for BlockState {
    fn default() -> Self {
        BlockState {
            owner: Owner::default(),
            sharers: NodeSet::EMPTY,
            wb: None,
            early_wb: Vec::new(),
            data: BlockData::ZERO,
        }
    }
}

/// The BASH home memory controller for one node's slice of memory.
#[derive(Debug)]
pub struct BashMemCtrl {
    node: NodeId,
    nodes: u16,
    /// Two-level hierarchy, when configured: this controller is then a
    /// directory-spine **bank** — homes map through the bank interleave,
    /// sharers are recorded at cluster granularity (owner stays an exact
    /// node: stale-PutM detection and owner-coverage checks need the
    /// precise identity), and retry masks are cluster-expanded so
    /// cross-cluster forwarding reaches whole sharing clusters.
    hier: Option<HierarchyConfig>,
    blocks: BlockTable<BlockState>,
    /// Outstanding retry buffers, keyed by transaction (count = retries
    /// injected so far).
    retry_slots: HashMap<TxnId, u8>,
    retry_capacity: usize,
    dram_latency: Duration,
    serialize_dram: bool,
    dram_free: Time,
    /// Drop (and count) deliveries that violate the network contract
    /// instead of panicking — set by the driver for the broken-network
    /// fault injections.
    tolerant: bool,
    stats: MemStats,
    log: TransitionLog,
}

impl BashMemCtrl {
    /// Builds the controller. `retry_capacity` is the number of retry
    /// buffers (the deadlock-avoidance resource; the paper nacks when none
    /// can be allocated).
    pub fn new(
        node: NodeId,
        nodes: u16,
        dram_latency: Duration,
        serialize_dram: bool,
        retry_capacity: usize,
        coverage: bool,
    ) -> Self {
        Self::build(
            node,
            nodes,
            None,
            dram_latency,
            serialize_dram,
            retry_capacity,
            coverage,
        )
    }

    /// Builds a hierarchical spine **bank**: the BASH home controller
    /// with bank-mapped homes and cluster-granularity sharer records.
    #[allow(clippy::too_many_arguments)]
    pub fn new_hierarchical(
        node: NodeId,
        nodes: u16,
        hier: HierarchyConfig,
        dram_latency: Duration,
        serialize_dram: bool,
        retry_capacity: usize,
        coverage: bool,
    ) -> Self {
        Self::build(
            node,
            nodes,
            Some(hier),
            dram_latency,
            serialize_dram,
            retry_capacity,
            coverage,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        node: NodeId,
        nodes: u16,
        hier: Option<HierarchyConfig>,
        dram_latency: Duration,
        serialize_dram: bool,
        retry_capacity: usize,
        coverage: bool,
    ) -> Self {
        BashMemCtrl {
            node,
            nodes,
            hier,
            blocks: BlockTable::new(),
            retry_slots: HashMap::new(),
            retry_capacity,
            dram_latency,
            serialize_dram,
            dram_free: Time::ZERO,
            tolerant: false,
            stats: MemStats::default(),
            log: if coverage {
                TransitionLog::enabled()
            } else {
                TransitionLog::new()
            },
        }
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// The transition coverage log.
    pub fn log(&self) -> &TransitionLog {
        &self.log
    }

    /// Current owner of a block (invariant checks).
    pub fn owner_of(&self, block: BlockAddr) -> Owner {
        self.blocks.get(block).map(|b| b.owner).unwrap_or_default()
    }

    /// Current sharer superset of a block (invariant checks).
    pub fn sharers_of(&self, block: BlockAddr) -> NodeSet {
        self.blocks
            .get(block)
            .map(|b| b.sharers.clone())
            .unwrap_or(NodeSet::EMPTY)
    }

    /// Fault injection (`StaleSharerMask`): silently erase the home's
    /// record of `node` — drop its sharer bit and, if it is the recorded
    /// owner, reset ownership to memory. Harness self-tests only.
    pub fn fault_forget_sharer(&mut self, block: BlockAddr, node: NodeId) {
        if let Some(b) = self.blocks.get_mut(block) {
            b.sharers.remove(node);
            if b.owner == Owner::Node(node) {
                b.owner = Owner::Memory;
            }
        }
    }

    /// The stored contents of a block (defaults to zeros).
    pub fn stored_data(&self, block: BlockAddr) -> BlockData {
        self.blocks
            .get(block)
            .map(|b| b.data)
            .unwrap_or(BlockData::ZERO)
    }

    /// True when no writeback windows, early writeback data, or retry
    /// buffers are outstanding.
    pub fn is_quiescent(&self) -> bool {
        self.retry_slots.is_empty()
            && self
                .blocks
                .values()
                .all(|b| b.wb.is_none() && b.early_wb.is_empty())
    }

    /// Makes unexpected deliveries (duplicated or reordered network
    /// traffic) drop — counted in `spurious_dropped` — instead of panic.
    /// The verification harness enables this for its broken-network fault
    /// injections, which deliberately violate the delivery contract the
    /// asserts encode; normal runs keep every assert armed.
    pub fn set_tolerant(&mut self, tolerant: bool) {
        self.tolerant = tolerant;
    }

    /// Handles a delivery (the driver routes only home-block messages
    /// here), emitting resulting actions into `sink`.
    pub fn on_delivery(
        &mut self,
        now: Time,
        msg: &Message<ProtoMsg>,
        order: Option<u64>,
        sink: &mut ActionSink,
    ) {
        match &msg.payload {
            ProtoMsg::Request(req) => {
                debug_assert_eq!(
                    home_of(req.block, self.nodes, self.hier.as_ref()),
                    self.node
                );
                let order = order.expect("ordered request network");
                self.on_request(now, req, &msg.dests, order, sink)
            }
            ProtoMsg::WbData { block, from, data } => {
                self.on_wb_data(now, *block, *from, *data, sink)
            }
            other => unreachable!("unexpected message at BASH memory: {other:?}"),
        }
    }

    fn on_request(
        &mut self,
        now: Time,
        req: &Request,
        mask: &NodeSet,
        order: u64,
        sink: &mut ActionSink,
    ) {
        let block = req.block;
        let before = self.state_label(block);
        let ev: &'static str = match (req.kind, req.retry > 0) {
            (TxnKind::GetS, false) => "GetS",
            (TxnKind::GetM, false) => "GetM",
            (TxnKind::GetS, true) => "RetryGetS",
            (TxnKind::GetM, true) => "RetryGetM",
            (TxnKind::PutM, _) => "PutM",
        };

        // Writeback window: stall everything but PutMs.
        let stalled = {
            let st = self.blocks.or_default(block);
            if let Some(wb) = st.wb.as_mut() {
                if req.kind != TxnKind::PutM {
                    wb.queued.push_back((*req, mask.clone(), order));
                    true
                } else {
                    false
                }
            } else {
                false
            }
        };
        if stalled {
            self.log.record(before, ev, self.state_label(block));
            return;
        }

        self.process_request(now, req, mask, order, sink);
        self.log.record(before, ev, self.state_label(block));
    }

    fn process_request(
        &mut self,
        now: Time,
        req: &Request,
        mask: &NodeSet,
        order: u64,
        sink: &mut ActionSink,
    ) {
        let block = req.block;
        if req.kind == TxnKind::PutM {
            let early = {
                let st = self.blocks.or_default(block);
                if st.owner == Owner::Node(req.requestor) {
                    st.wb = Some(WbPending {
                        from: req.requestor,
                        queued: VecDeque::new(),
                    });
                    // The data may already have outrun this marker.
                    st.early_wb
                        .iter()
                        .position(|(f, _)| *f == req.requestor)
                        .map(|i| st.early_wb.remove(i))
                } else {
                    self.stats.writebacks_stale += 1;
                    None
                }
            };
            if let Some((from, data)) = early {
                self.on_wb_data(now, block, from, data, sink);
            }
            return;
        }

        let (owner, sharers) = {
            let st = self.blocks.or_default(block);
            (st.owner, st.sharers.clone())
        };

        if is_sufficient(req.kind, mask, owner, &sharers, self.node) {
            // The request reached everyone that must see it: commit the
            // directory update; respond if memory owns the data.
            self.retry_slots.remove(&req.txn);
            if owner == Owner::Memory {
                self.respond_with_data(now, req, order, sink);
            }
            let st = self.blocks.get_mut(block).expect("present");
            match req.kind {
                TxnKind::GetS => {
                    // Under a hierarchy the spine tracks sharers at cluster
                    // granularity; the owning cache expands identically
                    // (snoopcache `tracked`), so both sufficiency verdicts
                    // agree.
                    match &self.hier {
                        None => {
                            st.sharers.insert(req.requestor);
                        }
                        Some(h) => st.sharers = st.sharers.union(&h.cluster_set(req.requestor)),
                    }
                }
                TxnKind::GetM => {
                    st.owner = Owner::Node(req.requestor);
                    st.sharers = NodeSet::EMPTY;
                }
                TxnKind::PutM => unreachable!(),
            }
        } else {
            self.schedule_retry(now, req, owner, &sharers, sink);
        }
    }

    fn schedule_retry(
        &mut self,
        now: Time,
        req: &Request,
        owner: Owner,
        sharers: &NodeSet,
        sink: &mut ActionSink,
    ) {
        let count = match self.retry_slots.get(&req.txn) {
            Some(&c) => c + 1,
            None => {
                if self.retry_slots.len() >= self.retry_capacity {
                    // Deadlock resolution: cannot allocate a retry buffer —
                    // nack so the requestor reissues as a broadcast.
                    self.stats.nacks_sent += 1;
                    let delay = self.dram_delay(now);
                    sink.send_after(
                        delay,
                        Message::unordered(
                            self.node,
                            req.requestor,
                            VnetId::DATA,
                            CONTROL_MSG_BYTES,
                            ProtoMsg::Nack {
                                txn: req.txn,
                                block: req.block,
                            },
                        ),
                    );
                    return;
                }
                1
            }
        };
        self.retry_slots.insert(req.txn, count);
        self.stats.retries_sent += 1;

        let mask = if count >= BROADCAST_RETRY {
            self.stats.broadcast_escalations += 1;
            NodeSet::all(self.nodes as usize)
        } else {
            // {owner ∪ sharers ∪ requestor ∪ home} (§3.3).
            let mut m = sharers.clone();
            if let Owner::Node(p) = owner {
                m.insert(p);
            }
            m.insert(req.requestor);
            m.insert(self.node);
            m
        };
        let delay = self.dram_delay(now);
        sink.send_after(
            delay,
            Message::ordered(
                self.node,
                mask,
                CONTROL_MSG_BYTES,
                ProtoMsg::Request(Request {
                    retry: count,
                    ..*req
                }),
            ),
        );
    }

    fn on_wb_data(
        &mut self,
        now: Time,
        block: BlockAddr,
        from: NodeId,
        data: BlockData,
        sink: &mut ActionSink,
    ) {
        let before = self.state_label(block);
        let st = self.blocks.or_default(block);
        if st.wb.as_ref().is_none_or(|wb| wb.from != from) {
            if self.tolerant {
                // A corrupted owner record (duplicated/reordered request
                // traffic) can leave writeback data arriving with no open
                // window, or from a node the window no longer credits.
                // Drop it — the dirty data is lost, which is exactly the
                // corruption the oracle must then flag.
                self.stats.spurious_dropped += 1;
            } else {
                // The unordered data network outran the ordered PutM
                // marker (skewed per-destination chains, e.g. under a
                // retransmitting fault plane). Hold the data; the marker
                // is guaranteed to follow — the writer only sends data
                // after observing its own marker in the total order.
                st.early_wb.push((from, data));
            }
            return;
        }
        let wb = st.wb.take().expect("window checked above");
        st.owner = Owner::Memory;
        st.data = data;
        self.stats.writebacks_accepted += 1;
        for (req, mask, order) in wb.queued {
            let mid = self.state_label(block);
            self.process_request(now, &req, &mask, order, sink);
            let ev: &'static str = match req.kind {
                TxnKind::GetS => "GetS",
                TxnKind::GetM => "GetM",
                TxnKind::PutM => "PutM",
            };
            self.log.record(mid, ev, self.state_label(block));
        }
        self.log.record(before, "WbData", self.state_label(block));
    }

    fn respond_with_data(&mut self, now: Time, req: &Request, order: u64, sink: &mut ActionSink) {
        let data = self.stored_data(req.block);
        self.stats.data_responses += 1;
        let delay = self.dram_delay(now);
        sink.send_after(
            delay,
            Message::unordered(
                self.node,
                req.requestor,
                VnetId::DATA,
                DATA_MSG_BYTES,
                ProtoMsg::Data {
                    txn: req.txn,
                    block: req.block,
                    data,
                    from_cache: false,
                    serialized_at: Some(order),
                },
            ),
        );
    }

    fn dram_delay(&mut self, now: Time) -> Duration {
        if self.serialize_dram {
            let start = now.max(self.dram_free);
            self.dram_free = start + self.dram_latency;
            self.dram_free.since(now)
        } else {
            self.dram_latency
        }
    }

    fn state_label(&self, block: BlockAddr) -> &'static str {
        match self.blocks.get(block) {
            None => "Mem",
            Some(b) if b.wb.is_some() => "WbPending",
            Some(b) => match (b.owner, b.sharers.is_empty()) {
                (Owner::Memory, true) => "Mem",
                (Owner::Memory, false) => "MemS",
                (Owner::Node(_), true) => "Own",
                (Owner::Node(_), false) => "OwnS",
            },
        }
    }
}
