//! White-box unit tests for the Snooping/BASH cache controller: drive it
//! with hand-crafted deliveries and assert on the emitted actions.

use bash_adaptive::{AdaptorConfig, DecisionMode};
use bash_kernel::{Duration, Time};
use bash_net::{Message, NodeId, NodeSet};

use crate::actions::{AccessOutcome, Action};
use crate::cache::{CacheGeometry, Mosi};
use crate::snoopcache::SnoopCacheCtrl;
use crate::test_support::{AccessCollect, Deliver};
use crate::types::{
    BlockAddr, BlockData, ProcOp, ProtoMsg, Request, TxnId, TxnKind, CONTROL_MSG_BYTES,
    DATA_MSG_BYTES,
};

const NODES: u16 = 4;

crate::test_support::impl_deliver!(SnoopCacheCtrl);
crate::test_support::impl_access_collect!(SnoopCacheCtrl);

fn snooping(node: u16) -> SnoopCacheCtrl {
    SnoopCacheCtrl::new_snooping(
        NodeId(node),
        NODES,
        CacheGeometry { sets: 4, ways: 2 },
        Duration::from_ns(25),
        true,
    )
}

fn bash(node: u16, mode: DecisionMode) -> SnoopCacheCtrl {
    let mut cfg = AdaptorConfig::paper_default();
    cfg.mode = mode;
    SnoopCacheCtrl::new_bash(
        NodeId(node),
        NODES,
        CacheGeometry { sets: 4, ways: 2 },
        Duration::from_ns(25),
        &cfg,
        true,
    )
}

fn t(ns: u64) -> Time {
    Time::from_ns(ns)
}

fn req_msg(
    kind: TxnKind,
    block: u64,
    requestor: u16,
    seq: u64,
    mask: NodeSet,
    retry: u8,
) -> Message<ProtoMsg> {
    Message::ordered(
        NodeId(requestor),
        mask,
        CONTROL_MSG_BYTES,
        ProtoMsg::Request(Request {
            kind,
            block: BlockAddr(block),
            requestor: NodeId(requestor),
            txn: TxnId {
                node: NodeId(requestor),
                seq,
            },
            retry,
            from_dir: false,
        }),
    )
}

fn data_msg(
    to_txn: TxnId,
    block: u64,
    value: u64,
    serialized_at: Option<u64>,
) -> Message<ProtoMsg> {
    let mut d = BlockData::ZERO;
    d.write(0, value);
    Message::unordered(
        NodeId(3),
        to_txn.node,
        bash_net::VnetId::DATA,
        DATA_MSG_BYTES,
        ProtoMsg::Data {
            txn: to_txn,
            block: BlockAddr(block),
            data: d,
            from_cache: true,
            serialized_at,
        },
    )
}

/// Extracts the single outgoing request of a miss.
fn issued_request(actions: &[Action]) -> (Request, NodeSet) {
    let sends: Vec<_> = actions
        .iter()
        .filter_map(|a| match a {
            Action::SendAfter { msg, .. } => Some(msg),
            _ => None,
        })
        .collect();
    assert_eq!(sends.len(), 1);
    match &sends[0].payload {
        ProtoMsg::Request(r) => (*r, sends[0].dests.clone()),
        other => panic!("expected a request, got {other:?}"),
    }
}

#[test]
fn snooping_miss_broadcasts() {
    let mut c = snooping(0);
    let (outcome, actions) = c.access_collect(
        t(0),
        ProcOp::Store {
            block: BlockAddr(1),
            word: 0,
            value: 5,
        },
    );
    assert!(matches!(outcome, AccessOutcome::Miss { .. }));
    let (req, mask) = issued_request(&actions);
    assert_eq!(req.kind, TxnKind::GetM);
    assert_eq!(mask, NodeSet::all(4));
}

#[test]
fn bash_unicast_is_a_dualcast_of_home_and_self() {
    let mut c = bash(2, DecisionMode::AlwaysUnicast);
    let (_, actions) = c.access_collect(
        t(0),
        ProcOp::Store {
            block: BlockAddr(1), // home = node 1
            word: 2,
            value: 5,
        },
    );
    let (_, mask) = issued_request(&actions);
    assert_eq!(mask, NodeSet::from_nodes([NodeId(1), NodeId(2)]));
}

#[test]
fn completion_requires_marker_and_data_in_either_order() {
    // Data first (IM_A), then marker.
    let mut c = snooping(0);
    let (outcome, actions) = c.access_collect(
        t(0),
        ProcOp::Store {
            block: BlockAddr(1),
            word: 0,
            value: 9,
        },
    );
    let txn = match outcome {
        AccessOutcome::Miss { txn } => txn,
        _ => panic!("must miss"),
    };
    let (req, mask) = issued_request(&actions);
    let acts = c.deliver(t(10), &data_msg(txn, 1, 7, None), None);
    assert!(acts.is_empty(), "no completion before the marker");
    let marker = req_msg(req.kind, 1, 0, txn.seq, mask, 0);
    let acts = c.deliver(t(20), &marker, Some(0));
    assert!(
        acts.iter().any(|a| matches!(a, Action::MissDone { .. })),
        "marker after data completes the miss"
    );
    assert_eq!(c.cache().state(BlockAddr(1)), Some(Mosi::M));
    // The store was applied on top of the received data.
    assert_eq!(c.cache().data(BlockAddr(1)).unwrap().read(0), 9);
}

#[test]
fn owner_responds_to_foreign_gets_and_becomes_o() {
    let mut c = snooping(0);
    // Install an M block by completing a miss.
    let (outcome, actions) = c.access_collect(
        t(0),
        ProcOp::Store {
            block: BlockAddr(2),
            word: 0,
            value: 1,
        },
    );
    let txn = match outcome {
        AccessOutcome::Miss { txn } => txn,
        _ => panic!(),
    };
    let (req, mask) = issued_request(&actions);
    c.deliver(t(5), &req_msg(req.kind, 2, 0, txn.seq, mask, 0), Some(0));
    c.deliver(t(10), &data_msg(txn, 2, 0, None), None);
    assert_eq!(c.cache().state(BlockAddr(2)), Some(Mosi::M));

    // A foreign GetS arrives: we must respond and downgrade to O.
    let acts = c.deliver(
        t(20),
        &req_msg(TxnKind::GetS, 2, 3, 1, NodeSet::all(4), 0),
        Some(1),
    );
    let data_sends: Vec<_> = acts
        .iter()
        .filter(|a| {
            matches!(
                a,
                Action::SendAfter {
                    msg: Message {
                        payload: ProtoMsg::Data { .. },
                        ..
                    },
                    ..
                }
            )
        })
        .collect();
    assert_eq!(data_sends.len(), 1);
    assert_eq!(c.cache().state(BlockAddr(2)), Some(Mosi::O));
}

#[test]
fn foreign_getm_invalidates_s_copy() {
    let mut c = snooping(1);
    // Get an S copy via a GetS miss.
    let (outcome, actions) = c.access_collect(
        t(0),
        ProcOp::Load {
            block: BlockAddr(3),
            word: 0,
        },
    );
    let txn = match outcome {
        AccessOutcome::Miss { txn } => txn,
        _ => panic!(),
    };
    let (req, mask) = issued_request(&actions);
    c.deliver(t(5), &req_msg(req.kind, 3, 1, txn.seq, mask, 0), Some(0));
    c.deliver(t(10), &data_msg(txn, 3, 42, None), None);
    assert_eq!(c.cache().state(BlockAddr(3)), Some(Mosi::S));

    c.deliver(
        t(20),
        &req_msg(TxnKind::GetM, 3, 2, 1, NodeSet::all(4), 0),
        Some(1),
    );
    assert_eq!(c.cache().state(BlockAddr(3)), None, "S must invalidate");
}

#[test]
fn owner_elect_defers_and_replays_after_data() {
    let mut c = snooping(0);
    let (outcome, actions) = c.access_collect(
        t(0),
        ProcOp::Store {
            block: BlockAddr(1),
            word: 0,
            value: 1,
        },
    );
    let txn = match outcome {
        AccessOutcome::Miss { txn } => txn,
        _ => panic!(),
    };
    let (req, mask) = issued_request(&actions);
    // Marker arrives: owner-elect.
    c.deliver(t(5), &req_msg(req.kind, 1, 0, txn.seq, mask, 0), Some(0));
    // A foreign GetM ordered after ours: deferred (no actions yet).
    let acts = c.deliver(
        t(6),
        &req_msg(TxnKind::GetM, 1, 2, 1, NodeSet::all(4), 0),
        Some(1),
    );
    assert!(acts.is_empty(), "owner-elect must defer");
    // Data arrives: complete our miss, then answer the deferred GetM and
    // invalidate.
    let acts = c.deliver(t(10), &data_msg(txn, 1, 0, Some(0)), None);
    assert!(acts.iter().any(|a| matches!(a, Action::MissDone { .. })));
    assert!(acts.iter().any(|a| matches!(
        a,
        Action::SendAfter {
            msg: Message {
                payload: ProtoMsg::Data { .. },
                ..
            },
            ..
        }
    )));
    assert_eq!(c.cache().state(BlockAddr(1)), None, "ownership passed on");
}

#[test]
fn bash_deferred_requests_before_serialization_replay_as_bystander() {
    let mut c = bash(0, DecisionMode::AlwaysUnicast);
    let (outcome, actions) = c.access_collect(
        t(0),
        ProcOp::Store {
            block: BlockAddr(0), // home = node 0 (us); mask = {0}
            word: 0,
            value: 1,
        },
    );
    let txn = match outcome {
        AccessOutcome::Miss { txn } => txn,
        _ => panic!(),
    };
    let (req, mask) = issued_request(&actions);
    // Our marker at order 10; the transaction will serialize at order 30.
    c.deliver(t(5), &req_msg(req.kind, 0, 0, txn.seq, mask, 0), Some(10));
    // A foreign GetM at order 20 (between marker and serialization): the
    // previous owner answers it, not us.
    let acts = c.deliver(
        t(6),
        &req_msg(TxnKind::GetM, 0, 2, 1, NodeSet::all(4), 0),
        Some(20),
    );
    assert!(acts.is_empty());
    // Data arrives tagged with the sufficient copy's order (30): the
    // deferred order-20 GetM must replay as a no-op (no data response) and
    // we keep the block in M.
    let acts = c.deliver(t(10), &data_msg(txn, 0, 0, Some(30)), None);
    assert!(acts.iter().any(|a| matches!(a, Action::MissDone { .. })));
    assert!(
        !acts.iter().any(|a| matches!(
            a,
            Action::SendAfter {
                msg: Message {
                    payload: ProtoMsg::Data { .. },
                    ..
                },
                ..
            }
        )),
        "bystander replay must not answer the earlier GetM"
    );
    assert_eq!(c.cache().state(BlockAddr(0)), Some(Mosi::M));
}

#[test]
fn writeback_squashed_by_earlier_getm_sends_no_data() {
    let mut c = snooping(0);
    // Fill two blocks mapping to the same set (sets=4: blocks 1 and 5) so
    // the second fill evicts the first (ways=2: need three).
    let mut install = |block: u64, seq_base: u64| {
        let (outcome, actions) = c.access_collect(
            t(seq_base * 100),
            ProcOp::Store {
                block: BlockAddr(block),
                word: 0,
                value: block,
            },
        );
        let txn = match outcome {
            AccessOutcome::Miss { txn } => txn,
            _ => panic!(),
        };
        let (req, mask) = issued_request(&actions);
        c.deliver(
            t(seq_base * 100 + 5),
            &req_msg(req.kind, block, 0, txn.seq, mask, 0),
            Some(seq_base),
        );
        c.deliver(
            t(seq_base * 100 + 10),
            &data_msg(txn, block, block, None),
            None,
        )
    };
    install(1, 1);
    install(5, 2);
    let acts = install(9, 3); // evicts block 1 (LRU) → PutM
    let putm = acts
        .iter()
        .find_map(|a| match a {
            Action::SendAfter { msg, .. } => match &msg.payload {
                ProtoMsg::Request(r) if r.kind == TxnKind::PutM => Some((*r, msg.dests.clone())),
                _ => None,
            },
            _ => None,
        })
        .expect("eviction starts a writeback");
    assert_eq!(putm.0.block, BlockAddr(1));

    // A foreign GetM for block 1 is ordered *before* our PutM: we respond
    // and the writeback is squashed.
    let acts = c.deliver(
        t(400),
        &req_msg(TxnKind::GetM, 1, 3, 7, NodeSet::all(4), 0),
        Some(4),
    );
    assert!(acts.iter().any(|a| matches!(
        a,
        Action::SendAfter {
            msg: Message {
                payload: ProtoMsg::Data { .. },
                ..
            },
            ..
        }
    )));
    // Our PutM marker arrives: no WbData may be sent.
    let acts = c.deliver(
        t(410),
        &req_msg(TxnKind::PutM, 1, 0, putm.0.txn.seq, putm.1, 0),
        Some(5),
    );
    assert!(
        !acts.iter().any(|a| matches!(
            a,
            Action::SendAfter {
                msg: Message {
                    payload: ProtoMsg::WbData { .. },
                    ..
                },
                ..
            }
        )),
        "squashed writeback must not send data"
    );
    assert_eq!(c.stats().writebacks_squashed, 1);
}

#[test]
fn unsquashed_writeback_sends_data_at_marker() {
    let mut c = snooping(0);
    let mut install = |block: u64, seq_base: u64| {
        let (outcome, actions) = c.access_collect(
            t(seq_base * 100),
            ProcOp::Store {
                block: BlockAddr(block),
                word: 0,
                value: block,
            },
        );
        let txn = match outcome {
            AccessOutcome::Miss { txn } => txn,
            _ => panic!(),
        };
        let (req, mask) = issued_request(&actions);
        c.deliver(
            t(seq_base * 100 + 5),
            &req_msg(req.kind, block, 0, txn.seq, mask, 0),
            Some(seq_base),
        );
        c.deliver(
            t(seq_base * 100 + 10),
            &data_msg(txn, block, block, None),
            None,
        )
    };
    install(1, 1);
    install(5, 2);
    let acts = install(9, 3);
    let putm = acts
        .iter()
        .find_map(|a| match a {
            Action::SendAfter { msg, .. } => match &msg.payload {
                ProtoMsg::Request(r) if r.kind == TxnKind::PutM => Some((*r, msg.dests.clone())),
                _ => None,
            },
            _ => None,
        })
        .expect("writeback issued");
    let acts = c.deliver(
        t(400),
        &req_msg(TxnKind::PutM, 1, 0, putm.0.txn.seq, putm.1, 0),
        Some(4),
    );
    let wb: Vec<_> = acts
        .iter()
        .filter(|a| {
            matches!(
                a,
                Action::SendAfter {
                    msg: Message {
                        payload: ProtoMsg::WbData { .. },
                        ..
                    },
                    ..
                }
            )
        })
        .collect();
    assert_eq!(wb.len(), 1, "valid writeback sends the data to the home");
    assert!(c.is_quiescent());
}

#[test]
fn bash_owner_ignores_insufficient_getm() {
    // Make node 0 the owner with a tracked sharer (node 3), then deliver a
    // dualcast GetM that misses the sharer: the owner must stay silent.
    let mut c = bash(0, DecisionMode::AlwaysBroadcast);
    let (outcome, actions) = c.access_collect(
        t(0),
        ProcOp::Store {
            block: BlockAddr(1),
            word: 0,
            value: 1,
        },
    );
    let txn = match outcome {
        AccessOutcome::Miss { txn } => txn,
        _ => panic!(),
    };
    let (req, mask) = issued_request(&actions);
    c.deliver(t(5), &req_msg(req.kind, 1, 0, txn.seq, mask, 0), Some(0));
    c.deliver(t(10), &data_msg(txn, 1, 0, Some(0)), None);
    // Foreign GetS: respond; node 3 becomes a tracked sharer.
    c.deliver(
        t(20),
        &req_msg(TxnKind::GetS, 1, 3, 1, NodeSet::all(4), 0),
        Some(1),
    );
    assert_eq!(c.cache().state(BlockAddr(1)), Some(Mosi::O));
    // Insufficient GetM (mask = {home=1, requestor=2}; sharer 3 missing):
    // plus us — we received it, so we are in the mask.
    let insuff = req_msg(
        TxnKind::GetM,
        1,
        2,
        2,
        NodeSet::from_nodes([NodeId(0), NodeId(1), NodeId(2)]),
        0,
    );
    let acts = c.deliver(t(30), &insuff, Some(2));
    assert!(
        acts.is_empty(),
        "owner must not answer an insufficient GetM"
    );
    assert_eq!(c.cache().state(BlockAddr(1)), Some(Mosi::O));
    // The home's retry covers the sharer: now we respond and invalidate.
    let retry = req_msg(TxnKind::GetM, 1, 2, 2, NodeSet::all(4), 1);
    let acts = c.deliver(t(40), &retry, Some(3));
    assert!(acts.iter().any(|a| matches!(
        a,
        Action::SendAfter {
            msg: Message {
                payload: ProtoMsg::Data { .. },
                ..
            },
            ..
        }
    )));
    assert_eq!(c.cache().state(BlockAddr(1)), None);
}

#[test]
fn nack_triggers_a_broadcast_reissue() {
    let mut c = bash(0, DecisionMode::AlwaysUnicast);
    let (outcome, actions) = c.access_collect(
        t(0),
        ProcOp::Store {
            block: BlockAddr(1),
            word: 0,
            value: 1,
        },
    );
    let txn = match outcome {
        AccessOutcome::Miss { txn } => txn,
        _ => panic!(),
    };
    let (req, mask) = issued_request(&actions);
    c.deliver(t(5), &req_msg(req.kind, 1, 0, txn.seq, mask, 0), Some(0));
    let nack = Message::unordered(
        NodeId(1),
        NodeId(0),
        bash_net::VnetId::DATA,
        CONTROL_MSG_BYTES,
        ProtoMsg::Nack {
            txn,
            block: BlockAddr(1),
        },
    );
    let acts = c.deliver(t(10), &nack, None);
    let (reissue, remask) = issued_request(&acts);
    assert_eq!(reissue.txn, txn, "same transaction");
    assert_eq!(reissue.retry, 0, "a fresh request, not a home retry");
    assert_eq!(remask, NodeSet::all(4), "guaranteed-sufficient broadcast");
    assert_eq!(c.stats().nacks_received, 1);
    // The new marker + data complete it.
    c.deliver(
        t(20),
        &req_msg(reissue.kind, 1, 0, txn.seq, remask, 0),
        Some(5),
    );
    let acts = c.deliver(t(30), &data_msg(txn, 1, 0, Some(5)), None);
    assert!(acts.iter().any(|a| matches!(a, Action::MissDone { .. })));
}
