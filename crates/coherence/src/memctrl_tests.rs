//! White-box unit tests for the three memory/home controllers.

use bash_kernel::{Duration, Time};
use bash_net::{Message, NodeId, NodeSet};

use crate::actions::Action;
use crate::bash::BashMemCtrl;
use crate::directory::DirectoryCtrl;
use crate::snooping::SnoopingMemCtrl;
use crate::test_support::Deliver;
use crate::types::{
    BlockAddr, BlockData, Owner, ProtoMsg, Request, TxnId, TxnKind, CONTROL_MSG_BYTES,
    DATA_MSG_BYTES,
};

const NODES: u16 = 4;
const DRAM: Duration = Duration::from_ns(80);

crate::test_support::impl_deliver!(SnoopingMemCtrl, DirectoryCtrl, BashMemCtrl);

fn t(ns: u64) -> Time {
    Time::from_ns(ns)
}

fn txn(node: u16, seq: u64) -> TxnId {
    TxnId {
        node: NodeId(node),
        seq,
    }
}

fn req(
    kind: TxnKind,
    block: u64,
    requestor: u16,
    seq: u64,
    mask: NodeSet,
    retry: u8,
) -> Message<ProtoMsg> {
    Message::ordered(
        NodeId(requestor),
        mask,
        CONTROL_MSG_BYTES,
        ProtoMsg::Request(Request {
            kind,
            block: BlockAddr(block),
            requestor: NodeId(requestor),
            txn: txn(requestor, seq),
            retry,
            from_dir: false,
        }),
    )
}

fn wb_data(block: u64, from: u16, value: u64) -> Message<ProtoMsg> {
    let mut d = BlockData::ZERO;
    d.write(0, value);
    Message::unordered(
        NodeId(from),
        NodeId(0),
        bash_net::VnetId::DATA,
        DATA_MSG_BYTES,
        ProtoMsg::WbData {
            block: BlockAddr(block),
            from: NodeId(from),
            data: d,
        },
    )
}

fn sent_payloads(actions: &[Action]) -> Vec<&ProtoMsg> {
    actions
        .iter()
        .filter_map(|a| match a {
            Action::SendAfter { msg, .. } => Some(&msg.payload),
            _ => None,
        })
        .collect()
}

// ---------------------------------------------------------------------
// Snooping memory
// ---------------------------------------------------------------------

#[test]
fn snooping_memory_owner_responds_and_tracks_transfer() {
    // Block 0 homes at node 0.
    let mut m = SnoopingMemCtrl::new(NodeId(0), NODES, DRAM, false, true);
    // GetM from P2 when memory owns: respond + owner := P2.
    let acts = m.deliver(
        t(0),
        &req(TxnKind::GetM, 0, 2, 1, NodeSet::all(4), 0),
        Some(0),
    );
    assert!(matches!(sent_payloads(&acts)[0], ProtoMsg::Data { .. }));
    assert_eq!(m.owner_of(BlockAddr(0)), Owner::Node(NodeId(2)));
    // Subsequent GetS: the cache owner responds, memory is silent.
    let acts = m.deliver(
        t(10),
        &req(TxnKind::GetS, 0, 3, 1, NodeSet::all(4), 0),
        Some(1),
    );
    assert!(sent_payloads(&acts).is_empty());
    assert_eq!(m.owner_of(BlockAddr(0)), Owner::Node(NodeId(2)));
}

#[test]
fn snooping_memory_stalls_requests_during_writeback_window() {
    let mut m = SnoopingMemCtrl::new(NodeId(0), NODES, DRAM, false, true);
    m.deliver(
        t(0),
        &req(TxnKind::GetM, 0, 2, 1, NodeSet::all(4), 0),
        Some(0),
    );
    // P2 writes the block back.
    let acts = m.deliver(
        t(10),
        &req(TxnKind::PutM, 0, 2, 2, NodeSet::all(4), 0),
        Some(1),
    );
    assert!(sent_payloads(&acts).is_empty());
    // A GetS ordered inside the window stalls.
    let acts = m.deliver(
        t(20),
        &req(TxnKind::GetS, 0, 3, 1, NodeSet::all(4), 0),
        Some(2),
    );
    assert!(
        sent_payloads(&acts).is_empty(),
        "stalled behind the writeback"
    );
    assert!(!m.is_quiescent());
    // Data arrives: the window closes and the stalled GetS is answered.
    let acts = m.deliver(t(30), &wb_data(0, 2, 77), None);
    let sends = sent_payloads(&acts);
    assert_eq!(sends.len(), 1);
    match sends[0] {
        ProtoMsg::Data { data, .. } => assert_eq!(data.read(0), 77),
        other => panic!("expected data, got {other:?}"),
    }
    assert_eq!(m.owner_of(BlockAddr(0)), Owner::Memory);
    assert!(m.is_quiescent());
}

#[test]
fn snooping_memory_ignores_stale_putm() {
    let mut m = SnoopingMemCtrl::new(NodeId(0), NODES, DRAM, false, true);
    m.deliver(
        t(0),
        &req(TxnKind::GetM, 0, 2, 1, NodeSet::all(4), 0),
        Some(0),
    );
    // P3 steals ownership before P2's PutM is ordered.
    m.deliver(
        t(10),
        &req(TxnKind::GetM, 0, 3, 1, NodeSet::all(4), 0),
        Some(1),
    );
    // P2's now-stale PutM: ignored; no window opens.
    m.deliver(
        t(20),
        &req(TxnKind::PutM, 0, 2, 2, NodeSet::all(4), 0),
        Some(2),
    );
    assert_eq!(m.owner_of(BlockAddr(0)), Owner::Node(NodeId(3)));
    assert!(m.is_quiescent());
    assert_eq!(m.stats().writebacks_stale, 1);
}

// ---------------------------------------------------------------------
// Directory
// ---------------------------------------------------------------------

fn dir_req(kind: TxnKind, block: u64, requestor: u16, seq: u64) -> Message<ProtoMsg> {
    Message::unordered(
        NodeId(requestor),
        NodeId(0),
        bash_net::VnetId::DIR_REQUEST,
        CONTROL_MSG_BYTES,
        ProtoMsg::Request(Request {
            kind,
            block: BlockAddr(block),
            requestor: NodeId(requestor),
            txn: txn(requestor, seq),
            retry: 0,
            from_dir: false,
        }),
    )
}

#[test]
fn directory_responds_with_data_and_marker_when_memory_owns() {
    let mut d = DirectoryCtrl::new(NodeId(0), NODES, DRAM, false, true);
    let acts = d.deliver(t(0), &dir_req(TxnKind::GetS, 0, 2, 1), None);
    let sends = sent_payloads(&acts);
    assert_eq!(sends.len(), 2);
    assert!(matches!(sends[0], ProtoMsg::Data { .. }));
    assert!(matches!(
        sends[1],
        ProtoMsg::Request(Request { from_dir: true, .. })
    ));
    assert!(d.entry(BlockAddr(0)).sharers.contains(NodeId(2)));
}

#[test]
fn directory_forwards_to_owner_and_sharers_on_getm() {
    let mut d = DirectoryCtrl::new(NodeId(0), NODES, DRAM, false, true);
    d.deliver(t(0), &dir_req(TxnKind::GetM, 0, 1, 1), None); // P1 owner
    d.deliver(t(10), &dir_req(TxnKind::GetS, 0, 3, 1), None); // P3 sharer
    let acts = d.deliver(t(20), &dir_req(TxnKind::GetM, 0, 2, 2), None);
    let sends: Vec<_> = acts
        .iter()
        .filter_map(|a| match a {
            Action::SendAfter { msg, .. } => Some(msg),
            _ => None,
        })
        .collect();
    // No data from memory (P1 owns it); one ordered forward to
    // {owner, sharers, requestor} = {P1, P3, P2}.
    assert_eq!(sends.len(), 1);
    assert_eq!(
        sends[0].dests,
        NodeSet::from_nodes([NodeId(1), NodeId(2), NodeId(3)])
    );
    let e = d.entry(BlockAddr(0));
    assert_eq!(e.owner, Owner::Node(NodeId(2)));
    assert!(e.sharers.is_empty());
}

#[test]
fn directory_acks_valid_and_stale_writebacks() {
    let mut d = DirectoryCtrl::new(NodeId(0), NODES, DRAM, false, true);
    d.deliver(t(0), &dir_req(TxnKind::GetM, 0, 1, 1), None);
    // Valid writeback from the owner (data travels with the PutM).
    let acts = d.deliver(t(10), &wb_data(0, 1, 55), None);
    match sent_payloads(&acts)[0] {
        ProtoMsg::WbAck { stale, .. } => assert!(!stale),
        other => panic!("expected WbAck, got {other:?}"),
    }
    assert_eq!(d.entry(BlockAddr(0)).owner, Owner::Memory);
    assert_eq!(d.stored_data(BlockAddr(0)).read(0), 55);
    // A second writeback from a non-owner is stale.
    let acts = d.deliver(t(20), &wb_data(0, 3, 99), None);
    match sent_payloads(&acts)[0] {
        ProtoMsg::WbAck { stale, .. } => assert!(stale),
        other => panic!("expected WbAck, got {other:?}"),
    }
    assert_eq!(
        d.stored_data(BlockAddr(0)).read(0),
        55,
        "stale data discarded"
    );
}

// ---------------------------------------------------------------------
// BASH home controller
// ---------------------------------------------------------------------

fn bash_mem(retry_capacity: usize) -> BashMemCtrl {
    BashMemCtrl::new(NodeId(0), NODES, DRAM, false, retry_capacity, true)
}

fn dualcast(requestor: u16) -> NodeSet {
    NodeSet::from_nodes([NodeId(0), NodeId(requestor)])
}

#[test]
fn bash_home_answers_sufficient_unicast_directly() {
    let mut m = bash_mem(4);
    let acts = m.deliver(t(0), &req(TxnKind::GetM, 0, 2, 1, dualcast(2), 0), Some(0));
    assert!(matches!(sent_payloads(&acts)[0], ProtoMsg::Data { .. }));
    assert_eq!(m.owner_of(BlockAddr(0)), Owner::Node(NodeId(2)));
    assert!(m.is_quiescent());
}

#[test]
fn bash_home_retries_insufficient_unicast_with_the_right_mask() {
    let mut m = bash_mem(4);
    // P1 takes ownership (broadcast), P3 becomes a sharer.
    m.deliver(
        t(0),
        &req(TxnKind::GetM, 0, 1, 1, NodeSet::all(4), 0),
        Some(0),
    );
    m.deliver(
        t(5),
        &req(TxnKind::GetS, 0, 3, 1, NodeSet::all(4), 0),
        Some(1),
    );
    // P2's unicast GetM misses both owner and sharer → retry to
    // {owner, sharers, requestor, home}.
    let acts = m.deliver(t(10), &req(TxnKind::GetM, 0, 2, 2, dualcast(2), 0), Some(2));
    let sends: Vec<_> = acts
        .iter()
        .filter_map(|a| match a {
            Action::SendAfter { msg, .. } => Some(msg),
            _ => None,
        })
        .collect();
    assert_eq!(sends.len(), 1);
    match &sends[0].payload {
        ProtoMsg::Request(r) => {
            assert_eq!(r.retry, 1);
            assert_eq!(r.requestor, NodeId(2));
        }
        other => panic!("expected retry, got {other:?}"),
    }
    assert_eq!(
        sends[0].dests,
        NodeSet::from_nodes([NodeId(0), NodeId(1), NodeId(2), NodeId(3)])
    );
    // Directory state untouched by the insufficient request.
    assert_eq!(m.owner_of(BlockAddr(0)), Owner::Node(NodeId(1)));
    assert!(!m.is_quiescent(), "a retry buffer is held");
    // The retry returns sufficient: bookkeeping commits, the slot frees.
    let retry_mask = sends[0].dests.clone();
    m.deliver(t(20), &req(TxnKind::GetM, 0, 2, 2, retry_mask, 1), Some(3));
    assert_eq!(m.owner_of(BlockAddr(0)), Owner::Node(NodeId(2)));
    assert!(m.is_quiescent());
}

#[test]
fn bash_home_escalates_to_broadcast_on_the_third_retry() {
    let mut m = bash_mem(4);
    m.deliver(
        t(0),
        &req(TxnKind::GetM, 0, 1, 1, NodeSet::all(4), 0),
        Some(0),
    );
    // P2 unicasts; the owner keeps changing inside the window of
    // vulnerability, so each retry is insufficient again.
    let mut order = 1;
    let acts = m.deliver(
        t(10),
        &req(TxnKind::GetM, 0, 2, 9, dualcast(2), 0),
        Some(order),
    );
    let mut retry_mask = match acts.first() {
        Some(Action::SendAfter { msg, .. }) => msg.dests.clone(),
        _ => panic!("retry expected"),
    };
    for n in 1..3u8 {
        // Ownership moves to another node before the retry lands.
        order += 1;
        let thief = if n % 2 == 1 { 3 } else { 1 };
        m.deliver(
            t(10 + n as u64 * 10),
            &req(TxnKind::GetM, 0, thief, n as u64 + 1, NodeSet::all(4), 0),
            Some(order),
        );
        order += 1;
        let acts = m.deliver(
            t(15 + n as u64 * 10),
            &req(TxnKind::GetM, 0, 2, 9, retry_mask, n),
            Some(order),
        );
        let msg = match acts.first() {
            Some(Action::SendAfter { msg, .. }) => msg,
            _ => panic!("retry {n} expected"),
        };
        match &msg.payload {
            ProtoMsg::Request(r) => assert_eq!(r.retry, n + 1),
            other => panic!("expected retry, got {other:?}"),
        }
        retry_mask = msg.dests.clone();
    }
    // The third retry is a full broadcast (livelock freedom).
    assert_eq!(retry_mask, NodeSet::all(4));
    assert_eq!(m.stats().broadcast_escalations, 1);
}

#[test]
fn bash_home_nacks_when_no_retry_buffer_is_free() {
    let mut m = bash_mem(1);
    m.deliver(
        t(0),
        &req(TxnKind::GetM, 0, 1, 1, NodeSet::all(4), 0),
        Some(0),
    );
    // First insufficient unicast occupies the only buffer.
    m.deliver(t(10), &req(TxnKind::GetM, 0, 2, 2, dualcast(2), 0), Some(1));
    assert_eq!(m.stats().retries_sent, 1);
    // Second insufficient unicast (different txn): nacked.
    let acts = m.deliver(t(20), &req(TxnKind::GetS, 0, 3, 3, dualcast(3), 0), Some(2));
    match sent_payloads(&acts)[0] {
        ProtoMsg::Nack { txn: t2, .. } => assert_eq!(*t2, txn(3, 3)),
        other => panic!("expected nack, got {other:?}"),
    }
    assert_eq!(m.stats().nacks_sent, 1);
}

#[test]
fn bash_home_stalls_block_during_writeback_window() {
    let mut m = bash_mem(4);
    m.deliver(
        t(0),
        &req(TxnKind::GetM, 0, 2, 1, NodeSet::all(4), 0),
        Some(0),
    );
    m.deliver(t(10), &req(TxnKind::PutM, 0, 2, 2, dualcast(2), 0), Some(1));
    let acts = m.deliver(
        t(20),
        &req(TxnKind::GetM, 0, 3, 1, NodeSet::all(4), 0),
        Some(2),
    );
    assert!(
        sent_payloads(&acts).is_empty(),
        "stalled behind the writeback"
    );
    let acts = m.deliver(t(30), &wb_data(0, 2, 13), None);
    // Drain: memory owns now, responds, ownership moves to P3.
    assert!(matches!(sent_payloads(&acts)[0], ProtoMsg::Data { .. }));
    assert_eq!(m.owner_of(BlockAddr(0)), Owner::Node(NodeId(3)));
}

#[test]
fn bash_sharers_accumulate_and_clear_on_getm() {
    let mut m = bash_mem(4);
    m.deliver(t(0), &req(TxnKind::GetS, 0, 1, 1, dualcast(1), 0), Some(0));
    m.deliver(t(5), &req(TxnKind::GetS, 0, 2, 1, dualcast(2), 0), Some(1));
    let sharers = m.sharers_of(BlockAddr(0));
    assert!(sharers.contains(NodeId(1)) && sharers.contains(NodeId(2)));
    // A broadcast GetM clears them.
    m.deliver(
        t(10),
        &req(TxnKind::GetM, 0, 3, 1, NodeSet::all(4), 0),
        Some(2),
    );
    assert!(m.sharers_of(BlockAddr(0)).is_empty());
    assert_eq!(m.owner_of(BlockAddr(0)), Owner::Node(NodeId(3)));
}
