//! Transition coverage registry — the data behind Table 1.
//!
//! Controllers record `(state, event) → next_state` tuples as they execute.
//! The random tester drives the protocols through their corner cases and
//! then reads distinct state / event / transition counts per controller,
//! reproducing the paper's complexity comparison (with our own factoring;
//! the paper concedes the counts "depend somewhat on how one chooses to
//! express a protocol").
//!
//! Recording is off by default (zero cost in performance runs) and enabled
//! by the tester and the `table1` experiment.

use std::collections::BTreeMap;

/// A recorded transition.
pub type Transition = (&'static str, &'static str, &'static str);

/// Per-controller transition log.
#[derive(Debug, Clone, Default)]
pub struct TransitionLog {
    enabled: bool,
    transitions: BTreeMap<Transition, u64>,
}

impl TransitionLog {
    /// Creates a disabled (no-op) log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an enabled log.
    pub fn enabled() -> Self {
        TransitionLog {
            enabled: true,
            transitions: BTreeMap::new(),
        }
    }

    /// True when recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one `(state, event) → next_state` occurrence. No-op when
    /// disabled.
    pub fn record(&mut self, state: &'static str, event: &'static str, next: &'static str) {
        if self.enabled {
            *self.transitions.entry((state, event, next)).or_insert(0) += 1;
        }
    }

    /// Distinct states observed (as source or target of any transition).
    pub fn state_count(&self) -> usize {
        let mut set = std::collections::BTreeSet::new();
        for (s, _, n) in self.transitions.keys() {
            set.insert(*s);
            set.insert(*n);
        }
        set.len()
    }

    /// Distinct events observed.
    pub fn event_count(&self) -> usize {
        let mut set = std::collections::BTreeSet::new();
        for (_, e, _) in self.transitions.keys() {
            set.insert(*e);
        }
        set.len()
    }

    /// Distinct `(state, event)` transitions observed (the paper counts a
    /// transition per state/event pair that does something).
    pub fn transition_count(&self) -> usize {
        let mut set = std::collections::BTreeSet::new();
        for (s, e, _) in self.transitions.keys() {
            set.insert((*s, *e));
        }
        set.len()
    }

    /// Iterates all recorded transitions with their hit counts.
    pub fn iter(&self) -> impl Iterator<Item = (Transition, u64)> + '_ {
        self.transitions.iter().map(|(&t, &c)| (t, c))
    }

    /// Merges another log into this one.
    pub fn merge(&mut self, other: &TransitionLog) {
        if !other.transitions.is_empty() {
            self.enabled = true;
        }
        for (&t, &c) in &other.transitions {
            *self.transitions.entry(t).or_insert(0) += c;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = TransitionLog::new();
        log.record("I", "Load", "IS_AD");
        assert_eq!(log.transition_count(), 0);
    }

    #[test]
    fn counts_distinct_states_events_transitions() {
        let mut log = TransitionLog::enabled();
        log.record("I", "Load", "IS_AD");
        log.record("I", "Load", "IS_AD"); // repeat: still one transition
        log.record("I", "Store", "IM_AD");
        log.record("IS_AD", "OwnReq", "IS_D");
        assert_eq!(log.transition_count(), 3);
        assert_eq!(log.event_count(), 3);
        // States: I, IS_AD, IM_AD, IS_D.
        assert_eq!(log.state_count(), 4);
        let hits: u64 = log.iter().map(|(_, c)| c).sum();
        assert_eq!(hits, 4);
    }

    #[test]
    fn merge_combines() {
        let mut a = TransitionLog::enabled();
        a.record("I", "Load", "IS_AD");
        let mut b = TransitionLog::enabled();
        b.record("I", "Load", "IS_AD");
        b.record("M", "ForeignGetS", "O");
        a.merge(&b);
        assert_eq!(a.transition_count(), 2);
        assert_eq!(a.iter().map(|(_, c)| c).sum::<u64>(), 3);
    }
}
