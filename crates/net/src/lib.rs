//! Interconnection-network model for the BASH coherence simulator.
//!
//! The paper abstracts the interconnect as "a fixed latency crossbar with
//! limited bandwidth and contention at the endpoints" (§4.2). This crate
//! implements exactly that:
//!
//! * each node owns **one bidirectional FIFO link** of configurable bandwidth
//!   (MB/s) — all traffic into or out of the node serializes through it, so
//!   "endpoint link utilization" (Figures 1 and 6) is a single number;
//! * the crossbar core adds a **fixed traversal latency** (50 ns in the
//!   paper) between the sender's link and each receiver's link;
//! * a multicast occupies the sender's link once and every destination's
//!   link once (fan-out inside the switch, as in hierarchical switches);
//! * messages flagged [`Ordered::Total`] obtain a global sequence at switch
//!   entry; constant traversal latency plus FIFO receiver links guarantee
//!   every node observes them in that same total order;
//! * a **broadcast cost multiplier** inflates the bandwidth footprint of
//!   full-broadcast messages (Figure 11's "4× broadcast cost" experiment).
//!
//! Beyond the paper's crossbar, the crate provides a topology-aware
//! [`fabric`]: routed star / line / ring / mesh / torus graphs
//! ([`topology`]) whose messages advance hop-by-hop through
//! per-directed-link FIFO bandwidth queues, with endpoint re-sequencing
//! preserving the crossbar's total-order delivery guarantee.
//! [`Interconnect`] dispatches between the two engines based on
//! [`NetConfig::topology`] (the crossbar remains the default).
//!
//! The fabric additionally hosts a deterministic [`fault`] plane —
//! per-directed-link loss / corruption / delay / outage profiles driven
//! by seeded per-link RNG streams — and a reliable-delivery transport
//! (timeout + exponential-backoff retransmission, link death after a
//! retransmit budget, routing failover over the surviving links).
//!
//! The crate is payload-agnostic: protocol crates instantiate
//! [`Crossbar`]`<P>` with their own message payloads.

pub mod arena;
pub mod crossbar;
pub mod fabric;
pub mod fault;
pub mod ids;
pub mod message;
pub mod topology;

pub use arena::{MsgArena, MsgRef};
pub use crossbar::{Crossbar, Delivery, Jitter, NetConfig, NetEvent, NetStep};
pub use fabric::{Fabric, Interconnect};
pub use fault::{FaultPlane, FaultPlaneConfig, FaultStats, LinkFaultProfile, TransportConfig};
pub use ids::{NodeId, NodeSet};
pub use message::{Message, Ordered, VnetId};
pub use topology::{OrderingMode, Topology, TopologyKind};
