//! The deterministic fault plane: per-directed-link fault profiles
//! (loss, corruption, delay, scheduled outages) plus the configuration of
//! the reliable-delivery transport the [`Fabric`](crate::Fabric) layers on
//! top of faulty links.
//!
//! # Determinism
//!
//! Every link owns an independent RNG stream forked from the plane's
//! master seed by link id, and draws exactly one value per decision in
//! event order. Because the simulation itself is deterministic, the whole
//! fault schedule — which crossing is lost, which retransmit timer fires,
//! which link dies — is a pure function of `(config, seed)`: identical
//! runs produce byte-identical fault sequences on any thread count.
//!
//! # Transport
//!
//! The fabric already assigns per-destination sequence numbers to ordered
//! traffic and re-sequences at the endpoints; the transport reuses those
//! as its wire-level sequence space (dedup + hold-back come for free).
//! Acks are short-circuited: the simulator knows a crossing's fate at the
//! instant it completes, so a delivered frame never spuriously
//! retransmits, and a lost frame schedules its retransmission at
//! `crossing_end + rto · 2^min(attempt, backoff_cap)` — the time the
//! sender's timeout would have fired. Ack loss is folded into the
//! forward drop probability. After `retransmit_budget` failed attempts
//! the link is declared **dead**: routing is recomputed over the
//! surviving links (see `Fabric::rebuild_routes`) and the stuck copy is
//! re-routed, preserving its `(destination, sequence)` identity; a
//! destination left unreachable is counted undeliverable and the wedge
//! surfaces through the core watchdog.

use bash_kernel::{DetRng, Duration, Time};

/// Fault profile of one directed link. The default profile is benign
/// (no loss, no corruption, no delay, never down).
#[derive(Debug, Clone, PartialEq)]
pub struct LinkFaultProfile {
    /// Probability a crossing is silently lost, in `[0, 1)`.
    pub drop_prob: f64,
    /// Probability a crossing is corrupted, in `[0, 1)`. Corruption
    /// models a link-level CRC catching a damaged frame: the payload is
    /// discarded at the receiver, indistinguishable from a drop except in
    /// the accounting (and, on a real wire, in who detects it).
    pub corrupt_prob: f64,
    /// Fixed extra propagation delay added to every successful crossing.
    pub extra_delay: Duration,
    /// Uniform jitter in `[0, delay_jitter]` added on top of
    /// `extra_delay` per crossing.
    pub delay_jitter: Duration,
    /// Scheduled outage windows `[from, to)`: a crossing completing
    /// inside one is lost (no RNG draw — outages are time-determined).
    pub down: Vec<(Time, Time)>,
}

impl Default for LinkFaultProfile {
    fn default() -> Self {
        LinkFaultProfile {
            drop_prob: 0.0,
            corrupt_prob: 0.0,
            extra_delay: Duration::ZERO,
            delay_jitter: Duration::ZERO,
            down: Vec::new(),
        }
    }
}

impl LinkFaultProfile {
    /// A profile that only drops, with probability `p`.
    pub fn lossy(p: f64) -> Self {
        LinkFaultProfile {
            drop_prob: p,
            ..LinkFaultProfile::default()
        }
    }

    /// True when the profile can never alter a crossing.
    pub fn is_benign(&self) -> bool {
        self.drop_prob == 0.0
            && self.corrupt_prob == 0.0
            && self.extra_delay.is_zero()
            && self.delay_jitter.is_zero()
            && self.down.is_empty()
    }

    fn is_down_at(&self, t: Time) -> bool {
        self.down.iter().any(|&(from, to)| t >= from && t < to)
    }
}

/// Parameters of the reliable-delivery transport.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransportConfig {
    /// Base retransmission timeout (the first retry fires this long
    /// after the lost crossing would have completed).
    pub rto: Duration,
    /// Exponential backoff cap: attempt `k` waits `rto · 2^min(k, cap)`.
    pub backoff_cap: u32,
    /// Failed attempts per crossing after which the link is declared
    /// dead and routing fails over.
    pub retransmit_budget: u32,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            rto: Duration::from_ns(2_000),
            backoff_cap: 6,
            retransmit_budget: 8,
        }
    }
}

/// Whole-fabric fault-plane configuration: a default profile, per-link
/// overrides, and the optional reliable transport. Attaching one to a
/// [`NetConfig`](crate::NetConfig) requires a routed fabric topology —
/// the crossbar has no links to fault.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlaneConfig {
    /// Master seed; each link forks its own stream from it by link id.
    pub seed: u64,
    /// Profile applied to every link without an override.
    pub default_profile: LinkFaultProfile,
    /// Per-directed-link overrides, keyed by `(from, to)` vertex ids.
    pub overrides: Vec<((u16, u16), LinkFaultProfile)>,
    /// The reliable-delivery transport; `None` exposes raw loss to the
    /// protocols (verification then wedges, which the watchdog reports).
    pub transport: Option<TransportConfig>,
}

impl FaultPlaneConfig {
    /// Uniform loss at probability `p` on every link, with the default
    /// reliable transport enabled.
    pub fn lossy(seed: u64, p: f64) -> Self {
        FaultPlaneConfig {
            seed,
            default_profile: LinkFaultProfile::lossy(p),
            overrides: Vec::new(),
            transport: Some(TransportConfig::default()),
        }
    }

    /// Disables the reliable transport (raw loss reaches the protocols).
    pub fn unprotected(mut self) -> Self {
        self.transport = None;
        self
    }

    /// Adds a per-link profile override.
    pub fn with_link(mut self, from: u16, to: u16, profile: LinkFaultProfile) -> Self {
        self.overrides.push(((from, to), profile));
        self
    }

    /// True when the plane can lose messages *as the protocols see
    /// them*: the transport is disabled and some profile drops, corrupts,
    /// or takes a link down. A transport-protected plane (or one that
    /// only delays) preserves the delivery contract, so the controllers'
    /// delivery asserts stay valid.
    pub fn breaks_delivery(&self) -> bool {
        if self.transport.is_some() {
            return false;
        }
        let lossy =
            |p: &LinkFaultProfile| p.drop_prob > 0.0 || p.corrupt_prob > 0.0 || !p.down.is_empty();
        lossy(&self.default_profile) || self.overrides.iter().any(|(_, p)| lossy(p))
    }

    /// The profile governing directed link `(from, to)`.
    pub fn profile_for(&self, from: u16, to: u16) -> &LinkFaultProfile {
        self.overrides
            .iter()
            .find(|((f, t), _)| *f == from && *t == to)
            .map(|(_, p)| p)
            .unwrap_or(&self.default_profile)
    }

    /// Validates probabilities and transport parameters.
    ///
    /// # Panics
    ///
    /// Panics on probabilities outside `[0, 1)` or a zero retransmit
    /// budget.
    pub fn validate(&self) {
        let check = |p: &LinkFaultProfile| {
            assert!(
                (0.0..1.0).contains(&p.drop_prob) && (0.0..1.0).contains(&p.corrupt_prob),
                "fault probabilities must be in [0, 1)"
            );
            for &(from, to) in &p.down {
                assert!(from < to, "down window must be non-empty");
            }
        };
        check(&self.default_profile);
        for (_, p) in &self.overrides {
            check(p);
        }
        if let Some(t) = &self.transport {
            assert!(t.retransmit_budget > 0, "retransmit budget must be >= 1");
            assert!(!t.rto.is_zero(), "rto must be positive");
        }
    }
}

/// Why a crossing was discarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DropCause {
    /// Random loss (the `drop_prob` draw).
    Loss,
    /// Link-level CRC caught a corrupted frame (the `corrupt_prob` draw).
    Corrupt,
    /// The link was inside a scheduled down window.
    Down,
    /// The link was declared dead by an earlier budget exhaustion.
    Dead,
}

/// The fate of one link crossing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Fate {
    /// The frame arrived intact.
    Deliver,
    /// The frame was discarded.
    Drop(DropCause),
}

/// Aggregated fault-plane counters over a whole run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Crossings lost to the drop probability.
    pub dropped: u64,
    /// Crossings discarded as corrupted (link CRC).
    pub corrupted: u64,
    /// Crossings lost to scheduled down windows or dead links.
    pub down_drops: u64,
    /// Retransmissions the transport scheduled.
    pub retransmits: u64,
    /// Links declared dead after budget exhaustion.
    pub dead_links: u64,
    /// Copies re-routed around a dead link.
    pub rerouted: u64,
    /// Copies whose destination became unreachable (or that were lost
    /// with no transport configured) — permanently undeliverable.
    pub undeliverable: u64,
}

impl FaultStats {
    /// Total crossings the plane discarded, over all causes.
    pub fn total_discarded(&self) -> u64 {
        self.dropped + self.corrupted + self.down_drops
    }
}

/// Per-link runtime fault state.
#[derive(Debug)]
struct LinkFault {
    profile: LinkFaultProfile,
    rng: DetRng,
    dead: bool,
}

/// The runtime fault plane a [`Fabric`](crate::Fabric) consults on every
/// link crossing. Built from a [`FaultPlaneConfig`] plus the fabric's
/// link table.
#[derive(Debug)]
pub struct FaultPlane {
    transport: Option<TransportConfig>,
    links: Vec<LinkFault>,
    stats: FaultStats,
}

impl FaultPlane {
    /// Builds the plane for the given directed-link endpoint list (the
    /// fabric's link order).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`FaultPlaneConfig::validate`]).
    pub fn new(cfg: &FaultPlaneConfig, endpoints: &[(u16, u16)]) -> Self {
        cfg.validate();
        let mut master = DetRng::seed_from(cfg.seed);
        let links = endpoints
            .iter()
            .enumerate()
            .map(|(i, &(from, to))| LinkFault {
                profile: cfg.profile_for(from, to).clone(),
                rng: master.fork(i as u64),
                dead: false,
            })
            .collect();
        FaultPlane {
            transport: cfg.transport.clone(),
            links,
            stats: FaultStats::default(),
        }
    }

    /// The transport configuration, when reliable delivery is enabled.
    pub fn transport(&self) -> Option<&TransportConfig> {
        self.transport.as_ref()
    }

    /// Cumulative fault counters.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Number of links currently declared dead.
    pub fn dead_link_count(&self) -> usize {
        self.links.iter().filter(|l| l.dead).count()
    }

    /// True when link `li` has been declared dead.
    pub fn is_dead(&self, li: usize) -> bool {
        self.links[li].dead
    }

    /// Declares link `li` dead (idempotent; counted once).
    pub(crate) fn mark_dead(&mut self, li: usize) {
        if !self.links[li].dead {
            self.links[li].dead = true;
            self.stats.dead_links += 1;
        }
    }

    /// Decides the fate of a crossing of link `li` completing at `now`,
    /// advancing the link's RNG stream. Draw order is fixed (corruption
    /// before loss) and a draw happens only when its probability is
    /// nonzero, so schedules stay stable when a profile knob is at zero.
    pub(crate) fn crossing_fate(&mut self, li: usize, now: Time) -> Fate {
        let link = &mut self.links[li];
        if link.dead {
            return Fate::Drop(DropCause::Dead);
        }
        if link.profile.is_down_at(now) {
            return Fate::Drop(DropCause::Down);
        }
        if link.profile.corrupt_prob > 0.0 && link.rng.chance(link.profile.corrupt_prob) {
            return Fate::Drop(DropCause::Corrupt);
        }
        if link.profile.drop_prob > 0.0 && link.rng.chance(link.profile.drop_prob) {
            return Fate::Drop(DropCause::Loss);
        }
        Fate::Deliver
    }

    /// Extra propagation delay for a crossing of link `li` (fixed part
    /// plus one uniform jitter draw when configured).
    pub(crate) fn extra_delay(&mut self, li: usize) -> Duration {
        let link = &mut self.links[li];
        let jitter = link.profile.delay_jitter.as_ps();
        let mut extra = link.profile.extra_delay;
        if jitter > 0 {
            extra += Duration::from_ps(link.rng.below(jitter + 1));
        }
        extra
    }

    /// Records a discarded crossing under its cause.
    pub(crate) fn count_drop(&mut self, cause: DropCause) {
        match cause {
            DropCause::Loss => self.stats.dropped += 1,
            DropCause::Corrupt => self.stats.corrupted += 1,
            DropCause::Down | DropCause::Dead => self.stats.down_drops += 1,
        }
    }

    /// Records a scheduled retransmission.
    pub(crate) fn count_retransmit(&mut self) {
        self.stats.retransmits += 1;
    }

    /// Records a re-routed copy.
    pub(crate) fn count_reroute(&mut self) {
        self.stats.rerouted += 1;
    }

    /// Records a permanently undeliverable copy.
    pub(crate) fn count_undeliverable(&mut self) {
        self.stats.undeliverable += 1;
    }

    /// Retransmission delay after `attempt` prior failures:
    /// `rto · 2^min(attempt, backoff_cap)`.
    pub(crate) fn rto_after(&self, attempt: u32) -> Duration {
        let t = self
            .transport
            .as_ref()
            .expect("rto_after requires a transport");
        let exp = attempt.min(t.backoff_cap);
        Duration::from_ps(t.rto.as_ps().saturating_mul(1u64 << exp.min(62)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn endpoints() -> Vec<(u16, u16)> {
        vec![(0, 1), (1, 0), (1, 2), (2, 1)]
    }

    #[test]
    fn fate_sequences_are_deterministic_per_seed() {
        let run = |seed: u64| {
            let cfg = FaultPlaneConfig::lossy(seed, 0.3);
            let mut plane = FaultPlane::new(&cfg, &endpoints());
            (0..64)
                .map(|i| plane.crossing_fate(i % 4, Time::from_ns(i as u64)))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn per_link_streams_are_independent() {
        // Drawing on link 0 must not perturb link 1's stream.
        let cfg = FaultPlaneConfig::lossy(3, 0.5);
        let mut a = FaultPlane::new(&cfg, &endpoints());
        let mut b = FaultPlane::new(&cfg, &endpoints());
        for _ in 0..10 {
            a.crossing_fate(0, Time::ZERO);
        }
        let fa: Vec<_> = (0..16).map(|_| a.crossing_fate(1, Time::ZERO)).collect();
        let fb: Vec<_> = (0..16).map(|_| b.crossing_fate(1, Time::ZERO)).collect();
        assert_eq!(fa, fb);
    }

    #[test]
    fn down_windows_and_dead_links_drop_without_draws() {
        let profile = LinkFaultProfile {
            down: vec![(Time::from_ns(100), Time::from_ns(200))],
            ..LinkFaultProfile::default()
        };
        let cfg = FaultPlaneConfig {
            seed: 1,
            default_profile: profile,
            overrides: Vec::new(),
            transport: None,
        };
        let mut plane = FaultPlane::new(&cfg, &endpoints());
        assert_eq!(plane.crossing_fate(0, Time::from_ns(50)), Fate::Deliver);
        assert_eq!(
            plane.crossing_fate(0, Time::from_ns(150)),
            Fate::Drop(DropCause::Down)
        );
        assert_eq!(plane.crossing_fate(0, Time::from_ns(200)), Fate::Deliver);
        plane.mark_dead(0);
        plane.mark_dead(0);
        assert_eq!(plane.stats().dead_links, 1);
        assert_eq!(
            plane.crossing_fate(0, Time::from_ns(500)),
            Fate::Drop(DropCause::Dead)
        );
    }

    #[test]
    fn overrides_resolve_per_directed_link() {
        let cfg = FaultPlaneConfig::lossy(1, 0.0).with_link(1, 2, LinkFaultProfile::lossy(0.9));
        assert_eq!(cfg.profile_for(0, 1).drop_prob, 0.0);
        assert_eq!(cfg.profile_for(1, 2).drop_prob, 0.9);
        assert_eq!(cfg.profile_for(2, 1).drop_prob, 0.0);
    }

    #[test]
    fn backoff_doubles_up_to_the_cap() {
        let cfg = FaultPlaneConfig::lossy(1, 0.1);
        let plane = FaultPlane::new(&cfg, &endpoints());
        let base = plane.rto_after(0).as_ps();
        assert_eq!(plane.rto_after(1).as_ps(), base * 2);
        assert_eq!(plane.rto_after(2).as_ps(), base * 4);
        assert_eq!(plane.rto_after(6).as_ps(), base * 64);
        assert_eq!(plane.rto_after(7).as_ps(), base * 64, "capped");
    }

    #[test]
    #[should_panic(expected = "probabilities")]
    fn out_of_range_probability_rejected() {
        FaultPlaneConfig::lossy(1, 1.5).validate();
    }
}
