//! Network messages and virtual-network tags.

use crate::ids::{NodeId, NodeSet};

/// Ordering discipline of a virtual network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ordered {
    /// Totally ordered: all nodes observe these messages in one global
    /// order (snooping request network, GS320 forwarded-request network).
    Total,
    /// No ordering guarantees beyond per-link FIFO (data responses,
    /// directory request network).
    None,
}

/// Identifies a virtual network for accounting and debug traces. Virtual
/// networks share the physical endpoint link; the simulator's queues are
/// unbounded so no virtual-channel deadlock can arise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VnetId(pub u8);

/// Well-known virtual network ids used by the protocol crates.
impl VnetId {
    /// Ordered request network (Snooping, BASH) / forwarded-request network
    /// (Directory VN1).
    pub const REQUEST: VnetId = VnetId(0);
    /// Unordered unicast request network (Directory VN0).
    pub const DIR_REQUEST: VnetId = VnetId(1);
    /// Unordered response/data network.
    pub const DATA: VnetId = VnetId(2);
}

/// A message in flight: source, destination set, ordering class, size and a
/// protocol-defined payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message<P> {
    /// Sending node.
    pub src: NodeId,
    /// Destination set (a unicast is a singleton; the BASH "unicast" is a
    /// dualcast of {home, requestor}; a broadcast is the full node set).
    pub dests: NodeSet,
    /// Which virtual network the message travels on.
    pub vnet: VnetId,
    /// Ordering discipline.
    pub ordered: Ordered,
    /// Size in bytes (8 for control, 72 for data in the paper).
    pub size: u32,
    /// Protocol payload.
    pub payload: P,
}

impl<P> Message<P> {
    /// Convenience constructor for a totally ordered request-network message.
    pub fn ordered(src: NodeId, dests: NodeSet, size: u32, payload: P) -> Self {
        Message {
            src,
            dests,
            vnet: VnetId::REQUEST,
            ordered: Ordered::Total,
            size,
            payload,
        }
    }

    /// Convenience constructor for an unordered point-to-point message.
    pub fn unordered(src: NodeId, dst: NodeId, vnet: VnetId, size: u32, payload: P) -> Self {
        Message {
            src,
            dests: NodeSet::singleton(dst),
            vnet,
            ordered: Ordered::None,
            size,
            payload,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_fields() {
        let m = Message::ordered(NodeId(1), NodeSet::all(4), 8, "req");
        assert_eq!(m.ordered, Ordered::Total);
        assert_eq!(m.vnet, VnetId::REQUEST);
        assert_eq!(m.dests.len(), 4);

        let d = Message::unordered(NodeId(2), NodeId(0), VnetId::DATA, 72, "data");
        assert_eq!(d.ordered, Ordered::None);
        assert_eq!(d.dests, NodeSet::singleton(NodeId(0)));
        assert_eq!(d.size, 72);
    }
}
