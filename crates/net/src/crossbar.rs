//! The fixed-latency crossbar with bandwidth-limited endpoint links.
//!
//! # Model
//!
//! A message follows the path
//!
//! ```text
//! sender link (size/BW) → crossbar core (fixed traversal, 50 ns) → receiver link (size/BW)
//! ```
//!
//! Both links are FIFO servers; queueing happens only at the endpoints
//! (paper §4.2). A multicast occupies the sender's link once and each
//! destination's link once. Totally ordered messages receive a global
//! sequence number when they enter the crossbar core (i.e. when the sender
//! link finishes transmitting); because the core latency is constant and
//! receiver links are FIFO, all nodes observe totally ordered messages in
//! sequence order — the property snooping and GS320-style protocols rely on.
//!
//! # Integration
//!
//! The crossbar is driven by an external event loop: [`Crossbar::send`] and
//! [`Crossbar::handle`] append to a caller-owned [`NetStep`] the future
//! events to schedule and the finished deliveries to hand to node
//! controllers. The driver reuses one `NetStep` buffer across every call,
//! so the steady-state event loop allocates nothing; fan-out past the
//! crossbar core stores the message once in the driver-owned
//! [`MsgArena`] and hands every destination a [`MsgRef`] handle instead
//! of deep-cloning the payload once per destination.

use bash_kernel::stats::BusyTracker;
use bash_kernel::{DetRng, Duration, Time};

use crate::arena::{MsgArena, MsgRef};
use crate::ids::{NodeId, NodeSet};
use crate::message::{Message, Ordered};
use crate::topology::TopologyKind;

/// Static configuration of the interconnect.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Number of nodes attached to the crossbar.
    pub nodes: u16,
    /// Endpoint link bandwidth in MB/s (the x-axis of Figures 1, 5–7, 10, 11).
    pub link_mbps: u64,
    /// Fixed crossbar traversal latency (50 ns in the paper); in the
    /// fabric, the per-hop store-and-forward latency at each vertex.
    pub traversal: Duration,
    /// Bandwidth-footprint multiplier applied to full-broadcast messages
    /// (1 normally; 4 for Figure 11's larger-system approximation).
    pub broadcast_cost_multiplier: u32,
    /// Optional randomized latency perturbation (used by the random tester
    /// and by the paper's measurement-perturbation methodology).
    pub jitter: Jitter,
    /// Which interconnect to build: the default [`TopologyKind::Crossbar`]
    /// selects this crate's [`Crossbar`]; any other kind selects the
    /// routed [`crate::fabric::Fabric`].
    pub topology: TopologyKind,
    /// Optional deterministic fault plane (loss, corruption, delay,
    /// outages) plus the reliable-delivery transport layered on it.
    /// Requires a routed fabric topology — the crossbar has no links to
    /// fault ([`Fabric::new`](crate::Fabric::new) asserts this).
    pub fault: Option<crate::fault::FaultPlaneConfig>,
}

impl NetConfig {
    /// A configuration with the paper's defaults: 50 ns traversal, no
    /// broadcast penalty, no jitter, crossbar topology.
    pub fn new(nodes: u16, link_mbps: u64) -> Self {
        NetConfig {
            nodes,
            link_mbps,
            traversal: Duration::from_ns(50),
            broadcast_cost_multiplier: 1,
            jitter: Jitter::None,
            topology: TopologyKind::Crossbar,
            fault: None,
        }
    }
}

/// Randomized message-latency perturbation.
///
/// Injection jitter delays a message *before* it is ordered, so the total
/// order stays consistent; traversal jitter is applied only to unordered
/// messages (per-destination), since perturbing ordered fan-out latencies
/// would break the total-order guarantee.
#[derive(Debug, Clone)]
pub enum Jitter {
    /// No perturbation (deterministic baseline).
    None,
    /// Uniformly random delays up to the given bounds.
    Uniform {
        /// Maximum extra delay before a message starts transmitting.
        injection_max: Duration,
        /// Maximum extra per-destination delay for unordered messages.
        traversal_max: Duration,
        /// RNG seed (runs are reproducible for a fixed seed).
        seed: u64,
    },
}

/// Internal crossbar events, scheduled on the driver's event queue.
///
/// Past the core the message lives in the driver's [`MsgArena`]: a
/// broadcast fans out as `dests.len()` copies of one 8-byte [`MsgRef`],
/// not `dests.len()` deep clones of the payload.
#[derive(Debug, Clone)]
pub enum NetEvent<P> {
    /// The sender link finished transmitting: the message enters the core.
    TxDone(Message<P>),
    /// The message reached `dst`'s link after the core traversal.
    RxArrive {
        /// Receiving node.
        dst: NodeId,
        /// Arena handle to the message (shared across the fan-out).
        msg: MsgRef,
        /// Global sequence for totally ordered messages.
        order: Option<u64>,
    },
    /// The receiver link finished; the message is delivered to the node.
    Deliver {
        /// Receiving node.
        dst: NodeId,
        /// Arena handle to the message (shared across the fan-out).
        msg: MsgRef,
        /// Global sequence for totally ordered messages.
        order: Option<u64>,
    },
    /// Fabric only: a forwarding-tree node's in-link finished crossing
    /// (see [`crate::fabric`]; never scheduled by the crossbar).
    Hop {
        /// The in-flight message and its multicast forwarding tree.
        flight: std::rc::Rc<crate::fabric::FabricFlight>,
        /// Index of the tree node whose in-link completed.
        node: u32,
        /// How many times this crossing already failed (reliable
        /// transport retransmission count; 0 on a first attempt).
        attempt: u32,
    },
    /// Fabric only: the reliable transport's retransmission timer fired
    /// for a lost crossing — re-enqueue it on its link.
    Resend {
        /// The in-flight message and its forwarding tree.
        flight: std::rc::Rc<crate::fabric::FabricFlight>,
        /// Index of the tree node whose crossing is retried.
        node: u32,
        /// Failed attempts so far (the retry about to start is this one).
        attempt: u32,
    },
}

/// A completed delivery handed to a node's controller.
///
/// The delivery *transfers* one arena reference to the driver: after the
/// controllers have consumed the message, the driver must
/// [`MsgArena::release`] the handle.
#[derive(Debug, Clone)]
pub struct Delivery {
    /// Receiving node.
    pub dst: NodeId,
    /// Arena handle to the delivered message (shared across the fan-out's
    /// destinations).
    pub msg: MsgRef,
    /// Global total-order sequence (for [`Ordered::Total`] messages).
    pub order: Option<u64>,
}

/// The outcome of crossbar steps: events to schedule plus deliveries.
///
/// [`Crossbar::send`] and [`Crossbar::handle`] *append* to this buffer;
/// the driver drains both vectors after each call and reuses the same
/// `NetStep` for the next one, so no per-event allocation survives warmup.
#[derive(Debug)]
pub struct NetStep<P> {
    /// Future events the driver must schedule.
    pub schedule: Vec<(Time, NetEvent<P>)>,
    /// Messages that completed delivery at the current instant.
    pub deliveries: Vec<Delivery>,
}

// Manual impl: the derived one would demand `P: Default` for no reason.
impl<P> Default for NetStep<P> {
    fn default() -> Self {
        NetStep::new()
    }
}

impl<P> NetStep<P> {
    /// An empty step buffer.
    pub fn new() -> Self {
        NetStep {
            schedule: Vec::new(),
            deliveries: Vec::new(),
        }
    }

    /// Empties both vectors, keeping their capacity for reuse.
    pub fn clear(&mut self) {
        self.schedule.clear();
        self.deliveries.clear();
    }

    /// True when nothing is scheduled or delivered.
    pub fn is_empty(&self) -> bool {
        self.schedule.is_empty() && self.deliveries.is_empty()
    }
}

/// Per-link accounting.
#[derive(Debug, Default, Clone)]
struct LinkState {
    busy: BusyTracker,
    bytes: u64,
    messages: u64,
}

/// The crossbar interconnect. See the module docs for the model.
#[derive(Debug)]
pub struct Crossbar<P> {
    cfg: NetConfig,
    full_mask: NodeSet,
    links: Vec<LinkState>,
    next_order: u64,
    rng: Option<DetRng>,
    _marker: std::marker::PhantomData<P>,
}

impl<P> Crossbar<P> {
    /// Builds a crossbar for the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the node count is zero or the bandwidth is zero.
    pub fn new(cfg: NetConfig) -> Self {
        assert!(cfg.nodes > 0, "need at least one node");
        assert!(cfg.link_mbps > 0, "bandwidth must be positive");
        assert!(cfg.broadcast_cost_multiplier >= 1);
        let rng = match &cfg.jitter {
            Jitter::None => None,
            Jitter::Uniform { seed, .. } => Some(DetRng::seed_from(*seed)),
        };
        Crossbar {
            full_mask: NodeSet::all(cfg.nodes as usize),
            links: vec![LinkState::default(); cfg.nodes as usize],
            next_order: 0,
            rng,
            cfg,
            _marker: std::marker::PhantomData,
        }
    }

    /// The configuration this crossbar was built with.
    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }

    /// Injects a message at `now`, appending the event that must be
    /// scheduled (the sender-link completion) to `out`.
    ///
    /// # Panics
    ///
    /// Panics if the destination set is empty or the source id is out of
    /// range.
    pub fn send(&mut self, now: Time, msg: Message<P>, out: &mut NetStep<P>) {
        assert!(!msg.dests.is_empty(), "message with no destinations");
        assert!((msg.src.index()) < self.links.len(), "bad source node");
        let eff = self.effective_size(&msg);
        let tx_time = Duration::transmission(eff, self.cfg.link_mbps);
        let inject_delay = self.injection_jitter();
        let link = &mut self.links[msg.src.index()];
        let start = (now + inject_delay).max(link.busy.busy_until());
        let end = start + tx_time;
        link.busy.mark_busy(start, end);
        link.bytes += eff;
        link.messages += 1;
        out.schedule.push((end, NetEvent::TxDone(msg)));
    }

    /// Advances an internal event, appending follow-up events and finished
    /// deliveries to `out`. `now` must equal the time the event was
    /// scheduled for. `arena` is the driver-owned message arena; fan-out
    /// payloads are stored there when a transmission enters the core.
    pub fn handle(
        &mut self,
        now: Time,
        event: NetEvent<P>,
        arena: &mut MsgArena<P>,
        out: &mut NetStep<P>,
    ) {
        match event {
            NetEvent::TxDone(msg) => self.enter_core(now, msg, arena, out),
            NetEvent::RxArrive { dst, msg, order } => self.arrive(now, dst, msg, order, arena, out),
            NetEvent::Deliver { dst, msg, order } => {
                out.deliveries.push(Delivery { dst, msg, order });
            }
            NetEvent::Hop { .. } | NetEvent::Resend { .. } => {
                unreachable!("fabric-only event reached the crossbar")
            }
        }
    }

    /// Busy-time tracker of a node's endpoint link (for the adaptive
    /// mechanism's sampling and for utilization reports).
    pub fn link_tracker(&self, node: NodeId) -> &BusyTracker {
        &self.links[node.index()].busy
    }

    /// Whole-run utilization of a node's link over `[0, t)`.
    pub fn link_utilization(&self, node: NodeId, t: Time) -> f64 {
        self.links[node.index()].busy.utilization(t)
    }

    /// Mean link utilization across all nodes over `[0, t)` (Figure 6's
    /// y-axis).
    pub fn mean_utilization(&self, t: Time) -> f64 {
        let sum: f64 = (0..self.cfg.nodes)
            .map(|i| self.link_utilization(NodeId(i), t))
            .sum();
        sum / self.cfg.nodes as f64
    }

    /// Total effective bytes pushed through a node's link (both directions).
    pub fn link_bytes(&self, node: NodeId) -> u64 {
        self.links[node.index()].bytes
    }

    /// Total messages (tx + rx) through a node's link.
    pub fn link_messages(&self, node: NodeId) -> u64 {
        self.links[node.index()].messages
    }

    /// Number of totally ordered messages sequenced so far.
    pub fn orders_assigned(&self) -> u64 {
        self.next_order
    }

    fn enter_core(
        &mut self,
        now: Time,
        msg: Message<P>,
        arena: &mut MsgArena<P>,
        out: &mut NetStep<P>,
    ) {
        let order = match msg.ordered {
            Ordered::Total => {
                let o = self.next_order;
                self.next_order += 1;
                Some(o)
            }
            Ordered::None => None,
        };
        // One arena slot per transmission: every destination's RxArrive
        // carries the same handle, with one reference per delivery.
        let ordered = msg.ordered;
        let dests = msg.dests.clone();
        let msg = arena.alloc(msg, dests.len() as u32);
        for dst in dests.iter() {
            let extra = match ordered {
                // Per-destination jitter would break the total order.
                Ordered::Total => Duration::ZERO,
                Ordered::None => self.traversal_jitter(),
            };
            let at = now + self.cfg.traversal + extra;
            out.schedule
                .push((at, NetEvent::RxArrive { dst, msg, order }));
        }
    }

    fn arrive(
        &mut self,
        now: Time,
        dst: NodeId,
        msg: MsgRef,
        order: Option<u64>,
        arena: &MsgArena<P>,
        out: &mut NetStep<P>,
    ) {
        let eff = self.effective_size(arena.get(msg));
        let rx_time = Duration::transmission(eff, self.cfg.link_mbps);
        let link = &mut self.links[dst.index()];
        let start = now.max(link.busy.busy_until());
        let end = start + rx_time;
        link.busy.mark_busy(start, end);
        link.bytes += eff;
        link.messages += 1;
        out.schedule
            .push((end, NetEvent::Deliver { dst, msg, order }));
    }

    /// The bandwidth footprint of a message: full broadcasts are inflated by
    /// the broadcast cost multiplier (Figure 11).
    fn effective_size(&self, msg: &Message<P>) -> u64 {
        if msg.dests == self.full_mask {
            msg.size as u64 * self.cfg.broadcast_cost_multiplier as u64
        } else {
            msg.size as u64
        }
    }

    fn injection_jitter(&mut self) -> Duration {
        match &self.cfg.jitter {
            Jitter::None => Duration::ZERO,
            Jitter::Uniform { injection_max, .. } => {
                let max = injection_max.as_ps();
                if max == 0 {
                    return Duration::ZERO;
                }
                let rng = self.rng.as_mut().expect("jitter rng");
                Duration::from_ps(rng.below(max + 1))
            }
        }
    }

    fn traversal_jitter(&mut self) -> Duration {
        match &self.cfg.jitter {
            Jitter::None => Duration::ZERO,
            Jitter::Uniform { traversal_max, .. } => {
                let max = traversal_max.as_ps();
                if max == 0 {
                    return Duration::ZERO;
                }
                let rng = self.rng.as_mut().expect("jitter rng");
                Duration::from_ps(rng.below(max + 1))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bash_kernel::EventQueue;

    /// Drives sends + network to completion; returns deliveries with times
    /// and the payload resolved through the arena. Delivery references are
    /// deliberately *not* released, so [`MsgRef`] identity comparisons stay
    /// meaningful after the drive.
    fn drive(
        net: &mut Crossbar<&'static str>,
        sends: Vec<(Time, Message<&'static str>)>,
    ) -> Vec<(Time, Delivery, &'static str)> {
        enum Ev {
            Send(Message<&'static str>),
            Net(NetEvent<&'static str>),
        }
        let mut q: EventQueue<Ev> = EventQueue::new();
        for (t, m) in sends {
            q.schedule(t, Ev::Send(m));
        }
        let mut arena = MsgArena::new();
        let mut out = Vec::new();
        let mut step = NetStep::new();
        while let Some((now, ev)) = q.pop() {
            match ev {
                Ev::Send(m) => net.send(now, m, &mut step),
                Ev::Net(ne) => net.handle(now, ne, &mut arena, &mut step),
            }
            for (t, e) in step.schedule.drain(..) {
                q.schedule(t, Ev::Net(e));
            }
            for d in step.deliveries.drain(..) {
                let payload = arena.get(d.msg).payload;
                out.push((now, d, payload));
            }
        }
        out
    }

    fn cfg(nodes: u16, mbps: u64) -> NetConfig {
        NetConfig::new(nodes, mbps)
    }

    #[test]
    fn unicast_latency_is_tx_plus_traversal_plus_rx() {
        // 8 bytes at 1600 MB/s = 5 ns per link; 5 + 50 + 5 = 60 ns.
        let mut net = Crossbar::new(cfg(4, 1600));
        let m = Message::unordered(NodeId(0), NodeId(1), crate::VnetId::DATA, 8, "m");
        let out = drive(&mut net, vec![(Time::ZERO, m)]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, Time::from_ns(60));
        assert_eq!(out[0].1.dst, NodeId(1));
        assert_eq!(out[0].1.order, None);
    }

    #[test]
    fn sender_link_serializes_messages() {
        // Two 72-byte messages at 1600 MB/s: 45 ns each on the sender link.
        // First delivers at 45+50+45 = 140; second starts tx at 45, so
        // 90+50+45 = 185.
        let mut net = Crossbar::new(cfg(4, 1600));
        let m1 = Message::unordered(NodeId(0), NodeId(1), crate::VnetId::DATA, 72, "a");
        let m2 = Message::unordered(NodeId(0), NodeId(2), crate::VnetId::DATA, 72, "b");
        let out = drive(&mut net, vec![(Time::ZERO, m1), (Time::ZERO, m2)]);
        let times: Vec<u64> = out.iter().map(|(t, _, _)| t.as_ns()).collect();
        assert_eq!(times, vec![140, 185]);
    }

    #[test]
    fn receiver_link_serializes_messages() {
        // Senders 0 and 1 each send 72B to node 2 at the same time; the
        // second to arrive queues behind the first on node 2's link.
        let mut net = Crossbar::new(cfg(4, 1600));
        let m1 = Message::unordered(NodeId(0), NodeId(2), crate::VnetId::DATA, 72, "a");
        let m2 = Message::unordered(NodeId(1), NodeId(2), crate::VnetId::DATA, 72, "b");
        let out = drive(&mut net, vec![(Time::ZERO, m1), (Time::ZERO, m2)]);
        let times: Vec<u64> = out.iter().map(|(t, _, _)| t.as_ns()).collect();
        assert_eq!(times, vec![140, 185]);
    }

    #[test]
    fn broadcast_reaches_all_nodes_including_sender() {
        let mut net = Crossbar::new(cfg(4, 1600));
        let m = Message::ordered(NodeId(1), NodeSet::all(4), 8, "req");
        let out = drive(&mut net, vec![(Time::ZERO, m)]);
        assert_eq!(out.len(), 4);
        let dsts: Vec<u16> = out.iter().map(|(_, d, _)| d.dst.0).collect();
        assert_eq!(dsts, vec![0, 1, 2, 3]);
        assert!(out.iter().all(|(_, d, _)| d.order == Some(0)));
    }

    #[test]
    fn total_order_is_consistent_across_receivers() {
        // Node 0's link is pre-loaded with a large data message so its
        // broadcast enters the core *after* node 1's, even though it was
        // sent first. All receivers must still see one consistent order.
        let mut net = Crossbar::new(cfg(3, 100)); // slow links: 8B = 80 ns
        let preload = Message::unordered(NodeId(0), NodeId(1), crate::VnetId::DATA, 72, "big");
        let b0 = Message::ordered(NodeId(0), NodeSet::all(3), 8, "from0");
        let b1 = Message::ordered(NodeId(1), NodeSet::all(3), 8, "from1");
        let out = drive(
            &mut net,
            vec![
                (Time::ZERO, preload),
                (Time::from_ns(1), b0),
                (Time::from_ns(2), b1),
            ],
        );
        // Collect per-receiver observation order of the two broadcasts.
        let mut per_node: std::collections::HashMap<u16, Vec<&str>> = Default::default();
        for (_, d, payload) in &out {
            if d.order.is_some() {
                per_node.entry(d.dst.0).or_default().push(*payload);
            }
        }
        assert_eq!(per_node.len(), 3);
        let reference = per_node[&0].clone();
        assert_eq!(reference, vec!["from1", "from0"]); // node 1 entered first
        for v in per_node.values() {
            assert_eq!(*v, reference);
        }
    }

    #[test]
    fn broadcast_cost_multiplier_inflates_only_full_broadcasts() {
        let mut c = cfg(4, 1600);
        c.broadcast_cost_multiplier = 4;
        let mut net = Crossbar::new(c);
        // Full broadcast: 8B * 4 = 32B → 20 ns per link; 20+50+20 = 90 ns.
        let b = Message::ordered(NodeId(0), NodeSet::all(4), 8, "bcast");
        let out = drive(&mut net, vec![(Time::ZERO, b)]);
        assert!(out.iter().all(|(t, _, _)| t.as_ns() == 90));
        // A 3-of-4 multicast is not inflated: 5+50+5 = 60 ns after the
        // link frees at t=20.
        let mut net2 = Crossbar::new({
            let mut c = cfg(4, 1600);
            c.broadcast_cost_multiplier = 4;
            c
        });
        let m = Message::ordered(
            NodeId(0),
            NodeSet::from_nodes([NodeId(0), NodeId(1), NodeId(2)]),
            8,
            "multi",
        );
        let out2 = drive(&mut net2, vec![(Time::ZERO, m)]);
        assert!(out2.iter().all(|(t, _, _)| t.as_ns() == 60));
    }

    #[test]
    fn utilization_accounts_tx_and_rx_on_shared_link() {
        let mut net = Crossbar::new(cfg(2, 800)); // 8B = 10 ns
        let m = Message::unordered(NodeId(0), NodeId(1), crate::VnetId::DATA, 8, "x");
        let out = drive(&mut net, vec![(Time::ZERO, m)]);
        let end = out[0].0; // 10 + 50 + 10 = 70 ns
        assert_eq!(end.as_ns(), 70);
        // Sender link busy 10 of 70 ns; receiver link busy 10 of 70 ns.
        assert!((net.link_utilization(NodeId(0), end) - 10.0 / 70.0).abs() < 1e-9);
        assert!((net.link_utilization(NodeId(1), end) - 10.0 / 70.0).abs() < 1e-9);
        assert_eq!(net.link_bytes(NodeId(0)), 8);
        assert_eq!(net.link_messages(NodeId(1)), 1);
        assert!((net.mean_utilization(end) - 10.0 / 70.0).abs() < 1e-9);
    }

    #[test]
    fn self_delivery_charges_link_twice() {
        // A dualcast {self, other} occupies the sender link once for tx and
        // once for its own rx copy.
        let mut net = Crossbar::new(cfg(2, 800));
        let m = Message::ordered(NodeId(0), NodeSet::all(2), 8, "dual");
        let out = drive(&mut net, vec![(Time::ZERO, m)]);
        assert_eq!(out.len(), 2);
        assert_eq!(net.link_bytes(NodeId(0)), 16); // 8 tx + 8 rx
        assert_eq!(net.link_bytes(NodeId(1)), 8);
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let jittered = |seed: u64| {
            let mut c = cfg(4, 1600);
            c.jitter = Jitter::Uniform {
                injection_max: Duration::from_ns(20),
                traversal_max: Duration::from_ns(30),
                seed,
            };
            let mut net = Crossbar::new(c);
            let m1 = Message::unordered(NodeId(0), NodeId(1), crate::VnetId::DATA, 8, "a");
            let m2 = Message::unordered(NodeId(2), NodeId(3), crate::VnetId::DATA, 8, "b");
            drive(&mut net, vec![(Time::ZERO, m1), (Time::ZERO, m2)])
                .iter()
                .map(|(t, _, _)| t.as_ps())
                .collect::<Vec<_>>()
        };
        assert_eq!(jittered(9), jittered(9));
        assert_ne!(jittered(9), jittered(10));
    }

    #[test]
    #[should_panic(expected = "no destinations")]
    fn empty_destination_panics() {
        let mut net: Crossbar<&'static str> = Crossbar::new(cfg(2, 800));
        let m = Message {
            src: NodeId(0),
            dests: NodeSet::EMPTY,
            vnet: crate::VnetId::DATA,
            ordered: Ordered::None,
            size: 8,
            payload: "bad",
        };
        net.send(Time::ZERO, m, &mut NetStep::new());
    }

    #[test]
    fn broadcast_shares_one_payload_allocation() {
        // All four deliveries of a broadcast must carry the same arena
        // handle (one slot per transmission, not per-destination clones).
        let mut net = Crossbar::new(cfg(4, 1600));
        let m = Message::ordered(NodeId(0), NodeSet::all(4), 8, "shared");
        let out = drive(&mut net, vec![(Time::ZERO, m)]);
        assert_eq!(out.len(), 4);
        let first = out[0].1.msg;
        assert!(out.iter().all(|(_, d, _)| d.msg == first));
    }
}
