//! A generational slab arena for in-flight message payloads.
//!
//! The interconnects used to share fan-out payloads via `Rc<Message<P>>`:
//! one heap allocation per transmission plus a reference-count touch per
//! destination, with the payload scattered wherever the allocator put it.
//! The arena replaces the pointers with [`MsgRef`] — a 32-bit slot index
//! plus a 32-bit generation — into one slab owned by the driver. Slots
//! are recycled through a free list, so the steady state allocates
//! nothing, keeps payloads dense, and shrinks every in-flight event by a
//! pointer's worth of indirection.
//!
//! Reference discipline: [`MsgArena::alloc`] stores the message with an
//! explicit initial count — one reference per delivery the transmission
//! is expected to produce. Every [`crate::Delivery`] handed to the driver
//! *transfers* one reference; the driver releases it once the controllers
//! have seen the message. Holding a copy beyond that (a resequencer
//! hold-back, a scheduled re-delivery) retains first. The generation
//! check turns any use-after-release into a loud panic instead of a
//! silent read of a recycled slot.

use crate::message::Message;

/// A generational handle to a message in a [`MsgArena`].
///
/// `Copy` and 8 bytes — cheap to embed in every network event. Equality
/// compares identity (same slot, same generation), the arena analogue of
/// `Rc::ptr_eq`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MsgRef {
    index: u32,
    gen: u32,
}

#[derive(Debug)]
struct Slot<P> {
    gen: u32,
    refs: u32,
    msg: Option<Message<P>>,
}

/// The slab of in-flight messages. See the module docs for the
/// reference discipline.
#[derive(Debug)]
pub struct MsgArena<P> {
    slots: Vec<Slot<P>>,
    free: Vec<u32>,
    live: usize,
    peak_live: usize,
    allocated: u64,
}

impl<P> MsgArena<P> {
    /// An empty arena.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// An empty arena with `cap` slots pre-allocated.
    pub fn with_capacity(cap: usize) -> Self {
        MsgArena {
            slots: Vec::with_capacity(cap),
            free: Vec::new(),
            live: 0,
            peak_live: 0,
            allocated: 0,
        }
    }

    /// Stores `msg` with an initial reference count of `refs` (the number
    /// of deliveries this transmission will produce). `refs` must be
    /// positive — a message nobody will consume should not enter the
    /// arena.
    pub fn alloc(&mut self, msg: Message<P>, refs: u32) -> MsgRef {
        assert!(refs > 0, "allocating an unreferenced message leaks it");
        self.allocated += 1;
        self.live += 1;
        if self.live > self.peak_live {
            self.peak_live = self.live;
        }
        if let Some(index) = self.free.pop() {
            let slot = &mut self.slots[index as usize];
            debug_assert!(slot.msg.is_none(), "free-list slot still occupied");
            slot.refs = refs;
            slot.msg = Some(msg);
            MsgRef {
                index,
                gen: slot.gen,
            }
        } else {
            let index = u32::try_from(self.slots.len()).expect("arena overflow");
            self.slots.push(Slot {
                gen: 0,
                refs,
                msg: Some(msg),
            });
            MsgRef { index, gen: 0 }
        }
    }

    fn slot(&self, r: MsgRef) -> &Slot<P> {
        let slot = &self.slots[r.index as usize];
        assert_eq!(slot.gen, r.gen, "stale MsgRef: slot was recycled");
        slot
    }

    fn slot_mut(&mut self, r: MsgRef) -> &mut Slot<P> {
        let slot = &mut self.slots[r.index as usize];
        assert_eq!(slot.gen, r.gen, "stale MsgRef: slot was recycled");
        slot
    }

    /// The message behind `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is stale (its slot was released and recycled).
    pub fn get(&self, r: MsgRef) -> &Message<P> {
        self.slot(r).msg.as_ref().expect("MsgRef to a freed slot")
    }

    /// Adds one reference to `r` (a hold-back or re-delivery keeping the
    /// message alive beyond its delivery). Legal while the message is
    /// temporarily moved out with [`MsgArena::take`] — the slot's
    /// generation still guards against staleness.
    pub fn retain(&mut self, r: MsgRef) {
        self.slot_mut(r).refs += 1;
    }

    /// Drops one reference to `r`, freeing the slot when the count hits
    /// zero. The generation bump invalidates every outstanding handle.
    pub fn release(&mut self, r: MsgRef) {
        let slot = self.slot_mut(r);
        debug_assert!(slot.refs > 0, "release without a matching reference");
        slot.refs -= 1;
        if slot.refs == 0 {
            slot.msg = None;
            slot.gen = slot.gen.wrapping_add(1);
            self.free.push(r.index);
            self.live -= 1;
        }
    }

    /// Temporarily moves the message out of the arena (so a driver can
    /// hold it by value across calls that need `&mut` access to both the
    /// arena's owner and the message). Pair with [`MsgArena::put_back`];
    /// the slot keeps its references and generation while the message is
    /// out.
    pub fn take(&mut self, r: MsgRef) -> Message<P> {
        self.slot_mut(r).msg.take().expect("take on an empty slot")
    }

    /// Returns a message moved out with [`MsgArena::take`].
    pub fn put_back(&mut self, r: MsgRef, msg: Message<P>) {
        let slot = self.slot_mut(r);
        debug_assert!(slot.msg.is_none(), "put_back on an occupied slot");
        slot.msg = Some(msg);
    }

    /// Messages currently live in the arena.
    pub fn live(&self) -> usize {
        self.live
    }

    /// High-water mark of live messages over the arena's lifetime.
    pub fn peak_live(&self) -> usize {
        self.peak_live
    }

    /// Total messages ever allocated (a cheap traffic metric).
    pub fn allocated(&self) -> u64 {
        self.allocated
    }
}

impl<P> Default for MsgArena<P> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;
    use crate::VnetId;

    fn msg(payload: &'static str) -> Message<&'static str> {
        Message::unordered(NodeId(0), NodeId(1), VnetId::DATA, 8, payload)
    }

    #[test]
    fn alloc_get_release_roundtrip() {
        let mut a = MsgArena::new();
        let r = a.alloc(msg("x"), 2);
        assert_eq!(a.get(r).payload, "x");
        assert_eq!(a.live(), 1);
        a.release(r);
        assert_eq!(a.live(), 1, "one reference remains");
        a.release(r);
        assert_eq!(a.live(), 0);
    }

    #[test]
    fn slots_are_recycled_with_fresh_generations() {
        let mut a = MsgArena::new();
        let r1 = a.alloc(msg("a"), 1);
        a.release(r1);
        let r2 = a.alloc(msg("b"), 1);
        assert_ne!(r1, r2, "recycled slot must carry a new generation");
        assert_eq!(a.get(r2).payload, "b");
        assert_eq!(a.allocated(), 2);
        assert_eq!(a.peak_live(), 1);
    }

    #[test]
    #[should_panic(expected = "stale MsgRef")]
    fn stale_handles_panic() {
        let mut a = MsgArena::new();
        let r1 = a.alloc(msg("a"), 1);
        a.release(r1);
        let _r2 = a.alloc(msg("b"), 1);
        let _ = a.get(r1);
    }

    #[test]
    fn retain_keeps_a_message_alive() {
        let mut a = MsgArena::new();
        let r = a.alloc(msg("a"), 1);
        a.retain(r);
        a.release(r);
        assert_eq!(a.get(r).payload, "a");
        a.release(r);
        assert_eq!(a.live(), 0);
    }

    #[test]
    fn take_and_put_back_preserve_identity() {
        let mut a = MsgArena::new();
        let r = a.alloc(msg("a"), 1);
        let m = a.take(r);
        assert_eq!(m.payload, "a");
        a.put_back(r, m);
        assert_eq!(a.get(r).payload, "a");
    }
}
