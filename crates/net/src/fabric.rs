//! The topology-aware fabric: hop-by-hop message forwarding through
//! per-directed-link FIFO bandwidth queues.
//!
//! # Model
//!
//! Where the [`Crossbar`] charges exactly one sender link, one fixed core
//! traversal, and one receiver link per destination, the fabric routes
//! each message along the chain of directed links its [`Topology`]
//! prescribes:
//!
//! ```text
//! link(src→v₁) → +traversal → link(v₁→v₂) → +traversal → … → link(vₖ→dst) ⇒ deliver
//! ```
//!
//! Every directed link is an independent FIFO server of the configured
//! bandwidth ([`BusyTracker`]-backed, exactly like the crossbar's endpoint
//! links): a message occupies the link for `size / bandwidth`, queued
//! behind whatever the link is already carrying. Each intermediate vertex
//! adds the fixed `traversal` latency (store-and-forward switching). On a
//! star this reproduces the crossbar's two-link shape — tx, 50 ns, rx —
//! with the difference that contention is per *directed* link rather than
//! per bidirectional endpoint.
//!
//! A multicast is forwarded as a **tree**: the deterministic routes from
//! one source to all destinations are merged (each vertex has a unique
//! in-link per source — see [`crate::topology`]), and one arena-resident
//! message ([`MsgRef`]) travels each tree edge exactly once, branching at
//! the fork vertices. A destination whose tree node completes its last link
//! crossing receives the delivery; loopback copies (source in the
//! destination set) cross no link and arrive after one traversal.
//!
//! # Ordering
//!
//! [`Ordered::Total`] messages are sequenced **globally at injection**
//! (one shared counter, plus a per-destination sequence). Because
//! multi-hop routes have different lengths and congestion, a later
//! message can physically overtake an earlier one; every endpoint
//! therefore *re-sequences*: a copy arriving ahead of its turn is held
//! back until the preceding per-destination sequence numbers have been
//! delivered. The observable guarantee is exactly the crossbar's — all
//! endpoints see totally ordered messages in one global order — on every
//! topology. [`Topology::ordering`] reports whether the topology would
//! have provided the order natively (star: every route crosses the hub)
//! or relies on the hold-back queues ([`OrderingMode::Resequenced`]);
//! the verify harness surfaces this capability per run.

use std::collections::BTreeMap;
use std::rc::Rc;

use bash_kernel::stats::BusyTracker;
use bash_kernel::{DetRng, Duration, Time};

use crate::arena::{MsgArena, MsgRef};
use crate::crossbar::{Crossbar, Delivery, Jitter, NetConfig, NetEvent, NetStep};
use crate::fault::{DropCause, Fate, FaultPlane, FaultStats};
use crate::ids::{NodeId, NodeSet};
use crate::message::{Message, Ordered};
use crate::topology::{OrderingMode, Topology, TopologyKind};

/// Sentinel link id for loopback tree nodes (no physical link crossed).
const SELF_LINK: u32 = u32::MAX;

/// An ordered copy held back at an endpoint: the message's arena handle
/// plus its global order number, keyed (in [`Fabric::held`]) by the
/// per-destination sequence it must wait its turn for. The handle keeps
/// the arena reference the eventual delivery will transfer.
type HeldCopy = (MsgRef, u64);

/// One node of an in-flight multicast forwarding tree.
#[derive(Debug)]
struct FlightNode {
    /// The directed link whose crossing completes this node
    /// (`SELF_LINK` for a loopback copy).
    link: u32,
    /// Tree nodes fed by this vertex (indices into `FabricFlight::nodes`).
    children: Vec<u32>,
    /// Endpoint delivery at this vertex: `(destination, per-dst sequence)`.
    deliver: Option<(NodeId, u64)>,
}

/// An in-flight message plus its multicast forwarding tree. The tree is
/// shared ([`Rc`]) across all [`NetEvent::Hop`] events of one
/// transmission; the payload itself lives in the driver's [`MsgArena`].
#[derive(Debug)]
pub struct FabricFlight {
    msg: MsgRef,
    order: Option<u64>,
    eff: u64,
    nodes: Vec<FlightNode>,
}

/// Per-directed-link state and accounting.
#[derive(Debug)]
struct FabLink {
    from: u16,
    to: u16,
    busy: BusyTracker,
    bytes: u64,
    messages: u64,
    /// Instant of the most recent enqueue (peak-demand bucketing).
    last_enqueue: Time,
    /// Messages enqueued at `last_enqueue`.
    demand_now: u32,
    /// Highest same-instant enqueue count seen over the whole run.
    peak_demand: u32,
}

impl FabLink {
    fn new(from: u16, to: u16) -> Self {
        FabLink {
            from,
            to,
            busy: BusyTracker::default(),
            bytes: 0,
            messages: 0,
            last_enqueue: Time::ZERO,
            demand_now: 0,
            peak_demand: 0,
        }
    }
}

/// The fabric engine. Drop-in peer of [`Crossbar`]: same
/// [`NetConfig`], same [`NetStep`] driving contract, same delivery
/// semantics for ordered traffic.
#[derive(Debug)]
pub struct Fabric<P> {
    cfg: NetConfig,
    topo: Box<dyn Topology>,
    full_mask: NodeSet,
    links: Vec<FabLink>,
    /// Dense `(from * vertices + to) → link id` map (`u32::MAX` = no link).
    link_index: Vec<u32>,
    /// Per endpoint node: ids of the links it is an endpoint of.
    incident: Vec<Vec<u32>>,
    next_order: u64,
    /// Next per-destination sequence to assign at injection.
    dst_next_seq: Vec<u64>,
    /// Next per-destination sequence the endpoint will release.
    expect_seq: Vec<u64>,
    /// Ordered copies that overtook their turn, keyed by sequence.
    held: Vec<BTreeMap<u64, HeldCopy>>,
    /// Generation-stamped per-vertex scratch for tree construction.
    entry_node: Vec<u32>,
    entry_gen: Vec<u32>,
    gen: u32,
    rng: Option<DetRng>,
    /// The deterministic fault plane, when `cfg.fault` configures one.
    fault: Option<FaultPlane>,
    /// Failover routing table, built after the first link death:
    /// `vertex * nodes + dst → next hop` (`u16::MAX` = unreachable).
    reroute: Option<Vec<u16>>,
    _marker: std::marker::PhantomData<P>,
}

impl<P> Fabric<P> {
    /// Builds a fabric for the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the node count or bandwidth is zero, or if
    /// `cfg.topology` is [`TopologyKind::Crossbar`] (use [`Crossbar`] —
    /// or [`Interconnect::new`], which dispatches).
    pub fn new(cfg: NetConfig) -> Self {
        assert!(cfg.nodes > 0, "need at least one node");
        assert!(cfg.link_mbps > 0, "bandwidth must be positive");
        assert!(cfg.broadcast_cost_multiplier >= 1);
        let topo = cfg
            .topology
            .build(cfg.nodes)
            .expect("Fabric requires a routed topology, not the crossbar");
        let v = topo.vertices() as usize;
        let mut link_index = vec![u32::MAX; v * v];
        let mut links = Vec::with_capacity(topo.links().len());
        let mut incident = vec![Vec::new(); cfg.nodes as usize];
        for (i, &(from, to)) in topo.links().iter().enumerate() {
            link_index[from as usize * v + to as usize] = i as u32;
            if (from as usize) < incident.len() {
                incident[from as usize].push(i as u32);
            }
            if (to as usize) < incident.len() {
                incident[to as usize].push(i as u32);
            }
            links.push(FabLink::new(from, to));
        }
        let n = cfg.nodes as usize;
        let rng = match &cfg.jitter {
            Jitter::None => None,
            Jitter::Uniform { seed, .. } => Some(DetRng::seed_from(*seed)),
        };
        let fault = cfg
            .fault
            .as_ref()
            .map(|fc| FaultPlane::new(fc, topo.links()));
        Fabric {
            full_mask: NodeSet::all(n),
            links,
            link_index,
            incident,
            next_order: 0,
            dst_next_seq: vec![0; n],
            expect_seq: vec![0; n],
            held: (0..n).map(|_| BTreeMap::new()).collect(),
            entry_node: vec![0; v],
            entry_gen: vec![0; v],
            gen: 0,
            rng,
            fault,
            reroute: None,
            topo,
            cfg,
            _marker: std::marker::PhantomData,
        }
    }

    /// The configuration this fabric was built with.
    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }

    /// The routing graph.
    pub fn topology(&self) -> &dyn Topology {
        &*self.topo
    }

    /// Ordering capability of the underlying topology (the delivered
    /// guarantee is always a total order; see the module docs).
    pub fn ordering(&self) -> OrderingMode {
        self.topo.ordering()
    }

    /// Number of totally ordered messages sequenced so far.
    pub fn orders_assigned(&self) -> u64 {
        self.next_order
    }

    /// Number of directed links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// `(from, to)` vertices of directed link `i`.
    pub fn link_endpoints(&self, i: usize) -> (u16, u16) {
        (self.links[i].from, self.links[i].to)
    }

    /// Effective bytes forwarded over directed link `i`.
    pub fn link_bytes(&self, i: usize) -> u64 {
        self.links[i].bytes
    }

    /// Messages forwarded over directed link `i`.
    pub fn link_messages(&self, i: usize) -> u64 {
        self.links[i].messages
    }

    /// Highest number of same-instant enqueues seen on directed link `i`.
    pub fn link_peak_demand(&self, i: usize) -> u32 {
        self.links[i].peak_demand
    }

    /// Busy-time tracker of directed link `i`.
    pub fn link_tracker(&self, i: usize) -> &BusyTracker {
        &self.links[i].busy
    }

    /// Cumulative busy time of directed link `i` over `[0, t)`, in ps.
    pub fn link_busy_ps(&self, i: usize, t: Time) -> u64 {
        self.links[i].busy.busy_time_until(t).as_ps()
    }

    /// Whole-run utilization of directed link `i` over `[0, t)`.
    pub fn link_utilization(&self, i: usize, t: Time) -> f64 {
        self.links[i].busy.utilization(t)
    }

    /// Mean utilization across all directed links over `[0, t)`.
    pub fn mean_utilization(&self, t: Time) -> f64 {
        let sum: f64 = (0..self.links.len())
            .map(|i| self.link_utilization(i, t))
            .sum();
        sum / self.links.len().max(1) as f64
    }

    /// Ids of the directed links incident to endpoint `node` (both
    /// directions) — the adaptive mechanism's local-utilization inputs.
    pub fn incident_links(&self, node: NodeId) -> &[u32] {
        &self.incident[node.index()]
    }

    /// Cumulative fault-plane counters, when a fault plane is configured.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.fault.as_ref().map(|f| f.stats())
    }

    /// The runtime fault plane, when one is configured.
    pub fn fault_plane(&self) -> Option<&FaultPlane> {
        self.fault.as_ref()
    }

    /// Injects a message at `now`; appends the first link-crossing
    /// completions (one per tree root) to `out`.
    ///
    /// # Panics
    ///
    /// Panics if the destination set is empty or the source is out of
    /// range.
    pub fn send(
        &mut self,
        now: Time,
        msg: Message<P>,
        arena: &mut MsgArena<P>,
        out: &mut NetStep<P>,
    ) {
        assert!(!msg.dests.is_empty(), "message with no destinations");
        assert!(
            msg.src.index() < self.topo.nodes() as usize,
            "bad source node"
        );
        let eff = self.effective_size(&msg);
        let inject_delay = self.injection_jitter();
        let order = match msg.ordered {
            Ordered::Total => {
                let o = self.next_order;
                self.next_order += 1;
                Some(o)
            }
            Ordered::None => None,
        };
        let src = msg.src;
        let dests = msg.dests.clone();
        let t0 = now + inject_delay;

        // Merge the per-destination routes into the forwarding tree.
        // Under an active fault plane each destination instead gets an
        // independent linear chain (no shared tree edges), so one copy's
        // loss, retransmission, or failover never affects the fate of the
        // other destinations; fault-free runs keep the tree path and its
        // exact schedule.
        let fault_active = self.fault.is_some();
        self.gen = self.gen.wrapping_add(1);
        let mut nodes: Vec<FlightNode> = Vec::new();
        let mut roots: Vec<u32> = Vec::new();
        let mut planned: u32 = 0;
        for dst in dests.iter() {
            let seq = match order {
                Some(_) => {
                    let s = self.dst_next_seq[dst.index()];
                    self.dst_next_seq[dst.index()] += 1;
                    s
                }
                None => 0,
            };
            if dst == src {
                // Loopback: no link crossing, one switch turnaround.
                let ni = nodes.len() as u32;
                nodes.push(FlightNode {
                    link: SELF_LINK,
                    children: Vec::new(),
                    deliver: Some((dst, seq)),
                });
                roots.push(ni);
                planned += 1;
                continue;
            }
            let mut at = src.0;
            let mut parent: Option<u32> = None;
            let chain_start = nodes.len();
            let mut reachable = true;
            while at != dst.0 {
                let Some(next) = self.route_next(at, dst) else {
                    reachable = false;
                    break;
                };
                let li = self.link_id(at, next);
                let ni = if !fault_active && self.entry_gen[next as usize] == self.gen {
                    self.entry_node[next as usize]
                } else {
                    let ni = nodes.len() as u32;
                    nodes.push(FlightNode {
                        link: li,
                        children: Vec::new(),
                        deliver: None,
                    });
                    if !fault_active {
                        self.entry_gen[next as usize] = self.gen;
                        self.entry_node[next as usize] = ni;
                    }
                    match parent {
                        Some(p) => nodes[p as usize].children.push(ni),
                        None => roots.push(ni),
                    }
                    ni
                };
                parent = Some(ni);
                at = next;
            }
            if !reachable {
                // Link deaths left this destination unreachable: discard
                // the partial chain (never shared — fault plane active).
                nodes.truncate(chain_start);
                roots.retain(|&r| (r as usize) < chain_start);
                self.fault
                    .as_mut()
                    .expect("unreachable routes require a fault plane")
                    .count_undeliverable();
                continue;
            }
            let tail = parent.expect("non-loopback route has at least one hop");
            nodes[tail as usize].deliver = Some((dst, seq));
            planned += 1;
        }

        if planned == 0 {
            // Every destination was unreachable; nothing references the
            // message, so it never enters the arena.
            return;
        }
        // One arena reference per delivery this transmission will produce.
        let msg = arena.alloc(msg, planned);
        let flight = Rc::new(FabricFlight {
            msg,
            order,
            eff,
            nodes,
        });
        for ni in roots {
            let done = self.launch(t0, &flight, ni);
            out.schedule.push((
                done,
                NetEvent::Hop {
                    flight: Rc::clone(&flight),
                    node: ni,
                    attempt: 0,
                },
            ));
        }
    }

    /// Advances an internal event (see [`Crossbar::handle`] for the
    /// contract). The fabric only ever schedules [`NetEvent::Hop`],
    /// [`NetEvent::Resend`], and [`NetEvent::Deliver`].
    pub fn handle(
        &mut self,
        now: Time,
        event: NetEvent<P>,
        arena: &mut MsgArena<P>,
        out: &mut NetStep<P>,
    ) {
        match event {
            NetEvent::Hop {
                flight,
                node,
                attempt,
            } => self.hop(now, flight, node, attempt, arena, out),
            NetEvent::Resend {
                flight,
                node,
                attempt,
            } => {
                // Retransmission timer fired: re-enqueue the crossing.
                let done = self.launch(now, &flight, node);
                out.schedule.push((
                    done,
                    NetEvent::Hop {
                        flight,
                        node,
                        attempt,
                    },
                ));
            }
            NetEvent::Deliver { dst, msg, order } => {
                out.deliveries.push(Delivery { dst, msg, order });
            }
            NetEvent::TxDone(_) | NetEvent::RxArrive { .. } => {
                unreachable!("crossbar-only event reached the fabric")
            }
        }
    }

    /// A tree node's in-link finished crossing: consult the fault plane
    /// (if any), then deliver and/or forward.
    fn hop(
        &mut self,
        now: Time,
        flight: Rc<FabricFlight>,
        node: u32,
        attempt: u32,
        arena: &mut MsgArena<P>,
        out: &mut NetStep<P>,
    ) {
        let li = flight.nodes[node as usize].link;
        if li != SELF_LINK && self.fault.is_some() {
            let fate = self
                .fault
                .as_mut()
                .expect("checked above")
                .crossing_fate(li as usize, now);
            if let Fate::Drop(cause) = fate {
                self.crossing_lost(now, flight, node, attempt, cause, arena, out);
                return;
            }
        }
        if let Some((dst, seq)) = flight.nodes[node as usize].deliver {
            self.endpoint_arrive(now, dst, flight.msg, flight.order, seq, out);
        }
        for i in 0..flight.nodes[node as usize].children.len() {
            let child = flight.nodes[node as usize].children[i];
            let done = self.launch(now + self.cfg.traversal, &flight, child);
            out.schedule.push((
                done,
                NetEvent::Hop {
                    flight: Rc::clone(&flight),
                    node: child,
                    attempt: 0,
                },
            ));
        }
    }

    /// A crossing was discarded by the fault plane: retransmit with
    /// backoff, or — once the retransmit budget is exhausted (or the link
    /// is already dead) — declare the link dead and fail the copy over to
    /// a surviving route. Without a transport the copy is simply gone.
    #[allow(clippy::too_many_arguments)]
    fn crossing_lost(
        &mut self,
        now: Time,
        flight: Rc<FabricFlight>,
        node: u32,
        attempt: u32,
        cause: DropCause,
        arena: &mut MsgArena<P>,
        out: &mut NetStep<P>,
    ) {
        let fault = self.fault.as_mut().expect("fault plane");
        fault.count_drop(cause);
        let Some(transport) = fault.transport() else {
            // Raw loss reaches the protocols: this copy (and everything
            // downstream of it) is permanently gone — drop the delivery
            // reference it was carrying (fault-plane flights are linear
            // chains, so a lost copy is exactly one delivery).
            fault.count_undeliverable();
            arena.release(flight.msg);
            return;
        };
        let budget = transport.retransmit_budget;
        let li = flight.nodes[node as usize].link as usize;
        if matches!(cause, DropCause::Dead) || attempt + 1 >= budget {
            fault.mark_dead(li);
            self.rebuild_routes();
            self.reroute_copy(now, &flight, node, arena, out);
        } else {
            fault.count_retransmit();
            let delay = fault.rto_after(attempt);
            out.schedule.push((
                now + delay,
                NetEvent::Resend {
                    flight,
                    node,
                    attempt: attempt + 1,
                },
            ));
        }
    }

    /// The next hop from `at` toward `dst`: the failover table when link
    /// deaths forced one, the topology's route otherwise. `None` means
    /// the destination is unreachable over the surviving links.
    fn route_next(&self, at: u16, dst: NodeId) -> Option<u16> {
        match &self.reroute {
            Some(table) => {
                let nh = table[at as usize * self.cfg.nodes as usize + dst.index()];
                (nh != u16::MAX).then_some(nh)
            }
            None => Some(self.topo.next_hop(at, dst)),
        }
    }

    /// Recomputes the failover routing table over the surviving links:
    /// per-destination BFS on the reverse graph, next hop = the live
    /// out-neighbor one step closer to the destination (smallest-vertex
    /// tie-break, so failover routes are deterministic).
    fn rebuild_routes(&mut self) {
        let fault = self
            .fault
            .as_ref()
            .expect("failover requires a fault plane");
        let v = self.topo.vertices() as usize;
        let n = self.cfg.nodes as usize;
        let mut table = vec![u16::MAX; v * n];
        let mut dist = vec![u32::MAX; v];
        let mut queue = std::collections::VecDeque::new();
        for dstv in 0..n {
            dist.fill(u32::MAX);
            dist[dstv] = 0;
            queue.clear();
            queue.push_back(dstv as u16);
            while let Some(u) = queue.pop_front() {
                for (li, l) in self.links.iter().enumerate() {
                    if l.to == u && !fault.is_dead(li) && dist[l.from as usize] == u32::MAX {
                        dist[l.from as usize] = dist[u as usize] + 1;
                        queue.push_back(l.from);
                    }
                }
            }
            for at in 0..v {
                if at == dstv || dist[at] == u32::MAX {
                    continue;
                }
                let mut best: Option<u16> = None;
                for (li, l) in self.links.iter().enumerate() {
                    if l.from as usize == at
                        && !fault.is_dead(li)
                        && dist[l.to as usize] == dist[at] - 1
                    {
                        best = Some(match best {
                            Some(b) => b.min(l.to),
                            None => l.to,
                        });
                    }
                }
                if let Some(b) = best {
                    table[at * n + dstv] = b;
                }
            }
        }
        self.reroute = Some(table);
    }

    /// Re-launches a copy stuck on a dead link along the surviving
    /// routes, preserving its `(destination, sequence)` identity so the
    /// endpoint re-sequencer is none the wiser. Chains are linear under
    /// an active fault plane, so the copy carries exactly one delivery.
    fn reroute_copy(
        &mut self,
        now: Time,
        flight: &Rc<FabricFlight>,
        node: u32,
        arena: &mut MsgArena<P>,
        out: &mut NetStep<P>,
    ) {
        // Walk to the chain tail for the delivery this copy was carrying.
        let mut at_node = node;
        let (dst, seq) = loop {
            let fnode = &flight.nodes[at_node as usize];
            debug_assert!(
                fnode.children.len() <= 1,
                "fault-plane flights are linear chains"
            );
            if let Some(d) = fnode.deliver {
                break d;
            }
            at_node = fnode.children[0];
        };
        let start = self.links[flight.nodes[node as usize].link as usize].from;
        let mut nodes: Vec<FlightNode> = Vec::new();
        let mut at = start;
        let mut parent: Option<u32> = None;
        while at != dst.0 {
            let Some(next) = self.route_next(at, dst) else {
                // No surviving route: the copy's delivery will never
                // happen — give its arena reference back.
                self.fault
                    .as_mut()
                    .expect("fault plane")
                    .count_undeliverable();
                arena.release(flight.msg);
                return;
            };
            let li = self.link_id(at, next);
            let ni = nodes.len() as u32;
            nodes.push(FlightNode {
                link: li,
                children: Vec::new(),
                deliver: None,
            });
            if let Some(p) = parent {
                nodes[p as usize].children.push(ni);
            }
            parent = Some(ni);
            at = next;
        }
        let tail = parent.expect("rerouted copy crosses at least one link");
        nodes[tail as usize].deliver = Some((dst, seq));
        // The rerouted copy inherits the original's delivery reference:
        // one delivery was owed before, one is owed after — no retain.
        let new_flight = Rc::new(FabricFlight {
            msg: flight.msg,
            order: flight.order,
            eff: flight.eff,
            nodes,
        });
        self.fault.as_mut().expect("fault plane").count_reroute();
        let done = self.launch(now, &new_flight, 0);
        out.schedule.push((
            done,
            NetEvent::Hop {
                flight: new_flight,
                node: 0,
                attempt: 0,
            },
        ));
    }

    /// Enqueues a tree node's in-link crossing at `t`; returns the
    /// completion instant. Loopback nodes cross no link. Fault-plane
    /// extra delay is propagation, not occupancy: it pushes the crossing's
    /// completion out without extending the link's busy window.
    fn launch(&mut self, t: Time, flight: &Rc<FabricFlight>, node: u32) -> Time {
        let li = flight.nodes[node as usize].link;
        if li == SELF_LINK {
            return t + self.cfg.traversal;
        }
        let tx_time = Duration::transmission(flight.eff, self.cfg.link_mbps);
        let link = &mut self.links[li as usize];
        if link.messages > 0 && link.last_enqueue == t {
            link.demand_now += 1;
        } else {
            link.last_enqueue = t;
            link.demand_now = 1;
        }
        link.peak_demand = link.peak_demand.max(link.demand_now);
        let start = t.max(link.busy.busy_until());
        let end = start + tx_time;
        link.busy.mark_busy(start, end);
        link.bytes += flight.eff;
        link.messages += 1;
        match self.fault.as_mut() {
            Some(f) => end + f.extra_delay(li as usize),
            None => end,
        }
    }

    /// A copy reached its destination endpoint: release it, re-sequencing
    /// ordered traffic into per-destination injection order.
    fn endpoint_arrive(
        &mut self,
        now: Time,
        dst: NodeId,
        msg: MsgRef,
        order: Option<u64>,
        seq: u64,
        out: &mut NetStep<P>,
    ) {
        match order {
            None => {
                let extra = self.traversal_jitter();
                if extra.as_ps() == 0 {
                    out.deliveries.push(Delivery {
                        dst,
                        msg,
                        order: None,
                    });
                } else {
                    out.schedule.push((
                        now + extra,
                        NetEvent::Deliver {
                            dst,
                            msg,
                            order: None,
                        },
                    ));
                }
            }
            Some(o) => {
                let i = dst.index();
                if seq == self.expect_seq[i] {
                    out.deliveries.push(Delivery {
                        dst,
                        msg,
                        order: Some(o),
                    });
                    self.expect_seq[i] += 1;
                    while let Some((m, held_order)) = self.held[i].remove(&self.expect_seq[i]) {
                        out.deliveries.push(Delivery {
                            dst,
                            msg: m,
                            order: Some(held_order),
                        });
                        self.expect_seq[i] += 1;
                    }
                } else if self.fault.is_some() && seq < self.expect_seq[i] {
                    // A rerouted copy raced a surviving original: the
                    // endpoint already released this sequence — dedup.
                    // No arena release: the `(dst, seq)` pair owns one
                    // delivery reference system-wide and the copy that
                    // delivered first already transferred it (this slot
                    // may even be recycled by now).
                } else {
                    debug_assert!(seq > self.expect_seq[i], "sequence delivered twice");
                    self.held[i].insert(seq, (msg, o));
                }
            }
        }
    }

    fn link_id(&self, from: u16, to: u16) -> u32 {
        let v = self.topo.vertices() as usize;
        let li = self.link_index[from as usize * v + to as usize];
        debug_assert_ne!(li, u32::MAX, "route used nonexistent link {from}->{to}");
        li
    }

    /// Bandwidth footprint (same rule as the crossbar: full broadcasts
    /// are inflated by the broadcast cost multiplier).
    fn effective_size(&self, msg: &Message<P>) -> u64 {
        if msg.dests == self.full_mask {
            msg.size as u64 * self.cfg.broadcast_cost_multiplier as u64
        } else {
            msg.size as u64
        }
    }

    fn injection_jitter(&mut self) -> Duration {
        match &self.cfg.jitter {
            Jitter::None => Duration::ZERO,
            Jitter::Uniform { injection_max, .. } => {
                let max = injection_max.as_ps();
                if max == 0 {
                    return Duration::ZERO;
                }
                let rng = self.rng.as_mut().expect("jitter rng");
                Duration::from_ps(rng.below(max + 1))
            }
        }
    }

    fn traversal_jitter(&mut self) -> Duration {
        match &self.cfg.jitter {
            Jitter::None => Duration::ZERO,
            Jitter::Uniform { traversal_max, .. } => {
                let max = traversal_max.as_ps();
                if max == 0 {
                    return Duration::ZERO;
                }
                let rng = self.rng.as_mut().expect("jitter rng");
                Duration::from_ps(rng.below(max + 1))
            }
        }
    }
}

/// The interconnect a [`NetConfig`] selects: the original crossbar
/// (default) or a routed fabric. Both variants share the
/// [`NetStep`]-driven event contract, so drivers can hold this enum and
/// stay topology-agnostic on the hot path.
#[derive(Debug)]
// The fabric (link tables, resequencers, fault plane) dwarfs the
// crossbar, but a driver holds exactly one interconnect — never arrays
// of them — so the size skew costs nothing and boxing would only add a
// pointer chase to the hot path.
#[allow(clippy::large_enum_variant)]
pub enum Interconnect<P> {
    /// The paper's fixed-latency crossbar ([`TopologyKind::Crossbar`]).
    Crossbar(Crossbar<P>),
    /// The hop-by-hop fabric (every other [`TopologyKind`]).
    Fabric(Fabric<P>),
}

impl<P> Interconnect<P> {
    /// Builds the interconnect `cfg.topology` selects.
    pub fn new(cfg: NetConfig) -> Self {
        match cfg.topology {
            TopologyKind::Crossbar => Interconnect::Crossbar(Crossbar::new(cfg)),
            _ => Interconnect::Fabric(Fabric::new(cfg)),
        }
    }

    /// Injects a message (see [`Crossbar::send`] / [`Fabric::send`]).
    /// `arena` is the driver-owned message arena shared by both engines
    /// (the crossbar stores fan-out payloads only when they enter the
    /// core, so its `send` does not touch it).
    pub fn send(
        &mut self,
        now: Time,
        msg: Message<P>,
        arena: &mut MsgArena<P>,
        out: &mut NetStep<P>,
    ) {
        match self {
            Interconnect::Crossbar(c) => c.send(now, msg, out),
            Interconnect::Fabric(f) => f.send(now, msg, arena, out),
        }
    }

    /// Advances an internal event (see [`Crossbar::handle`]).
    pub fn handle(
        &mut self,
        now: Time,
        event: NetEvent<P>,
        arena: &mut MsgArena<P>,
        out: &mut NetStep<P>,
    ) {
        match self {
            Interconnect::Crossbar(c) => c.handle(now, event, arena, out),
            Interconnect::Fabric(f) => f.handle(now, event, arena, out),
        }
    }

    /// The configuration the interconnect was built with.
    pub fn config(&self) -> &NetConfig {
        match self {
            Interconnect::Crossbar(c) => c.config(),
            Interconnect::Fabric(f) => f.config(),
        }
    }

    /// Number of totally ordered messages sequenced so far.
    pub fn orders_assigned(&self) -> u64 {
        match self {
            Interconnect::Crossbar(c) => c.orders_assigned(),
            Interconnect::Fabric(f) => f.orders_assigned(),
        }
    }

    /// Ordering capability (the crossbar orders natively at its core).
    pub fn ordering(&self) -> OrderingMode {
        match self {
            Interconnect::Crossbar(_) => OrderingMode::NativeTotalOrder,
            Interconnect::Fabric(f) => f.ordering(),
        }
    }

    /// The fabric engine, when one is selected.
    pub fn as_fabric(&self) -> Option<&Fabric<P>> {
        match self {
            Interconnect::Crossbar(_) => None,
            Interconnect::Fabric(f) => Some(f),
        }
    }

    /// Cumulative fault-plane counters (fabric with a fault plane only).
    pub fn fault_stats(&self) -> Option<FaultStats> {
        match self {
            Interconnect::Crossbar(_) => None,
            Interconnect::Fabric(f) => f.fault_stats(),
        }
    }

    /// The crossbar engine, when one is selected.
    pub fn as_crossbar(&self) -> Option<&Crossbar<P>> {
        match self {
            Interconnect::Crossbar(c) => Some(c),
            Interconnect::Fabric(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VnetId;
    use bash_kernel::EventQueue;

    /// Drives sends + network to completion; returns deliveries with
    /// times and the arena-resolved payload (fabric twin of the crossbar
    /// test driver). Delivery references are deliberately not released so
    /// [`MsgRef`] identity comparisons stay meaningful after the drive.
    fn drive(
        net: &mut Fabric<&'static str>,
        sends: Vec<(Time, Message<&'static str>)>,
    ) -> Vec<(Time, Delivery, &'static str)> {
        enum Ev {
            Send(Message<&'static str>),
            Net(NetEvent<&'static str>),
        }
        let mut q: EventQueue<Ev> = EventQueue::new();
        for (t, m) in sends {
            q.schedule(t, Ev::Send(m));
        }
        let mut arena = MsgArena::new();
        let mut out = Vec::new();
        let mut step = NetStep::new();
        while let Some((now, ev)) = q.pop() {
            match ev {
                Ev::Send(m) => net.send(now, m, &mut arena, &mut step),
                Ev::Net(ne) => net.handle(now, ne, &mut arena, &mut step),
            }
            for (t, e) in step.schedule.drain(..) {
                q.schedule(t, Ev::Net(e));
            }
            for d in step.deliveries.drain(..) {
                let payload = arena.get(d.msg).payload;
                out.push((now, d, payload));
            }
        }
        out
    }

    fn cfg(kind: TopologyKind, nodes: u16, mbps: u64) -> NetConfig {
        let mut c = NetConfig::new(nodes, mbps);
        c.topology = kind;
        c
    }

    #[test]
    fn star_unicast_matches_the_crossbar_latency_shape() {
        // 8 bytes at 1600 MB/s = 5 ns per link; src→hub (5), +50 at the
        // hub, hub→dst (5): 60 ns, the crossbar's number.
        let mut net = Fabric::new(cfg(TopologyKind::Star, 4, 1600));
        let m = Message::unordered(NodeId(0), NodeId(1), VnetId::DATA, 8, "m");
        let out = drive(&mut net, vec![(Time::ZERO, m)]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, Time::from_ns(60));
        assert_eq!(out[0].1.dst, NodeId(1));
    }

    #[test]
    fn line_latency_counts_every_hop() {
        // 0→3 on a 4-line: three 5 ns links, two 50 ns turnarounds = 115.
        let mut net = Fabric::new(cfg(TopologyKind::Line, 4, 1600));
        let m = Message::unordered(NodeId(0), NodeId(3), VnetId::DATA, 8, "m");
        let out = drive(&mut net, vec![(Time::ZERO, m)]);
        assert_eq!(out[0].0, Time::from_ns(115));
    }

    #[test]
    fn shared_middle_link_serializes() {
        // Two 72B messages (45 ns each) both crossing link 1→2 of a line.
        // First: 45 + 50 + 45 = 140. Second (0→2) reaches vertex 1 at 45,
        // wants 1→2 at 95 but the link is busy 50..95 only — wait, the
        // first (1→2 direct) occupies 1→2 during 0..45; the second's
        // crossing starts at max(95, 45) = 95, ends 140+... so: first
        // delivers at 45+0? Direct 1→2: one link, no turnaround: 45.
        // Second delivers at 45(0→1) + 50 + 45(1→2 from 95) = 140.
        let mut net = Fabric::new(cfg(TopologyKind::Line, 3, 1600));
        let m1 = Message::unordered(NodeId(1), NodeId(2), VnetId::DATA, 72, "a");
        let m2 = Message::unordered(NodeId(0), NodeId(2), VnetId::DATA, 72, "b");
        let out = drive(&mut net, vec![(Time::ZERO, m1), (Time::ZERO, m2)]);
        let times: Vec<u64> = out.iter().map(|(t, _, _)| t.as_ns()).collect();
        assert_eq!(times, vec![45, 140]);
        // Now force genuine contention: both messages need 1→2 at once.
        let mut net = Fabric::new(cfg(TopologyKind::Line, 3, 1600));
        let m1 = Message::unordered(NodeId(0), NodeId(2), VnetId::DATA, 72, "a");
        let m2 = Message::unordered(NodeId(0), NodeId(2), VnetId::DATA, 72, "b");
        let out = drive(&mut net, vec![(Time::ZERO, m1), (Time::ZERO, m2)]);
        let times: Vec<u64> = out.iter().map(|(t, _, _)| t.as_ns()).collect();
        // 0→1 serializes (45, 90); 1→2 crossings run 95..140, 140..185.
        assert_eq!(times, vec![140, 185]);
    }

    #[test]
    fn broadcast_forwards_once_per_tree_edge() {
        // Ring of 4, broadcast from 0: routes 0→1, 0→1→2 (cw tie),
        // 0→3. Links 0→1, 1→2, 0→3 each carry the message exactly once.
        let mut net = Fabric::new(cfg(TopologyKind::Ring, 4, 1600));
        let m = Message::ordered(NodeId(0), NodeSet::all(4), 8, "bcast");
        let out = drive(&mut net, vec![(Time::ZERO, m)]);
        assert_eq!(out.len(), 4);
        let total_msgs: u64 = (0..net.link_count()).map(|i| net.link_messages(i)).sum();
        assert_eq!(total_msgs, 3, "three tree edges, one crossing each");
        let first = out[0].1.msg;
        assert!(out.iter().all(|(_, d, _)| d.msg == first));
        assert!(out.iter().all(|(_, d, _)| d.order == Some(0)));
    }

    #[test]
    fn ordered_delivery_follows_injection_order_on_every_topology() {
        // A huge head-of-line message makes node 0's first link slow, so
        // node 1's later broadcast would physically overtake node 0's on
        // a multi-hop topology; re-sequencing must still deliver
        // injection order everywhere.
        for kind in TopologyKind::ALL_FABRIC {
            let mut net = Fabric::new(cfg(kind, 4, 100));
            let preload = Message::unordered(NodeId(0), NodeId(1), VnetId::DATA, 72, "big");
            let b0 = Message::ordered(NodeId(0), NodeSet::all(4), 8, "from0");
            let b1 = Message::ordered(NodeId(1), NodeSet::all(4), 8, "from1");
            let out = drive(
                &mut net,
                vec![
                    (Time::ZERO, preload),
                    (Time::from_ns(1), b0),
                    (Time::from_ns(2), b1),
                ],
            );
            let mut per_node: std::collections::HashMap<u16, Vec<&str>> = Default::default();
            for (_, d, payload) in &out {
                if d.order.is_some() {
                    per_node.entry(d.dst.0).or_default().push(*payload);
                }
            }
            assert_eq!(per_node.len(), 4, "{kind:?}");
            for v in per_node.values() {
                // Injection order: b0 was sequenced before b1.
                assert_eq!(*v, vec!["from0", "from1"], "{kind:?}");
            }
        }
    }

    #[test]
    fn per_link_stats_account_bytes_and_peak_demand() {
        let mut net = Fabric::new(cfg(TopologyKind::Star, 4, 1600));
        let m1 = Message::unordered(NodeId(0), NodeId(1), VnetId::DATA, 8, "a");
        let m2 = Message::unordered(NodeId(0), NodeId(2), VnetId::DATA, 8, "b");
        drive(&mut net, vec![(Time::ZERO, m1), (Time::ZERO, m2)]);
        // Link 0→hub carried both messages, enqueued at the same instant.
        let up = (0..net.link_count())
            .find(|&i| net.link_endpoints(i) == (0, 4))
            .unwrap();
        assert_eq!(net.link_bytes(up), 16);
        assert_eq!(net.link_messages(up), 2);
        assert_eq!(net.link_peak_demand(up), 2);
        // The hub→1 link carried one message.
        let down = (0..net.link_count())
            .find(|&i| net.link_endpoints(i) == (4, 1))
            .unwrap();
        assert_eq!(net.link_bytes(down), 8);
        assert_eq!(net.link_peak_demand(down), 1);
        assert!(net.link_busy_ps(up, Time::from_ns(200)) > 0);
        assert_eq!(net.incident_links(NodeId(0)).len(), 2);
    }

    #[test]
    fn loopback_copy_crosses_no_link() {
        let mut net = Fabric::new(cfg(TopologyKind::Ring, 2, 800));
        let m = Message::ordered(NodeId(0), NodeSet::all(2), 8, "dual");
        let out = drive(&mut net, vec![(Time::ZERO, m)]);
        assert_eq!(out.len(), 2);
        let self_copy = out.iter().find(|(_, d, _)| d.dst == NodeId(0)).unwrap();
        // One switch turnaround, no link time.
        assert_eq!(self_copy.0, Time::from_ns(50));
        let total_msgs: u64 = (0..net.link_count()).map(|i| net.link_messages(i)).sum();
        assert_eq!(total_msgs, 1, "only the 0→1 copy crossed a link");
    }

    #[test]
    fn broadcast_cost_multiplier_applies_per_link() {
        let mut c = cfg(TopologyKind::Star, 4, 1600);
        c.broadcast_cost_multiplier = 4;
        let mut net = Fabric::new(c);
        let b = Message::ordered(NodeId(0), NodeSet::all(4), 8, "bcast");
        let out = drive(&mut net, vec![(Time::ZERO, b)]);
        // 8B * 4 = 32B → 20 ns per link; 20 + 50 + 20 = 90 ns for the
        // remote copies (loopback at 50 + 20... no: loopback crosses no
        // link, arrives at 0→? loopback = one traversal = 50 ns).
        let remote_times: Vec<u64> = out
            .iter()
            .filter(|(_, d, _)| d.dst != NodeId(0))
            .map(|(t, _, _)| t.as_ns())
            .collect();
        assert!(remote_times.iter().all(|&t| t == 90), "{remote_times:?}");
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let jittered = |seed: u64| {
            let mut c = cfg(TopologyKind::Mesh2D, 4, 1600);
            c.jitter = Jitter::Uniform {
                injection_max: Duration::from_ns(20),
                traversal_max: Duration::from_ns(30),
                seed,
            };
            let mut net = Fabric::new(c);
            let m1 = Message::unordered(NodeId(0), NodeId(3), VnetId::DATA, 8, "a");
            let m2 = Message::unordered(NodeId(2), NodeId(1), VnetId::DATA, 8, "b");
            drive(&mut net, vec![(Time::ZERO, m1), (Time::ZERO, m2)])
                .iter()
                .map(|(t, _, _)| t.as_ps())
                .collect::<Vec<_>>()
        };
        assert_eq!(jittered(9), jittered(9));
        assert_ne!(jittered(9), jittered(10));
    }

    #[test]
    fn lost_crossing_retransmits_until_the_outage_ends() {
        use crate::fault::{FaultPlaneConfig, LinkFaultProfile, TransportConfig};
        // The 0→1 link is down for the first 100 ns; the transport
        // retries with backoff until a crossing completes outside it.
        let mut c = cfg(TopologyKind::Line, 2, 1600);
        c.fault = Some(FaultPlaneConfig {
            seed: 1,
            default_profile: LinkFaultProfile::default(),
            overrides: vec![(
                (0, 1),
                LinkFaultProfile {
                    down: vec![(Time::ZERO, Time::from_ns(100))],
                    ..LinkFaultProfile::default()
                },
            )],
            transport: Some(TransportConfig {
                rto: Duration::from_ns(200),
                backoff_cap: 4,
                retransmit_budget: 8,
            }),
        });
        let mut net = Fabric::new(c);
        let m = Message::unordered(NodeId(0), NodeId(1), VnetId::DATA, 8, "m");
        let out = drive(&mut net, vec![(Time::ZERO, m)]);
        assert_eq!(out.len(), 1, "delivered exactly once");
        // First crossing completes at 5 ns (inside the outage → lost);
        // the retry fires at 205 ns and completes clean at 210 ns.
        assert_eq!(out[0].0, Time::from_ns(210));
        let stats = net.fault_stats().unwrap();
        assert_eq!(stats.down_drops, 1);
        assert_eq!(stats.retransmits, 1);
        assert_eq!(stats.dead_links, 0);
    }

    #[test]
    fn budget_exhaustion_kills_the_link_and_fails_over() {
        use crate::fault::{FaultPlaneConfig, LinkFaultProfile, TransportConfig};
        // 0→1 on a 3-ring is permanently down; once the budget is spent
        // the link is declared dead and the copy re-routes 0→2→1.
        let mut c = cfg(TopologyKind::Ring, 3, 1600);
        c.fault = Some(FaultPlaneConfig {
            seed: 1,
            default_profile: LinkFaultProfile::default(),
            overrides: vec![(
                (0, 1),
                LinkFaultProfile {
                    down: vec![(Time::ZERO, Time::MAX)],
                    ..LinkFaultProfile::default()
                },
            )],
            transport: Some(TransportConfig {
                rto: Duration::from_ns(100),
                backoff_cap: 2,
                retransmit_budget: 2,
            }),
        });
        let mut net = Fabric::new(c);
        let m = Message::unordered(NodeId(0), NodeId(1), VnetId::DATA, 8, "m");
        let out = drive(&mut net, vec![(Time::ZERO, m)]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1.dst, NodeId(1));
        // Lost at 5, retried at 105..110 and lost again (budget spent);
        // failover launches 0→2 at 110 (done 115), +50 turnaround,
        // 2→1 crossing 165..170.
        assert_eq!(out[0].0, Time::from_ns(170));
        let stats = net.fault_stats().unwrap();
        assert_eq!(stats.down_drops, 2);
        assert_eq!(stats.retransmits, 1);
        assert_eq!(stats.dead_links, 1);
        assert_eq!(stats.rerouted, 1);
        assert_eq!(stats.undeliverable, 0);
    }

    #[test]
    fn unreachable_destination_is_counted_undeliverable() {
        use crate::fault::{FaultPlaneConfig, LinkFaultProfile, TransportConfig};
        // On a 2-ring the only route 0→1 is the one dead link: the stuck
        // copy and any later send to 1 are permanently undeliverable.
        let mut c = cfg(TopologyKind::Ring, 2, 1600);
        c.fault = Some(FaultPlaneConfig {
            seed: 1,
            default_profile: LinkFaultProfile::default(),
            overrides: vec![(
                (0, 1),
                LinkFaultProfile {
                    down: vec![(Time::ZERO, Time::MAX)],
                    ..LinkFaultProfile::default()
                },
            )],
            transport: Some(TransportConfig {
                rto: Duration::from_ns(100),
                backoff_cap: 1,
                retransmit_budget: 1,
            }),
        });
        let mut net = Fabric::new(c);
        let m1 = Message::unordered(NodeId(0), NodeId(1), VnetId::DATA, 8, "a");
        let m2 = Message::unordered(NodeId(0), NodeId(1), VnetId::DATA, 8, "b");
        let out = drive(&mut net, vec![(Time::ZERO, m1), (Time::from_ns(1000), m2)]);
        assert!(out.is_empty());
        let stats = net.fault_stats().unwrap();
        assert_eq!(stats.dead_links, 1);
        assert_eq!(stats.rerouted, 0);
        assert_eq!(
            stats.undeliverable, 2,
            "one stuck copy, one refused at injection"
        );
        // The reverse link still works.
        let m3 = Message::unordered(NodeId(1), NodeId(0), VnetId::DATA, 8, "c");
        let out = drive(&mut net, vec![(Time::from_ns(2000), m3)]);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn multicast_under_a_fault_plane_uses_independent_chains() {
        use crate::fault::{FaultPlaneConfig, FaultStats};
        // A benign-but-active plane disables tree sharing so per-copy
        // fates stay independent: the ring-4 broadcast's 0→1 link now
        // carries both the dst-1 and dst-2 copies (4 crossings, not 3).
        let mut c = cfg(TopologyKind::Ring, 4, 1600);
        c.fault = Some(FaultPlaneConfig::lossy(1, 0.0));
        let mut net = Fabric::new(c);
        let m = Message::ordered(NodeId(0), NodeSet::all(4), 8, "bcast");
        let out = drive(&mut net, vec![(Time::ZERO, m)]);
        assert_eq!(out.len(), 4);
        assert!(out.iter().all(|(_, d, _)| d.order == Some(0)));
        let total: u64 = (0..net.link_count()).map(|i| net.link_messages(i)).sum();
        assert_eq!(total, 4, "independent chains: 1 + 2 + 1 crossings");
        assert_eq!(net.fault_stats().unwrap(), FaultStats::default());
    }

    #[test]
    fn lossy_schedules_are_deterministic_per_seed() {
        use crate::fault::FaultPlaneConfig;
        let run = |seed: u64| {
            let mut c = cfg(TopologyKind::Mesh2D, 4, 1600);
            c.fault = Some(FaultPlaneConfig::lossy(seed, 0.2));
            let mut net = Fabric::new(c);
            let sends: Vec<(Time, Message<&'static str>)> = (0..24u64)
                .map(|i| {
                    (
                        Time::from_ns(i * 7),
                        Message::unordered(
                            NodeId((i % 4) as u16),
                            NodeId(((i + 1) % 4) as u16),
                            VnetId::DATA,
                            8,
                            "m",
                        ),
                    )
                })
                .collect();
            let out = drive(&mut net, sends);
            let times: Vec<(u64, u16)> = out.iter().map(|(t, d, _)| (t.as_ps(), d.dst.0)).collect();
            (times, net.fault_stats().unwrap())
        };
        let (a, sa) = run(11);
        assert_eq!(a.len(), 24, "reliable transport delivers everything");
        assert!(sa.retransmits > 0, "a 20% loss rate must cost retries");
        assert_eq!(run(11), (a.clone(), sa));
        assert_ne!(run(12).0, a, "different seed, different schedule");
    }

    #[test]
    fn interconnect_dispatches_on_topology() {
        let xbar: Interconnect<&'static str> = Interconnect::new(NetConfig::new(4, 800));
        assert!(xbar.as_crossbar().is_some());
        assert_eq!(xbar.ordering(), OrderingMode::NativeTotalOrder);
        let fab: Interconnect<&'static str> = Interconnect::new(cfg(TopologyKind::Mesh2D, 4, 800));
        assert!(fab.as_fabric().is_some());
        assert_eq!(fab.ordering(), OrderingMode::Resequenced);
    }

    /// Satellite invariant (proptest): on every fabric topology, under
    /// random jitter and random ordered multicasts, each endpoint
    /// observes ordered messages in strictly increasing global sequence —
    /// the re-sequencer never lets a later injection overtake.
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn prop_ordered_broadcasts_deliver_in_sequence_under_jitter(
                seed in 0u64..1_000_000,
                kind_ix in 0usize..TopologyKind::ALL_FABRIC.len(),
                nodes in 2u16..9,
                sends in proptest::collection::vec((0u16..8, 1u64..96), 1..12),
            ) {
                let kind = TopologyKind::ALL_FABRIC[kind_ix];
                let mut c = NetConfig::new(nodes, 400);
                c.topology = kind;
                c.jitter = Jitter::Uniform {
                    injection_max: Duration::from_ns(40),
                    traversal_max: Duration::from_ns(25),
                    seed,
                };
                let mut net = Fabric::new(c);
                let msgs: Vec<(Time, Message<&'static str>)> = sends
                    .iter()
                    .enumerate()
                    .map(|(i, &(src, at_ns))| {
                        (
                            Time::from_ns(at_ns + i as u64),
                            Message::ordered(
                                NodeId(src % nodes),
                                NodeSet::all(nodes as usize),
                                8,
                                "b",
                            ),
                        )
                    })
                    .collect();
                let expected = msgs.len();
                let out = drive(&mut net, msgs);
                let mut per_node: std::collections::HashMap<u16, Vec<u64>> = Default::default();
                for (_, d, _) in &out {
                    per_node
                        .entry(d.dst.0)
                        .or_default()
                        .push(d.order.expect("ordered"));
                }
                prop_assert_eq!(per_node.len(), nodes as usize);
                for (node, orders) in &per_node {
                    prop_assert_eq!(
                        orders.len(),
                        expected,
                        "node {} missed deliveries", node
                    );
                    let mut sorted = orders.clone();
                    sorted.sort_unstable();
                    prop_assert_eq!(orders, &sorted, "node {} saw out-of-order", node);
                }
            }
        }
    }
}
