//! Interconnect topologies and deterministic per-message routing.
//!
//! The fabric engine ([`crate::fabric::Fabric`]) is topology-agnostic: it
//! asks a [`Topology`] for the directed-link graph and for next-hop
//! decisions, and advances messages hop by hop. This module defines the
//! topology catalog:
//!
//! * [`TopologyKind::Star`] — every endpoint hangs off one central switch
//!   vertex; the crossbar-equivalent fabric (same two-link path per
//!   message, single natural ordering point);
//! * [`TopologyKind::Line`] — endpoints chained `0 – 1 – … – n-1`;
//! * [`TopologyKind::Ring`] — the line closed into a cycle, shortest-way
//!   routing with a clockwise tie-break;
//! * [`TopologyKind::Mesh2D`] — a 2D grid with dimension-order (X then Y)
//!   routing;
//! * [`TopologyKind::Torus`] — the grid with per-dimension wraparound,
//!   shortest-way per dimension with a clockwise tie-break.
//!
//! Routing is **deterministic and memoryless**: the next hop depends only
//! on the current vertex and the destination. For each topology here, the
//! union of the routes from one source to any destination set forms a
//! tree (each vertex is entered over a unique in-link per source), which
//! is what lets the fabric forward one shared copy of a multicast along a
//! branching route instead of sending per-destination clones.
//!
//! Grid shapes are chosen as `cols = ` smallest divisor of `n` that is
//! `≥ ⌈√n⌉`, `rows = n / cols`, whenever that yields a genuine 2D grid
//! (n=16 → 4×4, n=8 → 2×4). Sizes whose only such divisor is `n` itself
//! (primes, and 1/2) would degenerate into a 1×n line, so they get a
//! **holed near-square** instead: `cols = ⌈√n⌉`, `rows = ⌈n/cols⌉`, with
//! the `rows·cols − n` trailing cells of the last row kept as
//! routing-only switch vertices (ids `n..rows·cols`) rather than
//! endpoints — n=7 → 3×3 with two holes, n=17 → 4×5 with three.

use crate::ids::NodeId;

/// Which interconnect model a [`crate::NetConfig`] selects.
///
/// [`TopologyKind::Crossbar`] is the default and selects the original
/// endpoint-link crossbar ([`crate::Crossbar`]); every other kind selects
/// the hop-by-hop [`crate::fabric::Fabric`] engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TopologyKind {
    /// The paper's fixed-latency crossbar (default; not a fabric topology).
    #[default]
    Crossbar,
    /// Endpoints around a single central switch vertex.
    Star,
    /// An open chain of endpoints.
    Line,
    /// A closed cycle of endpoints.
    Ring,
    /// A 2D grid, dimension-order routed.
    Mesh2D,
    /// A 2D grid with per-dimension wraparound.
    Torus,
}

impl TopologyKind {
    /// Display name (stable: used in CSV output and sweep labels).
    pub fn name(self) -> &'static str {
        match self {
            TopologyKind::Crossbar => "crossbar",
            TopologyKind::Star => "star",
            TopologyKind::Line => "line",
            TopologyKind::Ring => "ring",
            TopologyKind::Mesh2D => "mesh2d",
            TopologyKind::Torus => "torus",
        }
    }

    /// Parses a name as produced by [`TopologyKind::name`].
    pub fn parse(s: &str) -> Option<TopologyKind> {
        match s {
            "crossbar" => Some(TopologyKind::Crossbar),
            "star" => Some(TopologyKind::Star),
            "line" => Some(TopologyKind::Line),
            "ring" => Some(TopologyKind::Ring),
            "mesh2d" | "mesh" => Some(TopologyKind::Mesh2D),
            "torus" => Some(TopologyKind::Torus),
            _ => None,
        }
    }

    /// Every kind, crossbar first (sweep order).
    pub const ALL: [TopologyKind; 6] = [
        TopologyKind::Crossbar,
        TopologyKind::Star,
        TopologyKind::Line,
        TopologyKind::Ring,
        TopologyKind::Mesh2D,
        TopologyKind::Torus,
    ];

    /// The fabric topologies (everything except the crossbar).
    pub const ALL_FABRIC: [TopologyKind; 5] = [
        TopologyKind::Star,
        TopologyKind::Line,
        TopologyKind::Ring,
        TopologyKind::Mesh2D,
        TopologyKind::Torus,
    ];

    /// Builds the routing graph for `nodes` endpoints, or `None` for
    /// [`TopologyKind::Crossbar`] (which is not route-based).
    pub fn build(self, nodes: u16) -> Option<Box<dyn Topology>> {
        assert!(nodes > 0, "need at least one node");
        match self {
            TopologyKind::Crossbar => None,
            TopologyKind::Star => Some(Box::new(Star::new(nodes))),
            TopologyKind::Line => Some(Box::new(Path::new(nodes, false))),
            TopologyKind::Ring => Some(Box::new(Path::new(nodes, true))),
            TopologyKind::Mesh2D => Some(Box::new(Grid::new(nodes, false))),
            TopologyKind::Torus => Some(Box::new(Grid::new(nodes, true))),
        }
    }
}

/// How a fabric topology supplies the total-order delivery guarantee the
/// snooping protocols require.
///
/// The fabric *always* delivers [`crate::Ordered::Total`] messages to
/// every endpoint in one global sequence (assigned at injection). This
/// capability reports whether the topology provides that order natively —
/// a single merge vertex every ordered message crosses — or whether the
/// engine must re-sequence at the endpoints (hold back messages that
/// overtook an earlier sequence number on a shorter route).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderingMode {
    /// A single ordering point exists on every route (crossbar, star).
    NativeTotalOrder,
    /// Routes have no common ordering point; endpoints re-sequence.
    Resequenced,
}

impl OrderingMode {
    /// Display name (stable; surfaced in verify reports).
    pub fn name(self) -> &'static str {
        match self {
            OrderingMode::NativeTotalOrder => "native-total-order",
            OrderingMode::Resequenced => "resequenced",
        }
    }
}

/// A routed interconnect graph: endpoints (vertices `0..nodes`), optional
/// switch vertices (`nodes..vertices`), directed links, and a memoryless
/// deterministic next-hop function.
pub trait Topology: std::fmt::Debug {
    /// The kind this graph was built from.
    fn kind(&self) -> TopologyKind;
    /// Number of endpoint nodes (vertices `0..nodes()` are endpoints).
    fn nodes(&self) -> u16;
    /// Total vertex count, endpoints first, then internal switch vertices.
    fn vertices(&self) -> u16;
    /// Every directed link `(from, to)`, in a fixed deterministic order.
    fn links(&self) -> &[(u16, u16)];
    /// The vertex a message at `at` moves to next on its way to `dst`.
    /// Must not be called with `at == dst`.
    fn next_hop(&self, at: u16, dst: NodeId) -> u16;
    /// Ordering capability (see [`OrderingMode`]).
    fn ordering(&self) -> OrderingMode;

    /// The full route from endpoint `from` to endpoint `to` as a chain of
    /// directed links. Empty when `from == to` (loopback never crosses a
    /// link).
    fn route(&self, from: NodeId, to: NodeId) -> Vec<(u16, u16)> {
        let mut hops = Vec::new();
        let mut at = from.0;
        while at != to.0 {
            let next = self.next_hop(at, to);
            hops.push((at, next));
            at = next;
            assert!(
                hops.len() <= self.vertices() as usize,
                "route {}->{} did not converge",
                from.0,
                to.0
            );
        }
        hops
    }
}

/// Star: endpoints `0..n`, hub vertex `n`.
#[derive(Debug)]
struct Star {
    nodes: u16,
    links: Vec<(u16, u16)>,
}

impl Star {
    fn new(nodes: u16) -> Self {
        let hub = nodes;
        let mut links = Vec::with_capacity(2 * nodes as usize);
        for i in 0..nodes {
            links.push((i, hub));
            links.push((hub, i));
        }
        Star { nodes, links }
    }
}

impl Topology for Star {
    fn kind(&self) -> TopologyKind {
        TopologyKind::Star
    }
    fn nodes(&self) -> u16 {
        self.nodes
    }
    fn vertices(&self) -> u16 {
        self.nodes + 1
    }
    fn links(&self) -> &[(u16, u16)] {
        &self.links
    }
    fn next_hop(&self, at: u16, dst: NodeId) -> u16 {
        debug_assert_ne!(at, dst.0);
        if at == self.nodes {
            dst.0
        } else {
            self.nodes
        }
    }
    fn ordering(&self) -> OrderingMode {
        OrderingMode::NativeTotalOrder
    }
}

/// Line (`wrap = false`) or ring (`wrap = true`) of endpoints.
#[derive(Debug)]
struct Path {
    nodes: u16,
    wrap: bool,
    links: Vec<(u16, u16)>,
}

impl Path {
    fn new(nodes: u16, wrap: bool) -> Self {
        let mut links = std::collections::BTreeSet::new();
        for i in 0..nodes {
            if i + 1 < nodes {
                links.insert((i, i + 1));
                links.insert((i + 1, i));
            } else if wrap && nodes > 1 {
                links.insert((i, 0));
                links.insert((0, i));
            }
        }
        Path {
            nodes,
            wrap,
            links: links.into_iter().collect(),
        }
    }
}

impl Topology for Path {
    fn kind(&self) -> TopologyKind {
        if self.wrap {
            TopologyKind::Ring
        } else {
            TopologyKind::Line
        }
    }
    fn nodes(&self) -> u16 {
        self.nodes
    }
    fn vertices(&self) -> u16 {
        self.nodes
    }
    fn links(&self) -> &[(u16, u16)] {
        &self.links
    }
    fn next_hop(&self, at: u16, dst: NodeId) -> u16 {
        debug_assert_ne!(at, dst.0);
        if !self.wrap {
            return if dst.0 > at { at + 1 } else { at - 1 };
        }
        let n = self.nodes;
        // Shortest way around the ring; ties go clockwise (+1).
        let cw = (dst.0 + n - at) % n;
        if cw <= n - cw {
            (at + 1) % n
        } else {
            (at + n - 1) % n
        }
    }
    fn ordering(&self) -> OrderingMode {
        OrderingMode::Resequenced
    }
}

/// 2D grid (`wrap = false`: mesh, `true`: torus), vertex `r * cols + c`,
/// dimension-order (X then Y) routing. Cells `0..nodes` are endpoints;
/// when [`grid_dims`] picked a holed near-square (prime `nodes`), cells
/// `nodes..rows*cols` — the tail of the last row — exist as routing-only
/// switch vertices: links and next-hop decisions treat them like any
/// other cell, but no message originates or terminates there.
#[derive(Debug)]
struct Grid {
    nodes: u16,
    rows: u16,
    cols: u16,
    wrap: bool,
    links: Vec<(u16, u16)>,
}

/// `cols` = smallest divisor of `n` that is `≥ ⌈√n⌉`, `rows = n / cols`,
/// when that keeps `rows ≥ 2` (a genuine 2D grid, exact, no holes). When
/// the only such divisor is `n` itself — primes, and the trivial sizes 1
/// and 2 — the exact factorization would collapse the grid into a 1×n
/// line, so fall back to a **holed near-square**: `cols = ⌈√n⌉`,
/// `rows = ⌈n / cols⌉`, with `rows · cols ≥ n` and the excess cells
/// becoming switch-only vertices (never endpoints; see [`Grid`]).
fn grid_dims(n: u16) -> (u16, u16) {
    let mut cols = 1u16;
    while cols * cols < n {
        cols += 1;
    }
    // cols is now ⌈√n⌉; look for the smallest divisor at or above it.
    let mut exact = cols;
    while !n.is_multiple_of(exact) {
        exact += 1;
    }
    if n / exact >= 2 || n <= 2 {
        (n / exact, exact)
    } else {
        (n.div_ceil(cols), cols)
    }
}

impl Grid {
    fn new(nodes: u16, wrap: bool) -> Self {
        let (rows, cols) = grid_dims(nodes);
        let mut links = std::collections::BTreeSet::new();
        let vid = |r: u16, c: u16| r * cols + c;
        for r in 0..rows {
            for c in 0..cols {
                let mut neighbors = Vec::new();
                if c + 1 < cols {
                    neighbors.push(vid(r, c + 1));
                } else if wrap && cols > 1 {
                    neighbors.push(vid(r, 0));
                }
                if c > 0 {
                    neighbors.push(vid(r, c - 1));
                } else if wrap && cols > 1 {
                    neighbors.push(vid(r, cols - 1));
                }
                if r + 1 < rows {
                    neighbors.push(vid(r + 1, c));
                } else if wrap && rows > 1 {
                    neighbors.push(vid(0, c));
                }
                if r > 0 {
                    neighbors.push(vid(r - 1, c));
                } else if wrap && rows > 1 {
                    neighbors.push(vid(rows - 1, c));
                }
                for nb in neighbors {
                    links.insert((vid(r, c), nb));
                }
            }
        }
        Grid {
            nodes,
            rows,
            cols,
            wrap,
            links: links.into_iter().collect(),
        }
    }
}

impl Topology for Grid {
    fn kind(&self) -> TopologyKind {
        if self.wrap {
            TopologyKind::Torus
        } else {
            TopologyKind::Mesh2D
        }
    }
    fn nodes(&self) -> u16 {
        self.nodes
    }
    fn vertices(&self) -> u16 {
        self.rows * self.cols
    }
    fn links(&self) -> &[(u16, u16)] {
        &self.links
    }
    fn next_hop(&self, at: u16, dst: NodeId) -> u16 {
        debug_assert_ne!(at, dst.0);
        let (rows, cols) = (self.rows, self.cols);
        let (r, c) = (at / cols, at % cols);
        let (rd, cd) = (dst.0 / cols, dst.0 % cols);
        if c != cd {
            if !self.wrap {
                return if cd > c { at + 1 } else { at - 1 };
            }
            // Shortest way around the row cycle; ties go clockwise (+1).
            let cw = (cd + cols - c) % cols;
            if cw <= cols - cw {
                r * cols + (c + 1) % cols
            } else {
                r * cols + (c + cols - 1) % cols
            }
        } else {
            if !self.wrap {
                return if rd > r { at + cols } else { at - cols };
            }
            let cw = (rd + rows - r) % rows;
            if cw <= rows - cw {
                ((r + 1) % rows) * cols + c
            } else {
                ((r + rows - 1) % rows) * cols + c
            }
        }
    }
    fn ordering(&self) -> OrderingMode {
        OrderingMode::Resequenced
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_pairs(kind: TopologyKind, nodes: u16) -> Box<dyn Topology> {
        kind.build(nodes).expect("fabric topology")
    }

    #[test]
    fn grid_dims_are_near_square() {
        assert_eq!(grid_dims(1), (1, 1));
        assert_eq!(grid_dims(2), (1, 2));
        assert_eq!(grid_dims(4), (2, 2));
        assert_eq!(grid_dims(8), (2, 4));
        assert_eq!(grid_dims(16), (4, 4));
        assert_eq!(grid_dims(12), (3, 4));
        for n in 1..=64u16 {
            let (r, c) = grid_dims(n);
            // Never degenerate: at least two rows from n = 3 up, and the
            // grid covers every endpoint (exactly for composites, with
            // bounded holes otherwise).
            assert!(r * c >= n, "grid_dims({n}) = ({r}, {c}) too small");
            assert!(r * c - n < c, "grid_dims({n}) = ({r}, {c}) wastes a row");
            assert!(r <= c);
            assert!(n <= 2 || r >= 2, "grid_dims({n}) degenerated to a line");
        }
    }

    /// Satellite regression: prime node counts must build a holed
    /// near-square — not silently degenerate Mesh2D/Torus into a 1×n
    /// line — and the holes must be switch vertices, never endpoints.
    #[test]
    fn prime_grids_are_near_square_with_switch_holes() {
        assert_eq!(grid_dims(7), (3, 3)); // 2 holes
        assert_eq!(grid_dims(13), (4, 4)); // 3 holes
        assert_eq!(grid_dims(17), (4, 5)); // 3 holes
        for n in [7u16, 13, 17] {
            for kind in [TopologyKind::Mesh2D, TopologyKind::Torus] {
                let t = all_pairs(kind, n);
                let (rows, cols) = grid_dims(n);
                assert_eq!(t.nodes(), n);
                assert_eq!(t.vertices(), rows * cols, "{kind:?}/{n}");
                // Every endpoint pair routes over declared links, possibly
                // through hole vertices — which must stay interior.
                let valid: std::collections::BTreeSet<(u16, u16)> =
                    t.links().iter().copied().collect();
                for s in 0..n {
                    for d in 0..n {
                        let route = t.route(NodeId(s), NodeId(d));
                        for &hop in &route {
                            assert!(valid.contains(&hop), "{kind:?}/{n}: {hop:?}");
                        }
                        if s != d {
                            assert_eq!(route.first().unwrap().0, s);
                            assert_eq!(route.last().unwrap().1, d);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn star_routes_pass_through_the_hub() {
        let t = all_pairs(TopologyKind::Star, 4);
        assert_eq!(t.vertices(), 5);
        assert_eq!(t.links().len(), 8);
        assert_eq!(t.route(NodeId(0), NodeId(3)), vec![(0, 4), (4, 3)]);
        assert_eq!(t.route(NodeId(2), NodeId(2)), vec![]);
        assert_eq!(t.ordering(), OrderingMode::NativeTotalOrder);
    }

    #[test]
    fn ring_prefers_the_short_way_with_clockwise_ties() {
        let t = all_pairs(TopologyKind::Ring, 6);
        // 0→2 clockwise (2 hops), 0→5 counter-clockwise (1 hop).
        assert_eq!(t.route(NodeId(0), NodeId(2)), vec![(0, 1), (1, 2)]);
        assert_eq!(t.route(NodeId(0), NodeId(5)), vec![(0, 5)]);
        // Tie at distance 3: clockwise wins.
        assert_eq!(t.route(NodeId(0), NodeId(3)), vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn mesh_routes_x_then_y() {
        // 4×4 grid: 1 = (0,1), 14 = (3,2).
        let t = all_pairs(TopologyKind::Mesh2D, 16);
        assert_eq!(
            t.route(NodeId(1), NodeId(14)),
            vec![(1, 2), (2, 6), (6, 10), (10, 14)]
        );
        assert_eq!(t.ordering(), OrderingMode::Resequenced);
    }

    #[test]
    fn torus_wraps_both_dimensions() {
        // 4×4: 0 = (0,0), 15 = (3,3): one wrap step left, one wrap step up.
        let t = all_pairs(TopologyKind::Torus, 16);
        assert_eq!(t.route(NodeId(0), NodeId(15)), vec![(0, 3), (3, 15)]);
    }

    #[test]
    fn degenerate_small_topologies_are_consistent() {
        for kind in TopologyKind::ALL_FABRIC {
            for n in [1u16, 2, 3] {
                let t = all_pairs(kind, n);
                assert_eq!(t.nodes(), n);
                // No duplicate links.
                let mut seen = std::collections::BTreeSet::new();
                for &l in t.links() {
                    assert_ne!(l.0, l.1, "{kind:?}/{n}: self-loop link");
                    assert!(seen.insert(l), "{kind:?}/{n}: duplicate link {l:?}");
                }
                for s in 0..n {
                    for d in 0..n {
                        let route = t.route(NodeId(s), NodeId(d));
                        if s == d {
                            assert!(route.is_empty());
                        } else {
                            assert_eq!(route.first().unwrap().0, s);
                            assert_eq!(route.last().unwrap().1, d);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn names_round_trip() {
        for kind in TopologyKind::ALL {
            assert_eq!(TopologyKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(TopologyKind::parse("mesh"), Some(TopologyKind::Mesh2D));
        assert_eq!(TopologyKind::parse("hypercube"), None);
        assert_eq!(TopologyKind::default(), TopologyKind::Crossbar);
    }

    /// Satellite invariant (proptest): every route from every topology is
    /// a connected chain of valid directed links that starts at the
    /// source, ends at the destination, and visits no vertex twice.
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn prop_routes_are_connected_chains_of_valid_links(
                kind_ix in 0usize..TopologyKind::ALL_FABRIC.len(),
                nodes in 1u16..33,
                src in 0u16..33,
                dst in 0u16..33,
            ) {
                let kind = TopologyKind::ALL_FABRIC[kind_ix];
                let (src, dst) = (src % nodes, dst % nodes);
                let t = kind.build(nodes).expect("fabric topology");
                let valid: std::collections::BTreeSet<(u16, u16)> =
                    t.links().iter().copied().collect();
                let route = t.route(NodeId(src), NodeId(dst));
                if src == dst {
                    prop_assert!(route.is_empty());
                } else {
                    prop_assert_eq!(route.first().unwrap().0, src);
                    prop_assert_eq!(route.last().unwrap().1, dst);
                    let mut visited = std::collections::BTreeSet::new();
                    visited.insert(src);
                    let mut at = src;
                    for &(from, to) in &route {
                        // Connected: each hop leaves where the last arrived.
                        prop_assert_eq!(from, at);
                        // Valid: the hop is a declared directed link.
                        prop_assert!(valid.contains(&(from, to)),
                            "{:?}/{}: {}->{} is not a link", kind, nodes, from, to);
                        // Loop-free.
                        prop_assert!(visited.insert(to),
                            "{:?}/{}: vertex {} visited twice", kind, nodes, to);
                        at = to;
                    }
                    prop_assert!(route.len() <= t.vertices() as usize);
                }
            }
        }
    }

    #[test]
    fn multicast_union_is_a_tree() {
        // For every topology and source, the union of routes to all
        // destinations must enter each vertex over at most one in-link —
        // the property the fabric's shared-copy multicast forwarding
        // relies on.
        for kind in TopologyKind::ALL_FABRIC {
            for n in [2u16, 4, 5, 6, 7, 8, 9, 12, 13, 16, 17] {
                let t = all_pairs(kind, n);
                for s in 0..n {
                    let mut in_link: std::collections::BTreeMap<u16, (u16, u16)> =
                        Default::default();
                    for d in 0..n {
                        for hop in t.route(NodeId(s), NodeId(d)) {
                            let prev = in_link.insert(hop.1, hop);
                            assert!(
                                prev.is_none() || prev == Some(hop),
                                "{kind:?}/{n}: vertex {} entered via {:?} and {:?} from {s}",
                                hop.1,
                                prev.unwrap(),
                                hop
                            );
                        }
                    }
                }
            }
        }
    }
}
