//! Node identifiers and destination sets.
//!
//! [`NodeSet`] is scale-adaptive: the common near-empty sets (sharer
//! lists, dualcast masks) live inline, contiguous masks (full
//! broadcasts, hierarchy cluster-casts) are carried as lazy spans that
//! never materialize per-node bits, and only genuinely scattered large
//! sets spill to heap-allocated bitset words sized by their largest
//! member. This is what lifts the node cap from the old fixed
//! `[u64; 4]` bitset's 256 to [`MAX_NODES`] without making every
//! message carry a 4096-bit mask.

use std::fmt;

/// Maximum number of nodes a [`NodeSet`] can represent.
pub const MAX_NODES: usize = 4096;

/// Number of inline ids the small representation holds before spilling.
const SMALL_CAP: usize = 10;

/// Bitset words needed to cover [`MAX_NODES`] ids.
const WORDS_MAX: usize = MAX_NODES / 64;

/// Identifies one integrated processor/memory node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u16);

impl NodeId {
    /// The numeric index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// A half-open id range `[start, end)`. `(0, 0)` marks an unused slot.
type Span = (u16, u16);

/// The adaptive storage behind [`NodeSet`].
///
/// Invariants:
/// * `Small`: `ids[..len]` sorted strictly ascending.
/// * `Spans`: `spans[0]` non-empty when the set is non-empty; `spans[1]`
///   either `(0, 0)` (unused) or non-empty with `spans[1].0 >
///   spans[0].1` (disjoint, non-adjacent, ascending) — so equal sets
///   have structurally equal span arrays.
/// * `Big`: bit `i` of `words[i / 64]` set iff node `i` is a member;
///   trailing all-zero words are permitted (ops use a zero-extended
///   word view).
#[derive(Clone)]
enum Repr {
    Small { len: u8, ids: [u16; SMALL_CAP] },
    Spans { spans: [Span; 2] },
    Big { words: Box<[u64]> },
}

/// A set of nodes, used as multicast destination mask and directory sharer
/// set. Supports ids `0..`[`MAX_NODES`].
///
/// The representation adapts to the set's shape (see the module docs):
/// comparisons, hashing and all set algebra are **semantic** — two sets
/// with the same members are equal regardless of how they are stored.
/// Iteration is always in increasing id order.
///
/// # Example
///
/// ```
/// use bash_net::{NodeId, NodeSet};
///
/// let mut mask = NodeSet::EMPTY;
/// mask.insert(NodeId(3));
/// mask.insert(NodeId(7));
/// assert!(mask.contains(NodeId(3)));
/// assert_eq!(mask.len(), 2);
/// assert!(NodeSet::all(8).is_superset(&mask));
/// ```
#[derive(Clone)]
pub struct NodeSet {
    repr: Repr,
}

impl NodeSet {
    /// The empty set.
    pub const EMPTY: NodeSet = NodeSet {
        repr: Repr::Small {
            len: 0,
            ids: [0; SMALL_CAP],
        },
    };

    /// The set `{0, 1, .., n-1}` — a full broadcast mask for an `n`-node
    /// system. Stored as one lazy span regardless of `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n > MAX_NODES`.
    pub fn all(n: usize) -> NodeSet {
        assert!(n <= MAX_NODES, "at most {MAX_NODES} nodes supported");
        NodeSet::range(0, n as u16)
    }

    /// The contiguous set `{start, .., end-1}` (half-open; empty when
    /// `end <= start`). Stored as one lazy span — this is how hierarchy
    /// cluster masks avoid materializing per-node bits.
    ///
    /// # Panics
    ///
    /// Panics if `end > MAX_NODES`.
    pub fn range(start: u16, end: u16) -> NodeSet {
        assert!(
            (end as usize) <= MAX_NODES,
            "at most {MAX_NODES} nodes supported"
        );
        if end <= start {
            return NodeSet::EMPTY;
        }
        NodeSet {
            repr: Repr::Spans {
                spans: [(start, end), (0, 0)],
            },
        }
    }

    /// A set containing only `node`.
    pub fn singleton(node: NodeId) -> NodeSet {
        let mut s = NodeSet::EMPTY;
        s.insert(node);
        s
    }

    /// Builds a set from an iterator of nodes.
    pub fn from_nodes<I: IntoIterator<Item = NodeId>>(nodes: I) -> NodeSet {
        let mut s = NodeSet::EMPTY;
        for n in nodes {
            s.insert(n);
        }
        s
    }

    fn check_id(node: NodeId) {
        assert!(
            node.index() < MAX_NODES,
            "node id {} out of range",
            node.index()
        );
    }

    /// Adds `node`; returns true if it was newly inserted.
    pub fn insert(&mut self, node: NodeId) -> bool {
        Self::check_id(node);
        let id = node.0;
        // Spill decisions hand a replacement representation out of the
        // match so no `&mut self.repr` borrow is live when it lands.
        let mut spill: Option<Repr> = None;
        let inserted = match &mut self.repr {
            Repr::Small { len, ids } => {
                let n = *len as usize;
                match ids[..n].binary_search(&id) {
                    Ok(_) => false,
                    Err(pos) => {
                        if n < SMALL_CAP {
                            ids.copy_within(pos..n, pos + 1);
                            ids[pos] = id;
                            *len += 1;
                        } else {
                            let top = ids[n - 1].max(id);
                            let mut words = vec![0u64; words_for(top)].into_boxed_slice();
                            for &x in ids.iter() {
                                set_bit(&mut words, x);
                            }
                            set_bit(&mut words, id);
                            spill = Some(Repr::Big { words });
                        }
                        true
                    }
                }
            }
            Repr::Spans { spans } => {
                if spans_contain(spans, id) {
                    false
                } else if try_span_insert(spans, id) {
                    true
                } else {
                    // No slot fits: demote to Small when everything fits
                    // inline, otherwise spill to heap words.
                    let total = span_len(spans) + 1;
                    if total <= SMALL_CAP {
                        let mut ids = [0u16; SMALL_CAP];
                        let mut n = 0;
                        for (s, e) in active_spans(spans) {
                            for i in s..e {
                                ids[n] = i;
                                n += 1;
                            }
                        }
                        ids[n] = id;
                        n += 1;
                        ids[..n].sort_unstable();
                        spill = Some(Repr::Small { len: n as u8, ids });
                    } else {
                        let top = spans_max_id(spans).max(id);
                        let mut words = vec![0u64; words_for(top)].into_boxed_slice();
                        for (s, e) in active_spans(spans) {
                            for i in s..e {
                                set_bit(&mut words, i);
                            }
                        }
                        set_bit(&mut words, id);
                        spill = Some(Repr::Big { words });
                    }
                    true
                }
            }
            Repr::Big { words } => {
                let wi = id as usize / 64;
                if wi >= words.len() {
                    let mut grown = vec![0u64; wi + 1];
                    grown[..words.len()].copy_from_slice(words);
                    *words = grown.into_boxed_slice();
                }
                let bit = 1u64 << (id % 64);
                let was = words[wi] & bit != 0;
                words[wi] |= bit;
                !was
            }
        };
        if let Some(repr) = spill {
            self.repr = repr;
        }
        inserted
    }

    /// Removes `node`; returns true if it was present.
    pub fn remove(&mut self, node: NodeId) -> bool {
        Self::check_id(node);
        let id = node.0;
        match &mut self.repr {
            Repr::Small { len, ids } => {
                let n = *len as usize;
                match ids[..n].binary_search(&id) {
                    Err(_) => false,
                    Ok(pos) => {
                        ids.copy_within(pos + 1..n, pos);
                        *len -= 1;
                        true
                    }
                }
            }
            Repr::Spans { spans } => {
                if !spans_contain(spans, id) {
                    return false;
                }
                if try_span_remove(spans, id) {
                    if spans[0].0 >= spans[0].1 {
                        // First span emptied: promote the second.
                        spans[0] = spans[1];
                        spans[1] = (0, 0);
                        if spans[0].0 >= spans[0].1 {
                            self.repr = NodeSet::EMPTY.repr;
                        }
                    }
                    return true;
                }
                // Interior split with both slots busy: fall off spans.
                let spans = *spans;
                let total = span_len(&spans) - 1;
                if total <= SMALL_CAP {
                    let mut ids = [0u16; SMALL_CAP];
                    let mut n = 0;
                    for (s, e) in active_spans(&spans) {
                        for i in s..e {
                            if i != id {
                                ids[n] = i;
                                n += 1;
                            }
                        }
                    }
                    self.repr = Repr::Small { len: n as u8, ids };
                } else {
                    let top = spans_max_id(&spans);
                    let mut words = vec![0u64; words_for(top)].into_boxed_slice();
                    for (s, e) in active_spans(&spans) {
                        for i in s..e {
                            set_bit(&mut words, i);
                        }
                    }
                    clear_bit(&mut words, id);
                    self.repr = Repr::Big { words };
                }
                true
            }
            Repr::Big { words } => {
                let wi = id as usize / 64;
                if wi >= words.len() {
                    return false;
                }
                let bit = 1u64 << (id % 64);
                let was = words[wi] & bit != 0;
                words[wi] &= !bit;
                was
            }
        }
    }

    /// True if `node` is in the set.
    pub fn contains(&self, node: NodeId) -> bool {
        let id = node.0;
        match &self.repr {
            Repr::Small { len, ids } => ids[..*len as usize].binary_search(&id).is_ok(),
            Repr::Spans { spans } => spans_contain(spans, id),
            Repr::Big { words } => {
                let wi = id as usize / 64;
                wi < words.len() && words[wi] & (1u64 << (id % 64)) != 0
            }
        }
    }

    /// Number of nodes in the set.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Small { len, .. } => *len as usize,
            Repr::Spans { spans } => span_len(spans),
            Repr::Big { words } => words.iter().map(|w| w.count_ones() as usize).sum(),
        }
    }

    /// True when no node is in the set.
    pub fn is_empty(&self) -> bool {
        match &self.repr {
            Repr::Small { len, .. } => *len == 0,
            Repr::Spans { spans } => spans[0].0 >= spans[0].1 && spans[1].0 >= spans[1].1,
            Repr::Big { words } => words.iter().all(|&w| w == 0),
        }
    }

    /// Set union.
    pub fn union(&self, other: &NodeSet) -> NodeSet {
        if self.is_empty() {
            return other.clone();
        }
        if other.is_empty() {
            return self.clone();
        }
        match (&self.repr, &other.repr) {
            (Repr::Small { len: la, ids: a }, Repr::Small { len: lb, ids: b }) => {
                small_union(&a[..*la as usize], &b[..*lb as usize])
            }
            (Repr::Spans { spans }, Repr::Small { len, ids })
            | (Repr::Small { len, ids }, Repr::Spans { spans }) => {
                let mut out = NodeSet {
                    repr: Repr::Spans { spans: *spans },
                };
                for &id in &ids[..*len as usize] {
                    out.insert(NodeId(id));
                }
                out
            }
            (Repr::Spans { spans: a }, Repr::Spans { spans: b }) => spans_union(a, b),
            _ => {
                // At least one side is Big: word-wise or.
                let hint = self.max_id().max(other.max_id());
                let mut words = vec![0u64; words_for(hint)].into_boxed_slice();
                for (wi, w) in words.iter_mut().enumerate() {
                    *w = self.word_at(wi) | other.word_at(wi);
                }
                NodeSet {
                    repr: Repr::Big { words },
                }
            }
        }
    }

    /// Set difference (`self - other`).
    pub fn difference(&self, other: &NodeSet) -> NodeSet {
        if self.is_empty() || other.is_empty() {
            return self.clone();
        }
        match &self.repr {
            Repr::Small { len, ids } => {
                let mut out = [0u16; SMALL_CAP];
                let mut n = 0;
                for &id in &ids[..*len as usize] {
                    if !other.contains(NodeId(id)) {
                        out[n] = id;
                        n += 1;
                    }
                }
                NodeSet {
                    repr: Repr::Small {
                        len: n as u8,
                        ids: out,
                    },
                }
            }
            Repr::Spans { spans } => {
                if let Repr::Small { len, ids } = &other.repr {
                    let mut out = NodeSet {
                        repr: Repr::Spans { spans: *spans },
                    };
                    for &id in &ids[..*len as usize] {
                        out.remove(NodeId(id));
                    }
                    return out;
                }
                self.word_difference(other)
            }
            Repr::Big { .. } => self.word_difference(other),
        }
    }

    fn word_difference(&self, other: &NodeSet) -> NodeSet {
        let hint = self.max_id();
        let mut words = vec![0u64; words_for(hint)].into_boxed_slice();
        for (wi, w) in words.iter_mut().enumerate() {
            *w = self.word_at(wi) & !other.word_at(wi);
        }
        NodeSet {
            repr: Repr::Big { words },
        }
    }

    /// True if every node of `other` is also in `self`.
    pub fn is_superset(&self, other: &NodeSet) -> bool {
        match &other.repr {
            Repr::Small { len, ids } => ids[..*len as usize]
                .iter()
                .all(|&id| self.contains(NodeId(id))),
            Repr::Spans { spans } => match &self.repr {
                Repr::Spans { spans: mine } => active_spans(spans)
                    .all(|(s, e)| active_spans(mine).any(|(ms, me)| ms <= s && e <= me)),
                _ => {
                    let top = other.max_id();
                    (0..words_for(top)).all(|wi| {
                        let b = other.word_at(wi);
                        self.word_at(wi) & b == b
                    })
                }
            },
            Repr::Big { words } => words
                .iter()
                .enumerate()
                .all(|(wi, &b)| self.word_at(wi) & b == b),
        }
    }

    /// Removes all nodes.
    pub fn clear(&mut self) {
        *self = NodeSet::EMPTY;
    }

    /// Iterates the members in increasing id order.
    pub fn iter(&self) -> NodeSetIter<'_> {
        NodeSetIter {
            inner: match &self.repr {
                Repr::Small { len, ids } => IterRepr::Small {
                    ids: &ids[..*len as usize],
                    i: 0,
                },
                Repr::Spans { spans } => IterRepr::Spans {
                    spans: *spans,
                    si: 0,
                    cur: spans[0].0,
                },
                Repr::Big { words } => IterRepr::Big {
                    words,
                    wi: 0,
                    bits: words.first().copied().unwrap_or(0),
                },
            },
        }
    }

    /// Largest member id, or 0 when empty (sizing hint for word ops).
    fn max_id(&self) -> u16 {
        match &self.repr {
            Repr::Small { len, ids } => {
                if *len == 0 {
                    0
                } else {
                    ids[*len as usize - 1]
                }
            }
            Repr::Spans { spans } => {
                let (s1, e1) = spans[1];
                if s1 < e1 {
                    e1 - 1
                } else if spans[0].0 < spans[0].1 {
                    spans[0].1 - 1
                } else {
                    0
                }
            }
            Repr::Big { words } => {
                for (wi, &w) in words.iter().enumerate().rev() {
                    if w != 0 {
                        return (wi * 64) as u16 + (63 - w.leading_zeros() as u16);
                    }
                }
                0
            }
        }
    }

    /// Bitset word `wi` of this set's zero-extended word view, whatever
    /// the representation.
    fn word_at(&self, wi: usize) -> u64 {
        match &self.repr {
            Repr::Small { len, ids } => {
                let lo = (wi * 64) as u16;
                let mut w = 0u64;
                for &id in &ids[..*len as usize] {
                    if id >= lo && (id as usize) < (wi + 1) * 64 {
                        w |= 1u64 << (id % 64);
                    }
                }
                w
            }
            Repr::Spans { spans } => {
                let mut w = 0u64;
                let lo = wi * 64;
                let hi = lo + 64;
                for (s, e) in active_spans(spans) {
                    let s = (s as usize).max(lo);
                    let e = (e as usize).min(hi);
                    if s < e {
                        // Bits [s-lo, e-lo) of this word.
                        let width = e - s;
                        let mask = if width == 64 {
                            !0u64
                        } else {
                            ((1u64 << width) - 1) << (s - lo)
                        };
                        w |= mask;
                    }
                }
                w
            }
            Repr::Big { words } => words.get(wi).copied().unwrap_or(0),
        }
    }
}

/// Words needed to hold bit `max_id`.
fn words_for(max_id: u16) -> usize {
    max_id as usize / 64 + 1
}

fn set_bit(words: &mut [u64], id: u16) {
    words[id as usize / 64] |= 1u64 << (id % 64);
}

fn clear_bit(words: &mut [u64], id: u16) {
    words[id as usize / 64] &= !(1u64 << (id % 64));
}

/// The non-empty spans of a slot array, in ascending order.
fn active_spans(spans: &[Span; 2]) -> impl Iterator<Item = Span> + '_ {
    spans.iter().copied().filter(|(s, e)| s < e)
}

fn spans_contain(spans: &[Span; 2], id: u16) -> bool {
    active_spans(spans).any(|(s, e)| s <= id && id < e)
}

fn span_len(spans: &[Span; 2]) -> usize {
    active_spans(spans).map(|(s, e)| (e - s) as usize).sum()
}

/// Largest member of a non-empty span array.
fn spans_max_id(spans: &[Span; 2]) -> u16 {
    active_spans(spans).map(|(_, e)| e - 1).max().unwrap_or(0)
}

/// Tries to add `id` (known absent) by extending a span edge or using a
/// free slot, preserving the sorted / disjoint / non-adjacent invariant.
/// Returns false when neither fits.
fn try_span_insert(spans: &mut [Span; 2], id: u16) -> bool {
    for i in 0..2 {
        let (s, e) = spans[i];
        if s >= e {
            continue;
        }
        if id + 1 == s {
            spans[i].0 = id;
            merge_adjacent(spans);
            return true;
        }
        if id == e {
            spans[i].1 = id + 1;
            merge_adjacent(spans);
            return true;
        }
    }
    // A free slot (only one active span, or fully empty).
    if spans[1].0 >= spans[1].1 {
        if spans[0].0 >= spans[0].1 {
            spans[0] = (id, id + 1);
        } else if id < spans[0].0 {
            spans[1] = spans[0];
            spans[0] = (id, id + 1);
        } else {
            spans[1] = (id, id + 1);
        }
        return true;
    }
    false
}

/// Re-merges the two slots if an edge extension made them adjacent.
fn merge_adjacent(spans: &mut [Span; 2]) {
    let (s0, e0) = spans[0];
    let (s1, e1) = spans[1];
    if s0 < e0 && s1 < e1 && e0 >= s1 {
        spans[0] = (s0, e1);
        spans[1] = (0, 0);
    }
}

/// Tries to remove `id` (known present) by shrinking a span edge or
/// splitting into the free slot. Returns false when a split is needed
/// but both slots are busy. May leave `spans[0]` empty for the caller
/// to normalize.
fn try_span_remove(spans: &mut [Span; 2], id: u16) -> bool {
    for i in 0..2 {
        let (s, e) = spans[i];
        if !(s < e && s <= id && id < e) {
            continue;
        }
        if id == s {
            spans[i].0 = s + 1;
            if spans[i].0 >= spans[i].1 && i == 1 {
                spans[1] = (0, 0);
            }
            return true;
        }
        if id + 1 == e {
            spans[i].1 = e - 1;
            if spans[i].0 >= spans[i].1 && i == 1 {
                spans[1] = (0, 0);
            }
            return true;
        }
        // Interior: split needs the other slot free. By the invariant a
        // free slot can only be slot 1 (so `i == 0` here), and the split
        // halves land in ascending order.
        if spans[1 - i].0 >= spans[1 - i].1 {
            spans[0] = (s, id);
            spans[1] = (id + 1, e);
            return true;
        }
        return false;
    }
    false
}

/// Union of two sorted inline id lists.
fn small_union(a: &[u16], b: &[u16]) -> NodeSet {
    let mut buf = [0u16; 2 * SMALL_CAP];
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() || j < b.len() {
        let next = match (a.get(i), b.get(j)) {
            (Some(&x), Some(&y)) if x == y => {
                i += 1;
                j += 1;
                x
            }
            (Some(&x), Some(&y)) if x < y => {
                i += 1;
                x
            }
            (Some(_), Some(&y)) => {
                j += 1;
                y
            }
            (Some(&x), None) => {
                i += 1;
                x
            }
            (None, Some(&y)) => {
                j += 1;
                y
            }
            (None, None) => unreachable!(),
        };
        buf[n] = next;
        n += 1;
    }
    if n <= SMALL_CAP {
        let mut ids = [0u16; SMALL_CAP];
        ids[..n].copy_from_slice(&buf[..n]);
        NodeSet {
            repr: Repr::Small { len: n as u8, ids },
        }
    } else {
        let top = buf[n - 1];
        let mut words = vec![0u64; words_for(top)].into_boxed_slice();
        for &id in &buf[..n] {
            set_bit(&mut words, id);
        }
        NodeSet {
            repr: Repr::Big { words },
        }
    }
}

/// Union of two span arrays: stays spans when the merged cover fits two
/// slots, otherwise falls back to words.
fn spans_union(a: &[Span; 2], b: &[Span; 2]) -> NodeSet {
    let mut merged: [Span; 4] = [(0, 0); 4];
    let mut n = 0;
    for sp in active_spans(a).chain(active_spans(b)) {
        merged[n] = sp;
        n += 1;
    }
    merged[..n].sort_unstable();
    // Coalesce overlapping / adjacent spans in place.
    let mut out: [Span; 4] = [(0, 0); 4];
    let mut m = 0;
    for &(s, e) in &merged[..n] {
        if m > 0 && s <= out[m - 1].1 {
            out[m - 1].1 = out[m - 1].1.max(e);
        } else {
            out[m] = (s, e);
            m += 1;
        }
    }
    if m <= 2 {
        NodeSet {
            repr: Repr::Spans {
                spans: [out[0], out[1]],
            },
        }
    } else {
        let top = out[m - 1].1 - 1;
        let mut words = vec![0u64; words_for(top)].into_boxed_slice();
        for &(s, e) in &out[..m] {
            for id in s..e {
                set_bit(&mut words, id);
            }
        }
        NodeSet {
            repr: Repr::Big { words },
        }
    }
}

impl Default for NodeSet {
    fn default() -> Self {
        NodeSet::EMPTY
    }
}

impl PartialEq for NodeSet {
    fn eq(&self, other: &Self) -> bool {
        match (&self.repr, &other.repr) {
            (Repr::Small { len: la, ids: a }, Repr::Small { len: lb, ids: b }) => {
                la == lb && a[..*la as usize] == b[..*lb as usize]
            }
            // Normalized span arrays are canonical for span-shaped sets.
            (Repr::Spans { spans: a }, Repr::Spans { spans: b }) => a == b,
            _ => self.len() == other.len() && self.iter().eq(other.iter()),
        }
    }
}

impl Eq for NodeSet {}

impl std::hash::Hash for NodeSet {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Members in ascending order: representation-independent.
        for n in self.iter() {
            n.0.hash(state);
        }
    }
}

impl FromIterator<NodeId> for NodeSet {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        NodeSet::from_nodes(iter)
    }
}

impl fmt::Debug for NodeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl fmt::Display for NodeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, n) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{n}")?;
        }
        write!(f, "}}")
    }
}

/// Ascending-order member iterator over a [`NodeSet`].
pub struct NodeSetIter<'a> {
    inner: IterRepr<'a>,
}

enum IterRepr<'a> {
    Small {
        ids: &'a [u16],
        i: usize,
    },
    Spans {
        spans: [Span; 2],
        si: usize,
        cur: u16,
    },
    Big {
        words: &'a [u64],
        wi: usize,
        bits: u64,
    },
}

impl Iterator for NodeSetIter<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        match &mut self.inner {
            IterRepr::Small { ids, i } => {
                let id = *ids.get(*i)?;
                *i += 1;
                Some(NodeId(id))
            }
            IterRepr::Spans { spans, si, cur } => loop {
                if *si >= 2 {
                    return None;
                }
                let (s, e) = spans[*si];
                if s >= e || *cur >= e {
                    *si += 1;
                    if *si < 2 {
                        *cur = spans[*si].0;
                    }
                    continue;
                }
                if *cur < s {
                    *cur = s;
                }
                let id = *cur;
                *cur += 1;
                return Some(NodeId(id));
            },
            IterRepr::Big { words, wi, bits } => loop {
                if *bits != 0 {
                    let b = bits.trailing_zeros();
                    *bits &= *bits - 1;
                    return Some(NodeId((*wi * 64) as u16 + b as u16));
                }
                *wi += 1;
                if *wi >= words.len() {
                    return None;
                }
                *bits = words[*wi];
            },
        }
    }
}

/// Plain fixed-size bitset covering [`MAX_NODES`] ids — the old
/// `NodeSet` representation, kept as the reference/baseline for the
/// equivalence proptests and the `smallset_vs_bitset` bench ratio. Not
/// part of the public API surface.
#[doc(hidden)]
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct ReferenceBitSet {
    words: [u64; WORDS_MAX],
}

#[doc(hidden)]
impl ReferenceBitSet {
    /// The empty reference set.
    pub const EMPTY: ReferenceBitSet = ReferenceBitSet {
        words: [0; WORDS_MAX],
    };

    /// Adds `node`; returns true if newly inserted.
    pub fn insert(&mut self, node: NodeId) -> bool {
        let (w, b) = (node.index() / 64, 1u64 << (node.index() % 64));
        let was = self.words[w] & b != 0;
        self.words[w] |= b;
        !was
    }

    /// Removes `node`; returns true if it was present.
    pub fn remove(&mut self, node: NodeId) -> bool {
        let (w, b) = (node.index() / 64, 1u64 << (node.index() % 64));
        let was = self.words[w] & b != 0;
        self.words[w] &= !b;
        was
    }

    /// True if `node` is a member.
    pub fn contains(&self, node: NodeId) -> bool {
        self.words[node.index() / 64] & (1u64 << (node.index() % 64)) != 0
    }

    /// Member count.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Set union.
    pub fn union(&self, other: &ReferenceBitSet) -> ReferenceBitSet {
        let mut out = *self;
        for (a, b) in out.words.iter_mut().zip(other.words.iter()) {
            *a |= b;
        }
        out
    }

    /// Set difference (`self - other`).
    pub fn difference(&self, other: &ReferenceBitSet) -> ReferenceBitSet {
        let mut out = *self;
        for (a, b) in out.words.iter_mut().zip(other.words.iter()) {
            *a &= !b;
        }
        out
    }

    /// True if every member of `other` is in `self`.
    pub fn is_superset(&self, other: &ReferenceBitSet) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(a, b)| a & b == *b)
    }

    /// Ascending-order member iterator.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros();
                    bits &= bits - 1;
                    Some(NodeId((wi * 64) as u16 + b as u16))
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = NodeSet::EMPTY;
        assert!(s.insert(NodeId(5)));
        assert!(!s.insert(NodeId(5)));
        assert!(s.contains(NodeId(5)));
        assert!(!s.contains(NodeId(6)));
        assert!(s.remove(NodeId(5)));
        assert!(!s.remove(NodeId(5)));
        assert!(s.is_empty());
    }

    #[test]
    fn all_and_len() {
        let s = NodeSet::all(64);
        assert_eq!(s.len(), 64);
        assert!(s.contains(NodeId(63)));
        assert!(!s.contains(NodeId(64)));
        let big = NodeSet::all(200);
        assert_eq!(big.len(), 200);
        assert!(big.contains(NodeId(199)));
        let huge = NodeSet::all(4096);
        assert_eq!(huge.len(), 4096);
        assert!(huge.contains(NodeId(4095)));
    }

    #[test]
    fn union_difference_superset() {
        let a = NodeSet::from_nodes([NodeId(1), NodeId(2)]);
        let b = NodeSet::from_nodes([NodeId(2), NodeId(3)]);
        assert_eq!(a.union(&b).len(), 3);
        assert_eq!(a.difference(&b), NodeSet::singleton(NodeId(1)));
        assert!(a.union(&b).is_superset(&a));
        assert!(!a.is_superset(&b));
        assert!(a.is_superset(&NodeSet::EMPTY));
    }

    #[test]
    fn iter_in_order_across_words() {
        let s = NodeSet::from_nodes([NodeId(130), NodeId(3), NodeId(64)]);
        let v: Vec<u16> = s.iter().map(|n| n.0).collect();
        assert_eq!(v, vec![3, 64, 130]);
    }

    #[test]
    fn display_formats() {
        let s = NodeSet::from_nodes([NodeId(1), NodeId(9)]);
        assert_eq!(s.to_string(), "{P1,P9}");
        assert_eq!(NodeSet::EMPTY.to_string(), "{}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let mut s = NodeSet::EMPTY;
        s.insert(NodeId(5000));
    }

    #[test]
    fn representations_compare_semantically() {
        // The same four-member set built three ways: spans, inline ids,
        // and spilled words.
        let spans = NodeSet::all(4);
        let small = NodeSet::from_nodes((0..4).map(NodeId));
        let mut big = NodeSet::from_nodes((0..2000).map(NodeId));
        for i in 4..2000 {
            big.remove(NodeId(i));
        }
        assert_eq!(spans, small);
        assert_eq!(small, big);
        assert_eq!(spans, big);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |s: &NodeSet| {
            let mut h = DefaultHasher::new();
            s.hash(&mut h);
            h.finish()
        };
        assert_eq!(h(&spans), h(&small));
        assert_eq!(h(&small), h(&big));
    }

    #[test]
    fn cluster_cast_stays_spans() {
        // A hierarchy cluster-cast — cluster range plus a remote home
        // bank — must stay allocation-free spans at any scale.
        let cluster = NodeSet::range(1024, 1088);
        let cast = cluster.union(&NodeSet::singleton(NodeId(0)));
        assert_eq!(cast.len(), 65);
        assert!(cast.contains(NodeId(0)));
        assert!(cast.contains(NodeId(1087)));
        assert!(!cast.contains(NodeId(1)));
        assert!(matches!(cast.repr, Repr::Spans { .. }));
        // Expanding back over the cluster is a span-covered superset.
        assert!(cast.is_superset(&cluster));
        assert!(NodeSet::all(4096).is_superset(&cast));
    }

    #[test]
    fn span_edges_insert_and_remove() {
        let mut s = NodeSet::range(10, 14);
        assert!(s.insert(NodeId(9)));
        assert!(s.insert(NodeId(14)));
        assert_eq!(s.len(), 6);
        assert!(matches!(s.repr, Repr::Spans { .. }));
        // Removing an interior id splits into the free slot.
        assert!(s.remove(NodeId(11)));
        assert_eq!(s.len(), 5);
        let v: Vec<u16> = s.iter().map(|n| n.0).collect();
        assert_eq!(v, vec![9, 10, 12, 13, 14]);
        // Filling the gap re-merges into one span.
        assert!(s.insert(NodeId(11)));
        assert!(matches!(
            s.repr,
            Repr::Spans {
                spans: [(9, 15), (0, 0)]
            }
        ));
    }

    #[test]
    fn small_spills_to_words_and_back_ops_stay_correct() {
        let mut s = NodeSet::EMPTY;
        for i in 0..(SMALL_CAP as u16 + 3) {
            assert!(s.insert(NodeId(i * 100)));
        }
        assert!(matches!(s.repr, Repr::Big { .. }));
        assert_eq!(s.len(), SMALL_CAP + 3);
        assert!(s.contains(NodeId(1200)));
        assert!(!s.contains(NodeId(1201)));
        let d = s.difference(&NodeSet::singleton(NodeId(0)));
        assert_eq!(d.len(), SMALL_CAP + 2);
        assert!(s.is_superset(&d));
    }

    fn reference(ids: &[u16]) -> ReferenceBitSet {
        let mut r = ReferenceBitSet::EMPTY;
        for &i in ids {
            r.insert(NodeId(i));
        }
        r
    }

    proptest! {
        /// The equivalence suite the scale overhaul is pinned by: the
        /// adaptive set must agree with the fixed reference bitset on
        /// every operation, across the full 1..4096 id range (which
        /// drives it through all three representations and the spill /
        /// demote transitions).
        #[test]
        fn prop_matches_reference_bitset(
            a in proptest::collection::vec(0u16..4096, 0..80),
            b in proptest::collection::vec(0u16..4096, 0..80),
            removals in proptest::collection::vec(0u16..4096, 0..40),
        ) {
            let mut s = NodeSet::from_nodes(a.iter().map(|&i| NodeId(i)));
            let mut r = reference(&a);
            for &i in &removals {
                prop_assert_eq!(s.remove(NodeId(i)), r.remove(NodeId(i)));
            }
            let sb = NodeSet::from_nodes(b.iter().map(|&i| NodeId(i)));
            let rb = reference(&b);

            prop_assert_eq!(s.len(), r.len());
            prop_assert_eq!(s.is_empty(), r.is_empty());
            for &i in a.iter().chain(b.iter()) {
                prop_assert_eq!(s.contains(NodeId(i)), r.contains(NodeId(i)));
            }
            let ids = |s: &NodeSet| s.iter().map(|n| n.0).collect::<Vec<_>>();
            let rids = |r: &ReferenceBitSet| r.iter().map(|n| n.0).collect::<Vec<_>>();
            prop_assert_eq!(ids(&s), rids(&r));
            prop_assert_eq!(ids(&s.union(&sb)), rids(&r.union(&rb)));
            prop_assert_eq!(ids(&s.difference(&sb)), rids(&r.difference(&rb)));
            prop_assert_eq!(s.is_superset(&sb), r.is_superset(&rb));
            prop_assert_eq!(s.union(&sb).is_superset(&s), true);
        }

        /// Spans (ranges, full masks) agree with the reference too, and
        /// semantic equality holds across construction orders.
        #[test]
        fn prop_span_sets_match_reference(
            start in 0u16..4000,
            width in 0u16..200,
            extra in proptest::collection::vec(0u16..4096, 0..12),
        ) {
            let end = (start + width).min(4096);
            let mut s = NodeSet::range(start, end);
            let mut r = reference(&(start..end).collect::<Vec<_>>());
            for &i in &extra {
                prop_assert_eq!(s.insert(NodeId(i)), r.insert(NodeId(i)));
            }
            prop_assert_eq!(s.len(), r.len());
            let got: Vec<u16> = s.iter().map(|n| n.0).collect();
            let want: Vec<u16> = r.iter().map(|n| n.0).collect();
            prop_assert_eq!(got, want);
            // Rebuilding member-by-member lands in a possibly different
            // representation but must compare equal and hash equal.
            let rebuilt = NodeSet::from_nodes(s.iter());
            prop_assert_eq!(&rebuilt, &s);
        }

        #[test]
        fn prop_set_semantics(ids in proptest::collection::vec(0u16..4096, 0..64)) {
            use std::collections::BTreeSet;
            let s = NodeSet::from_nodes(ids.iter().map(|&i| NodeId(i)));
            let reference: BTreeSet<u16> = ids.iter().copied().collect();
            prop_assert_eq!(s.len(), reference.len());
            let collected: Vec<u16> = s.iter().map(|n| n.0).collect();
            let expect: Vec<u16> = reference.iter().copied().collect();
            prop_assert_eq!(collected, expect);
        }

        #[test]
        fn prop_superset_iff_union_identity(
            a in proptest::collection::vec(0u16..128, 0..32),
            b in proptest::collection::vec(0u16..128, 0..32),
        ) {
            let sa = NodeSet::from_nodes(a.iter().map(|&i| NodeId(i)));
            let sb = NodeSet::from_nodes(b.iter().map(|&i| NodeId(i)));
            prop_assert_eq!(sa.is_superset(&sb), sa.union(&sb) == sa);
        }
    }
}
