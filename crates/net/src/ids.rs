//! Node identifiers and destination sets.

use std::fmt;

/// Maximum number of nodes a [`NodeSet`] can represent.
pub const MAX_NODES: usize = 256;

/// Identifies one integrated processor/memory node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u16);

impl NodeId {
    /// The numeric index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// A set of nodes, used as multicast destination mask and directory sharer
/// set. Fixed-size bitset supporting up to [`MAX_NODES`] nodes.
///
/// # Example
///
/// ```
/// use bash_net::{NodeId, NodeSet};
///
/// let mut mask = NodeSet::EMPTY;
/// mask.insert(NodeId(3));
/// mask.insert(NodeId(7));
/// assert!(mask.contains(NodeId(3)));
/// assert_eq!(mask.len(), 2);
/// assert!(NodeSet::all(8).is_superset(&mask));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct NodeSet {
    words: [u64; MAX_NODES / 64],
}

impl NodeSet {
    /// The empty set.
    pub const EMPTY: NodeSet = NodeSet {
        words: [0; MAX_NODES / 64],
    };

    /// The set `{0, 1, .., n-1}` — a full broadcast mask for an `n`-node
    /// system.
    ///
    /// # Panics
    ///
    /// Panics if `n > MAX_NODES`.
    pub fn all(n: usize) -> NodeSet {
        assert!(n <= MAX_NODES, "at most {MAX_NODES} nodes supported");
        let mut s = NodeSet::EMPTY;
        for i in 0..n {
            s.insert(NodeId(i as u16));
        }
        s
    }

    /// A set containing only `node`.
    pub fn singleton(node: NodeId) -> NodeSet {
        let mut s = NodeSet::EMPTY;
        s.insert(node);
        s
    }

    /// Builds a set from an iterator of nodes.
    pub fn from_nodes<I: IntoIterator<Item = NodeId>>(nodes: I) -> NodeSet {
        let mut s = NodeSet::EMPTY;
        for n in nodes {
            s.insert(n);
        }
        s
    }

    /// Adds `node`; returns true if it was newly inserted.
    pub fn insert(&mut self, node: NodeId) -> bool {
        let (w, b) = Self::locate(node);
        let was = self.words[w] & b != 0;
        self.words[w] |= b;
        !was
    }

    /// Removes `node`; returns true if it was present.
    pub fn remove(&mut self, node: NodeId) -> bool {
        let (w, b) = Self::locate(node);
        let was = self.words[w] & b != 0;
        self.words[w] &= !b;
        was
    }

    /// True if `node` is in the set.
    pub fn contains(&self, node: NodeId) -> bool {
        let (w, b) = Self::locate(node);
        self.words[w] & b != 0
    }

    /// Number of nodes in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no node is in the set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Set union.
    pub fn union(&self, other: &NodeSet) -> NodeSet {
        let mut out = *self;
        for (a, b) in out.words.iter_mut().zip(other.words.iter()) {
            *a |= b;
        }
        out
    }

    /// Set difference (`self - other`).
    pub fn difference(&self, other: &NodeSet) -> NodeSet {
        let mut out = *self;
        for (a, b) in out.words.iter_mut().zip(other.words.iter()) {
            *a &= !b;
        }
        out
    }

    /// True if every node of `other` is also in `self`.
    pub fn is_superset(&self, other: &NodeSet) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(a, b)| a & b == *b)
    }

    /// Removes all nodes.
    pub fn clear(&mut self) {
        self.words = [0; MAX_NODES / 64];
    }

    /// Iterates the members in increasing id order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros();
                    bits &= bits - 1;
                    Some(NodeId((wi * 64) as u16 + b as u16))
                }
            })
        })
    }

    fn locate(node: NodeId) -> (usize, u64) {
        let i = node.index();
        assert!(i < MAX_NODES, "node id {i} out of range");
        (i / 64, 1u64 << (i % 64))
    }
}

impl FromIterator<NodeId> for NodeSet {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        NodeSet::from_nodes(iter)
    }
}

impl fmt::Debug for NodeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl fmt::Display for NodeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, n) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{n}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = NodeSet::EMPTY;
        assert!(s.insert(NodeId(5)));
        assert!(!s.insert(NodeId(5)));
        assert!(s.contains(NodeId(5)));
        assert!(!s.contains(NodeId(6)));
        assert!(s.remove(NodeId(5)));
        assert!(!s.remove(NodeId(5)));
        assert!(s.is_empty());
    }

    #[test]
    fn all_and_len() {
        let s = NodeSet::all(64);
        assert_eq!(s.len(), 64);
        assert!(s.contains(NodeId(63)));
        assert!(!s.contains(NodeId(64)));
        let big = NodeSet::all(200);
        assert_eq!(big.len(), 200);
        assert!(big.contains(NodeId(199)));
    }

    #[test]
    fn union_difference_superset() {
        let a = NodeSet::from_nodes([NodeId(1), NodeId(2)]);
        let b = NodeSet::from_nodes([NodeId(2), NodeId(3)]);
        assert_eq!(a.union(&b).len(), 3);
        assert_eq!(a.difference(&b), NodeSet::singleton(NodeId(1)));
        assert!(a.union(&b).is_superset(&a));
        assert!(!a.is_superset(&b));
        assert!(a.is_superset(&NodeSet::EMPTY));
    }

    #[test]
    fn iter_in_order_across_words() {
        let s = NodeSet::from_nodes([NodeId(130), NodeId(3), NodeId(64)]);
        let v: Vec<u16> = s.iter().map(|n| n.0).collect();
        assert_eq!(v, vec![3, 64, 130]);
    }

    #[test]
    fn display_formats() {
        let s = NodeSet::from_nodes([NodeId(1), NodeId(9)]);
        assert_eq!(s.to_string(), "{P1,P9}");
        assert_eq!(NodeSet::EMPTY.to_string(), "{}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let mut s = NodeSet::EMPTY;
        s.insert(NodeId(300));
    }

    proptest! {
        #[test]
        fn prop_set_semantics(ids in proptest::collection::vec(0u16..256, 0..64)) {
            use std::collections::BTreeSet;
            let s = NodeSet::from_nodes(ids.iter().map(|&i| NodeId(i)));
            let reference: BTreeSet<u16> = ids.iter().copied().collect();
            prop_assert_eq!(s.len(), reference.len());
            let collected: Vec<u16> = s.iter().map(|n| n.0).collect();
            let expect: Vec<u16> = reference.iter().copied().collect();
            prop_assert_eq!(collected, expect);
        }

        #[test]
        fn prop_superset_iff_union_identity(
            a in proptest::collection::vec(0u16..128, 0..32),
            b in proptest::collection::vec(0u16..128, 0..32),
        ) {
            let sa = NodeSet::from_nodes(a.iter().map(|&i| NodeId(i)));
            let sb = NodeSet::from_nodes(b.iter().map(|&i| NodeId(i)));
            prop_assert_eq!(sa.is_superset(&sb), sa.union(&sb) == sa);
        }
    }
}
