//! Simulated time.
//!
//! [`Time`] is an absolute instant, [`Duration`] a span; both are u64
//! **picoseconds**. The paper quotes latencies in nanoseconds and the
//! adaptive mechanism in cycles; we fix 1 cycle = 1 ns (a ~1 GHz coherence
//! controller clock), so helpers exist for ns, cycles and picoseconds.
//!
//! Picosecond resolution exists so that message transmission times at
//! arbitrary bandwidths (e.g. 8 bytes at 6400 MB/s = 1.25 ns) stay exact
//! integers and the simulation remains deterministic.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// Picoseconds per nanosecond.
pub const PS_PER_NS: u64 = 1_000;

/// An absolute instant in simulated time (picoseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

/// A span of simulated time (picoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(u64);

impl Time {
    /// The start of simulation.
    pub const ZERO: Time = Time(0);
    /// The largest representable instant (used as "never").
    pub const MAX: Time = Time(u64::MAX);

    /// Constructs a `Time` from raw picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        Time(ps)
    }

    /// Constructs a `Time` from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        Time(ns * PS_PER_NS)
    }

    /// Raw picoseconds since simulation start.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Whole nanoseconds since simulation start (truncating).
    pub const fn as_ns(self) -> u64 {
        self.0 / PS_PER_NS
    }

    /// Seconds since simulation start, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-12
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is later than `self`.
    pub fn since(self, earlier: Time) -> Duration {
        debug_assert!(earlier.0 <= self.0, "time went backwards");
        Duration(self.0 - earlier.0)
    }

    /// Saturating difference; returns [`Duration::ZERO`] if `earlier > self`.
    pub fn saturating_since(self, earlier: Time) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    /// The empty span.
    pub const ZERO: Duration = Duration(0);

    /// Constructs a `Duration` from raw picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        Duration(ps)
    }

    /// Constructs a `Duration` from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        Duration(ns * PS_PER_NS)
    }

    /// Constructs a `Duration` from controller cycles (1 cycle = 1 ns).
    pub const fn from_cycles(cycles: u64) -> Self {
        Duration(cycles * PS_PER_NS)
    }

    /// Raw picoseconds.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Whole nanoseconds (truncating).
    pub const fn as_ns(self) -> u64 {
        self.0 / PS_PER_NS
    }

    /// Controller cycles (1 cycle = 1 ns, truncating).
    pub const fn as_cycles(self) -> u64 {
        self.0 / PS_PER_NS
    }

    /// Seconds as a float (for rate computations in reports).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-12
    }

    /// True when the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The transmission time of `bytes` over a link of `mbps` megabytes per
    /// second, rounded up to the next picosecond.
    ///
    /// 1 MB/s = 10^6 bytes / 10^12 ps, so `time_ps = bytes * 10^6 / mbps`.
    ///
    /// # Panics
    ///
    /// Panics if `mbps` is zero.
    pub fn transmission(bytes: u64, mbps: u64) -> Duration {
        assert!(mbps > 0, "link bandwidth must be positive");
        let num = bytes as u128 * 1_000_000u128;
        Duration(num.div_ceil(mbps as u128) as u64)
    }

    /// Multiplies the span by an integer factor (saturating).
    pub const fn saturating_mul(self, factor: u64) -> Duration {
        Duration(self.0.saturating_mul(factor))
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    fn add(self, rhs: Duration) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Time {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Duration> for Time {
    type Output = Time;
    fn sub(self, rhs: Duration) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 -= rhs.0;
    }
}

impl std::iter::Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        iter.fold(Duration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0 as f64 / PS_PER_NS as f64)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0 as f64 / PS_PER_NS as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_roundtrip() {
        let t = Time::from_ns(180);
        assert_eq!(t.as_ns(), 180);
        assert_eq!(t.as_ps(), 180_000);
    }

    #[test]
    fn arithmetic() {
        let t = Time::from_ns(100) + Duration::from_ns(25);
        assert_eq!(t.as_ns(), 125);
        assert_eq!(t.since(Time::from_ns(100)), Duration::from_ns(25));
    }

    #[test]
    fn saturating_since_clamps() {
        let early = Time::from_ns(10);
        let late = Time::from_ns(20);
        assert_eq!(early.saturating_since(late), Duration::ZERO);
        assert_eq!(late.saturating_since(early), Duration::from_ns(10));
    }

    #[test]
    fn transmission_times_match_paper_examples() {
        // 8-byte request at 1600 MB/s = 5 ns.
        assert_eq!(Duration::transmission(8, 1600), Duration::from_ns(5));
        // 72-byte data at 1600 MB/s = 45 ns.
        assert_eq!(Duration::transmission(72, 1600), Duration::from_ns(45));
        // 8 bytes at 6400 MB/s = 1.25 ns = 1250 ps.
        assert_eq!(Duration::transmission(8, 6400), Duration::from_ps(1250));
    }

    #[test]
    fn transmission_rounds_up() {
        // 7 bytes at 3 MB/s = 2_333_333.33.. ps, rounds to 2_333_334.
        assert_eq!(Duration::transmission(7, 3), Duration::from_ps(2_333_334));
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn transmission_zero_bandwidth_panics() {
        let _ = Duration::transmission(8, 0);
    }

    #[test]
    fn cycles_are_nanoseconds() {
        assert_eq!(Duration::from_cycles(512), Duration::from_ns(512));
        assert_eq!(Duration::from_ns(512).as_cycles(), 512);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Time::from_ns(5).to_string(), "5ns");
        assert_eq!(Duration::from_ps(1250).to_string(), "1.25ns");
    }

    #[test]
    fn duration_sum() {
        let total: Duration = [1u64, 2, 3].iter().map(|&n| Duration::from_ns(n)).sum();
        assert_eq!(total, Duration::from_ns(6));
    }
}
