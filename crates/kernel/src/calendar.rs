//! A bucketed calendar (time-wheel) event queue.
//!
//! The classic binary-heap queue pays `O(log n)` per operation with a
//! cache-hostile access pattern; at fleet-scale node counts the heap is
//! thousands of entries deep and every pop touches a dozen cache lines.
//! A calendar queue instead hashes each event by timestamp into a wheel
//! of buckets, each `width` picoseconds wide. Near-future events land in
//! the wheel; far-future timers (retransmission RTOs, sampling ticks)
//! land in a sorted overflow level and are promoted in bulk when the
//! cursor reaches them. Scheduling is `O(1)` amortised, and popping
//! drains one bucket at a time: the bucket is sorted once on entry by
//! `(time, seq)` and then consumed from the back, so same-timestamp
//! events pop in exactly the FIFO order the heap would produce.
//!
//! Invariants:
//!
//! * Every wheel event's *virtual bucket* (`time / width`) lies in
//!   `[cursor, cursor + nbuckets)` — at most one wheel rotation ahead —
//!   so a physical bucket only ever holds events of a single virtual
//!   bucket and no wrap-around collisions exist.
//! * All wheel events pop strictly before any overflow event: an
//!   overflow event's virtual bucket is `>= cursor + nbuckets`, hence
//!   its time is `>=` the end of the wheel window, which strictly
//!   upper-bounds every wheel event's time. Promotion therefore never
//!   reorders.
//! * An occupancy bitmap (one bit per bucket) lets the cursor skip
//!   empty buckets 64 at a time, so a sparse wheel stays cheap.
//!
//! This module is the raw engine; [`crate::EventQueue`] wraps it (and
//! the heap) behind one facade that owns the FIFO sequence numbers, so
//! the two implementations are interchangeable pop-for-pop.

use std::collections::BTreeMap;

use crate::time::{Duration, Time};

/// Geometry of a calendar queue: how many buckets the wheel has and how
/// many picoseconds of simulated time each bucket spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CalendarConfig {
    /// Number of wheel buckets; rounded up to a power of two, minimum 2.
    pub buckets: usize,
    /// Width of one bucket in picoseconds; minimum 1.
    pub width_ps: u64,
}

impl CalendarConfig {
    /// A general-purpose default: a 1024-bucket wheel, 64 ps per bucket
    /// (a ~65 ns window, on the order of one message traversal).
    pub const DEFAULT: CalendarConfig = CalendarConfig {
        buckets: 1024,
        width_ps: 64,
    };

    /// Smallest legal bucket width. Every derivation and normalization
    /// clamps to this, so a zero-latency / zero-horizon configuration
    /// (zero traversal, instantaneous links) can never produce a
    /// zero-width wheel — `width_ps` is a divisor in the bucket-count
    /// derivation and in virtual-bucket hashing.
    pub const MIN_WIDTH_PS: u64 = 1;

    /// Sizes a wheel for an expected steady-state population of
    /// `expected_live` events spread over a `mean_horizon` scheduling
    /// distance (how far ahead of *now* a typical event lands).
    ///
    /// The bucket width targets roughly one live event per bucket —
    /// `mean_horizon / expected_live` — and the wheel spans about four
    /// mean horizons so bursts stay out of the overflow level. Events
    /// beyond the window (e.g. multi-microsecond retransmission timers)
    /// go to the sorted overflow and are promoted in bulk; that is the
    /// designed-for slow path, not a failure mode.
    pub fn sized_for(expected_live: usize, mean_horizon: Duration) -> CalendarConfig {
        let live = expected_live.max(1) as u64;
        // A degenerate config (zero traversal latency, effectively
        // infinite bandwidth, or an empty system) legally yields a zero
        // horizon or zero live estimate; clamp the horizon and the
        // derived width to MIN_WIDTH_PS so the bucket-count division
        // below cannot divide by zero.
        let horizon = mean_horizon.as_ps().max(Self::MIN_WIDTH_PS);
        let width_ps = (horizon / live).max(Self::MIN_WIDTH_PS);
        // Span ~4 horizons, bounded so a mis-estimate cannot allocate an
        // absurd wheel: 64..=65536 buckets.
        let wanted = (horizon.saturating_mul(4) / width_ps).max(1);
        let buckets = usize::try_from(wanted)
            .unwrap_or(usize::MAX)
            .next_power_of_two()
            .clamp(64, 1 << 16);
        CalendarConfig { buckets, width_ps }
    }

    fn normalized(self) -> (usize, u64) {
        (
            self.buckets.next_power_of_two().max(2),
            self.width_ps.max(Self::MIN_WIDTH_PS),
        )
    }
}

impl Default for CalendarConfig {
    fn default() -> Self {
        Self::DEFAULT
    }
}

/// One scheduled entry: `(time, seq)` is the total pop order.
#[derive(Debug)]
struct Slot<E> {
    time: Time,
    seq: u64,
    event: E,
}

impl<E> Slot<E> {
    #[inline]
    fn key(&self) -> (Time, u64) {
        (self.time, self.seq)
    }
}

/// The calendar queue proper. Sequence numbers are assigned by the
/// caller (the [`crate::EventQueue`] facade) so that heap and calendar
/// share one FIFO numbering.
#[derive(Debug)]
pub(crate) struct CalendarQueue<E> {
    buckets: Vec<Vec<Slot<E>>>,
    /// Occupancy bitmap: bit `i` set iff physical bucket `i` is nonempty.
    occupied: Vec<u64>,
    mask: usize,
    width: u64,
    /// Virtual bucket index of the cursor. All wheel events have
    /// `vb(time)` in `[cur_vb, cur_vb + nbuckets)`.
    cur_vb: u64,
    /// Whether the cursor's bucket is sorted (descending, drained from
    /// the back so pops come out ascending in `(time, seq)`).
    cur_sorted: bool,
    /// Far-future events, beyond the wheel window, in pop order.
    overflow: BTreeMap<(Time, u64), E>,
    len: usize,
}

impl<E> CalendarQueue<E> {
    pub(crate) fn new(config: CalendarConfig) -> Self {
        let (nbuckets, width) = config.normalized();
        CalendarQueue {
            buckets: (0..nbuckets).map(|_| Vec::new()).collect(),
            occupied: vec![0u64; nbuckets.div_ceil(64)],
            mask: nbuckets - 1,
            width,
            cur_vb: 0,
            cur_sorted: false,
            overflow: BTreeMap::new(),
            len: 0,
        }
    }

    #[inline]
    fn nbuckets(&self) -> u64 {
        (self.mask + 1) as u64
    }

    #[inline]
    fn vb(&self, time: Time) -> u64 {
        time.as_ps() / self.width
    }

    #[inline]
    fn set_bit(&mut self, idx: usize) {
        self.occupied[idx / 64] |= 1u64 << (idx % 64);
    }

    #[inline]
    fn clear_bit(&mut self, idx: usize) {
        self.occupied[idx / 64] &= !(1u64 << (idx % 64));
    }

    /// End of the wheel window: the first virtual bucket that belongs in
    /// overflow.
    #[inline]
    fn window_end_vb(&self) -> u64 {
        self.cur_vb.saturating_add(self.nbuckets())
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    pub(crate) fn schedule(&mut self, time: Time, seq: u64, event: E) {
        if self.len == 0 {
            // Empty queue: re-anchor the cursor at the event so the wheel
            // window always starts where the action is.
            debug_assert!(self.overflow.is_empty());
            self.cur_vb = self.vb(time);
            self.cur_sorted = false;
        }
        self.len += 1;
        let v = self.vb(time);
        if v >= self.window_end_vb() {
            self.overflow.insert((time, seq), event);
            return;
        }
        self.place_in_wheel(Slot { time, seq, event });
    }

    /// Files an in-window slot into its wheel bucket. Slots at or before
    /// the cursor's bucket (including schedules into the past, which the
    /// heap tolerates) are clamped into the cursor's bucket; the sorted
    /// insert keeps them popping as the earliest *remaining* event.
    fn place_in_wheel(&mut self, slot: Slot<E>) {
        let v = self.vb(slot.time);
        if v <= self.cur_vb {
            let idx = (self.cur_vb as usize) & self.mask;
            if self.cur_sorted {
                // Keep the descending order: earliest keys sit at the
                // back (next to pop), so a past/now event inserts near
                // the end — cheap.
                let key = slot.key();
                let at = self.buckets[idx].partition_point(|s| s.key() > key);
                self.buckets[idx].insert(at, slot);
            } else {
                self.buckets[idx].push(slot);
            }
            self.set_bit(idx);
        } else {
            // One rotation window means distinct virtual buckets in the
            // window always map to distinct physical buckets.
            let idx = (v as usize) & self.mask;
            self.buckets[idx].push(slot);
            self.set_bit(idx);
        }
    }

    /// Advances `cur_vb` to the next occupied bucket at or after it,
    /// scanning the occupancy bitmap a word at a time. Returns false
    /// when the wheel is empty.
    fn advance_to_occupied(&mut self) -> bool {
        let cur_idx = (self.cur_vb as usize) & self.mask;
        if !self.buckets[cur_idx].is_empty() {
            return true;
        }
        let n = self.mask + 1;
        let mut offset = 1usize;
        while offset < n {
            let pos = ((self.cur_vb as usize) + offset) & self.mask;
            let bit = pos % 64;
            // Bits examined in this word: never past the physical end of
            // the wheel (n < 64 case) and never more than remain in the
            // window.
            let span = (64 - bit).min(n - offset).min(n - pos);
            let mut word = self.occupied[pos / 64] >> bit;
            if span < 64 {
                word &= (1u64 << span) - 1;
            }
            if word != 0 {
                let hop = word.trailing_zeros() as usize;
                self.cur_vb += (offset + hop) as u64;
                self.cur_sorted = false;
                return true;
            }
            offset += span;
        }
        false
    }

    /// Ensures the cursor sits on the next event to pop, promoting from
    /// overflow first. Returns false when empty.
    ///
    /// Promotion must happen *before* the cursor advances: an overflow
    /// event was filed against the window position at its insert time,
    /// and once the window has slid far enough to cover its bucket the
    /// event must re-enter the wheel or the cursor could sail past it to
    /// a later wheel event. Promoting on every settle keeps the
    /// invariant that the cursor never passes an unpromoted overflow
    /// event's bucket.
    fn settle(&mut self) -> bool {
        if self.len == 0 {
            return false;
        }
        if self.len == self.overflow.len() {
            // Wheel empty: jump the window to the earliest overflow event.
            let (&(first_time, _), _) = self
                .overflow
                .first_key_value()
                .expect("len > 0 with an empty wheel implies overflow events");
            self.cur_vb = self.vb(first_time);
            self.cur_sorted = false;
        }
        self.promote_in_window();
        let found = self.advance_to_occupied();
        debug_assert!(found, "settle on a nonempty queue must find an event");
        found
    }

    /// Moves every overflow event whose bucket now fits the wheel window
    /// back into the wheel. Order-safe: promoted events land in buckets
    /// at or ahead of the cursor and per-bucket sorting restores
    /// `(time, seq)` order.
    fn promote_in_window(&mut self) {
        let Some((&(first_time, _), _)) = self.overflow.first_key_value() else {
            return;
        };
        let end = self.window_end_vb();
        if self.vb(first_time) >= end {
            return;
        }
        let keep = match end.checked_mul(self.width) {
            Some(boundary) => self.overflow.split_off(&(Time::from_ps(boundary), 0)),
            // Window end is beyond representable time: everything fits.
            None => BTreeMap::new(),
        };
        let promote = std::mem::replace(&mut self.overflow, keep);
        for ((time, seq), event) in promote {
            self.place_in_wheel(Slot { time, seq, event });
        }
    }

    /// Sorts the cursor's bucket (once per entry) for back-to-front
    /// draining and returns its physical index.
    fn prepare_current(&mut self) -> usize {
        let idx = (self.cur_vb as usize) & self.mask;
        if !self.cur_sorted {
            self.buckets[idx].sort_unstable_by_key(|s| std::cmp::Reverse(s.key()));
            self.cur_sorted = true;
        }
        idx
    }

    /// `(time, seq)` of the next event to pop. Needs `&mut self`: the
    /// cursor may advance and the entered bucket is sorted lazily.
    pub(crate) fn peek(&mut self) -> Option<(Time, u64)> {
        if !self.settle() {
            return None;
        }
        let idx = self.prepare_current();
        self.buckets[idx].last().map(Slot::key)
    }

    pub(crate) fn pop(&mut self) -> Option<(Time, E)> {
        if !self.settle() {
            return None;
        }
        let idx = self.prepare_current();
        let slot = self.buckets[idx]
            .pop()
            .expect("settle() guarantees a nonempty cursor bucket");
        self.len -= 1;
        if self.buckets[idx].is_empty() {
            self.clear_bit(idx);
            self.cur_sorted = false;
        }
        Some((slot.time, slot.event))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Satellite regression: a zero-latency / zero-horizon config must
    /// derive a minimum bucket width, not divide by zero in
    /// `horizon * 4 / width_ps`.
    #[test]
    fn sized_for_survives_zero_horizon_and_zero_population() {
        for (live, horizon) in [
            (0usize, Duration::ZERO),
            (0, Duration::from_ps(1)),
            (1, Duration::ZERO),
            (10_000, Duration::ZERO),
            (0, Duration::from_ns(1_000)),
        ] {
            let cfg = CalendarConfig::sized_for(live, horizon);
            assert!(
                cfg.width_ps >= CalendarConfig::MIN_WIDTH_PS,
                "{live}/{horizon:?}"
            );
            assert!((64..=1 << 16).contains(&cfg.buckets), "{live}/{horizon:?}");
        }
    }

    /// A hand-built zero-width (and zero-bucket) config normalizes to a
    /// working wheel instead of panicking on modulo/divide-by-zero.
    #[test]
    fn zero_width_config_normalizes_and_pops_in_order() {
        let mut q = CalendarQueue::new(CalendarConfig {
            buckets: 0,
            width_ps: 0,
        });
        q.schedule(Time::from_ps(30), 1, "b");
        q.schedule(Time::from_ps(10), 0, "a");
        q.schedule(Time::from_ps(30), 2, "c");
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek(), Some((Time::from_ps(10), 0)));
        assert_eq!(q.pop(), Some((Time::from_ps(10), "a")));
        assert_eq!(q.pop(), Some((Time::from_ps(30), "b")));
        assert_eq!(q.pop(), Some((Time::from_ps(30), "c")));
        assert_eq!(q.pop(), None);
    }
}
