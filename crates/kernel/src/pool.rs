//! A minimal scoped thread pool for embarrassingly parallel task grids.
//!
//! The simulator's sweep executor runs many fully independent simulations
//! (one per bandwidth × seed grid point). This module provides exactly the
//! primitive that needs — [`run_indexed`]: execute `f(0..tasks)` across a
//! fixed set of scoped worker threads and return the results **in index
//! order**, so a parallel sweep is byte-identical to a sequential one.
//!
//! Design notes:
//!
//! * **std-only** — built on [`std::thread::scope`], an atomic task cursor
//!   and an mpsc channel; no external dependencies.
//! * **work-stealing-free** — workers claim the next index from a shared
//!   atomic counter. Tasks are coarse (whole simulations, milliseconds to
//!   seconds each), so a stealing deque would buy nothing; the counter
//!   keeps the scheduler trivially fair and deterministic in its result
//!   ordering (which comes from the indices, never from thread timing).
//! * **panic-transparent** — a panicking task propagates out of
//!   [`run_indexed`] once the scope joins, exactly like the sequential
//!   loop it replaces.
//!
//! # Example
//!
//! ```
//! let squares = bash_kernel::pool::run_indexed(8, 4, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;

/// A task that panicked (every retry included) under
/// [`run_indexed_isolated`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskPanic {
    /// The task index that panicked.
    pub index: usize,
    /// How many times the task was attempted (1 + retries).
    pub attempts: u32,
    /// The panic payload, when it was a string (the common case);
    /// `"<non-string panic payload>"` otherwise.
    pub message: String,
}

impl std::fmt::Display for TaskPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "task {} panicked after {} attempt(s): {}",
            self.index, self.attempts, self.message
        )
    }
}

/// Extracts the human-readable message from a panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Panic-isolated [`run_indexed`]: runs `f(i)` for every `i in 0..tasks`
/// across up to `threads` workers, catching panics per task instead of
/// letting one poisoned grid point abort the whole sweep. A panicking
/// task is retried up to `retries` more times (useful against
/// environmental flakes; deterministic panics simply fail `1 + retries`
/// times) before its slot is reported as [`TaskPanic`]. Results come
/// back in index order either way.
pub fn run_indexed_isolated<T, F>(
    tasks: usize,
    threads: usize,
    retries: u32,
    f: F,
) -> Vec<Result<T, TaskPanic>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_indexed(tasks, threads, |i| {
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            match catch_unwind(AssertUnwindSafe(|| f(i))) {
                Ok(v) => return Ok(v),
                Err(payload) => {
                    if attempts > retries {
                        return Err(TaskPanic {
                            index: i,
                            attempts,
                            message: panic_message(payload),
                        });
                    }
                }
            }
        }
    })
}

/// The number of hardware threads available to this process (at least 1).
pub fn available_threads() -> usize {
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `f(i)` for every `i in 0..tasks` on up to `threads` scoped worker
/// threads and returns the results in index order.
///
/// `threads` is clamped to `[1, tasks]`; with one thread (or zero/one
/// tasks) the closure runs inline on the caller's thread with no spawning
/// at all, so the sequential path stays allocation- and synchronization-
/// free.
///
/// # Panics
///
/// Propagates the first panic raised by any task.
pub fn run_indexed<T, F>(tasks: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.clamp(1, tasks.max(1));
    if threads <= 1 {
        return (0..tasks).map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, T)>();
    let mut out: Vec<Option<T>> = (0..tasks).map(|_| None).collect();
    thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= tasks {
                    break;
                }
                // The receiver outlives the scope; a send can only fail if
                // the main thread is already unwinding, in which case this
                // worker just drains its remaining claims.
                if tx.send((i, f(i))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (i, result) in rx {
            out[i] = Some(result);
        }
    });
    out.into_iter()
        .map(|slot| slot.expect("every task index was executed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_index_order() {
        let got = run_indexed(100, 8, |i| i * 3);
        assert_eq!(got, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_fallback_matches() {
        assert_eq!(run_indexed(5, 1, |i| i + 1), vec![1, 2, 3, 4, 5]);
        assert_eq!(run_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(1, 4, |i| i), vec![0]);
    }

    #[test]
    fn more_threads_than_tasks() {
        assert_eq!(run_indexed(2, 64, |i| i), vec![0, 1]);
    }

    #[test]
    fn parallel_equals_sequential_for_nontrivial_work() {
        let work = |i: usize| {
            let mut acc = i as u64;
            for k in 0..1_000u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            acc
        };
        assert_eq!(run_indexed(37, 4, work), run_indexed(37, 1, work));
    }

    #[test]
    fn available_threads_is_positive() {
        assert!(available_threads() >= 1);
    }

    #[test]
    fn isolated_run_survives_panicking_tasks() {
        // Panics don't abort the sweep and don't disturb neighbours, on
        // both the inline (threads=1) and the threaded path.
        for threads in [1, 4] {
            let got = run_indexed_isolated(8, threads, 0, |i| {
                if i == 3 {
                    panic!("boom at {i}");
                }
                i * 2
            });
            for (i, r) in got.iter().enumerate() {
                if i == 3 {
                    let e = r.as_ref().unwrap_err();
                    assert_eq!(e.index, 3);
                    assert_eq!(e.attempts, 1);
                    assert!(e.message.contains("boom at 3"), "{}", e.message);
                } else {
                    assert_eq!(*r.as_ref().unwrap(), i * 2);
                }
            }
        }
    }

    #[test]
    fn isolated_run_retries_with_a_budget() {
        use std::sync::atomic::AtomicU32;
        // A task that fails twice then succeeds is rescued by retries.
        let calls = AtomicU32::new(0);
        let got = run_indexed_isolated(1, 1, 2, |_| {
            if calls.fetch_add(1, Ordering::SeqCst) < 2 {
                panic!("flaky");
            }
            42
        });
        assert_eq!(*got[0].as_ref().unwrap(), 42);
        // A deterministic panic exhausts the budget: 1 + retries attempts.
        let got = run_indexed_isolated(1, 1, 2, |_| -> u32 { panic!("always") });
        let e = got[0].as_ref().unwrap_err();
        assert_eq!(e.attempts, 3);
        assert_eq!(e.message, "always");
    }
}
