//! Statistics primitives used throughout the simulator.
//!
//! * [`Counter`] — monotonically increasing event count;
//! * [`RunningStat`] — Welford mean/variance of a stream of samples;
//! * [`Histogram`] — fixed-width bucket histogram for latency distributions;
//! * [`BusyTracker`] — busy-time integral of a resource (link, DRAM port),
//!   supporting windowed queries for the adaptive mechanism and whole-run
//!   utilization numbers for Figure 6.

use crate::time::{Duration, Time};

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    pub fn get(self) -> u64 {
        self.0
    }
}

/// Welford online mean / variance over f64 samples.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunningStat {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStat {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStat {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample standard deviation (0 with fewer than two samples).
    pub fn stddev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Coefficient of variation (stddev / mean), 0 when the mean is 0.
    pub fn coeff_of_variation(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.stddev() / m
        }
    }

    /// Smallest sample seen (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest sample seen (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }
}

/// A fixed-bucket histogram over u64 samples (e.g. latencies in ns).
#[derive(Debug, Clone)]
pub struct Histogram {
    bucket_width: u64,
    buckets: Vec<u64>,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `buckets` buckets of `bucket_width` each;
    /// values `>= buckets * bucket_width` land in an overflow bucket.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width` or `buckets` is zero.
    pub fn new(bucket_width: u64, buckets: usize) -> Self {
        assert!(bucket_width > 0 && buckets > 0);
        Histogram {
            bucket_width,
            buckets: vec![0; buckets],
            overflow: 0,
            total: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = (value / self.bucket_width) as usize;
        if idx < self.buckets.len() {
            self.buckets[idx] += 1;
        } else {
            self.overflow += 1;
        }
        self.total += 1;
    }

    /// Total number of samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Count in the overflow bucket.
    pub fn overflow_count(&self) -> u64 {
        self.overflow
    }

    /// Approximate quantile (bucket upper bound containing quantile `q`).
    /// Returns `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some((i as u64 + 1) * self.bucket_width);
            }
        }
        Some(self.buckets.len() as u64 * self.bucket_width)
    }

    /// Iterates `(bucket_lower_bound, count)` for non-empty buckets.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(move |(i, &c)| (i as u64 * self.bucket_width, c))
    }
}

/// Tracks the busy-time integral of a serially reusable resource.
///
/// The resource is busy over `[busy_from, busy_until)`; extending busy time
/// while already busy coalesces the interval; a disjoint interval closes out
/// the previous one. Used for end-of-run utilization (Figure 6) and — via
/// [`WindowDelta`] — for the adaptive mechanism's sampling windows.
///
/// # Query contract
///
/// `busy_time_until(t)` is exact when `t` is at or after the start of the
/// most recent busy interval (in a simulation: when new busy intervals only
/// ever start at the current simulated time, querying at the current time is
/// always exact, even while a transmission is still in progress). Queries
/// about instants *before* an already-closed-out interval are not supported;
/// take deltas of monotone queries instead ([`WindowDelta`] does this).
#[derive(Debug, Clone, Default)]
pub struct BusyTracker {
    /// Busy time fully accounted before `busy_from`.
    accumulated: Duration,
    /// Start of the current (possibly in-progress) busy interval.
    busy_from: Time,
    /// End of the current busy interval (`<= busy_from` means idle).
    busy_until: Time,
}

impl BusyTracker {
    /// Creates an idle tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks the resource busy for `[from, until)`. `from` must be
    /// non-decreasing across calls and `until > from`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if intervals are supplied out of order.
    pub fn mark_busy(&mut self, from: Time, until: Time) {
        debug_assert!(until > from);
        if from <= self.busy_until {
            // Contiguous or overlapping: extend the current interval.
            debug_assert!(from >= self.busy_from);
            if until > self.busy_until {
                self.busy_until = until;
            }
        } else {
            // Disjoint: close out the previous interval.
            self.accumulated += self.busy_until.since(self.busy_from);
            self.busy_from = from;
            self.busy_until = until;
        }
    }

    /// The instant the resource becomes free (now or in the past if idle).
    pub fn busy_until(&self) -> Time {
        self.busy_until
    }

    /// Cumulative busy time in `[0, t)`. See the type-level query contract.
    pub fn busy_time_until(&self, t: Time) -> Duration {
        let current = if t <= self.busy_from {
            Duration::ZERO
        } else if t >= self.busy_until {
            self.busy_until.since(self.busy_from)
        } else {
            t.since(self.busy_from)
        };
        self.accumulated + current
    }

    /// Utilization over `[0, t)` in `[0, 1]`. Returns 0 at `t = 0`.
    pub fn utilization(&self, t: Time) -> f64 {
        if t == Time::ZERO {
            return 0.0;
        }
        self.busy_time_until(t).as_ps() as f64 / t.as_ps() as f64
    }
}

/// Converts monotone cumulative busy-time readings into per-window deltas.
///
/// The adaptive mechanism samples each node's link every 512 cycles; at each
/// tick it asks "how much of the last window was the link busy?". Taking a
/// delta of two *current-time* cumulative readings is exact, whereas asking
/// the tracker about a past instant is not (see [`BusyTracker`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct WindowDelta {
    prev: Duration,
}

impl WindowDelta {
    /// Creates a delta tracker with no prior reading.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns busy time since the previous call, given the tracker and the
    /// current simulated time (must be non-decreasing across calls).
    pub fn advance(&mut self, tracker: &BusyTracker, now: Time) -> Duration {
        let cum = tracker.busy_time_until(now);
        let delta = cum - self.prev;
        self.prev = cum;
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn running_stat_mean_stddev() {
        let mut s = RunningStat::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stddev() - 2.138089935).abs() < 1e-6);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn running_stat_empty() {
        let s = RunningStat::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.min(), None);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::new(10, 10);
        for v in [1, 5, 15, 25, 25, 95, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.overflow_count(), 1);
        // Median of 7 samples is the 4th = 25 → bucket [20,30).
        assert_eq!(h.quantile(0.5), Some(30));
        let nonempty: Vec<_> = h.iter().collect();
        assert_eq!(nonempty[0], (0, 2));
    }

    #[test]
    fn busy_tracker_accumulates_disjoint() {
        let mut b = BusyTracker::new();
        b.mark_busy(Time::from_ns(10), Time::from_ns(20));
        // Mid-interval query before any close-out is exact.
        assert_eq!(b.busy_time_until(Time::from_ns(15)), Duration::from_ns(5));
        b.mark_busy(Time::from_ns(30), Time::from_ns(35));
        assert_eq!(b.busy_time_until(Time::from_ns(100)), Duration::from_ns(15));
        assert_eq!(b.busy_time_until(Time::from_ns(32)), Duration::from_ns(12));
    }

    #[test]
    fn window_delta_splits_busy_time_exactly() {
        let mut b = BusyTracker::new();
        let mut w = WindowDelta::new();
        b.mark_busy(Time::from_ns(0), Time::from_ns(100));
        // Sample at t=64: 64 ns busy so far (transmission still in progress).
        assert_eq!(w.advance(&b, Time::from_ns(64)), Duration::from_ns(64));
        b.mark_busy(Time::from_ns(100), Time::from_ns(110));
        b.mark_busy(Time::from_ns(120), Time::from_ns(124));
        // Sample at t=128: rest of the first interval (36) + 10 + 4.
        assert_eq!(w.advance(&b, Time::from_ns(128)), Duration::from_ns(50));
        // Idle window.
        assert_eq!(w.advance(&b, Time::from_ns(192)), Duration::ZERO);
    }

    #[test]
    fn busy_tracker_coalesces_contiguous() {
        let mut b = BusyTracker::new();
        b.mark_busy(Time::from_ns(0), Time::from_ns(10));
        b.mark_busy(Time::from_ns(10), Time::from_ns(25));
        // Queued arrival extends while still busy.
        b.mark_busy(Time::from_ns(5), Time::from_ns(30));
        assert_eq!(b.busy_time_until(Time::from_ns(30)), Duration::from_ns(30));
        assert!((b.utilization(Time::from_ns(60)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn utilization_at_zero_is_zero() {
        let b = BusyTracker::new();
        assert_eq!(b.utilization(Time::ZERO), 0.0);
    }

    proptest! {
        /// Sampling with WindowDelta at arbitrary monotone instants recovers
        /// the exact total busy time, and matches a brute-force computation
        /// from the merged interval set.
        #[test]
        fn prop_window_deltas_sum_to_total(
            intervals in proptest::collection::vec((0u64..100, 1u64..50), 1..40),
            ticks in proptest::collection::vec(1u64..200, 1..20),
        ) {
            let mut b = BusyTracker::new();
            let mut w = WindowDelta::new();
            let mut merged: Vec<(u64, u64)> = Vec::new();
            let mut cursor = 0u64;
            let mut sampled = Duration::ZERO;
            let mut tick_iter = ticks.iter().copied().scan(0u64, |acc, d| {
                *acc += d;
                Some(*acc)
            });
            let mut next_tick = tick_iter.next();
            for (gap, len) in intervals {
                let from = cursor + gap;
                // Sample at every tick that falls before this mark's start
                // (marks begin at the current simulated time).
                while let Some(t) = next_tick {
                    if t > from { break; }
                    sampled += w.advance(&b, Time::from_ns(t));
                    next_tick = tick_iter.next();
                }
                b.mark_busy(Time::from_ns(from), Time::from_ns(from + len));
                match merged.last_mut() {
                    Some((_, e)) if from <= *e => *e = (*e).max(from + len),
                    _ => merged.push((from, from + len)),
                }
                cursor = from;
            }
            let horizon = merged.last().map(|&(_, e)| e).unwrap_or(0) + 1;
            sampled += w.advance(&b, Time::from_ns(horizon));
            let brute: u64 = merged.iter().map(|&(s, e)| e - s).sum();
            prop_assert_eq!(sampled.as_ns(), brute);
        }
    }
}
