//! Deterministic random numbers for reproducible simulations.
//!
//! Every stochastic component of the simulator (workload generators, request
//! jitter, the paper's perturbation methodology) draws from a [`DetRng`]
//! seeded from the run configuration, so a run is a pure function of its
//! config. The generator is an in-crate xoshiro256++ (Blackman & Vigna),
//! seeded through splitmix64 — fast, reproducible for a fixed seed, and
//! free of external dependencies so the workspace builds offline.

/// A seedable, deterministic random-number generator.
///
/// # Example
///
/// ```
/// use bash_kernel::DetRng;
///
/// let mut a = DetRng::seed_from(42);
/// let mut b = DetRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    state: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        let mut s = seed;
        DetRng {
            state: [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ],
        }
    }

    /// Derives an independent child stream (e.g. one per node) so adding a
    /// consumer does not perturb the draws of existing consumers.
    pub fn fork(&mut self, stream: u64) -> DetRng {
        // Mix the stream id through splitmix64 so nearby ids diverge.
        let mut z = self.next_u64() ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        DetRng::seed_from(z ^ (z >> 31))
    }

    /// The next raw 64-bit value (one xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.state[0]
            .wrapping_add(self.state[3])
            .rotate_left(23)
            .wrapping_add(self.state[0]);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// A uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire's multiply-shift reduction: uniform enough for simulation
        // (bias is O(bound / 2^64)) and branch-free.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// A uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// A uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// True with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p.clamp(0.0, 1.0)
    }

    /// An exponentially distributed value with the given mean.
    ///
    /// Used for think times and inter-miss gaps (`S ~ exp(1)`, `Z ~ exp(...)`
    /// in the paper's Figure 2 queueing model).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean >= 0.0);
        if mean == 0.0 {
            return 0.0;
        }
        // Inverse transform; guard against ln(0).
        let u = 1.0 - self.unit_f64();
        -mean * u.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = DetRng::seed_from(7);
        let mut b = DetRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::seed_from(1);
        let mut b = DetRng::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn forked_streams_are_independent_and_reproducible() {
        let mut root1 = DetRng::seed_from(99);
        let mut root2 = DetRng::seed_from(99);
        let mut c1 = root1.fork(3);
        let mut c2 = root2.fork(3);
        for _ in 0..32 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = DetRng::seed_from(5);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = DetRng::seed_from(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.exponential(80.0)).sum::<f64>() / n as f64;
        assert!((mean - 80.0).abs() < 3.0, "sample mean {mean}");
    }

    #[test]
    fn exponential_zero_mean_is_zero() {
        let mut r = DetRng::seed_from(1);
        assert_eq!(r.exponential(0.0), 0.0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::seed_from(13);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }
}
