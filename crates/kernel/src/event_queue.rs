//! A deterministic timestamped event queue.
//!
//! Events scheduled for the same instant are delivered in insertion order
//! (FIFO), which keeps simulations reproducible regardless of queue
//! internals. Two interchangeable implementations live behind one facade:
//! a binary heap (`O(log n)`, the conservative default) and a bucketed
//! calendar/time-wheel queue (`O(1)` amortised — see [`crate::calendar`])
//! for large simulations. The facade owns the FIFO sequence numbers and
//! the progress counters, so the two implementations produce *identical*
//! pop sequences for identical schedule sequences — a property pinned by
//! proptest below.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

pub use crate::calendar::CalendarConfig;
use crate::calendar::CalendarQueue;
use crate::time::Time;

/// Which queue implementation backs an [`EventQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QueueKind {
    /// Binary heap: `O(log n)` per operation, no tuning knobs.
    Heap,
    /// Bucketed calendar / time-wheel: `O(1)` amortised schedule and pop,
    /// sized by a [`CalendarConfig`].
    #[default]
    Calendar,
}

/// A priority queue of `(Time, E)` pairs popped in non-decreasing time order,
/// with FIFO tie-breaking for equal timestamps.
///
/// # Example
///
/// ```
/// use bash_kernel::{EventQueue, Time};
///
/// let mut q = EventQueue::new();
/// q.schedule(Time::from_ns(10), 'b');
/// q.schedule(Time::from_ns(10), 'c');
/// q.schedule(Time::from_ns(1), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    core: Core<E>,
    next_seq: u64,
    popped: u64,
    peak: usize,
}

#[derive(Debug)]
enum Core<E> {
    Heap(BinaryHeap<Reverse<Entry<E>>>),
    Calendar(CalendarQueue<E>),
}

#[derive(Debug)]
struct Entry<E> {
    time: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty heap-backed queue.
    pub fn new() -> Self {
        Self::from_core(Core::Heap(BinaryHeap::new()))
    }

    /// Creates an empty heap-backed queue with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self::from_core(Core::Heap(BinaryHeap::with_capacity(cap)))
    }

    /// Creates an empty calendar-backed queue with the given wheel
    /// geometry (see [`CalendarConfig::sized_for`]).
    pub fn calendar(config: CalendarConfig) -> Self {
        Self::from_core(Core::Calendar(CalendarQueue::new(config)))
    }

    /// Creates a queue of the given kind. `cap` pre-allocates the heap;
    /// for the calendar it seeds [`CalendarConfig::sized_for`] together
    /// with `horizon` (falling back to the default wheel when `horizon`
    /// is zero).
    pub fn with_kind(kind: QueueKind, cap: usize, horizon: crate::time::Duration) -> Self {
        match kind {
            QueueKind::Heap => Self::with_capacity(cap),
            QueueKind::Calendar if horizon.is_zero() => Self::calendar(CalendarConfig::DEFAULT),
            QueueKind::Calendar => Self::calendar(CalendarConfig::sized_for(cap, horizon)),
        }
    }

    fn from_core(core: Core<E>) -> Self {
        EventQueue {
            core,
            next_seq: 0,
            popped: 0,
            peak: 0,
        }
    }

    /// The implementation backing this queue.
    pub fn kind(&self) -> QueueKind {
        match self.core {
            Core::Heap(_) => QueueKind::Heap,
            Core::Calendar(_) => QueueKind::Calendar,
        }
    }

    /// Schedules `event` to fire at `time`.
    pub fn schedule(&mut self, time: Time, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        match &mut self.core {
            Core::Heap(heap) => heap.push(Reverse(Entry { time, seq, event })),
            Core::Calendar(cal) => cal.schedule(time, seq, event),
        }
        let len = self.len();
        if len > self.peak {
            self.peak = len;
        }
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        let popped = match &mut self.core {
            Core::Heap(heap) => heap.pop().map(|Reverse(e)| (e.time, e.event)),
            Core::Calendar(cal) => cal.pop(),
        };
        if popped.is_some() {
            self.popped += 1;
        }
        popped
    }

    /// Removes and returns the earliest event *if* it fires at exactly
    /// `time` — the drain-one-timestamp inner-loop primitive.
    pub fn pop_at(&mut self, time: Time) -> Option<E> {
        if self.peek_time() != Some(time) {
            return None;
        }
        self.pop().map(|(_, e)| e)
    }

    /// The timestamp of the earliest pending event.
    ///
    /// Takes `&mut self`: the calendar implementation advances its
    /// cursor and lazily sorts the entered bucket on peek.
    pub fn peek_time(&mut self) -> Option<Time> {
        match &mut self.core {
            Core::Heap(heap) => heap.peek().map(|Reverse(e)| e.time),
            Core::Calendar(cal) => cal.peek().map(|(t, _)| t),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.core {
            Core::Heap(heap) => heap.len(),
            Core::Calendar(cal) => cal.len(),
        }
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events popped so far (a cheap progress metric).
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// High-water mark of pending events over the queue's lifetime — the
    /// capacity a queue for this workload should be created with.
    pub fn peak_len(&self) -> usize {
        self.peak
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;
    use proptest::prelude::*;

    fn both_kinds() -> [EventQueue<usize>; 2] {
        [
            EventQueue::new(),
            EventQueue::calendar(CalendarConfig {
                buckets: 64,
                width_ps: 1_000,
            }),
        ]
    }

    #[test]
    fn pops_in_time_order() {
        for mut q in both_kinds() {
            q.schedule(Time::from_ns(30), 3);
            q.schedule(Time::from_ns(10), 1);
            q.schedule(Time::from_ns(20), 2);
            assert_eq!(q.pop(), Some((Time::from_ns(10), 1)));
            assert_eq!(q.pop(), Some((Time::from_ns(20), 2)));
            assert_eq!(q.pop(), Some((Time::from_ns(30), 3)));
            assert_eq!(q.pop(), None);
        }
    }

    #[test]
    fn fifo_for_equal_times() {
        for mut q in both_kinds() {
            for i in 0..100 {
                q.schedule(Time::from_ns(5), i);
            }
            for i in 0..100 {
                assert_eq!(q.pop().unwrap().1, i);
            }
        }
    }

    #[test]
    fn peek_does_not_remove() {
        for mut q in both_kinds() {
            q.schedule(Time::from_ns(7), 0);
            assert_eq!(q.peek_time(), Some(Time::from_ns(7)));
            assert_eq!(q.len(), 1);
            assert!(!q.is_empty());
        }
    }

    #[test]
    fn peak_len_tracks_high_water_mark() {
        for mut q in both_kinds() {
            assert_eq!(q.peak_len(), 0);
            q.schedule(Time::from_ns(1), 0);
            q.schedule(Time::from_ns(2), 0);
            q.schedule(Time::from_ns(3), 0);
            q.pop();
            q.pop();
            q.schedule(Time::from_ns(4), 0);
            assert_eq!(q.peak_len(), 3);
            assert_eq!(q.len(), 2);
        }
    }

    #[test]
    fn counts_processed_events() {
        for mut q in both_kinds() {
            q.schedule(Time::ZERO, 0);
            q.schedule(Time::ZERO, 0);
            q.pop();
            assert_eq!(q.events_processed(), 1);
            q.pop();
            assert_eq!(q.events_processed(), 2);
        }
    }

    #[test]
    fn pop_at_drains_only_the_given_timestamp() {
        for mut q in both_kinds() {
            q.schedule(Time::from_ns(5), 1);
            q.schedule(Time::from_ns(5), 2);
            q.schedule(Time::from_ns(9), 3);
            assert_eq!(q.pop_at(Time::from_ns(5)), Some(1));
            assert_eq!(q.pop_at(Time::from_ns(5)), Some(2));
            assert_eq!(q.pop_at(Time::from_ns(5)), None);
            assert_eq!(q.pop_at(Time::from_ns(9)), Some(3));
        }
    }

    #[test]
    fn far_future_events_survive_the_overflow_level() {
        // A tiny wheel (16 buckets x 1 ns) forces multi-microsecond
        // timers through overflow and bulk promotion.
        let mut q = EventQueue::calendar(CalendarConfig {
            buckets: 16,
            width_ps: 1_000,
        });
        q.schedule(Time::from_ns(50_000), 99); // far future: overflow
        q.schedule(Time::from_ns(3), 1);
        q.schedule(Time::from_ns(50_000), 100); // same instant, FIFO after 99
        q.schedule(Time::from_ns(12), 2);
        assert_eq!(q.pop(), Some((Time::from_ns(3), 1)));
        assert_eq!(q.pop(), Some((Time::from_ns(12), 2)));
        assert_eq!(q.pop(), Some((Time::from_ns(50_000), 99)));
        assert_eq!(q.pop(), Some((Time::from_ns(50_000), 100)));
        assert_eq!(q.pop(), None);
        assert_eq!(q.events_processed(), 4);
    }

    #[test]
    fn interleaved_schedule_pop_keeps_order() {
        // Schedule into the bucket currently being drained (at and ahead
        // of the cursor) — the sorted-insert path.
        let mut q = EventQueue::calendar(CalendarConfig {
            buckets: 16,
            width_ps: 10_000,
        });
        q.schedule(Time::from_ns(5), 1);
        q.schedule(Time::from_ns(8), 3);
        assert_eq!(q.pop(), Some((Time::from_ns(5), 1)));
        q.schedule(Time::from_ns(6), 2); // same bucket, mid-drain
        q.schedule(Time::from_ns(8), 4); // ties with 3, FIFO after it
        assert_eq!(q.pop(), Some((Time::from_ns(6), 2)));
        assert_eq!(q.pop(), Some((Time::from_ns(8), 3)));
        assert_eq!(q.pop(), Some((Time::from_ns(8), 4)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn sized_for_targets_one_event_per_bucket() {
        let cfg = CalendarConfig::sized_for(256, Duration::from_ns(100));
        assert_eq!(cfg.width_ps, 100_000 / 256);
        assert!(cfg.buckets.is_power_of_two());
        assert!((64..=65536).contains(&cfg.buckets));
    }

    /// An operation script a queue can replay: schedule (with a time
    /// offset from the last pop, so runs stay roughly monotonic like a
    /// real simulation) or pop.
    #[derive(Debug, Clone)]
    enum Op {
        Schedule(u64),
        Pop,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            // Mostly near-future offsets, some same-instant, some far
            // future (overflow territory for small wheels).
            4 => (0u64..200).prop_map(Op::Schedule),
            1 => Just(Op::Schedule(0)),
            1 => (10_000u64..200_000).prop_map(Op::Schedule),
            3 => Just(Op::Pop),
        ]
    }

    proptest! {
        /// Popped timestamps are always non-decreasing, and same-time events
        /// come out in insertion order.
        #[test]
        fn prop_order(times in proptest::collection::vec(0u64..50, 1..200)) {
            for mut q in [EventQueue::new(), EventQueue::calendar(CalendarConfig { buckets: 8, width_ps: 2_000 })] {
                for (i, &t) in times.iter().enumerate() {
                    q.schedule(Time::from_ns(t), i);
                }
                let mut last: Option<(Time, usize)> = None;
                while let Some((t, idx)) = q.pop() {
                    if let Some((lt, lidx)) = last {
                        prop_assert!(t >= lt);
                        if t == lt {
                            prop_assert!(idx > lidx);
                        }
                    }
                    last = Some((t, idx));
                }
            }
        }

        /// Heap and calendar produce byte-identical pop sequences for any
        /// interleaved schedule/pop script, including same-timestamp FIFO
        /// ties and far-future overflow promotion. This is the property
        /// that lets the engine swap queues without disturbing goldens.
        #[test]
        fn prop_calendar_matches_heap(
            ops in proptest::collection::vec(op_strategy(), 1..300),
            buckets in 2usize..64,
            width in 1u64..5_000,
        ) {
            let mut heap = EventQueue::new();
            let mut cal = EventQueue::calendar(CalendarConfig { buckets, width_ps: width });
            let mut next_id = 0usize;
            let mut clock = 0u64; // last popped time in ns, keeps scripts sim-like
            for op in &ops {
                match *op {
                    Op::Schedule(offset) => {
                        let t = Time::from_ns(clock + offset);
                        heap.schedule(t, next_id);
                        cal.schedule(t, next_id);
                        next_id += 1;
                    }
                    Op::Pop => {
                        prop_assert_eq!(heap.peek_time(), cal.peek_time());
                        let a = heap.pop();
                        let b = cal.pop();
                        prop_assert_eq!(a, b);
                        if let Some((t, _)) = a {
                            clock = t.as_ns();
                        }
                    }
                }
                prop_assert_eq!(heap.len(), cal.len());
            }
            // Drain both to the end: the full tail must agree too.
            loop {
                let a = heap.pop();
                let b = cal.pop();
                prop_assert_eq!(a, b);
                if a.is_none() { break; }
            }
            prop_assert_eq!(heap.events_processed(), cal.events_processed());
        }
    }
}
