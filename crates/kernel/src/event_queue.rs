//! A deterministic timestamped event queue.
//!
//! Events scheduled for the same instant are delivered in insertion order
//! (FIFO), which keeps simulations reproducible regardless of heap internals.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::Time;

/// A priority queue of `(Time, E)` pairs popped in non-decreasing time order,
/// with FIFO tie-breaking for equal timestamps.
///
/// # Example
///
/// ```
/// use bash_kernel::{EventQueue, Time};
///
/// let mut q = EventQueue::new();
/// q.schedule(Time::from_ns(10), 'b');
/// q.schedule(Time::from_ns(10), 'c');
/// q.schedule(Time::from_ns(1), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    next_seq: u64,
    popped: u64,
    peak: usize,
}

#[derive(Debug)]
struct Entry<E> {
    time: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            popped: 0,
            peak: 0,
        }
    }

    /// Creates an empty queue with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            popped: 0,
            peak: 0,
        }
    }

    /// Schedules `event` to fire at `time`.
    pub fn schedule(&mut self, time: Time, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { time, seq, event }));
        if self.heap.len() > self.peak {
            self.peak = self.heap.len();
        }
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        let Reverse(e) = self.heap.pop()?;
        self.popped += 1;
        Some((e.time, e.event))
    }

    /// The timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events popped so far (a cheap progress metric).
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// High-water mark of pending events over the queue's lifetime — the
    /// capacity a queue for this workload should be created with.
    pub fn peak_len(&self) -> usize {
        self.peak
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ns(30), 3);
        q.schedule(Time::from_ns(10), 1);
        q.schedule(Time::from_ns(20), 2);
        assert_eq!(q.pop(), Some((Time::from_ns(10), 1)));
        assert_eq!(q.pop(), Some((Time::from_ns(20), 2)));
        assert_eq!(q.pop(), Some((Time::from_ns(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_for_equal_times() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Time::from_ns(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_ns(7), ());
        assert_eq!(q.peek_time(), Some(Time::from_ns(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn peak_len_tracks_high_water_mark() {
        let mut q = EventQueue::new();
        assert_eq!(q.peak_len(), 0);
        q.schedule(Time::from_ns(1), ());
        q.schedule(Time::from_ns(2), ());
        q.schedule(Time::from_ns(3), ());
        q.pop();
        q.pop();
        q.schedule(Time::from_ns(4), ());
        assert_eq!(q.peak_len(), 3);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn counts_processed_events() {
        let mut q = EventQueue::new();
        q.schedule(Time::ZERO, ());
        q.schedule(Time::ZERO, ());
        q.pop();
        assert_eq!(q.events_processed(), 1);
        q.pop();
        assert_eq!(q.events_processed(), 2);
    }

    proptest! {
        /// Popped timestamps are always non-decreasing, and same-time events
        /// come out in insertion order.
        #[test]
        fn prop_order(times in proptest::collection::vec(0u64..50, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(Time::from_ns(t), i);
            }
            let mut last: Option<(Time, usize)> = None;
            while let Some((t, idx)) = q.pop() {
                if let Some((lt, lidx)) = last {
                    prop_assert!(t >= lt);
                    if t == lt {
                        prop_assert!(idx > lidx);
                    }
                }
                last = Some((t, idx));
            }
        }
    }
}
