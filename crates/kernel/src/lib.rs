//! Discrete-event simulation kernel for the BASH coherence simulator.
//!
//! This crate is protocol-agnostic. It provides the four primitives every
//! component of the simulator builds on:
//!
//! * [`Time`] and [`Duration`] — picosecond-resolution simulated time
//!   (1 protocol *cycle* = 1 ns, matching the paper's ~1 GHz controllers);
//! * [`EventQueue`] — a deterministic priority queue of timestamped events;
//! * [`DetRng`] — a small, seedable, reproducible random-number generator;
//! * [`stats`] — counters, running means, histograms and busy-time trackers
//!   used for every number the experiment harness reports.
//!
//! # Example
//!
//! ```
//! use bash_kernel::{EventQueue, Time, Duration};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.schedule(Time::ZERO + Duration::from_ns(5), "second");
//! q.schedule(Time::ZERO, "first");
//! let (t, e) = q.pop().unwrap();
//! assert_eq!((t, e), (Time::ZERO, "first"));
//! ```

pub mod calendar;
pub mod event_queue;
pub mod pool;
pub mod rng;
pub mod stats;
pub mod time;

pub use calendar::CalendarConfig;
pub use event_queue::{EventQueue, QueueKind};
pub use rng::DetRng;
pub use time::{Duration, Time};
