//! The unsigned saturating policy counter (paper §2.2).
//!
//! The policy counter averages the per-window utilization verdicts: it is
//! incremented when the window was above the threshold and decremented
//! otherwise, saturating at `[0, 2^bits - 1]`. A larger value corresponds to
//! a lower probability of broadcast. With the paper's 8-bit counter and
//! 512-cycle sampling interval, the mechanism can swing across its full
//! range in 512 × 255 ≈ 130 000 cycles.

/// An unsigned saturating counter of configurable width (the paper uses 8
/// bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicyCounter {
    value: u32,
    max: u32,
}

impl PolicyCounter {
    /// Creates a counter of `bits` width, starting at zero (always
    /// broadcast — the snooping end of the spectrum).
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= bits <= 16`.
    pub fn new(bits: u32) -> Self {
        assert!((1..=16).contains(&bits), "width must be 1..=16 bits");
        PolicyCounter {
            value: 0,
            max: (1u32 << bits) - 1,
        }
    }

    /// Creates a counter starting at an explicit value (clamped to range).
    pub fn with_value(bits: u32, value: u32) -> Self {
        let mut c = Self::new(bits);
        c.value = value.min(c.max);
        c
    }

    /// Current value.
    pub fn value(&self) -> u32 {
        self.value
    }

    /// Largest representable value (`2^bits − 1`).
    pub fn max_value(&self) -> u32 {
        self.max
    }

    /// Saturating increment (utilization above threshold ⇒ lean unicast).
    pub fn bump_up(&mut self) {
        if self.value < self.max {
            self.value += 1;
        }
    }

    /// Saturating decrement (utilization below threshold ⇒ lean broadcast).
    pub fn bump_down(&mut self) {
        if self.value > 0 {
            self.value -= 1;
        }
    }

    /// The probability of unicast this counter value encodes, in `[0, 1]`:
    /// `value / (max + 1)`.
    pub fn unicast_probability(&self) -> f64 {
        self.value as f64 / (self.max as f64 + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_saturates() {
        let mut c = PolicyCounter::new(8);
        assert_eq!(c.value(), 0);
        c.bump_down();
        assert_eq!(c.value(), 0, "saturates at zero");
        for _ in 0..300 {
            c.bump_up();
        }
        assert_eq!(c.value(), 255, "saturates at 2^8-1");
        c.bump_up();
        assert_eq!(c.value(), 255);
    }

    #[test]
    fn paper_probability_example() {
        // "an 8-bit policy counter with the value of 100 implies that a
        // request should be unicast with probability of 100/255 or 39%"
        // (we use /256; the difference is < 0.2%).
        let c = PolicyCounter::with_value(8, 100);
        assert!((c.unicast_probability() - 0.390625).abs() < 1e-9);
    }

    #[test]
    fn with_value_clamps() {
        let c = PolicyCounter::with_value(4, 999);
        assert_eq!(c.value(), 15);
        assert_eq!(c.max_value(), 15);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn zero_width_panics() {
        PolicyCounter::new(0);
    }
}
