//! The complete adaptive pipeline: utilization sampling → policy counter →
//! probabilistic broadcast/unicast decision.

use crate::lfsr::Lfsr16;
use crate::policy::PolicyCounter;
use crate::util_counter::UtilizationCounter;

/// The outcome of a per-request decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cast {
    /// Send the request to all nodes (snooping behaviour).
    Broadcast,
    /// Send the request to the home node only (directory behaviour; in the
    /// BASH protocol this is realized as a dualcast {home, requestor}).
    Unicast,
}

/// How decisions are made. The static modes exist for ablation studies
/// (they reduce BASH to always-snooping / always-directory request policy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DecisionMode {
    /// The paper's adaptive mechanism.
    #[default]
    Adaptive,
    /// Ignore the policy counter; always broadcast.
    AlwaysBroadcast,
    /// Ignore the policy counter; always unicast.
    AlwaysUnicast,
}

/// Configuration of the adaptive mechanism. The defaults are the values the
/// paper selected through experimentation (§2.2): 75 % threshold, 512-cycle
/// sampling interval, 8-bit policy counter.
#[derive(Debug, Clone)]
pub struct AdaptorConfig {
    /// Target link-utilization threshold in percent (Figure 7 sweeps 55/75/95).
    pub threshold_percent: u32,
    /// Sampling interval in cycles (1 cycle = 1 ns).
    pub sampling_interval_cycles: u64,
    /// Policy counter width in bits.
    pub policy_bits: u32,
    /// Initial policy value (0 = start fully broadcasting).
    pub initial_policy: u32,
    /// Decision mode (adaptive, or a static extreme for ablations).
    pub mode: DecisionMode,
    /// Blend the node's *local* fabric-link utilization into the estimate:
    /// [`BandwidthAdaptor::sample_window_local`] then samples the max of
    /// the endpoint estimate and the local peak. Off by default — the
    /// paper's mechanism observes only its own endpoint link.
    pub use_local_utilization: bool,
}

impl AdaptorConfig {
    /// The paper's parameters: 75 % / 512 cycles / 8 bits, starting fully
    /// broadcast, adaptive.
    pub fn paper_default() -> Self {
        AdaptorConfig {
            threshold_percent: 75,
            sampling_interval_cycles: 512,
            policy_bits: 8,
            initial_policy: 0,
            mode: DecisionMode::Adaptive,
            use_local_utilization: false,
        }
    }
}

impl Default for AdaptorConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Per-node adaptive mechanism: feed it one [`sample_window`] per sampling
/// interval and ask [`decide`] for each outgoing request.
///
/// [`sample_window`]: BandwidthAdaptor::sample_window
/// [`decide`]: BandwidthAdaptor::decide
#[derive(Debug, Clone)]
pub struct BandwidthAdaptor {
    util: UtilizationCounter,
    policy: PolicyCounter,
    lfsr: Lfsr16,
    mask: u16,
    mode: DecisionMode,
    use_local: bool,
    interval_cycles: u64,
    samples: u64,
    broadcasts: u64,
    unicasts: u64,
}

impl BandwidthAdaptor {
    /// Builds the mechanism for one node from a shared configuration.
    /// `node_seed` perturbs the LFSR so nodes do not make lock-step
    /// decisions.
    pub fn new(cfg: &AdaptorConfig, node_seed: u64) -> Self {
        let seed = (node_seed as u16).wrapping_mul(0x9E37) ^ 0xACE1;
        BandwidthAdaptor {
            util: UtilizationCounter::for_threshold_percent(cfg.threshold_percent),
            policy: PolicyCounter::with_value(cfg.policy_bits, cfg.initial_policy),
            lfsr: Lfsr16::new(seed),
            mask: ((1u32 << cfg.policy_bits) - 1) as u16,
            mode: cfg.mode,
            use_local: cfg.use_local_utilization,
            interval_cycles: cfg.sampling_interval_cycles,
            samples: 0,
            broadcasts: 0,
            unicasts: 0,
        }
    }

    /// The sampling interval in cycles (the driver schedules one
    /// [`sample_window`](Self::sample_window) call per interval).
    pub fn sampling_interval_cycles(&self) -> u64 {
        self.interval_cycles
    }

    /// Feeds one sampling window: the link was busy `busy` out of `window`
    /// time units (any unit — the threshold comparison is scale-invariant).
    /// Bumps the policy counter by the sign of the utilization counter and
    /// resets it, exactly as the hardware would.
    pub fn sample_window(&mut self, busy: u64, window: u64) {
        self.samples += 1;
        if self.util.above_threshold(busy, window) {
            self.policy.bump_up();
        } else {
            self.policy.bump_down();
        }
    }

    /// Feeds one sampling window together with a *local* utilization
    /// observation — on a routed fabric, the peak busy time over the
    /// node's incident links. When [`AdaptorConfig::use_local_utilization`]
    /// is enabled the sampled value is the max of the endpoint estimate
    /// and the local peak, so a saturated local link pushes the policy
    /// toward unicast even while the endpoint mean looks idle; when
    /// disabled the local input is ignored and this is exactly
    /// [`sample_window`](Self::sample_window).
    pub fn sample_window_local(&mut self, busy: u64, local_peak: u64, window: u64) {
        if self.use_local {
            self.sample_window(busy.max(local_peak), window);
        } else {
            self.sample_window(busy, window);
        }
    }

    /// Decides whether the next request is broadcast or unicast. The LFSR
    /// draw and comparison happen off the critical path in hardware; here it
    /// is just a counter compare.
    pub fn decide(&mut self) -> Cast {
        let cast = match self.mode {
            DecisionMode::AlwaysBroadcast => Cast::Broadcast,
            DecisionMode::AlwaysUnicast => Cast::Unicast,
            DecisionMode::Adaptive => {
                let r = self.lfsr.next_value() & self.mask;
                if (r as u32) < self.policy.value() {
                    Cast::Unicast
                } else {
                    Cast::Broadcast
                }
            }
        };
        match cast {
            Cast::Broadcast => self.broadcasts += 1,
            Cast::Unicast => self.unicasts += 1,
        }
        cast
    }

    /// Current policy counter value (0 ⇒ always broadcast).
    pub fn policy_value(&self) -> u32 {
        self.policy.value()
    }

    /// The unicast probability the current policy encodes.
    pub fn unicast_probability(&self) -> f64 {
        match self.mode {
            DecisionMode::AlwaysBroadcast => 0.0,
            DecisionMode::AlwaysUnicast => 1.0,
            DecisionMode::Adaptive => self.policy.unicast_probability(),
        }
    }

    /// The utilization threshold in `[0, 1]`.
    pub fn threshold(&self) -> f64 {
        self.util.threshold()
    }

    /// Number of windows sampled.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// `(broadcasts, unicasts)` decided so far.
    pub fn decision_counts(&self) -> (u64, u64) {
        (self.broadcasts, self.unicasts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn adaptor() -> BandwidthAdaptor {
        BandwidthAdaptor::new(&AdaptorConfig::paper_default(), 0)
    }

    #[test]
    fn starts_broadcasting() {
        let mut a = adaptor();
        assert_eq!(a.policy_value(), 0);
        for _ in 0..100 {
            assert_eq!(a.decide(), Cast::Broadcast);
        }
        assert_eq!(a.decision_counts(), (100, 0));
    }

    #[test]
    fn saturated_link_converges_to_unicast() {
        let mut a = adaptor();
        for _ in 0..255 {
            a.sample_window(512, 512);
        }
        assert_eq!(a.policy_value(), 255);
        let unicasts = (0..2560).filter(|_| a.decide() == Cast::Unicast).count();
        // P(unicast) = 255/256; expect ~2550.
        assert!(unicasts > 2500, "unicasts = {unicasts}");
    }

    #[test]
    fn idle_link_converges_back_to_broadcast() {
        let mut a = adaptor();
        for _ in 0..255 {
            a.sample_window(512, 512);
        }
        for _ in 0..255 {
            a.sample_window(0, 512);
        }
        assert_eq!(a.policy_value(), 0);
    }

    #[test]
    fn full_range_swing_takes_policy_max_samples() {
        // Paper: "our adaptive mechanism can change from 100% unicast to 0%
        // unicast (or vice versa) in 512 × 255 ≈ 130,000 cycles".
        let mut a = adaptor();
        let mut swings = 0;
        while a.policy_value() < 255 {
            a.sample_window(512, 512);
            swings += 1;
        }
        assert_eq!(swings, 255);
        assert_eq!(swings * a.sampling_interval_cycles(), 130_560);
    }

    #[test]
    fn mid_policy_mixes_casts_at_the_right_rate() {
        let mut a = adaptor();
        for _ in 0..128 {
            a.sample_window(512, 512);
        }
        assert_eq!(a.policy_value(), 128);
        let n = 65535; // one full LFSR period for an exact expectation
        let unicasts = (0..n).filter(|_| a.decide() == Cast::Unicast).count();
        let frac = unicasts as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "unicast fraction {frac}");
    }

    #[test]
    fn static_modes_ignore_policy() {
        let mut cfg = AdaptorConfig::paper_default();
        cfg.mode = DecisionMode::AlwaysUnicast;
        cfg.initial_policy = 0;
        let mut a = BandwidthAdaptor::new(&cfg, 0);
        assert_eq!(a.decide(), Cast::Unicast);
        assert_eq!(a.unicast_probability(), 1.0);

        let mut cfg = AdaptorConfig::paper_default();
        cfg.mode = DecisionMode::AlwaysBroadcast;
        cfg.initial_policy = 255;
        let mut a = BandwidthAdaptor::new(&cfg, 0);
        assert_eq!(a.decide(), Cast::Broadcast);
        assert_eq!(a.unicast_probability(), 0.0);
    }

    #[test]
    fn exact_threshold_leans_broadcast() {
        // At exactly the threshold the counter is zero, which the mechanism
        // treats as "not above" → bump down.
        let mut a = adaptor();
        a.sample_window(512, 512);
        a.sample_window(512, 512);
        assert_eq!(a.policy_value(), 2);
        a.sample_window(384, 512); // exactly 75%
        assert_eq!(a.policy_value(), 1);
    }

    #[test]
    fn local_utilization_input_is_gated_by_config() {
        // Disabled (paper default): a saturated local link is invisible.
        let mut a = adaptor();
        a.sample_window_local(0, 512, 512);
        assert_eq!(a.policy_value(), 0);

        // Enabled: the local peak dominates an idle endpoint estimate...
        let mut cfg = AdaptorConfig::paper_default();
        cfg.use_local_utilization = true;
        let mut a = BandwidthAdaptor::new(&cfg, 0);
        a.sample_window_local(0, 512, 512);
        assert_eq!(a.policy_value(), 1);
        // ...and an idle local link never drags a busy endpoint down.
        a.sample_window_local(512, 0, 512);
        assert_eq!(a.policy_value(), 2);
    }

    proptest! {
        /// The long-run unicast fraction tracks policy/2^bits within noise,
        /// for any policy value.
        #[test]
        fn prop_unicast_rate_matches_policy(policy in 0u32..=255) {
            let mut cfg = AdaptorConfig::paper_default();
            cfg.initial_policy = policy;
            let mut a = BandwidthAdaptor::new(&cfg, 42);
            let n = 65535;
            let unicasts = (0..n).filter(|_| a.decide() == Cast::Unicast).count();
            let got = unicasts as f64 / n as f64;
            let want = policy as f64 / 256.0;
            prop_assert!((got - want).abs() < 0.02, "got {got}, want {want}");
        }
    }
}
