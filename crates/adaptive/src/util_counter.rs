//! The signed saturating utilization counter (paper §2.2, Figure 3).
//!
//! Per cycle the hardware increments the counter by `inc` when the node's
//! link is utilized and decrements it by `dec` when idle. When sampled, a
//! positive value means utilization exceeded `dec/(inc+dec)` over the
//! window; the counter is then reset. The paper's +1/−3 gives a 75 % target.
//!
//! In the simulator we do not tick cycle by cycle: the link's busy time
//! within the window is known exactly, so the counter value is computed in
//! closed form — `inc*busy − dec*idle`, clamped to the hardware bounds.

/// A signed saturating utilization counter.
///
/// # Example
///
/// Reproduces the paper's Figure 3 worked example: a link busy 4 of 7
/// cycles with a 75 % threshold yields 4·1 − 3·3 = −5.
///
/// ```
/// use bash_adaptive::UtilizationCounter;
///
/// let c = UtilizationCounter::for_threshold_percent(75);
/// assert_eq!(c.value_for_window(4, 7), -5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UtilizationCounter {
    inc: i32,
    dec: i32,
    bound: i32,
}

impl UtilizationCounter {
    /// Default hardware bound: a 16-bit signed saturating counter.
    pub const DEFAULT_BOUND: i32 = i16::MAX as i32;

    /// Creates a counter with explicit busy-increment and idle-decrement
    /// weights. The implied utilization threshold is `dec / (inc + dec)`.
    ///
    /// # Panics
    ///
    /// Panics unless both weights are positive.
    pub fn new(inc: i32, dec: i32) -> Self {
        assert!(inc > 0 && dec > 0, "weights must be positive");
        UtilizationCounter {
            inc,
            dec,
            bound: Self::DEFAULT_BOUND,
        }
    }

    /// Creates a counter targeting (approximately) the given threshold in
    /// percent, picking the smallest integer weights that express it:
    /// threshold = dec/(inc+dec). 75 % ⇒ +1/−3, 55 % ⇒ +9/−11, 95 % ⇒ +1/−19.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < percent < 100`.
    pub fn for_threshold_percent(percent: u32) -> Self {
        assert!(percent > 0 && percent < 100, "threshold must be in (0,100)");
        let g = gcd(percent, 100 - percent);
        Self::new(((100 - percent) / g) as i32, (percent / g) as i32)
    }

    /// The utilization threshold this counter tests against, in `[0, 1]`.
    pub fn threshold(&self) -> f64 {
        self.dec as f64 / (self.inc + self.dec) as f64
    }

    /// Busy-cycle weight.
    pub fn inc_weight(&self) -> i32 {
        self.inc
    }

    /// Idle-cycle weight.
    pub fn dec_weight(&self) -> i32 {
        self.dec
    }

    /// Closed-form counter value after a window of `window` cycles of which
    /// `busy` were utilized, saturating at the hardware bounds.
    ///
    /// # Panics
    ///
    /// Panics if `busy > window`.
    pub fn value_for_window(&self, busy: u64, window: u64) -> i32 {
        assert!(
            busy <= window,
            "busy cycles exceed the window: {busy} > {window}"
        );
        let idle = (window - busy) as i64;
        let v = self.inc as i64 * busy as i64 - self.dec as i64 * idle;
        v.clamp(-self.bound as i64, self.bound as i64) as i32
    }

    /// True when the measured window was above the threshold (positive
    /// counter). The paper treats an exactly-zero counter as not above.
    pub fn above_threshold(&self, busy: u64, window: u64) -> bool {
        self.value_for_window(busy, window) > 0
    }
}

fn gcd(a: u32, b: u32) -> u32 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_figure3_example() {
        // 4 busy + 3 idle cycles at 75%: 4*1 - 3*3 = -5.
        let c = UtilizationCounter::for_threshold_percent(75);
        assert_eq!(c.value_for_window(4, 7), -5);
        assert!(!c.above_threshold(4, 7));
    }

    #[test]
    fn threshold_weights() {
        assert_eq!(
            (
                UtilizationCounter::for_threshold_percent(75).inc_weight(),
                UtilizationCounter::for_threshold_percent(75).dec_weight()
            ),
            (1, 3)
        );
        assert_eq!(
            (
                UtilizationCounter::for_threshold_percent(55).inc_weight(),
                UtilizationCounter::for_threshold_percent(55).dec_weight()
            ),
            (9, 11)
        );
        assert_eq!(
            (
                UtilizationCounter::for_threshold_percent(95).inc_weight(),
                UtilizationCounter::for_threshold_percent(95).dec_weight()
            ),
            (1, 19)
        );
        assert!((UtilizationCounter::for_threshold_percent(75).threshold() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn sign_flips_exactly_at_threshold() {
        let c = UtilizationCounter::for_threshold_percent(75);
        // 512-cycle window: 384 busy = exactly 75% → zero, not above.
        assert_eq!(c.value_for_window(384, 512), 0);
        assert!(!c.above_threshold(384, 512));
        assert!(c.above_threshold(385, 512));
        assert!(!c.above_threshold(383, 512));
    }

    #[test]
    fn saturates_at_bounds() {
        let c = UtilizationCounter::new(1, 3);
        // A pathologically long all-idle window saturates at the bound.
        assert_eq!(
            c.value_for_window(0, 1 << 40),
            -UtilizationCounter::DEFAULT_BOUND
        );
        assert_eq!(
            c.value_for_window(1 << 40, 1 << 40),
            UtilizationCounter::DEFAULT_BOUND
        );
    }

    #[test]
    #[should_panic(expected = "busy cycles exceed")]
    fn busy_over_window_panics() {
        UtilizationCounter::new(1, 3).value_for_window(8, 7);
    }

    proptest! {
        /// The closed form matches a cycle-by-cycle saturating simulation of
        /// the hardware counter in the mechanism's operating regime (the
        /// paper's window is 512 cycles and its threshold weights are <= 19,
        /// so the counter can never reach the saturation bound within one
        /// window; outside that regime order-dependent saturation makes a
        /// closed form impossible for any implementation).
        #[test]
        fn prop_closed_form_matches_ticking(
            busy in 0u64..=1024,
            extra_idle in 0u64..=1024,
            pct in prop::sample::select(vec![5u32, 25, 50, 55, 75, 90, 95]),
        ) {
            let window = busy + extra_idle;
            let c = UtilizationCounter::for_threshold_percent(pct);
            let max_weight = c.inc_weight().max(c.dec_weight()) as u64;
            prop_assume!(window * max_weight <= UtilizationCounter::DEFAULT_BOUND as u64);
            // With no saturation possible, tick order is irrelevant.
            let mut v: i64 = 0;
            for _ in 0..busy { v += c.inc_weight() as i64; }
            for _ in 0..extra_idle { v -= c.dec_weight() as i64; }
            prop_assert_eq!(c.value_for_window(busy, window), v as i32);
            // The sign — all the mechanism consumes — matches too.
            prop_assert_eq!(c.above_threshold(busy, window), v > 0);
        }
    }
}
