//! Linear feedback shift registers.
//!
//! The paper: "Pseudo-random numbers can be generated easily by a linear
//! feedback shift register" (citing Golomb). These are Galois-form LFSRs
//! with maximal-period taps: the 8-bit register cycles through all 255
//! non-zero states, the 16-bit one through all 65535.

/// An 8-bit maximal-period Galois LFSR (taps x^8 + x^6 + x^5 + x^4 + 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lfsr8 {
    state: u8,
}

impl Lfsr8 {
    /// Creates an LFSR; a zero seed (the lock-up state) is mapped to 1.
    pub fn new(seed: u8) -> Self {
        Lfsr8 {
            state: if seed == 0 { 1 } else { seed },
        }
    }

    /// Advances one step and returns the new 8-bit state (never zero).
    pub fn next_value(&mut self) -> u8 {
        let lsb = self.state & 1;
        self.state >>= 1;
        if lsb != 0 {
            self.state ^= 0xB8; // taps 8,6,5,4
        }
        self.state
    }
}

/// A 16-bit maximal-period Galois LFSR (taps x^16 + x^14 + x^13 + x^11 + 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lfsr16 {
    state: u16,
}

impl Lfsr16 {
    /// Creates an LFSR; a zero seed (the lock-up state) is mapped to 1.
    pub fn new(seed: u16) -> Self {
        Lfsr16 {
            state: if seed == 0 { 1 } else { seed },
        }
    }

    /// Advances one step and returns the new 16-bit state (never zero).
    pub fn next_value(&mut self) -> u16 {
        let lsb = self.state & 1;
        self.state >>= 1;
        if lsb != 0 {
            self.state ^= 0xB400; // taps 16,14,13,11
        }
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lfsr8_has_maximal_period() {
        let mut l = Lfsr8::new(1);
        let mut seen = [false; 256];
        for _ in 0..255 {
            let v = l.next_value();
            assert_ne!(v, 0, "LFSR must never reach the lock-up state");
            assert!(!seen[v as usize], "state repeated before full period");
            seen[v as usize] = true;
        }
        // After 255 steps we are back at the start.
        assert_eq!(l, Lfsr8::new(1));
    }

    #[test]
    fn lfsr16_has_maximal_period() {
        let mut l = Lfsr16::new(0xACE1);
        let start = l;
        let mut count = 0u32;
        loop {
            l.next_value();
            count += 1;
            if l == start {
                break;
            }
            assert!(count <= 65535, "period exceeds 2^16-1");
        }
        assert_eq!(count, 65535);
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut l = Lfsr8::new(0);
        assert_ne!(l.next_value(), 0);
        let mut l16 = Lfsr16::new(0);
        assert_ne!(l16.next_value(), 0);
    }

    #[test]
    fn lfsr8_is_roughly_uniform() {
        // Over the full period every non-zero byte appears exactly once, so
        // the mean is 128.
        let mut l = Lfsr8::new(7);
        let sum: u32 = (0..255).map(|_| l.next_value() as u32).sum();
        assert_eq!(sum, (1..=255u32).sum::<u32>());
    }
}
