//! The bandwidth-adaptive mechanism of the BASH paper (§2).
//!
//! Each processor decides per request whether to **broadcast** (snooping
//! behaviour) or **unicast** (directory behaviour). The decision pipeline:
//!
//! 1. a signed saturating [`UtilizationCounter`] measures whether the node's
//!    link utilization over the last sampling window was above or below a
//!    target threshold (+1 per busy cycle, −3 per idle cycle ⇒ 75 %);
//! 2. every 512 cycles the counter's sign bumps an 8-bit saturating
//!    [`PolicyCounter`] up (too busy ⇒ more unicast) or down;
//! 3. each outgoing request is unicast iff an [`Lfsr8`] pseudo-random byte is
//!    below the policy counter, giving P(unicast) = policy/256.
//!
//! The numbers above are the paper's defaults; everything is configurable
//! via [`AdaptorConfig`]. The full pipeline is packaged as
//! [`BandwidthAdaptor`].
//!
//! # Example
//!
//! ```
//! use bash_adaptive::{AdaptorConfig, BandwidthAdaptor, Cast};
//!
//! let mut adaptor = BandwidthAdaptor::new(&AdaptorConfig::paper_default(), 1);
//! // Saturated link for many windows: the policy swings toward unicast.
//! for _ in 0..600 {
//!     adaptor.sample_window(512, 512); // busy_cycles, window_cycles
//! }
//! let unicasts = (0..1000).filter(|_| adaptor.decide() == Cast::Unicast).count();
//! assert!(unicasts > 950);
//! ```

pub mod lfsr;
pub mod mechanism;
pub mod policy;
pub mod util_counter;

pub use lfsr::{Lfsr16, Lfsr8};
pub use mechanism::{AdaptorConfig, BandwidthAdaptor, Cast, DecisionMode};
pub use policy::PolicyCounter;
pub use util_counter::UtilizationCounter;
