//! Synthetic stand-ins for the paper's commercial and scientific workloads
//! (Table 2: OLTP, Apache/SURGE, SPECjbb, Slashcode, Barnes-Hut).
//!
//! We cannot boot Solaris 8 under Simics and run DB2/Apache/HotSpot/MySQL;
//! instead each workload is a generator calibrated on the three quantities
//! the paper itself says drive its results (§5.4): the **L2 miss rate**
//! ("a lower cache miss rate (Barnes and Slashcode)"), the **fraction of
//! sharing misses** ("a smaller fraction of sharing misses (SPECjbb)"),
//! and the read/write mix. The protocol simulator only ever observes the
//! miss stream, so matching these first-order statistics exercises the same
//! protocol paths as the full-system originals.
//!
//! A processor alternates between executing instructions (exponentially
//! distributed around `instr_per_miss`, at the paper's 4 GIPS) and issuing
//! one miss:
//!
//! * a **sharing miss** targets a pool of shared blocks that migrate
//!   between caches (writes take ownership; reads fetch cache-to-cache);
//! * a **private miss** walks a per-node cold region (always served by
//!   memory, filling the cache and forcing realistic writeback traffic).

use bash_coherence::types::WORDS_PER_BLOCK;
use bash_coherence::{BlockAddr, ProcOp};
use bash_kernel::{DetRng, Duration, Time};
use bash_net::NodeId;

use crate::{WorkItem, Workload};

/// Instructions per nanosecond (the paper's 4 billion instructions/s).
const GIPS: f64 = 4.0;

/// Base of the private (cold) address region; shared blocks live below it.
const PRIVATE_REGION_BASE: u64 = 1 << 32;

/// Tunable parameters of a synthetic workload.
#[derive(Debug, Clone)]
pub struct WorkloadParams {
    /// Display name.
    pub name: &'static str,
    /// Mean instructions between L2 misses (sets the miss rate).
    pub instr_per_miss: f64,
    /// Fraction of misses that target the shared pool.
    pub sharing_fraction: f64,
    /// Fraction of shared-pool misses that are writes (migratory stores).
    pub shared_write_fraction: f64,
    /// Fraction of private misses that are writes (dirty fills → future
    /// writebacks).
    pub private_write_fraction: f64,
    /// Number of blocks in the shared pool.
    pub shared_blocks: u64,
}

impl WorkloadParams {
    /// OLTP: DB2 running TPC-C (Table 2). Commercial workloads have high
    /// L2 miss rates with a large fraction of sharing misses [Barroso et
    /// al. 1998; paper §1].
    pub fn oltp() -> Self {
        WorkloadParams {
            name: "OLTP",
            instr_per_miss: 1000.0,
            sharing_fraction: 0.80,
            shared_write_fraction: 0.50,
            private_write_fraction: 0.25,
            shared_blocks: 256,
        }
    }

    /// Apache serving static web content under SURGE (Table 2): miss rate
    /// and sharing fraction comparable to OLTP (§5.4 groups it with the
    /// OS-intensive workloads).
    pub fn apache() -> Self {
        WorkloadParams {
            name: "Apache",
            instr_per_miss: 700.0,
            sharing_fraction: 0.55,
            shared_write_fraction: 0.45,
            private_write_fraction: 0.25,
            shared_blocks: 256,
        }
    }

    /// SPECjbb2000 (Table 2): §5.4 attributes its different behaviour to
    /// "a smaller fraction of sharing misses".
    pub fn specjbb() -> Self {
        WorkloadParams {
            name: "SPECjbb",
            instr_per_miss: 600.0,
            sharing_fraction: 0.18,
            shared_write_fraction: 0.50,
            private_write_fraction: 0.35,
            shared_blocks: 256,
        }
    }

    /// Slashcode dynamic web serving (Table 2): §5.4 attributes its
    /// behaviour to "a lower cache miss rate".
    pub fn slashcode() -> Self {
        WorkloadParams {
            name: "Slashcode",
            instr_per_miss: 1400.0,
            sharing_fraction: 0.50,
            shared_write_fraction: 0.45,
            private_write_fraction: 0.25,
            shared_blocks: 256,
        }
    }

    /// Barnes-Hut from SPLASH-2, 64K bodies (Table 2): a scientific code
    /// with a low miss rate and moderate (mostly migratory) sharing.
    pub fn barnes_hut() -> Self {
        WorkloadParams {
            name: "Barnes-Hut",
            instr_per_miss: 2200.0,
            sharing_fraction: 0.75,
            shared_write_fraction: 0.55,
            private_write_fraction: 0.20,
            shared_blocks: 256,
        }
    }

    /// All five macro workloads in the paper's plotting order.
    pub fn all_macro() -> Vec<WorkloadParams> {
        vec![
            Self::apache(),
            Self::barnes_hut(),
            Self::oltp(),
            Self::slashcode(),
            Self::specjbb(),
        ]
    }
}

/// The synthetic workload generator. One instance serves every node.
#[derive(Debug)]
pub struct SyntheticWorkload {
    params: WorkloadParams,
    rngs: Vec<DetRng>,
    /// Per-node private cold-region cursor.
    private_cursor: Vec<u64>,
    /// Per-node monotone store value (coherence check token).
    counters: Vec<u64>,
    issued: Vec<u64>,
}

impl SyntheticWorkload {
    /// Creates the workload for `nodes` processors.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero or the parameters are out of range.
    pub fn new(nodes: u16, params: WorkloadParams, seed: u64) -> Self {
        assert!(nodes > 0);
        assert!(params.instr_per_miss > 0.0);
        assert!((0.0..=1.0).contains(&params.sharing_fraction));
        assert!((0.0..=1.0).contains(&params.shared_write_fraction));
        assert!((0.0..=1.0).contains(&params.private_write_fraction));
        assert!(params.shared_blocks > 0);
        let mut root = DetRng::seed_from(seed);
        let rngs = (0..nodes).map(|i| root.fork(i as u64)).collect();
        SyntheticWorkload {
            params,
            rngs,
            private_cursor: vec![0; nodes as usize],
            counters: vec![0; nodes as usize],
            issued: vec![0; nodes as usize],
        }
    }

    /// The parameters this generator runs with.
    pub fn params(&self) -> &WorkloadParams {
        &self.params
    }

    /// Total operations issued.
    pub fn total_issued(&self) -> u64 {
        self.issued.iter().sum()
    }
}

impl Workload for SyntheticWorkload {
    fn next_item(&mut self, node: NodeId, _now: Time) -> Option<WorkItem> {
        let idx = node.index();
        let p = self.params.clone();
        let rng = &mut self.rngs[idx];
        let instructions = rng.exponential(p.instr_per_miss).round() as u64;
        let think = Duration::from_ps((instructions as f64 / GIPS * 1000.0).round() as u64);

        let op = if rng.chance(p.sharing_fraction) {
            // Shared pool: blocks migrate between caches.
            let block = BlockAddr(rng.below(p.shared_blocks));
            if rng.chance(p.shared_write_fraction) {
                let word = idx % WORDS_PER_BLOCK;
                self.counters[idx] += 1;
                ProcOp::Store {
                    block,
                    word,
                    value: self.counters[idx],
                }
            } else {
                ProcOp::Load {
                    block,
                    word: rng.below(WORDS_PER_BLOCK as u64) as usize,
                }
            }
        } else {
            // Private cold region: always a memory-to-cache transfer.
            self.private_cursor[idx] += 1;
            let block =
                BlockAddr(PRIVATE_REGION_BASE + ((idx as u64) << 40) + self.private_cursor[idx]);
            if rng.chance(p.private_write_fraction) {
                let word = idx % WORDS_PER_BLOCK;
                self.counters[idx] += 1;
                ProcOp::Store {
                    block,
                    word,
                    value: self.counters[idx],
                }
            } else {
                ProcOp::Load { block, word: 0 }
            }
        };
        self.issued[idx] += 1;
        Some(WorkItem {
            think,
            instructions,
            op,
        })
    }

    fn name(&self) -> &str {
        self.params.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_distinct_and_sane() {
        let all = WorkloadParams::all_macro();
        assert_eq!(all.len(), 5);
        // SPECjbb has the smallest sharing fraction (§5.4).
        let jbb = all.iter().find(|p| p.name == "SPECjbb").unwrap();
        assert!(all
            .iter()
            .all(|p| p.name == "SPECjbb" || p.sharing_fraction > jbb.sharing_fraction));
        // Barnes and Slashcode have the lowest miss rates (§5.4).
        let sorted: Vec<&str> = {
            let mut v = all.clone();
            v.sort_by(|a, b| b.instr_per_miss.total_cmp(&a.instr_per_miss));
            v.iter().map(|p| p.name).take(2).collect()
        };
        assert!(sorted.contains(&"Barnes-Hut") && sorted.contains(&"Slashcode"));
    }

    #[test]
    fn sharing_fraction_is_respected() {
        let mut wl = SyntheticWorkload::new(4, WorkloadParams::oltp(), 3);
        let n = 20_000;
        let shared = (0..n)
            .filter(|_| {
                let item = wl.next_item(NodeId(1), Time::ZERO).unwrap();
                item.op.block().0 < PRIVATE_REGION_BASE
            })
            .count();
        let frac = shared as f64 / n as f64;
        assert!((frac - 0.80).abs() < 0.02, "sharing fraction {frac}");
    }

    #[test]
    fn think_time_tracks_miss_rate() {
        let mut wl = SyntheticWorkload::new(2, WorkloadParams::barnes_hut(), 9);
        let n = 20_000;
        let total: u64 = (0..n)
            .map(|_| wl.next_item(NodeId(0), Time::ZERO).unwrap().instructions)
            .sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 2200.0).abs() < 60.0, "mean instructions {mean}");
    }

    #[test]
    fn private_blocks_never_repeat_or_collide_across_nodes() {
        let mut wl = SyntheticWorkload::new(2, WorkloadParams::specjbb(), 5);
        let mut seen = std::collections::HashSet::new();
        for node in [NodeId(0), NodeId(1)] {
            for _ in 0..2000 {
                let item = wl.next_item(node, Time::ZERO).unwrap();
                let b = item.op.block().0;
                if b >= PRIVATE_REGION_BASE {
                    assert!(seen.insert(b), "private block reused: {b:#x}");
                }
            }
        }
    }

    #[test]
    fn store_values_monotone_per_node() {
        let mut wl = SyntheticWorkload::new(2, WorkloadParams::apache(), 11);
        let mut last = 0;
        for _ in 0..5000 {
            if let ProcOp::Store { value, .. } = wl.next_item(NodeId(0), Time::ZERO).unwrap().op {
                assert!(value > last);
                last = value;
            }
        }
    }
}
