//! Workload generators for the BASH reproduction.
//!
//! * [`microbench`] — the paper's locking microbenchmark (§4.1): every
//!   processor acquires and releases mostly-uncontended locks; with the
//!   number of locks ≈ lines per cache, essentially every acquire is a
//!   sharing miss (near worst case for the directory protocol).
//! * [`synthetic`] — parameterized stand-ins for the paper's five
//!   full-system workloads (Table 2). We cannot run Simics + DB2/Apache/JVM
//!   images; the generators reproduce the three properties §5.4 says drive
//!   the results: L2 miss rate, fraction of sharing misses, and read/write
//!   mix (see DESIGN.md §5 for the substitution argument).
//! * [`patterns`] — the classic sharing patterns (producer-consumer,
//!   migratory, false sharing, Zipf hot set, phase-shifting mixes).
//! * [`catalog`] — every workload above as a named, seeded scenario.
//! * [`trace_replay`] — feeds a captured [`bash_trace::Trace`] back
//!   through any protocol.
//!
//! All implement the [`Workload`] trait consumed by the `bash-sim` driver.

pub mod catalog;
pub mod microbench;
pub mod patterns;
pub mod script;
pub mod synthetic;
pub mod trace_replay;

use bash_coherence::ProcOp;
use bash_kernel::{Duration, Time};
use bash_net::NodeId;

/// One unit of work for a processor: optional think/execute time, the
/// instructions retired during it, then a memory operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkItem {
    /// Time the processor computes before issuing the operation.
    pub think: Duration,
    /// Instructions retired during `think` (for instructions/second
    /// performance metrics; the paper assumes 4 billion instructions/s when
    /// the memory system beyond L1 is perfect).
    pub instructions: u64,
    /// The memory operation to issue.
    pub op: ProcOp,
}

/// A source of memory operations for every processor in the system.
///
/// The driver calls [`next_item`](Workload::next_item) whenever a processor
/// becomes free and [`on_complete`](Workload::on_complete) when the issued
/// operation finishes (hit or miss), letting the workload track ownership
/// and domain metrics (e.g. lock acquires).
pub trait Workload {
    /// The next unit of work for `node`, or `None` if the node is done.
    fn next_item(&mut self, node: NodeId, now: Time) -> Option<WorkItem>;

    /// Notification that `node`'s current operation completed with the
    /// loaded/stored word value.
    fn on_complete(&mut self, node: NodeId, now: Time, op: &ProcOp, value: u64) {
        let _ = (node, now, op, value);
    }

    /// Short display name.
    fn name(&self) -> &str;
}

impl<W: Workload + ?Sized> Workload for Box<W> {
    fn next_item(&mut self, node: NodeId, now: Time) -> Option<WorkItem> {
        (**self).next_item(node, now)
    }

    fn on_complete(&mut self, node: NodeId, now: Time, op: &ProcOp, value: u64) {
        (**self).on_complete(node, now, op, value)
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

pub use catalog::Scenario;
pub use microbench::LockingMicrobench;
pub use patterns::{PatternKind, PatternParams, PatternWorkload};
pub use script::{Completion, ScriptWorkload};
pub use synthetic::{SyntheticWorkload, WorkloadParams};
pub use trace_replay::{StreamingTraceWorkload, TraceWorkload};
