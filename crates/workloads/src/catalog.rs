//! The named scenario catalog: every workload the repo can synthesize,
//! addressable by a stable string name.
//!
//! A scenario is a deterministic workload factory `(nodes, seed) → stream`.
//! Every entry is **completion- and time-independent** (its op stream is a
//! pure function of the seed), so any scenario can be captured once into a
//! [`bash_trace::Trace`] and replayed byte-identically through any
//! protocol — the contract `tests/scenario_catalog.rs` enforces for every
//! name listed here.
//!
//! The facade exposes this as `SimBuilder::scenario("migratory")`; the
//! experiments harness sweeps the whole catalog with the `scenarios` id.

use bash_kernel::Duration;

use crate::patterns::{PatternParams, PatternWorkload};
use crate::{LockingMicrobench, SyntheticWorkload, WorkItem, Workload, WorkloadParams};

/// One catalog entry: a named, seeded workload factory.
pub struct Scenario {
    /// Stable lookup name (kebab-case).
    pub name: &'static str,
    /// One-line description for listings.
    pub summary: &'static str,
    build: fn(nodes: u16, seed: u64) -> Box<dyn Workload>,
}

impl Scenario {
    /// Instantiates the scenario's workload for a `nodes`-processor system.
    ///
    /// The returned workload reports the **catalog name** as its display
    /// name (not the inner generator's own name, e.g. `"OLTP"`), so
    /// reports and captured trace headers always map back to a name
    /// `find`/`build` will resolve.
    pub fn build(&self, nodes: u16, seed: u64) -> Box<dyn Workload> {
        Box::new(NamedWorkload {
            name: self.name,
            inner: (self.build)(nodes, seed),
        })
    }
}

/// Delegating wrapper that stamps the catalog name onto any workload.
struct NamedWorkload {
    name: &'static str,
    inner: Box<dyn Workload>,
}

impl Workload for NamedWorkload {
    fn next_item(&mut self, node: bash_net::NodeId, now: bash_kernel::Time) -> Option<WorkItem> {
        self.inner.next_item(node, now)
    }

    fn on_complete(
        &mut self,
        node: bash_net::NodeId,
        now: bash_kernel::Time,
        op: &bash_coherence::ProcOp,
        value: u64,
    ) {
        self.inner.on_complete(node, now, op, value)
    }

    fn name(&self) -> &str {
        self.name
    }
}

macro_rules! pattern_entry {
    ($name:literal, $summary:literal, $ctor:ident) => {
        Scenario {
            name: $name,
            summary: $summary,
            build: |nodes, seed| {
                Box::new(PatternWorkload::new(nodes, PatternParams::$ctor(), seed))
            },
        }
    };
}

macro_rules! synthetic_entry {
    ($name:literal, $summary:literal, $ctor:ident) => {
        Scenario {
            name: $name,
            summary: $summary,
            build: |nodes, seed| {
                Box::new(SyntheticWorkload::new(nodes, WorkloadParams::$ctor(), seed))
            },
        }
    };
}

/// Every named scenario, in listing order.
pub const CATALOG: &[Scenario] = &[
    pattern_entry!(
        "producer-consumer",
        "one fixed producer per block, all other nodes re-read it",
        producer_consumer
    ),
    pattern_entry!(
        "migratory",
        "staggered read-modify-write over a shared pool (ownership chases)",
        migratory
    ),
    pattern_entry!(
        "false-sharing",
        "all nodes store disjoint words of the same blocks",
        false_sharing
    ),
    pattern_entry!(
        "zipf",
        "Zipf-skewed hot-set accesses, 30% stores",
        zipf_hot_set
    ),
    pattern_entry!(
        "phase-shift",
        "alternating calm-sharing / write-burst phases (stresses adaptivity)",
        phase_shift
    ),
    Scenario {
        name: "locking",
        summary: "the paper's locking microbenchmark (256 locks, 50 ns think)",
        build: |nodes, seed| {
            Box::new(LockingMicrobench::new(
                nodes,
                256,
                Duration::from_ns(50),
                seed,
            ))
        },
    },
    synthetic_entry!("oltp", "synthetic OLTP (DB2/TPC-C stand-in, Table 2)", oltp),
    synthetic_entry!(
        "apache",
        "synthetic Apache/SURGE static web serving (Table 2)",
        apache
    ),
    synthetic_entry!(
        "specjbb",
        "synthetic SPECjbb2000 (small sharing fraction, Table 2)",
        specjbb
    ),
    synthetic_entry!(
        "slashcode",
        "synthetic Slashcode dynamic web serving (Table 2)",
        slashcode
    ),
    synthetic_entry!(
        "barnes-hut",
        "synthetic SPLASH-2 Barnes-Hut (low miss rate, migratory)",
        barnes_hut
    ),
];

/// Looks a scenario up by name.
pub fn find(name: &str) -> Option<&'static Scenario> {
    CATALOG.iter().find(|s| s.name == name)
}

/// All scenario names, in listing order.
pub fn names() -> Vec<&'static str> {
    CATALOG.iter().map(|s| s.name).collect()
}

/// Builds the named scenario, or `None` for an unknown name.
pub fn build(name: &str, nodes: u16, seed: u64) -> Option<Box<dyn Workload>> {
    Some(find(name)?.build(nodes, seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bash_kernel::Time;
    use bash_net::NodeId;

    #[test]
    fn names_are_unique_and_kebab_case() {
        let names = names();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate scenario names");
        for n in names {
            assert!(
                n.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "name {n:?} is not kebab-case"
            );
        }
    }

    #[test]
    fn find_and_build_work() {
        assert!(find("migratory").is_some());
        assert!(find("no-such-scenario").is_none());
        let mut wl = build("migratory", 4, 1).unwrap();
        assert!(wl.next_item(NodeId(0), Time::ZERO).is_some());
        assert!(build("no-such-scenario", 4, 1).is_none());
    }

    #[test]
    fn built_workloads_report_their_catalog_name() {
        for s in CATALOG {
            let wl = s.build(4, 1);
            assert_eq!(
                wl.name(),
                s.name,
                "scenario {} reports a different display name",
                s.name
            );
        }
    }

    #[test]
    fn every_scenario_yields_work_for_every_node() {
        for s in CATALOG {
            let mut wl = s.build(4, 7);
            for node in 0..4 {
                assert!(
                    wl.next_item(NodeId(node), Time::ZERO).is_some(),
                    "scenario {} returned no work for node {node}",
                    s.name
                );
            }
        }
    }
}
