//! Replaying a captured [`Trace`] as a [`Workload`].
//!
//! The driver pulls work per node, in order, so replay only needs one
//! FIFO queue per node: [`next_item`](Workload::next_item) pops the next
//! recorded op for that node and completions are ignored (the stream is
//! already fixed). A replay is therefore a pure function of the trace and
//! the system configuration — the same trace replayed through any
//! protocol, bandwidth, or `SimBuilder::threads` count yields the same
//! reference stream, which is what the golden-report CI gate relies on.
//!
//! Two replayers share that contract:
//!
//! * [`TraceWorkload`] buffers the whole trace up front — cheap to clone
//!   across a sweep grid, right for the committed mini-traces;
//! * [`StreamingTraceWorkload`] pulls records off a
//!   [`TraceReader`] on demand — a multi-GB
//!   trace file replays without ever being resident; memory is bounded by
//!   the per-node lookahead the record interleaving forces (plus the
//!   reader's one-chunk buffer).

use std::collections::VecDeque;
use std::io::Read;

use bash_net::NodeId;
use bash_trace::{Trace, TraceError, TraceReader};

use crate::{WorkItem, Workload};

/// A workload that feeds a recorded reference stream back through the
/// simulator.
#[derive(Debug, Clone)]
pub struct TraceWorkload {
    name: String,
    queues: Vec<VecDeque<WorkItem>>,
    replayed: u64,
}

impl TraceWorkload {
    /// Builds a replayer from a validated trace.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`TraceError`] when the trace fails
    /// [`Trace::validate`] (empty, zero nodes, out-of-range records).
    pub fn from_trace(trace: &Trace) -> Result<Self, TraceError> {
        trace.validate()?;
        let mut queues: Vec<VecDeque<WorkItem>> =
            (0..trace.nodes).map(|_| VecDeque::new()).collect();
        for r in &trace.records {
            queues[r.node.index()].push_back(WorkItem {
                think: r.think,
                instructions: r.instructions,
                op: r.op,
            });
        }
        Ok(TraceWorkload {
            name: trace.workload.clone(),
            queues,
            replayed: 0,
        })
    }

    /// The node count the trace was captured on (the replay system must
    /// match it).
    pub fn nodes(&self) -> u16 {
        self.queues.len() as u16
    }

    /// Ops handed to the driver so far.
    pub fn replayed(&self) -> u64 {
        self.replayed
    }

    /// Ops still queued across all nodes.
    pub fn remaining(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }
}

impl Workload for TraceWorkload {
    fn next_item(&mut self, node: NodeId, _now: bash_kernel::Time) -> Option<WorkItem> {
        let item = self.queues[node.index()].pop_front()?;
        self.replayed += 1;
        Some(item)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

fn work_item(r: &bash_trace::TraceRecord) -> WorkItem {
    WorkItem {
        think: r.think,
        instructions: r.instructions,
        op: r.op,
    }
}

/// A replayer that decodes its trace *while* replaying it: records are
/// pulled off a [`TraceReader`] on demand, so the trace never has to fit
/// in memory.
///
/// The driver asks nodes for work in simulation order, which differs from
/// capture (file) order; records for not-yet-asked nodes are buffered in
/// per-node FIFOs until their node catches up. For real captures the
/// interleaving is tight (nodes progress together), so the lookahead —
/// reported by [`peak_buffered`](Self::peak_buffered) — stays small.
///
/// # Panics
///
/// A decode error in the middle of the stream (truncation, corrupt
/// chunk) panics: replay cannot meaningfully continue on a half-decoded
/// reference stream, and silently ending it would fake a shorter trace.
/// The header is validated when the reader is constructed, so malformed
/// files are rejected before any simulation runs.
pub struct StreamingTraceWorkload<R: Read> {
    name: String,
    reader: Option<TraceReader<R>>,
    buffers: Vec<VecDeque<WorkItem>>,
    replayed: u64,
    peak_buffered: usize,
}

impl<R: Read> StreamingTraceWorkload<R> {
    /// Wraps an open [`TraceReader`] (its header is already decoded and
    /// validated).
    pub fn new(reader: TraceReader<R>) -> Self {
        let header = reader.header();
        StreamingTraceWorkload {
            name: header.workload.clone(),
            buffers: (0..header.nodes).map(|_| VecDeque::new()).collect(),
            reader: Some(reader),
            replayed: 0,
            peak_buffered: 0,
        }
    }

    /// The node count the trace was captured on (the replay system must
    /// match it).
    pub fn nodes(&self) -> u16 {
        self.buffers.len() as u16
    }

    /// Ops handed to the driver so far.
    pub fn replayed(&self) -> u64 {
        self.replayed
    }

    /// Ops currently buffered ahead of their node.
    pub fn buffered(&self) -> usize {
        self.buffers.iter().map(VecDeque::len).sum()
    }

    /// High-water mark of [`buffered`](Self::buffered) — how much
    /// cross-node lookahead the record interleaving forced.
    pub fn peak_buffered(&self) -> usize {
        self.peak_buffered
    }

    /// Pulls records off the reader until one lands in `node`'s buffer or
    /// the stream ends.
    fn refill_for(&mut self, node: NodeId) {
        while self.buffers[node.index()].is_empty() {
            let Some(reader) = &mut self.reader else {
                return;
            };
            match reader.next() {
                Some(Ok(r)) => {
                    self.buffers[r.node.index()].push_back(work_item(&r));
                }
                Some(Err(e)) => panic!(
                    "streaming trace replay failed after {} records: {e}",
                    reader.records_read()
                ),
                None => {
                    self.reader = None;
                    return;
                }
            }
            self.peak_buffered = self.peak_buffered.max(self.buffered());
        }
    }
}

impl<R: Read> Workload for StreamingTraceWorkload<R> {
    fn next_item(&mut self, node: NodeId, _now: bash_kernel::Time) -> Option<WorkItem> {
        if self.buffers[node.index()].is_empty() {
            self.refill_for(node);
        }
        let item = self.buffers[node.index()].pop_front()?;
        self.replayed += 1;
        Some(item)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bash_coherence::{BlockAddr, ProcOp};
    use bash_kernel::{Duration, Time};
    use bash_trace::TraceRecord;

    fn two_node_trace() -> Trace {
        Trace {
            nodes: 2,
            seed: 7,
            workload: "replayed".to_string(),
            records: vec![
                TraceRecord {
                    node: NodeId(0),
                    think: Duration::from_ns(1),
                    instructions: 4,
                    op: ProcOp::Load {
                        block: BlockAddr(10),
                        word: 0,
                    },
                    completion: None,
                },
                TraceRecord {
                    node: NodeId(1),
                    think: Duration::ZERO,
                    instructions: 0,
                    op: ProcOp::Store {
                        block: BlockAddr(11),
                        word: 1,
                        value: 9,
                    },
                    completion: Some(Duration::from_ns(180)),
                },
                TraceRecord {
                    node: NodeId(0),
                    think: Duration::from_ns(2),
                    instructions: 8,
                    op: ProcOp::Load {
                        block: BlockAddr(12),
                        word: 2,
                    },
                    completion: None,
                },
            ],
        }
    }

    #[test]
    fn replays_per_node_in_capture_order() {
        let mut wl = TraceWorkload::from_trace(&two_node_trace()).unwrap();
        assert_eq!(wl.nodes(), 2);
        assert_eq!(wl.remaining(), 3);
        let a = wl.next_item(NodeId(0), Time::ZERO).unwrap();
        assert_eq!(a.op.block(), BlockAddr(10));
        let b = wl.next_item(NodeId(0), Time::ZERO).unwrap();
        assert_eq!(b.op.block(), BlockAddr(12));
        assert!(wl.next_item(NodeId(0), Time::ZERO).is_none());
        let c = wl.next_item(NodeId(1), Time::ZERO).unwrap();
        assert_eq!(c.op.block(), BlockAddr(11));
        assert_eq!(wl.replayed(), 3);
        assert_eq!(wl.remaining(), 0);
    }

    #[test]
    fn keeps_the_captured_name() {
        let wl = TraceWorkload::from_trace(&two_node_trace()).unwrap();
        assert_eq!(wl.name(), "replayed");
    }

    #[test]
    fn rejects_invalid_traces() {
        let mut t = two_node_trace();
        t.records.clear();
        assert!(TraceWorkload::from_trace(&t).is_err());
    }

    #[test]
    fn streaming_replay_matches_in_memory_replay() {
        let t = two_node_trace();
        let bytes = t.to_bytes();
        let mut streaming = StreamingTraceWorkload::new(TraceReader::new(&bytes[..]).unwrap());
        let mut buffered = TraceWorkload::from_trace(&t).unwrap();
        assert_eq!(streaming.nodes(), 2);
        assert_eq!(streaming.name(), "replayed");
        // Pull in an order that forces cross-node lookahead: node 1 first.
        for node in [1u16, 0, 0, 1, 0] {
            assert_eq!(
                streaming.next_item(NodeId(node), Time::ZERO),
                buffered.next_item(NodeId(node), Time::ZERO),
                "node {node} diverged"
            );
        }
        assert_eq!(streaming.replayed(), 3);
        assert_eq!(streaming.buffered(), 0);
        assert!(
            streaming.peak_buffered() >= 1,
            "node-1-first forced lookahead"
        );
    }

    #[test]
    #[should_panic(expected = "streaming trace replay failed")]
    fn streaming_replay_panics_on_mid_stream_corruption() {
        let t = two_node_trace();
        let mut bytes = t.to_bytes();
        // Corrupt a byte inside the (single) chunk payload; the header
        // stays intact so the reader opens fine.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        let mut wl =
            StreamingTraceWorkload::new(TraceReader::new(&bytes[..]).expect("header intact"));
        // Drain: hits the corruption mid-stream.
        while wl.next_item(NodeId(0), Time::ZERO).is_some() {}
        while wl.next_item(NodeId(1), Time::ZERO).is_some() {}
    }
}
