//! Replaying a captured [`Trace`] as a [`Workload`].
//!
//! The driver pulls work per node, in order, so replay only needs one
//! FIFO queue per node: [`next_item`](Workload::next_item) pops the next
//! recorded op for that node and completions are ignored (the stream is
//! already fixed). A replay is therefore a pure function of the trace and
//! the system configuration — the same trace replayed through any
//! protocol, bandwidth, or `SimBuilder::threads` count yields the same
//! reference stream, which is what the golden-report CI gate relies on.

use std::collections::VecDeque;

use bash_net::NodeId;
use bash_trace::{Trace, TraceError};

use crate::{WorkItem, Workload};

/// A workload that feeds a recorded reference stream back through the
/// simulator.
#[derive(Debug, Clone)]
pub struct TraceWorkload {
    name: String,
    queues: Vec<VecDeque<WorkItem>>,
    replayed: u64,
}

impl TraceWorkload {
    /// Builds a replayer from a validated trace.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`TraceError`] when the trace fails
    /// [`Trace::validate`] (empty, zero nodes, out-of-range records).
    pub fn from_trace(trace: &Trace) -> Result<Self, TraceError> {
        trace.validate()?;
        let mut queues: Vec<VecDeque<WorkItem>> =
            (0..trace.nodes).map(|_| VecDeque::new()).collect();
        for r in &trace.records {
            queues[r.node.index()].push_back(WorkItem {
                think: r.think,
                instructions: r.instructions,
                op: r.op,
            });
        }
        Ok(TraceWorkload {
            name: trace.workload.clone(),
            queues,
            replayed: 0,
        })
    }

    /// The node count the trace was captured on (the replay system must
    /// match it).
    pub fn nodes(&self) -> u16 {
        self.queues.len() as u16
    }

    /// Ops handed to the driver so far.
    pub fn replayed(&self) -> u64 {
        self.replayed
    }

    /// Ops still queued across all nodes.
    pub fn remaining(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }
}

impl Workload for TraceWorkload {
    fn next_item(&mut self, node: NodeId, _now: bash_kernel::Time) -> Option<WorkItem> {
        let item = self.queues[node.index()].pop_front()?;
        self.replayed += 1;
        Some(item)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bash_coherence::{BlockAddr, ProcOp};
    use bash_kernel::{Duration, Time};
    use bash_trace::TraceRecord;

    fn two_node_trace() -> Trace {
        Trace {
            nodes: 2,
            seed: 7,
            workload: "replayed".to_string(),
            records: vec![
                TraceRecord {
                    node: NodeId(0),
                    think: Duration::from_ns(1),
                    instructions: 4,
                    op: ProcOp::Load {
                        block: BlockAddr(10),
                        word: 0,
                    },
                },
                TraceRecord {
                    node: NodeId(1),
                    think: Duration::ZERO,
                    instructions: 0,
                    op: ProcOp::Store {
                        block: BlockAddr(11),
                        word: 1,
                        value: 9,
                    },
                },
                TraceRecord {
                    node: NodeId(0),
                    think: Duration::from_ns(2),
                    instructions: 8,
                    op: ProcOp::Load {
                        block: BlockAddr(12),
                        word: 2,
                    },
                },
            ],
        }
    }

    #[test]
    fn replays_per_node_in_capture_order() {
        let mut wl = TraceWorkload::from_trace(&two_node_trace()).unwrap();
        assert_eq!(wl.nodes(), 2);
        assert_eq!(wl.remaining(), 3);
        let a = wl.next_item(NodeId(0), Time::ZERO).unwrap();
        assert_eq!(a.op.block(), BlockAddr(10));
        let b = wl.next_item(NodeId(0), Time::ZERO).unwrap();
        assert_eq!(b.op.block(), BlockAddr(12));
        assert!(wl.next_item(NodeId(0), Time::ZERO).is_none());
        let c = wl.next_item(NodeId(1), Time::ZERO).unwrap();
        assert_eq!(c.op.block(), BlockAddr(11));
        assert_eq!(wl.replayed(), 3);
        assert_eq!(wl.remaining(), 0);
    }

    #[test]
    fn keeps_the_captured_name() {
        let wl = TraceWorkload::from_trace(&two_node_trace()).unwrap();
        assert_eq!(wl.name(), "replayed");
    }

    #[test]
    fn rejects_invalid_traces() {
        let mut t = two_node_trace();
        t.records.clear();
        assert!(TraceWorkload::from_trace(&t).is_err());
    }
}
