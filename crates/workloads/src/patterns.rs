//! Sharing-pattern generators: the classic coherence access patterns the
//! paper's workloads are built from, exposed as directly runnable
//! workloads and as named entries of the [`catalog`](crate::catalog).
//!
//! Every generator is **completion- and time-independent**: the stream a
//! node sees is a pure function of `(seed, node, issue index)`. That makes
//! each pattern protocol-independent (capture it under any protocol and
//! you get the same ops) and deterministic per seed — the two properties
//! the trace subsystem's golden-report gates rely on.
//!
//! * **producer–consumer** — each block has one fixed producer that
//!   rewrites it while every other node re-reads it: heavy cache-to-cache
//!   supply from a dirty owner.
//! * **migratory** — every node read-modify-writes a rotating set of
//!   shared blocks, staggered so nodes chase each other's ownership (the
//!   dominant pattern of Barnes-Hut and OLTP row locks).
//! * **false-sharing** — all nodes store to disjoint words of the *same*
//!   blocks: maximal invalidation traffic with zero true communication.
//! * **zipf** — accesses drawn from a Zipf-skewed hot set, the paper's
//!   commercial-workload locality shape.
//! * **phase-shift** — alternates a calm, think-heavy sharing phase (low
//!   link utilization, where broadcast wins) with a zero-think write
//!   burst (high utilization, where unicast wins); the regime flips every
//!   `phase_ops` ops per node specifically to stress the adaptive
//!   mechanism's switching behaviour.

use bash_coherence::types::WORDS_PER_BLOCK;
use bash_coherence::{BlockAddr, ProcOp};
use bash_kernel::{DetRng, Duration, Time};
use bash_net::NodeId;

use crate::{WorkItem, Workload};

/// Base of the per-node private (cold) region used by the burst phase of
/// [`PatternKind::PhaseShift`] — far above any shared block.
const PRIVATE_REGION_BASE: u64 = 1 << 32;

/// Which access pattern a [`PatternWorkload`] generates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatternKind {
    /// One fixed producer per block, everyone else re-reads it.
    ProducerConsumer,
    /// Staggered read-modify-write over a shared pool.
    Migratory,
    /// All nodes store to disjoint words of the same blocks.
    FalseSharing,
    /// Zipf-skewed hot-set accesses with a load/store mix.
    ZipfHotSet,
    /// Alternating calm-sharing / write-burst phases.
    PhaseShift,
}

/// Tunable parameters of a sharing pattern.
#[derive(Debug, Clone)]
pub struct PatternParams {
    /// The pattern shape.
    pub kind: PatternKind,
    /// Size of the shared block pool.
    pub blocks: u64,
    /// Think time between a completion and the next issue.
    pub think: Duration,
    /// Fraction of Zipf accesses that are stores ([`PatternKind::ZipfHotSet`]).
    pub write_fraction: f64,
    /// Zipf skew exponent (1.0 ≈ classic web/OLTP popularity).
    pub zipf_exponent: f64,
    /// Per-node ops per phase before the regime flips
    /// ([`PatternKind::PhaseShift`]).
    pub phase_ops: u64,
}

impl PatternParams {
    /// Producer–consumer over a 64-block shared pool, 50 ns of think time.
    pub fn producer_consumer() -> Self {
        PatternParams {
            kind: PatternKind::ProducerConsumer,
            blocks: 64,
            think: Duration::from_ns(50),
            write_fraction: 0.0,
            zipf_exponent: 0.0,
            phase_ops: 0,
        }
    }

    /// Migratory read-modify-write over a 64-block pool, 50 ns thinks.
    pub fn migratory() -> Self {
        PatternParams {
            kind: PatternKind::Migratory,
            blocks: 64,
            think: Duration::from_ns(50),
            write_fraction: 0.0,
            zipf_exponent: 0.0,
            phase_ops: 0,
        }
    }

    /// False sharing on an 8-block pool (≤ 8 nodes per block word-slot),
    /// 25 ns thinks.
    pub fn false_sharing() -> Self {
        PatternParams {
            kind: PatternKind::FalseSharing,
            blocks: 8,
            think: Duration::from_ns(25),
            write_fraction: 0.0,
            zipf_exponent: 0.0,
            phase_ops: 0,
        }
    }

    /// Zipf(1.0) hot set of 512 blocks, 30% stores, 100 ns thinks.
    pub fn zipf_hot_set() -> Self {
        PatternParams {
            kind: PatternKind::ZipfHotSet,
            blocks: 512,
            think: Duration::from_ns(100),
            write_fraction: 0.30,
            zipf_exponent: 1.0,
            phase_ops: 0,
        }
    }

    /// Phase-shifting mix: 64 calm ops (200 ns thinks, shared RMW) then
    /// 64 burst ops (zero think, write-heavy), repeating — a regime flip
    /// every few tens of µs, several per measurement window, so the
    /// adaptive mechanism's policy counter is forced to swing.
    pub fn phase_shift() -> Self {
        PatternParams {
            kind: PatternKind::PhaseShift,
            blocks: 64,
            think: Duration::from_ns(200),
            write_fraction: 0.0,
            zipf_exponent: 0.0,
            phase_ops: 64,
        }
    }

    /// The pattern's display (and catalog) name.
    pub fn name(&self) -> &'static str {
        match self.kind {
            PatternKind::ProducerConsumer => "producer-consumer",
            PatternKind::Migratory => "migratory",
            PatternKind::FalseSharing => "false-sharing",
            PatternKind::ZipfHotSet => "zipf",
            PatternKind::PhaseShift => "phase-shift",
        }
    }
}

/// A running sharing-pattern generator. One instance serves every node.
#[derive(Debug)]
pub struct PatternWorkload {
    params: PatternParams,
    nodes: u16,
    rngs: Vec<DetRng>,
    /// Per-node issue index (drives every sequence-based pattern).
    issued: Vec<u64>,
    /// Per-node monotone store value (coherence check token).
    counters: Vec<u64>,
    /// Per-node private cold-region cursor (phase-shift bursts).
    private_cursor: Vec<u64>,
    /// Cumulative Zipf weights over the block pool (empty for other kinds).
    zipf_cdf: Vec<f64>,
}

impl PatternWorkload {
    /// Creates the pattern for `nodes` processors.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` or the block pool is zero, or a fraction is out
    /// of range.
    pub fn new(nodes: u16, params: PatternParams, seed: u64) -> Self {
        assert!(nodes > 0);
        assert!(params.blocks > 0);
        assert!((0.0..=1.0).contains(&params.write_fraction));
        if params.kind == PatternKind::PhaseShift {
            assert!(params.phase_ops > 0, "phase-shift needs a phase length");
        }
        let mut root = DetRng::seed_from(seed);
        let rngs = (0..nodes).map(|i| root.fork(i as u64)).collect();
        let zipf_cdf = if params.kind == PatternKind::ZipfHotSet {
            // Cumulative 1/rank^s weights, normalized to [0, 1].
            let mut acc = 0.0;
            let mut cdf = Vec::with_capacity(params.blocks as usize);
            for rank in 1..=params.blocks {
                acc += 1.0 / (rank as f64).powf(params.zipf_exponent);
                cdf.push(acc);
            }
            for w in &mut cdf {
                *w /= acc;
            }
            cdf
        } else {
            Vec::new()
        };
        PatternWorkload {
            params,
            nodes,
            rngs,
            issued: vec![0; nodes as usize],
            counters: vec![0; nodes as usize],
            private_cursor: vec![0; nodes as usize],
            zipf_cdf,
        }
    }

    /// The parameters this generator runs with.
    pub fn params(&self) -> &PatternParams {
        &self.params
    }

    /// Total operations issued across all nodes.
    pub fn total_issued(&self) -> u64 {
        self.issued.iter().sum()
    }

    fn store(&mut self, idx: usize, block: BlockAddr) -> ProcOp {
        self.counters[idx] += 1;
        ProcOp::Store {
            block,
            word: idx % WORDS_PER_BLOCK,
            value: self.counters[idx],
        }
    }
}

impl Workload for PatternWorkload {
    fn next_item(&mut self, node: NodeId, _now: Time) -> Option<WorkItem> {
        let idx = node.index();
        let i = self.issued[idx];
        self.issued[idx] += 1;
        let p = self.params.clone();
        let word = idx % WORDS_PER_BLOCK;
        let mut think = p.think;
        let op = match p.kind {
            PatternKind::ProducerConsumer => {
                // Every node walks the pool in lockstep; block b's fixed
                // producer rewrites it, everyone else re-reads it.
                let block = BlockAddr(i % p.blocks);
                let producer = (block.0 % self.nodes as u64) as usize;
                if producer == idx {
                    self.store(idx, block)
                } else {
                    ProcOp::Load { block, word }
                }
            }
            PatternKind::Migratory => {
                // Load-then-store pairs over a rotating pool, each node
                // offset by a stride so ownership migrates node to node.
                let step = i / 2;
                let block = BlockAddr((step + idx as u64 * 3) % p.blocks);
                if i.is_multiple_of(2) {
                    ProcOp::Load { block, word }
                } else {
                    self.store(idx, block)
                }
            }
            PatternKind::FalseSharing => {
                // All stores, all to the same small pool, each node its
                // own word: pure invalidation ping-pong.
                let block = BlockAddr(i % p.blocks);
                self.store(idx, block)
            }
            PatternKind::ZipfHotSet => {
                let u = self.rngs[idx].unit_f64();
                let rank = self
                    .zipf_cdf
                    .partition_point(|&w| w < u)
                    .min(self.zipf_cdf.len() - 1);
                let block = BlockAddr(rank as u64);
                if self.rngs[idx].chance(p.write_fraction) {
                    self.store(idx, block)
                } else {
                    ProcOp::Load { block, word }
                }
            }
            PatternKind::PhaseShift => {
                let phase = (i / p.phase_ops) % 2;
                if phase == 0 {
                    // Calm phase: slow migratory sharing. Low utilization,
                    // so the adaptive mechanism should drift to broadcast.
                    let step = i / 2;
                    let block = BlockAddr((step + idx as u64 * 3) % p.blocks);
                    if i.is_multiple_of(2) {
                        ProcOp::Load { block, word }
                    } else {
                        self.store(idx, block)
                    }
                } else {
                    // Burst phase: back-to-back stores, alternating a
                    // private cold fill (dirty data + future writeback)
                    // with a contended shared write. High utilization, so
                    // the mechanism should flip to unicast.
                    think = Duration::ZERO;
                    if i.is_multiple_of(2) {
                        self.private_cursor[idx] += 1;
                        let block = BlockAddr(
                            PRIVATE_REGION_BASE + ((idx as u64) << 40) + self.private_cursor[idx],
                        );
                        self.store(idx, block)
                    } else {
                        let block = BlockAddr(i % p.blocks);
                        self.store(idx, block)
                    }
                }
            }
        };
        Some(WorkItem {
            think,
            instructions: 0,
            op,
        })
    }

    fn name(&self) -> &str {
        self.params.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(kind: fn() -> PatternParams, nodes: u16, seed: u64, n: usize) -> Vec<Vec<WorkItem>> {
        let mut wl = PatternWorkload::new(nodes, kind(), seed);
        (0..nodes)
            .map(|node| {
                (0..n)
                    .map(|_| wl.next_item(NodeId(node), Time::ZERO).unwrap())
                    .collect()
            })
            .collect()
    }

    #[test]
    fn producer_consumer_has_one_writer_per_block() {
        let streams = drain(PatternParams::producer_consumer, 4, 1, 256);
        for (node, stream) in streams.iter().enumerate() {
            for item in stream {
                if let ProcOp::Store { block, .. } = item.op {
                    assert_eq!(block.0 % 4, node as u64, "wrong producer stored");
                }
            }
        }
    }

    #[test]
    fn migratory_alternates_load_store_on_same_block() {
        let streams = drain(PatternParams::migratory, 2, 1, 64);
        for stream in &streams {
            for pair in stream.chunks(2) {
                assert!(matches!(pair[0].op, ProcOp::Load { .. }));
                assert!(matches!(pair[1].op, ProcOp::Store { .. }));
                assert_eq!(pair[0].op.block(), pair[1].op.block());
            }
        }
    }

    #[test]
    fn false_sharing_gives_each_node_its_own_word() {
        let streams = drain(PatternParams::false_sharing, 4, 1, 64);
        for (node, stream) in streams.iter().enumerate() {
            for item in stream {
                match item.op {
                    ProcOp::Store { word, .. } => assert_eq!(word, node % WORDS_PER_BLOCK),
                    _ => panic!("false sharing only stores"),
                }
            }
        }
    }

    #[test]
    fn zipf_prefers_low_ranks() {
        let mut wl = PatternWorkload::new(1, PatternParams::zipf_hot_set(), 3);
        let n = 20_000;
        let hot = (0..n)
            .filter(|_| wl.next_item(NodeId(0), Time::ZERO).unwrap().op.block().0 < 8)
            .count();
        // Zipf(1.0) over 512 blocks puts ~40% of mass on the top 8 ranks;
        // a uniform draw would put ~1.6%.
        assert!(
            hot as f64 / n as f64 > 0.25,
            "hot fraction {}",
            hot as f64 / n as f64
        );
    }

    #[test]
    fn phase_shift_alternates_think_regimes() {
        let params = PatternParams::phase_shift();
        let phase_ops = params.phase_ops as usize;
        let mut wl = PatternWorkload::new(2, params, 5);
        let stream: Vec<WorkItem> = (0..2 * phase_ops)
            .map(|_| wl.next_item(NodeId(0), Time::ZERO).unwrap())
            .collect();
        assert!(stream[..phase_ops].iter().all(|it| !it.think.is_zero()));
        assert!(stream[phase_ops..].iter().all(|it| it.think.is_zero()));
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        for kind in [
            PatternParams::producer_consumer,
            PatternParams::migratory,
            PatternParams::false_sharing,
            PatternParams::zipf_hot_set,
            PatternParams::phase_shift,
        ] {
            assert_eq!(drain(kind, 4, 9, 128), drain(kind, 4, 9, 128));
        }
    }

    #[test]
    fn zipf_streams_differ_across_seeds() {
        assert_ne!(
            drain(PatternParams::zipf_hot_set, 2, 1, 64),
            drain(PatternParams::zipf_hot_set, 2, 2, 64)
        );
    }
}
