//! The locking microbenchmark (paper §4.1).
//!
//! "Each processor acquires and releases locks that are generally
//! uncontended. After the release of one lock, a processor immediately
//! attempts to acquire another. Each processor can have at most one
//! outstanding request. Since we choose the number of locks to be
//! approximately the number of lines per cache, the microbenchmark incurs
//! sharing misses almost exclusively."
//!
//! An acquire is a test-and-set: a **store** to the lock's block (GetM).
//! The release is another store to the same block, which hits in M and
//! costs nothing — so the protocol-visible behaviour is one GetM per
//! acquire, almost always a cache-to-cache transfer because the previous
//! holder is (with probability (P−1)/P) another processor. Workload
//! intensity is adjusted with a think time between the release and the
//! next acquire (Figure 9).

use bash_coherence::{BlockAddr, ProcOp};
use bash_kernel::{DetRng, Duration, Time};
use bash_net::NodeId;

use crate::{WorkItem, Workload};

/// The locking microbenchmark.
///
/// # Example
///
/// ```
/// use bash_workloads::{LockingMicrobench, Workload};
/// use bash_kernel::{Duration, Time};
/// use bash_net::NodeId;
///
/// let mut wl = LockingMicrobench::new(64, 1024, Duration::ZERO, 42);
/// let item = wl.next_item(NodeId(0), Time::ZERO).unwrap();
/// assert!(item.think.is_zero());
/// ```
#[derive(Debug)]
pub struct LockingMicrobench {
    nodes: u16,
    num_locks: u64,
    think: Duration,
    rngs: Vec<DetRng>,
    /// Per-node monotone store value (doubles as a coherence check token).
    counters: Vec<u64>,
    acquires: Vec<u64>,
}

impl LockingMicrobench {
    /// Creates the benchmark: `num_locks` lock blocks spread across all
    /// homes, `think` between a release and the next acquire.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` or `num_locks` is zero.
    pub fn new(nodes: u16, num_locks: u64, think: Duration, seed: u64) -> Self {
        assert!(nodes > 0 && num_locks > 0);
        let mut root = DetRng::seed_from(seed);
        let rngs = (0..nodes).map(|i| root.fork(i as u64)).collect();
        LockingMicrobench {
            nodes,
            num_locks,
            think,
            rngs,
            counters: vec![0; nodes as usize],
            acquires: vec![0; nodes as usize],
        }
    }

    /// Total lock acquires completed (the performance metric of Figures
    /// 1 and 5–9 is acquires per unit time).
    pub fn total_acquires(&self) -> u64 {
        self.acquires.iter().sum()
    }

    /// Number of lock blocks.
    pub fn num_locks(&self) -> u64 {
        self.num_locks
    }
}

impl Workload for LockingMicrobench {
    fn next_item(&mut self, node: NodeId, _now: Time) -> Option<WorkItem> {
        let rng = &mut self.rngs[node.index()];
        let lock = rng.below(self.num_locks);
        let counter = &mut self.counters[node.index()];
        *counter += 1;
        // Each node writes its own word of the lock block (false sharing by
        // construction), so end-to-end data checks remain exact.
        let word = node.index() % bash_coherence::types::WORDS_PER_BLOCK;
        Some(WorkItem {
            think: self.think,
            instructions: 0,
            op: ProcOp::Store {
                block: BlockAddr(lock),
                word,
                value: *counter,
            },
        })
    }

    fn on_complete(&mut self, node: NodeId, _now: Time, op: &ProcOp, _value: u64) {
        if matches!(op, ProcOp::Store { .. }) {
            self.acquires[node.index()] += 1;
        }
        let _ = self.nodes;
    }

    fn name(&self) -> &str {
        "microbenchmark"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn issues_stores_to_lock_blocks() {
        let mut wl = LockingMicrobench::new(4, 16, Duration::from_ns(100), 1);
        for _ in 0..100 {
            let item = wl.next_item(NodeId(2), Time::ZERO).unwrap();
            assert_eq!(item.think, Duration::from_ns(100));
            match item.op {
                ProcOp::Store { block, word, .. } => {
                    assert!(block.0 < 16);
                    assert_eq!(word, 2);
                }
                _ => panic!("microbench only stores"),
            }
        }
    }

    #[test]
    fn store_values_are_monotone_per_node() {
        let mut wl = LockingMicrobench::new(2, 8, Duration::ZERO, 7);
        let mut last = 0;
        for _ in 0..10 {
            let item = wl.next_item(NodeId(0), Time::ZERO).unwrap();
            if let ProcOp::Store { value, .. } = item.op {
                assert!(value > last);
                last = value;
            }
        }
    }

    #[test]
    fn counts_acquires() {
        let mut wl = LockingMicrobench::new(2, 8, Duration::ZERO, 7);
        let item = wl.next_item(NodeId(1), Time::ZERO).unwrap();
        wl.on_complete(NodeId(1), Time::ZERO, &item.op, 0);
        assert_eq!(wl.total_acquires(), 1);
    }

    #[test]
    fn deterministic_for_seed() {
        let seq = |seed| {
            let mut wl = LockingMicrobench::new(4, 64, Duration::ZERO, seed);
            (0..32)
                .map(|_| match wl.next_item(NodeId(3), Time::ZERO).unwrap().op {
                    ProcOp::Store { block, .. } => block.0,
                    _ => unreachable!(),
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(seq(5), seq(5));
        assert_ne!(seq(5), seq(6));
    }
}
