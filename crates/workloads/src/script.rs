//! A scripted workload: an explicit per-node operation sequence.
//!
//! Used by the latency tests (reproducing the paper's 180/125/255 ns
//! numbers), the Figure 4 protocol walkthroughs, and any test that needs
//! precisely staged cross-node interleavings (ordering is controlled with
//! per-item think times).

use bash_coherence::ProcOp;
use bash_kernel::{Duration, Time};
use bash_net::NodeId;
use std::collections::VecDeque;

use crate::{WorkItem, Workload};

/// A record of one completed operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The node that issued the operation.
    pub node: NodeId,
    /// When the operation was issued (after its think time).
    pub issued_at: Time,
    /// Completion time.
    pub at: Time,
    /// The operation.
    pub op: ProcOp,
    /// The loaded/stored value.
    pub value: u64,
}

/// An explicit schedule of operations per node.
#[derive(Debug, Default, Clone)]
pub struct ScriptWorkload {
    scripts: Vec<VecDeque<WorkItem>>,
    pending_issue: Vec<Time>,
    completions: Vec<Completion>,
}

impl ScriptWorkload {
    /// Creates an empty script for `nodes` nodes.
    pub fn new(nodes: u16) -> Self {
        ScriptWorkload {
            scripts: (0..nodes).map(|_| VecDeque::new()).collect(),
            pending_issue: vec![Time::ZERO; nodes as usize],
            completions: Vec::new(),
        }
    }

    /// Appends an operation for `node`, issued `think` after the previous
    /// one completes (or after t=0 for the first).
    pub fn push(&mut self, node: NodeId, think: Duration, op: ProcOp) -> &mut Self {
        self.scripts[node.index()].push_back(WorkItem {
            think,
            instructions: 0,
            op,
        });
        self
    }

    /// All completions recorded so far, in completion order.
    pub fn completions(&self) -> &[Completion] {
        &self.completions
    }
}

impl Workload for ScriptWorkload {
    fn next_item(&mut self, node: NodeId, now: Time) -> Option<WorkItem> {
        let item = self.scripts[node.index()].pop_front()?;
        self.pending_issue[node.index()] = now + item.think;
        Some(item)
    }

    fn on_complete(&mut self, node: NodeId, now: Time, op: &ProcOp, value: u64) {
        self.completions.push(Completion {
            node,
            issued_at: self.pending_issue[node.index()],
            at: now,
            op: *op,
            value,
        });
    }

    fn name(&self) -> &str {
        "scripted"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bash_coherence::BlockAddr;

    #[test]
    fn pops_in_order_then_none() {
        let mut s = ScriptWorkload::new(2);
        s.push(
            NodeId(0),
            Duration::from_ns(5),
            ProcOp::Load {
                block: BlockAddr(1),
                word: 0,
            },
        );
        let item = s.next_item(NodeId(0), Time::ZERO).unwrap();
        assert_eq!(item.think, Duration::from_ns(5));
        assert!(s.next_item(NodeId(0), Time::ZERO).is_none());
        assert!(s.next_item(NodeId(1), Time::ZERO).is_none());
    }

    #[test]
    fn records_completions() {
        let mut s = ScriptWorkload::new(1);
        let op = ProcOp::Store {
            block: BlockAddr(2),
            word: 0,
            value: 7,
        };
        s.push(NodeId(0), Duration::from_ns(10), op);
        s.next_item(NodeId(0), Time::from_ns(90));
        s.on_complete(NodeId(0), Time::from_ns(100), &op, 7);
        assert_eq!(s.completions().len(), 1);
        assert_eq!(s.completions()[0].value, 7);
        assert_eq!(s.completions()[0].issued_at, Time::from_ns(100));
    }
}
