//! A minimal, dependency-free stand-in for the `criterion` benchmark
//! harness.
//!
//! This workspace builds in fully offline environments, so the real
//! criterion crate cannot be fetched from crates.io. This shim implements
//! exactly the API subset the workspace's benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`], [`Throughput`]
//! and the [`criterion_group!`]/[`criterion_main!`] macros — with a simple
//! wall-clock timing loop and a plain-text report. Swapping in the real
//! criterion later is a one-line Cargo.toml change; no bench source needs
//! to be touched.

use std::fmt::Display;
use std::time::Instant;

/// Wall-clock budget per benchmark, in milliseconds.
const BUDGET_MS: u64 = 200;

/// Units of work per iteration, used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id composed of a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is just a parameter value (grouped under the benchmark
    /// group's name).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Runs and times a single benchmark body.
pub struct Bencher {
    ns_per_iter: f64,
    iters: u64,
}

impl Bencher {
    /// Calls `f` repeatedly within the time budget and records the mean
    /// time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup + calibration: find an iteration count that fits the
        // budget, then measure.
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once_ns = t0.elapsed().as_nanos().max(1) as u64;
        let budget_ns = BUDGET_MS * 1_000_000;
        let iters = (budget_ns / once_ns).clamp(1, 1_000_000);
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let total = start.elapsed().as_nanos() as f64;
        self.iters = iters;
        self.ns_per_iter = total / iters as f64;
    }
}

fn report(id: &str, bench: &Bencher, throughput: Option<Throughput>) {
    let mut line = format!(
        "bench: {:<48} {:>14.1} ns/iter ({} iters)",
        id, bench.ns_per_iter, bench.iters
    );
    if bench.ns_per_iter > 0.0 {
        match throughput {
            Some(Throughput::Elements(n)) => {
                let rate = n as f64 / (bench.ns_per_iter / 1e9);
                line.push_str(&format!("  {:>12.0} elem/s", rate));
            }
            Some(Throughput::Bytes(n)) => {
                let rate = n as f64 / (bench.ns_per_iter / 1e9);
                line.push_str(&format!("  {:>12.0} B/s", rate));
            }
            None => {}
        }
    }
    println!("{line}");
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, throughput: Option<Throughput>, mut f: F) {
    let mut b = Bencher {
        ns_per_iter: 0.0,
        iters: 0,
    };
    f(&mut b);
    report(id, &b, throughput);
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the sample count (accepted for API compatibility; the shim's
    /// timing loop is budget-driven).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Declares how much work one iteration performs.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` under `<group>/<id>`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        run_one(&id, self.throughput, f);
        self
    }

    /// Benchmarks `f` with an input value under `<group>/<id>`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.id);
        run_one(&id, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        run_one(&id.into(), None, f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Prints the trailing summary (a no-op in the shim).
    pub fn final_summary(&mut self) {}
}

/// Bundles benchmark functions into one group runner, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generates `main` for a bench target (requires `harness = false`),
/// mirroring criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_a_body() {
        let mut b = Bencher {
            ns_per_iter: 0.0,
            iters: 0,
        };
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            x
        });
        assert!(b.iters >= 1);
        assert!(b.ns_per_iter > 0.0);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::from_parameter(64).id, "64");
        assert_eq!(BenchmarkId::new("f", 8).id, "f/8");
    }
}
