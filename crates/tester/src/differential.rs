//! Cross-protocol differential replay: run the **same captured trace**
//! through Snooping, Directory and BASH, then diff the final memory
//! images and the per-location value histories.
//!
//! What must agree and what may differ:
//!
//! * **Single-writer locations** (one node issues every store to the
//!   (block, word)) have a protocol-independent final value — the
//!   writer's last store in program order. Any disagreement is a hard
//!   coherence failure in at least one protocol, and is reported as a
//!   [`DiffMismatch`].
//! * **Multi-writer locations** can legally settle differently: each
//!   protocol may order racing writes its own way. Cross-protocol
//!   disagreement there is counted ([`DifferentialReport::racy_divergences`])
//!   but is not a failure.
//! * **Load histories** (the sequence of values each node observed at a
//!   location) legitimately differ across protocols even on single-writer
//!   data — timing decides how many updates a reader catches. They are
//!   diffed and counted for inspection, never gated on.

use std::collections::BTreeMap;

use bash_coherence::types::WORDS_PER_BLOCK;
use bash_coherence::{BlockAddr, ProcOp, ProtocolKind};
use bash_kernel::Time;
use bash_net::NodeId;
use bash_sim::System;
use bash_trace::Trace;
use bash_workloads::{TraceWorkload, WorkItem, Workload};

use crate::harness::authoritative_data;
use crate::verify::VerifyConfig;

/// A (block, word) memory location.
pub type Location = (BlockAddr, usize);

/// A hard differential failure: a single-writer location whose final
/// value differs across protocols (or from the trace-derived expectation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffMismatch {
    /// The location.
    pub block: BlockAddr,
    /// The word within the block.
    pub word: usize,
    /// Final value under each protocol, in [`ProtocolKind::ALL`] order.
    pub finals: Vec<u64>,
    /// The value the trace says the sole writer stored last.
    pub expected: u64,
}

/// The outcome of one differential run.
#[derive(Debug)]
pub struct DifferentialReport {
    /// Workload name from the trace header.
    pub workload: String,
    /// Protocols compared, in run order.
    pub protocols: Vec<ProtocolKind>,
    /// Per-protocol quiescence (a stuck protocol is a hard failure).
    pub quiescent: Vec<bool>,
    /// Locations compared.
    pub locations: usize,
    /// Hard failures: single-writer final values that diverged.
    pub mismatches: Vec<DiffMismatch>,
    /// Multi-writer locations whose finals differ across protocols
    /// (legal; informational).
    pub racy_divergences: usize,
    /// (node, location) load histories that differ across protocols
    /// (legal; informational).
    pub history_divergences: usize,
}

impl DifferentialReport {
    /// True when every protocol reached quiescence and no single-writer
    /// location diverged.
    pub fn passed(&self) -> bool {
        self.mismatches.is_empty() && self.quiescent.iter().all(|&q| q)
    }
}

/// Records what one protocol's replay observed: load histories per
/// (node, location) plus the final memory image.
#[derive(Debug, Default)]
struct Observation {
    quiescent: bool,
    histories: BTreeMap<(u16, Location), Vec<u64>>,
    finals: BTreeMap<Location, u64>,
}

/// A replayer that additionally records every load's observed value.
struct RecordingWorkload {
    inner: TraceWorkload,
    histories: BTreeMap<(u16, Location), Vec<u64>>,
}

impl Workload for RecordingWorkload {
    fn next_item(&mut self, node: NodeId, now: Time) -> Option<WorkItem> {
        self.inner.next_item(node, now)
    }

    fn on_complete(&mut self, node: NodeId, now: Time, op: &ProcOp, value: u64) {
        if let ProcOp::Load { block, word } = *op {
            self.histories
                .entry((node.0, (block, word)))
                .or_default()
                .push(value);
        }
        self.inner.on_complete(node, now, op, value);
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

/// Every location the trace touches, with the values each writer stored
/// (in program order) — the static ground truth the diff is checked
/// against.
fn locations_of(trace: &Trace) -> BTreeMap<Location, BTreeMap<u16, Vec<u64>>> {
    let mut locations: BTreeMap<Location, BTreeMap<u16, Vec<u64>>> = BTreeMap::new();
    for r in &trace.records {
        match r.op {
            ProcOp::Load { block, word } => {
                locations.entry((block, word)).or_default();
            }
            ProcOp::Store { block, word, value } => {
                locations
                    .entry((block, word))
                    .or_default()
                    .entry(r.node.0)
                    .or_default()
                    .push(value);
            }
        }
    }
    locations
}

fn replay_one(cfg: &VerifyConfig, trace: &Trace, blocks: &[BlockAddr]) -> Observation {
    let replay = TraceWorkload::from_trace(trace).expect("trace validated before differential run");
    let workload = RecordingWorkload {
        inner: replay,
        histories: BTreeMap::new(),
    };
    let mut sys_cfg = cfg.system_config();
    sys_cfg.capture_ops = false; // the reference stream is already on disk
    let mut system = System::new(sys_cfg, workload);
    system.run_to_idle();
    let mut obs = Observation {
        quiescent: system.is_quiescent(),
        ..Observation::default()
    };
    for &block in blocks {
        // The same "truth" rule as the invariant sweep, shared via
        // `authoritative_data` so the two can never disagree.
        let data = authoritative_data(&system, block);
        for word in 0..WORDS_PER_BLOCK {
            obs.finals.insert((block, word), data.read(word));
        }
    }
    obs.histories = std::mem::take(&mut system.workload_mut().histories);
    obs
}

/// Replays `trace` through all three protocols under `cfg` (the protocol
/// field of `cfg` is ignored) and diffs the results.
pub fn differential_trace(cfg: &VerifyConfig, trace: &Trace) -> DifferentialReport {
    let locations_map = locations_of(trace);
    // Diff every word of every touched block — including words no op
    // addressed: a protocol that corrupts a neighbouring word must not
    // escape.
    let blocks: Vec<BlockAddr> = locations_map
        .keys()
        .map(|&(b, _)| b)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    let all_words: Vec<Location> = blocks
        .iter()
        .flat_map(|&b| (0..WORDS_PER_BLOCK).map(move |w| (b, w)))
        .collect();

    let protocols: Vec<ProtocolKind> = ProtocolKind::ALL.to_vec();
    let observations: Vec<Observation> = protocols
        .iter()
        .map(|&p| {
            let mut cfg = cfg.clone();
            cfg.protocol = p;
            cfg.nodes = trace.nodes;
            replay_one(&cfg, trace, &blocks)
        })
        .collect();

    let mut mismatches = Vec::new();
    let mut racy_divergences = 0usize;
    for &(block, word) in &all_words {
        let finals: Vec<u64> = observations
            .iter()
            .map(|o| o.finals.get(&(block, word)).copied().unwrap_or(0))
            .collect();
        let writers = locations_map.get(&(block, word));
        let writer_count = writers.map(|w| w.len()).unwrap_or(0);
        match writer_count {
            0 | 1 => {
                // Never-written words must stay 0; single-writer words
                // must equal the writer's last store — under every
                // protocol.
                let expected = writers
                    .and_then(|w| w.values().next())
                    .and_then(|vals| vals.last().copied())
                    .unwrap_or(0);
                if finals.iter().any(|&f| f != expected) {
                    mismatches.push(DiffMismatch {
                        block,
                        word,
                        finals,
                        expected,
                    });
                }
            }
            _ => {
                if finals.windows(2).any(|w| w[0] != w[1]) {
                    racy_divergences += 1;
                }
            }
        }
    }

    // Load-history diff (informational).
    let mut history_keys: Vec<(u16, Location)> = observations
        .iter()
        .flat_map(|o| o.histories.keys().copied())
        .collect();
    history_keys.sort_unstable();
    history_keys.dedup();
    let history_divergences = history_keys
        .iter()
        .filter(|k| {
            let first = observations[0].histories.get(k);
            observations[1..]
                .iter()
                .any(|o| o.histories.get(k) != first)
        })
        .count();

    DifferentialReport {
        workload: trace.workload.clone(),
        protocols,
        quiescent: observations.iter().map(|o| o.quiescent).collect(),
        locations: all_words.len(),
        mismatches,
        racy_divergences,
        history_divergences,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{run_verify_scenario, VerifyConfig};

    #[test]
    fn clean_trace_has_no_single_writer_mismatches() {
        // producer-consumer is all single-writer: the strictest case.
        let mut cfg = VerifyConfig::new(ProtocolKind::Snooping, 9);
        cfg.ops_per_node = 120;
        let report = run_verify_scenario(&cfg, "producer-consumer");
        assert!(report.passed(), "first: {:?}", report.first_violation());
        let diff = differential_trace(&cfg, &report.trace);
        assert!(diff.passed(), "mismatches: {:?}", diff.mismatches);
        assert_eq!(diff.quiescent, vec![true, true, true]);
        assert!(diff.locations > 0);
        assert!(diff.racy_divergences == 0, "single-writer workload");
    }

    #[test]
    fn multi_writer_trace_is_diffed_without_false_failures() {
        let mut cfg = VerifyConfig::new(ProtocolKind::Snooping, 13);
        cfg.ops_per_node = 120;
        let report = run_verify_scenario(&cfg, "migratory");
        assert!(report.passed(), "first: {:?}", report.first_violation());
        let diff = differential_trace(&cfg, &report.trace);
        assert!(diff.passed(), "mismatches: {:?}", diff.mismatches);
    }

    #[test]
    fn locations_of_collects_writer_programs() {
        use bash_kernel::Duration;
        use bash_trace::TraceRecord;
        let t = Trace {
            nodes: 2,
            seed: 0,
            workload: "x".into(),
            records: vec![
                TraceRecord {
                    node: NodeId(0),
                    think: Duration::ZERO,
                    instructions: 0,
                    op: ProcOp::Store {
                        block: BlockAddr(3),
                        word: 1,
                        value: 10,
                    },
                },
                TraceRecord {
                    node: NodeId(0),
                    think: Duration::ZERO,
                    instructions: 0,
                    op: ProcOp::Store {
                        block: BlockAddr(3),
                        word: 1,
                        value: 11,
                    },
                },
                TraceRecord {
                    node: NodeId(1),
                    think: Duration::ZERO,
                    instructions: 0,
                    op: ProcOp::Load {
                        block: BlockAddr(4),
                        word: 0,
                    },
                },
            ],
        };
        let locs = locations_of(&t);
        assert_eq!(locs.len(), 2);
        assert_eq!(locs[&(BlockAddr(3), 1)][&0], vec![10, 11]);
        assert!(locs[&(BlockAddr(4), 0)].is_empty());
    }
}
