//! Cross-protocol differential replay: run the **same captured trace**
//! through Snooping, Directory and BASH, then diff the final memory
//! images and the per-location value histories.
//!
//! What must agree and what may differ:
//!
//! * **Single-writer locations** (one node issues every store to the
//!   (block, word)) have a protocol-independent final value — the
//!   writer's last store in program order. Any disagreement is a hard
//!   coherence failure in at least one protocol, and is reported as a
//!   [`DiffMismatch`].
//! * **Multi-writer locations** can legally settle differently: each
//!   protocol may order racing writes its own way. Cross-protocol
//!   disagreement there is counted ([`DifferentialReport::racy_divergences`])
//!   but is not a failure.
//! * **Load histories** (the sequence of values each node observed at a
//!   location) legitimately differ across protocols even on single-writer
//!   data — timing decides how many updates a reader catches. They are
//!   diffed and counted for inspection, never gated on.
//! * **Latency distributions**: every replay captures issue→complete
//!   latencies, and the report carries per-node mean/p50/p99 summaries
//!   per protocol plus their relative spread against
//!   [`VerifyConfig::latency_tolerance`]. Latency *differences* are the
//!   paper's whole point (protocols trade latency for bandwidth), so
//!   exceeding the tolerance is informational
//!   ([`DifferentialReport::latency_divergences`]) — only value
//!   divergence fails the run.

use std::collections::BTreeMap;

use bash_coherence::types::WORDS_PER_BLOCK;
use bash_coherence::{BlockAddr, ProcOp, ProtocolKind};
use bash_kernel::Time;
use bash_net::NodeId;
use bash_sim::System;
use bash_trace::Trace;
use bash_workloads::{TraceWorkload, WorkItem, Workload};

use crate::harness::authoritative_data;
use crate::verify::VerifyConfig;

/// A (block, word) memory location.
pub type Location = (BlockAddr, usize);

/// A hard differential failure: a single-writer location whose final
/// value differs across protocols (or from the trace-derived expectation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffMismatch {
    /// The location.
    pub block: BlockAddr,
    /// The word within the block.
    pub word: usize,
    /// Final value under each protocol, in [`ProtocolKind::ALL`] order.
    pub finals: Vec<u64>,
    /// The value the trace says the sole writer stored last.
    pub expected: u64,
}

/// A mean/percentile summary of one latency sample set (all values ns).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Completions summarized.
    pub count: usize,
    /// Arithmetic mean.
    pub mean_ns: f64,
    /// Median.
    pub p50_ns: f64,
    /// 99th percentile (nearest-rank).
    pub p99_ns: f64,
}

impl LatencySummary {
    /// Summarizes raw latencies (picoseconds, as captured). Percentiles
    /// use the standard nearest-rank definition: the `⌈q·n⌉`-th smallest
    /// sample.
    pub fn from_ps(mut samples: Vec<u64>) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        samples.sort_unstable();
        let count = samples.len();
        let pct = |q: f64| samples[(q * count as f64).ceil() as usize - 1] as f64 / 1000.0;
        let mean_ps = samples.iter().map(|&s| s as f64).sum::<f64>() / count as f64;
        Some(LatencySummary {
            count,
            mean_ns: mean_ps / 1000.0,
            p50_ns: pct(0.50),
            p99_ns: pct(0.99),
        })
    }
}

/// Per-node (or aggregate) latency distributions of one location class,
/// compared across protocols.
#[derive(Debug, Clone)]
pub struct LatencyDiff {
    /// The node, or `None` for the all-nodes aggregate row.
    pub node: Option<u16>,
    /// One summary per compared protocol, in
    /// [`DifferentialReport::protocols`] order (`None` when that replay
    /// completed no ops for the node).
    pub per_protocol: Vec<Option<LatencySummary>>,
    /// `(max mean − min mean) / min mean` across the protocols that have
    /// a summary.
    pub relative_spread: f64,
    /// True when `relative_spread` stays within the configured tolerance.
    pub within_tolerance: bool,
}

/// The outcome of one differential run.
#[derive(Debug)]
pub struct DifferentialReport {
    /// Workload name from the trace header.
    pub workload: String,
    /// Protocols compared, in run order.
    pub protocols: Vec<ProtocolKind>,
    /// Per-protocol quiescence (a stuck protocol is a hard failure).
    pub quiescent: Vec<bool>,
    /// Locations compared.
    pub locations: usize,
    /// Hard failures: single-writer final values that diverged.
    pub mismatches: Vec<DiffMismatch>,
    /// Multi-writer locations whose finals differ across protocols
    /// (legal; informational).
    pub racy_divergences: usize,
    /// (node, location) load histories that differ across protocols
    /// (legal; informational).
    pub history_divergences: usize,
    /// Latency-distribution comparison: the all-nodes aggregate first,
    /// then one row per node.
    pub latency: Vec<LatencyDiff>,
    /// Rows of [`latency`](Self::latency) whose spread exceeded
    /// [`VerifyConfig::latency_tolerance`] (informational — latency
    /// differences across protocols are expected and quantified, never
    /// gated on).
    pub latency_divergences: usize,
    /// Summary of the completions the *input* trace itself carried, when
    /// it was captured with completion events — the capture-time baseline
    /// the replays are compared against.
    pub captured_latency: Option<LatencySummary>,
    /// Same-protocol replay exactness: replaying the trace under the
    /// protocol that captured it (`cfg.protocol`) must reproduce the
    /// captured per-node latency sequences **byte-exactly** — same seed,
    /// same config, same op stream, so any drift is nondeterminism in the
    /// engine. `None` when the input trace carries no completions (nothing
    /// to gate against); `Some(false)` fails the run.
    pub replay_exact: Option<bool>,
    /// Nodes whose replayed latency sequence differed from the captured
    /// one (0 when [`replay_exact`](Self::replay_exact) holds).
    pub replay_latency_mismatches: usize,
}

impl DifferentialReport {
    /// True when every protocol reached quiescence, no single-writer
    /// location diverged, and the same-protocol replay reproduced the
    /// captured latency distribution byte-exactly (when the trace carried
    /// one).
    pub fn passed(&self) -> bool {
        self.mismatches.is_empty()
            && self.quiescent.iter().all(|&q| q)
            && self.replay_exact != Some(false)
    }
}

/// Records what one protocol's replay observed: load histories per
/// (node, location), the final memory image, and every op's
/// issue→complete latency per node.
#[derive(Debug, Default)]
struct Observation {
    quiescent: bool,
    histories: BTreeMap<(u16, Location), Vec<u64>>,
    finals: BTreeMap<Location, u64>,
    /// Per-node completion latencies (ps), in completion-capture order.
    latencies: Vec<Vec<u64>>,
}

/// A replayer that additionally records every load's observed value.
struct RecordingWorkload {
    inner: TraceWorkload,
    histories: BTreeMap<(u16, Location), Vec<u64>>,
}

impl Workload for RecordingWorkload {
    fn next_item(&mut self, node: NodeId, now: Time) -> Option<WorkItem> {
        self.inner.next_item(node, now)
    }

    fn on_complete(&mut self, node: NodeId, now: Time, op: &ProcOp, value: u64) {
        if let ProcOp::Load { block, word } = *op {
            self.histories
                .entry((node.0, (block, word)))
                .or_default()
                .push(value);
        }
        self.inner.on_complete(node, now, op, value);
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

/// Every location the trace touches, with the values each writer stored
/// (in program order) — the static ground truth the diff is checked
/// against.
fn locations_of(trace: &Trace) -> BTreeMap<Location, BTreeMap<u16, Vec<u64>>> {
    let mut locations: BTreeMap<Location, BTreeMap<u16, Vec<u64>>> = BTreeMap::new();
    for r in &trace.records {
        match r.op {
            ProcOp::Load { block, word } => {
                locations.entry((block, word)).or_default();
            }
            ProcOp::Store { block, word, value } => {
                locations
                    .entry((block, word))
                    .or_default()
                    .entry(r.node.0)
                    .or_default()
                    .push(value);
            }
        }
    }
    locations
}

fn replay_one(cfg: &VerifyConfig, trace: &Trace, blocks: &[BlockAddr]) -> Observation {
    let replay = TraceWorkload::from_trace(trace).expect("trace validated before differential run");
    let workload = RecordingWorkload {
        inner: replay,
        histories: BTreeMap::new(),
    };
    // The reference stream is already on disk; the replay's capture runs
    // anyway (with completion events) because it is how the per-protocol
    // latency distributions are measured.
    let sys_cfg = cfg.system_config();
    let mut system = System::new(sys_cfg, workload);
    system.run_to_idle();
    let mut obs = Observation {
        quiescent: system.is_quiescent(),
        ..Observation::default()
    };
    for &block in blocks {
        // The same "truth" rule as the invariant sweep, shared via
        // `authoritative_data` so the two can never disagree.
        let data = authoritative_data(&system, block);
        for word in 0..WORDS_PER_BLOCK {
            obs.finals.insert((block, word), data.read(word));
        }
    }
    obs.latencies = vec![Vec::new(); trace.nodes as usize];
    if let Some(captured) = system.take_captured_trace() {
        for r in &captured.records {
            if let Some(lat) = r.completion {
                obs.latencies[r.node.index()].push(lat.as_ps());
            }
        }
    }
    obs.histories = std::mem::take(&mut system.workload_mut().histories);
    obs
}

/// Replays `trace` through all three protocols under `cfg` (the protocol
/// field of `cfg` is ignored) and diffs the results.
pub fn differential_trace(cfg: &VerifyConfig, trace: &Trace) -> DifferentialReport {
    let locations_map = locations_of(trace);
    // Diff every word of every touched block — including words no op
    // addressed: a protocol that corrupts a neighbouring word must not
    // escape.
    let blocks: Vec<BlockAddr> = locations_map
        .keys()
        .map(|&(b, _)| b)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    let all_words: Vec<Location> = blocks
        .iter()
        .flat_map(|&b| (0..WORDS_PER_BLOCK).map(move |w| (b, w)))
        .collect();

    let protocols: Vec<ProtocolKind> = ProtocolKind::ALL.to_vec();
    let observations: Vec<Observation> = protocols
        .iter()
        .map(|&p| {
            let mut cfg = cfg.clone();
            cfg.protocol = p;
            cfg.nodes = trace.nodes;
            replay_one(&cfg, trace, &blocks)
        })
        .collect();

    let mut mismatches = Vec::new();
    let mut racy_divergences = 0usize;
    for &(block, word) in &all_words {
        let finals: Vec<u64> = observations
            .iter()
            .map(|o| o.finals.get(&(block, word)).copied().unwrap_or(0))
            .collect();
        let writers = locations_map.get(&(block, word));
        let writer_count = writers.map(|w| w.len()).unwrap_or(0);
        match writer_count {
            0 | 1 => {
                // Never-written words must stay 0; single-writer words
                // must equal the writer's last store — under every
                // protocol.
                let expected = writers
                    .and_then(|w| w.values().next())
                    .and_then(|vals| vals.last().copied())
                    .unwrap_or(0);
                if finals.iter().any(|&f| f != expected) {
                    mismatches.push(DiffMismatch {
                        block,
                        word,
                        finals,
                        expected,
                    });
                }
            }
            _ => {
                if finals.windows(2).any(|w| w[0] != w[1]) {
                    racy_divergences += 1;
                }
            }
        }
    }

    // Load-history diff (informational).
    let mut history_keys: Vec<(u16, Location)> = observations
        .iter()
        .flat_map(|o| o.histories.keys().copied())
        .collect();
    history_keys.sort_unstable();
    history_keys.dedup();
    let history_divergences = history_keys
        .iter()
        .filter(|k| {
            let first = observations[0].histories.get(k);
            observations[1..]
                .iter()
                .any(|o| o.histories.get(k) != first)
        })
        .count();

    // Latency-distribution diff: the all-nodes aggregate, then per node.
    let mut latency = Vec::with_capacity(1 + trace.nodes as usize);
    let rows = std::iter::once(None).chain((0..trace.nodes).map(Some));
    for node in rows {
        let per_protocol: Vec<Option<LatencySummary>> = observations
            .iter()
            .map(|o| {
                let samples: Vec<u64> = match node {
                    Some(n) => o.latencies[n as usize].clone(),
                    None => o.latencies.iter().flatten().copied().collect(),
                };
                LatencySummary::from_ps(samples)
            })
            .collect();
        let means: Vec<f64> = per_protocol.iter().flatten().map(|s| s.mean_ns).collect();
        let relative_spread = match (
            means.iter().cloned().fold(f64::INFINITY, f64::min),
            means.iter().cloned().fold(0.0f64, f64::max),
        ) {
            (min, max) if min.is_finite() && min > 0.0 => (max - min) / min,
            _ => 0.0,
        };
        latency.push(LatencyDiff {
            node,
            per_protocol,
            relative_spread,
            within_tolerance: relative_spread <= cfg.latency_tolerance,
        });
    }
    let latency_divergences = latency.iter().filter(|d| !d.within_tolerance).count();
    let captured_latency = LatencySummary::from_ps(
        trace
            .records
            .iter()
            .filter_map(|r| r.completion.map(|d| d.as_ps()))
            .collect(),
    );

    // Same-protocol replay exactness: the protocol that captured the trace
    // must reproduce the captured per-node latency sequences to the bit.
    let mut expected: Vec<Vec<u64>> = vec![Vec::new(); trace.nodes as usize];
    for r in &trace.records {
        if let Some(lat) = r.completion {
            expected[r.node.index()].push(lat.as_ps());
        }
    }
    let (replay_exact, replay_latency_mismatches) =
        if expected.iter().all(|node_lats| node_lats.is_empty()) {
            (None, 0)
        } else {
            let base = protocols
                .iter()
                .position(|&p| p == cfg.protocol)
                .expect("the capturing protocol is always compared");
            let mismatches = expected
                .iter()
                .zip(&observations[base].latencies)
                .filter(|(want, got)| want != got)
                .count();
            (Some(mismatches == 0), mismatches)
        };

    DifferentialReport {
        workload: trace.workload.clone(),
        protocols,
        quiescent: observations.iter().map(|o| o.quiescent).collect(),
        locations: all_words.len(),
        mismatches,
        racy_divergences,
        history_divergences,
        latency,
        latency_divergences,
        captured_latency,
        replay_exact,
        replay_latency_mismatches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{run_verify_scenario, VerifyConfig};

    #[test]
    fn clean_trace_has_no_single_writer_mismatches() {
        // producer-consumer is all single-writer: the strictest case.
        let mut cfg = VerifyConfig::new(ProtocolKind::Snooping, 9);
        cfg.ops_per_node = 120;
        let report = run_verify_scenario(&cfg, "producer-consumer");
        assert!(report.passed(), "first: {:?}", report.first_violation());
        let diff = differential_trace(&cfg, &report.trace);
        assert!(diff.passed(), "mismatches: {:?}", diff.mismatches);
        assert_eq!(diff.quiescent, vec![true, true, true]);
        assert!(diff.locations > 0);
        assert!(diff.racy_divergences == 0, "single-writer workload");

        // Verification runs capture completions, so the latency pass has
        // data: an aggregate row plus one per node, every protocol with a
        // summary, and a capture-time baseline.
        assert_eq!(diff.latency.len(), 1 + cfg.nodes as usize);
        let aggregate = &diff.latency[0];
        assert_eq!(aggregate.node, None);
        for (proto, summary) in diff.protocols.iter().zip(&aggregate.per_protocol) {
            let s = summary.unwrap_or_else(|| panic!("{proto:?} has no latency samples"));
            assert!(s.count > 0 && s.mean_ns > 0.0 && s.p99_ns >= s.p50_ns);
        }
        let captured = diff.captured_latency.expect("trace bears completions");
        assert!(captured.count > 0);
        // Same protocol, same seed, same config: the replay must land on
        // the captured latencies exactly.
        assert_eq!(diff.replay_exact, Some(true));
        assert_eq!(diff.replay_latency_mismatches, 0);
        assert!(
            diff.latency_divergences <= diff.latency.len(),
            "divergence count is a subset of rows"
        );
    }

    #[test]
    fn latency_summary_percentiles_are_nearest_rank() {
        let s = LatencySummary::from_ps((1..=100).map(|i| i * 1000).collect()).unwrap();
        assert_eq!(s.count, 100);
        assert!((s.mean_ns - 50.5).abs() < 1e-9);
        // Nearest-rank: the ⌈q·n⌉-th smallest sample — ⌈50⌉ = the 50th
        // for p50, ⌈99⌉ = the 99th for p99.
        assert_eq!(s.p50_ns, 50.0);
        assert_eq!(s.p99_ns, 99.0);
        assert!(LatencySummary::from_ps(Vec::new()).is_none());
    }

    #[test]
    fn multi_writer_trace_is_diffed_without_false_failures() {
        let mut cfg = VerifyConfig::new(ProtocolKind::Snooping, 13);
        cfg.ops_per_node = 120;
        let report = run_verify_scenario(&cfg, "migratory");
        assert!(report.passed(), "first: {:?}", report.first_violation());
        let diff = differential_trace(&cfg, &report.trace);
        assert!(diff.passed(), "mismatches: {:?}", diff.mismatches);
    }

    #[test]
    fn locations_of_collects_writer_programs() {
        use bash_kernel::Duration;
        use bash_trace::TraceRecord;
        let t = Trace {
            nodes: 2,
            seed: 0,
            workload: "x".into(),
            records: vec![
                TraceRecord {
                    node: NodeId(0),
                    think: Duration::ZERO,
                    instructions: 0,
                    op: ProcOp::Store {
                        block: BlockAddr(3),
                        word: 1,
                        value: 10,
                    },
                    completion: None,
                },
                TraceRecord {
                    node: NodeId(0),
                    think: Duration::ZERO,
                    instructions: 0,
                    op: ProcOp::Store {
                        block: BlockAddr(3),
                        word: 1,
                        value: 11,
                    },
                    completion: None,
                },
                TraceRecord {
                    node: NodeId(1),
                    think: Duration::ZERO,
                    instructions: 0,
                    op: ProcOp::Load {
                        block: BlockAddr(4),
                        word: 0,
                    },
                    completion: None,
                },
            ],
        };
        let locs = locations_of(&t);
        assert_eq!(locs.len(), 2);
        assert_eq!(locs[&(BlockAddr(3), 1)][&0], vec![10, 11]);
        assert!(locs[&(BlockAddr(4), 0)].is_empty());
    }
}
