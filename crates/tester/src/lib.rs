//! Randomized coherence protocol tester (paper §3.4).
//!
//! "All three protocols — Snooping, Directory, and BASH — were tested using
//! a stand-alone random tester. This tester uses false sharing, random
//! action/check (store/load) pairs, and widely variable message latencies
//! to force each protocol through a myriad of corner cases."
//!
//! This crate is that tester:
//!
//! * **false sharing** — a handful of hot blocks, each node writing its own
//!   word of them, so data races never exist at word granularity while the
//!   blocks themselves bounce violently between caches;
//! * **action/check pairs** — every store's value is a per-node monotone
//!   counter; a node loading *its own* word must see exactly its last
//!   store, and loading *another node's* word must see a non-decreasing
//!   sequence (per-location coherence order) bounded by the writer's issue
//!   counter;
//! * **variable latencies** — crossbar injection/traversal jitter shuffles
//!   message timing (ordered networks stay totally ordered, as in real
//!   hardware);
//! * **quiescence invariants** — after draining: exactly one owner per
//!   block, home owner records match cache states, every cached copy equals
//!   the owner's data, and each word equals its writer's last store;
//! * **transition coverage** — every controller records its (state, event)
//!   transitions, feeding Table 1.
//!
//! Beyond the random tester, the crate is a full **scenario-driven
//! verification subsystem**:
//!
//! * [`verify`] — drive any catalog scenario or replayed trace through
//!   any protocol with the (generalized) value oracle, quiescence and
//!   structural invariants enabled;
//! * [`differential`] — replay one captured trace through all three
//!   protocols and diff final memory images and per-location value
//!   histories;
//! * [`minimize`] — greedily shrink a failing trace while the violation
//!   reproduces, yielding a minimal `.trace` repro.

pub mod checker;
pub mod differential;
pub mod harness;
pub mod minimize;
pub mod verify;
pub mod workload;

pub use checker::{CheckViolation, Oracle};
pub use differential::{
    differential_trace, DiffMismatch, DifferentialReport, LatencyDiff, LatencySummary,
};
pub use harness::{run_random_test, sweep_structural, TesterConfig, TesterReport};
pub use minimize::{minimize_trace, MinimizeOutcome};
pub use verify::{
    run_verify, run_verify_scenario, run_verify_trace, verify_catalog, verify_catalog_reports,
    CheckedWorkload, VerifyConfig, VerifyReport, VerifyVerdict,
};
pub use workload::RandomWorkload;
