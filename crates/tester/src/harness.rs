//! The tester harness: build a small, hostile system, run random
//! action/check traffic to quiescence, sweep invariants, report coverage.

use std::cell::RefCell;
use std::rc::Rc;

use bash_adaptive::{AdaptorConfig, DecisionMode};
use bash_coherence::cache::CacheGeometry;
use bash_coherence::types::WORDS_PER_BLOCK;
use bash_coherence::{home_of, BlockAddr, BlockData, Mosi, Owner, ProtocolKind, TransitionLog};
use bash_kernel::Duration;
use bash_net::{Jitter, NodeId, NodeSet};
use bash_sim::{System, SystemConfig};
use bash_workloads::Workload;

use crate::checker::{CheckViolation, Oracle};
use crate::workload::RandomWorkload;

/// Configuration of one randomized test run.
#[derive(Debug, Clone)]
pub struct TesterConfig {
    /// Protocol under test.
    pub protocol: ProtocolKind,
    /// Number of nodes (≤ 8 so every node owns a block word).
    pub nodes: u16,
    /// Hot block pool size (small ⇒ heavy false sharing and racing).
    pub blocks: u64,
    /// Operations per node.
    pub ops_per_node: u64,
    /// Maximum random think time between a node's operations.
    pub max_think: Duration,
    /// Fraction of operations that are stores.
    pub store_fraction: f64,
    /// Endpoint bandwidth (low values add queueing-driven reordering).
    pub link_mbps: u64,
    /// Randomize message latencies ("widely variable message latencies").
    pub jitter: bool,
    /// Master seed.
    pub seed: u64,
    /// BASH retry-buffer capacity (1 forces the nack/deadlock path).
    pub retry_capacity: usize,
    /// BASH decision mode (AlwaysUnicast maximizes retries; Adaptive mixes).
    pub adaptor_mode: DecisionMode,
    /// BASH initial policy value (128 ⇒ 50/50 broadcast/unicast mixing).
    pub initial_policy: u32,
}

impl TesterConfig {
    /// A hostile default: 4 nodes, 6 blocks, tiny cache, jitter on, and —
    /// for BASH — a 50/50 cast mix.
    pub fn hostile(protocol: ProtocolKind, seed: u64) -> Self {
        TesterConfig {
            protocol,
            nodes: 4,
            blocks: 6,
            ops_per_node: 2_000,
            max_think: Duration::from_ns(300),
            store_fraction: 0.6,
            link_mbps: 800,
            jitter: true,
            seed,
            retry_capacity: 64,
            adaptor_mode: DecisionMode::Adaptive,
            initial_policy: 128,
        }
    }

    /// Forces the BASH nack path: one retry buffer, all requests unicast.
    pub fn nack_storm(seed: u64) -> Self {
        TesterConfig {
            protocol: ProtocolKind::Bash,
            retry_capacity: 1,
            adaptor_mode: DecisionMode::AlwaysUnicast,
            initial_policy: 255,
            ..Self::hostile(ProtocolKind::Bash, seed)
        }
    }
}

/// The outcome of a randomized test run.
#[derive(Debug)]
pub struct TesterReport {
    /// Operations completed.
    pub ops: u64,
    /// Loads validated against the oracle.
    pub loads_checked: u64,
    /// Stores applied.
    pub stores_applied: u64,
    /// All violations (empty = pass).
    pub violations: Vec<CheckViolation>,
    /// Merged cache-controller transition coverage.
    pub cache_log: TransitionLog,
    /// Merged memory-controller transition coverage.
    pub mem_log: TransitionLog,
    /// BASH retries observed.
    pub retries: u64,
    /// BASH nacks observed.
    pub nacks: u64,
    /// BASH broadcast escalations observed.
    pub escalations: u64,
    /// Writebacks squashed by racing GetMs (the classic writeback race).
    pub writebacks_squashed: u64,
    /// Writebacks the home ignored as stale.
    pub writebacks_stale: u64,
}

impl TesterReport {
    /// True when no violations were found.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Runs one randomized protocol test to quiescence.
pub fn run_random_test(cfg: TesterConfig) -> TesterReport {
    let mut adaptor = AdaptorConfig::paper_default();
    adaptor.mode = cfg.adaptor_mode;
    adaptor.initial_policy = cfg.initial_policy;

    let mut sys_cfg = SystemConfig::paper_default(cfg.protocol, cfg.nodes, cfg.link_mbps)
        .with_adaptor(adaptor)
        .with_seed(cfg.seed)
        .with_coverage()
        // Tiny cache: the hot pool thrashes it, exercising evictions and
        // writeback races constantly.
        .with_cache(CacheGeometry { sets: 2, ways: 2 });
    sys_cfg.retry_capacity = cfg.retry_capacity;
    if cfg.jitter {
        sys_cfg = sys_cfg.with_jitter(Jitter::Uniform {
            injection_max: Duration::from_ns(200),
            traversal_max: Duration::from_ns(400),
            seed: cfg.seed ^ 0x7157,
        });
    }

    let oracle = Rc::new(RefCell::new(Oracle::new()));
    let workload = RandomWorkload::new(
        cfg.nodes,
        cfg.blocks,
        cfg.ops_per_node,
        cfg.max_think,
        cfg.store_fraction,
        cfg.seed,
        Rc::clone(&oracle),
    );

    let mut system = System::new(sys_cfg, workload);
    system.run_to_idle();

    // ---- quiescence + invariant sweep ----
    {
        let mut o = oracle.borrow_mut();
        if !system.is_quiescent() {
            o.report("system failed to reach quiescence (possible deadlock)".into());
        }
        sweep_structural(&system, &mut o);
    }

    // ---- coverage + stats ----
    let mut cache_log = TransitionLog::new();
    let mut mem_log = TransitionLog::new();
    let mut squashed = 0;
    for c in system.caches() {
        cache_log.merge(c.log());
        squashed += c.stats().writebacks_squashed;
    }
    let (mut retries, mut nacks, mut escalations, mut stale) = (0, 0, 0, 0);
    for m in system.mems() {
        mem_log.merge(m.log());
        retries += m.stats().retries_sent;
        nacks += m.stats().nacks_sent;
        escalations += m.stats().broadcast_escalations;
        stale += m.stats().writebacks_stale;
    }

    drop(system); // releases the workload's clone of the oracle
    let oracle = Rc::try_unwrap(oracle)
        .expect("workload dropped with the system")
        .into_inner();
    TesterReport {
        ops: cfg.nodes as u64 * cfg.ops_per_node,
        loads_checked: oracle.loads_checked(),
        stores_applied: oracle.stores_applied(),
        violations: oracle.violations().to_vec(),
        cache_log,
        mem_log,
        retries,
        nacks,
        escalations,
        writebacks_squashed: squashed,
        writebacks_stale: stale,
    }
}

/// The authoritative copy of `block` at quiescence: the owning cache's
/// data if any node holds it in M or O, the home memory's otherwise.
/// This is *the* definition of "truth" the invariant sweep and the
/// differential diff both check against.
pub fn authoritative_data<W: Workload>(system: &System<W>, block: BlockAddr) -> BlockData {
    let cfg = system.config();
    let owner = (0..cfg.nodes).map(NodeId).find(|n| {
        matches!(
            system.caches()[n.index()].cache().state(block),
            Some(Mosi::M) | Some(Mosi::O)
        )
    });
    let home = home_of(block, cfg.nodes, cfg.hierarchy.as_ref());
    match owner {
        Some(p) => system.caches()[p.index()]
            .cache()
            .data(block)
            .expect("owner has data"),
        None => system.mems()[home.index()].stored_data(block),
    }
}

/// Post-quiescence structural invariants, over every block the run
/// touched (the oracle records the touched set, so this works for any
/// workload — random tester, catalog scenario, or replayed trace).
pub fn sweep_structural<W: Workload>(system: &System<W>, oracle: &mut Oracle) {
    let nodes = system.config().nodes;
    let protocol = system.config().protocol;
    let hier = system.config().hierarchy;
    for block in oracle.touched_blocks() {
        // Under a hierarchy the authoritative home is the block's spine
        // bank, not the flat `block % nodes` node.
        let home = home_of(block, nodes, hier.as_ref());

        // At most one cache owner.
        let owners: Vec<NodeId> = (0..nodes)
            .map(NodeId)
            .filter(|n| {
                matches!(
                    system.caches()[n.index()].cache().state(block),
                    Some(Mosi::M) | Some(Mosi::O)
                )
            })
            .collect();
        if owners.len() > 1 {
            oracle.report(format!("{block}: multiple cache owners {owners:?}"));
        }

        // The home's owner record matches reality.
        let record = system.mems()[home.index()].owner_record(block);
        match record {
            Owner::Memory => {
                if !owners.is_empty() {
                    oracle.report(format!(
                        "{block}: home says memory owns it, but {owners:?} hold M/O"
                    ));
                }
            }
            Owner::Node(p) => {
                if owners != vec![p] {
                    oracle.report(format!(
                        "{block}: home says {p} owns it, but cache owners are {owners:?}"
                    ));
                }
            }
        }

        // Authoritative data: owner cache or home memory.
        let truth = authoritative_data(system, block);

        // Every S copy agrees with the truth; sharer records are supersets.
        let mut actual_sharers = NodeSet::EMPTY;
        for n in (0..nodes).map(NodeId) {
            if system.caches()[n.index()].cache().state(block) == Some(Mosi::S) {
                actual_sharers.insert(n);
                let copy = system.caches()[n.index()]
                    .cache()
                    .data(block)
                    .expect("S copy has data");
                if copy != truth {
                    oracle.report(format!("{block}: stale S copy at {n}"));
                }
            }
        }
        if protocol != ProtocolKind::Snooping {
            let recorded = system.mems()[home.index()].sharer_record(block);
            // The owner itself may appear in stale sharer supersets; only
            // require recorded ⊇ actual.
            if !recorded.union(&NodeSet::EMPTY).is_superset(&actual_sharers) {
                oracle.report(format!(
                    "{block}: sharer record {recorded} misses actual sharers {actual_sharers}"
                ));
            }
        }

        // Final values: 0 or some writer's last store, per word.
        for word in 0..WORDS_PER_BLOCK {
            oracle.check_final(block, word, truth.read(word));
        }
    }
}
