//! The scenario-driven verification harness: drive **any** workload —
//! a catalog scenario, a replayed trace, or anything implementing
//! [`Workload`] — through any protocol with the full invariant suite
//! (value oracle + quiescence + structural sweep) enabled.
//!
//! The harness wraps the workload in a [`CheckedWorkload`], which
//! transparently rewrites every store value with a unique token from the
//! generalized [`Oracle`] (see [`checker`](crate::checker) for why this
//! makes every load exactly attributable) and caps the stream so endless
//! generators reach quiescence. The run captures its instrumented op
//! stream into a [`Trace`], so a failing run hands the
//! [`minimize`](crate::minimize) pass a replayable starting point.

use std::cell::RefCell;
use std::rc::Rc;

use bash_coherence::cache::CacheGeometry;
use bash_coherence::{HierarchyConfig, ProcOp, ProtocolKind};
use bash_kernel::{pool, Duration, Time};
use bash_net::{FaultPlaneConfig, Jitter, NodeId, OrderingMode, TopologyKind};
use bash_sim::{FaultInjection, RunError, System, SystemConfig, WatchdogBudget, WedgeDiagnostic};
use bash_trace::Trace;
use bash_workloads::{catalog, TraceWorkload, WorkItem, Workload};

use crate::checker::{CheckViolation, Oracle};
use crate::harness::sweep_structural;

/// Configuration of one verification run.
#[derive(Debug, Clone)]
pub struct VerifyConfig {
    /// Protocol under test.
    pub protocol: ProtocolKind,
    /// System size in nodes.
    pub nodes: u16,
    /// Endpoint bandwidth (low values add queueing-driven reordering).
    pub link_mbps: u64,
    /// Interconnect topology under test. Non-crossbar topologies route
    /// hop-by-hop through the fabric engine; the report's
    /// [`ordering`](VerifyReport::ordering) field records whether the
    /// delivery order the protocols saw was the interconnect's native
    /// total order or a resequenced one.
    pub topology: TopologyKind,
    /// Master seed (workload construction and jitter).
    pub seed: u64,
    /// Per-node op cap applied to endless generators. Trace replays run to
    /// the end of the trace regardless.
    pub ops_per_node: u64,
    /// Message-latency jitter; `None` disables perturbation.
    pub jitter: Option<Jitter>,
    /// L2 geometry — small by default so the hot set thrashes it,
    /// exercising evictions and writeback races.
    pub cache: CacheGeometry,
    /// Deliberate fault injection (harness self-tests only).
    pub fault: Option<FaultInjection>,
    /// Deterministic link-fault plane for the routed fabric (drops,
    /// corruption, outages — with or without the reliable transport).
    /// Requires a non-crossbar [`topology`](Self::topology).
    pub fault_plane: Option<FaultPlaneConfig>,
    /// Quiescence watchdog: converts a wedged run into a structured
    /// [`WedgeDiagnostic`] on the report instead of spinning forever.
    pub watchdog: Option<WatchdogBudget>,
    /// Two-level hierarchy shape (snooping clusters under a sharded
    /// directory spine); `None` verifies the flat organization. Both
    /// counts must divide [`nodes`](Self::nodes).
    pub hierarchy: Option<HierarchyConfig>,
    /// Relative spread of per-node mean latencies across protocols above
    /// which a differential run counts the location as a latency
    /// divergence (informational — latency differences are *expected*
    /// across protocols; the diff exists to quantify them, and only value
    /// divergence ever fails a run). 0.25 = 25 %.
    pub latency_tolerance: f64,
}

impl VerifyConfig {
    /// The hostile default for `protocol`: 4 nodes, 800 MB/s, a tiny
    /// thrashing cache, jitter on, 400 ops per node.
    pub fn new(protocol: ProtocolKind, seed: u64) -> Self {
        VerifyConfig {
            protocol,
            nodes: 4,
            link_mbps: 800,
            topology: TopologyKind::Crossbar,
            seed,
            ops_per_node: 400,
            jitter: Some(Jitter::Uniform {
                injection_max: Duration::from_ns(200),
                traversal_max: Duration::from_ns(400),
                seed: seed ^ 0x7157,
            }),
            cache: CacheGeometry { sets: 4, ways: 2 },
            fault: None,
            fault_plane: None,
            watchdog: None,
            hierarchy: None,
            latency_tolerance: 0.25,
        }
    }

    /// The `SystemConfig` a verification run under this config uses.
    /// Capture is always on — with completion events, so every
    /// verification trace doubles as input to the differential latency
    /// pass.
    pub fn system_config(&self) -> SystemConfig {
        let mut cfg = SystemConfig::paper_default(self.protocol, self.nodes, self.link_mbps)
            .with_topology(self.topology)
            .with_seed(self.seed)
            .with_cache(self.cache)
            .with_capture_completions();
        if let Some(jitter) = &self.jitter {
            cfg = cfg.with_jitter(jitter.clone());
        }
        if let Some(plane) = &self.fault_plane {
            cfg = cfg.with_fault_plane(plane.clone());
        }
        if let Some(budget) = self.watchdog {
            cfg = cfg.with_watchdog(budget);
        }
        if let Some(h) = self.hierarchy {
            cfg = cfg.with_hierarchy(h);
        }
        cfg.fault = self.fault;
        cfg
    }
}

/// The outcome of one verification run.
#[derive(Debug)]
pub struct VerifyReport {
    /// Workload display name.
    pub workload: String,
    /// Protocol that was verified.
    pub protocol: ProtocolKind,
    /// System size in nodes.
    pub nodes: u16,
    /// How the interconnect provided the total order the protocols
    /// consumed: natively (crossbar, star) or resequenced at the edges
    /// (line, ring, mesh, torus). The invariant suite holds either way —
    /// that is the point of checking both.
    pub ordering: OrderingMode,
    /// Operations the workload issued.
    pub ops: u64,
    /// Loads validated against the oracle.
    pub loads_checked: u64,
    /// Stores applied through the oracle.
    pub stores_applied: u64,
    /// Distinct blocks the run touched (structural-sweep coverage).
    pub blocks_touched: usize,
    /// Locations with more than one writer: those get the weaker
    /// per-writer-order checks, so 0 means the whole run was checked
    /// with single-writer exactness.
    pub multi_writer_locations: usize,
    /// All violations (empty = pass).
    pub violations: Vec<CheckViolation>,
    /// The structured diagnostic when the run wedged — a watchdog budget
    /// trip, or a drained queue that never reached quiescence (reported
    /// even with no watchdog armed). The matching violation text is also
    /// in [`violations`](Self::violations), so `passed()` still tells the
    /// whole truth. `None` on runs that reached quiescence.
    pub wedge: Option<WedgeDiagnostic>,
    /// The instrumented op stream the run executed — replay it through
    /// [`run_verify_trace`] to reproduce this verdict, or feed it to
    /// [`minimize_trace`](crate::minimize::minimize_trace) on failure.
    pub trace: Trace,
}

impl VerifyReport {
    /// True when no violations were found.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// The first violation's description, for error messages.
    pub fn first_violation(&self) -> Option<&str> {
        self.violations.first().map(|v| v.what.as_str())
    }
}

/// Wraps any workload for verification: caps the per-node stream and
/// rewrites every store value with a unique oracle token, making each
/// load's return value exactly attributable. Completions are forwarded to
/// the inner workload (catalog scenarios are completion-independent by
/// contract, so the rewritten values never change the stream).
pub struct CheckedWorkload<W> {
    inner: W,
    cap: u64,
    issued: Vec<u64>,
    oracle: Rc<RefCell<Oracle>>,
}

impl<W: Workload> CheckedWorkload<W> {
    /// Wraps `inner`, capping every node at `cap` ops.
    pub fn new(inner: W, nodes: u16, cap: u64, oracle: Rc<RefCell<Oracle>>) -> Self {
        assert!(cap > 0, "a verification run needs at least one op per node");
        CheckedWorkload {
            inner,
            cap,
            issued: vec![0; nodes as usize],
            oracle,
        }
    }
}

impl<W: Workload> Workload for CheckedWorkload<W> {
    fn next_item(&mut self, node: NodeId, now: Time) -> Option<WorkItem> {
        if self.issued[node.index()] >= self.cap {
            return None;
        }
        let mut item = self.inner.next_item(node, now)?;
        self.issued[node.index()] += 1;
        if let ProcOp::Store { block, word, .. } = item.op {
            let token = self.oracle.borrow_mut().issue_store(node, block, word);
            item.op = ProcOp::Store {
                block,
                word,
                value: token,
            };
        }
        Some(item)
    }

    fn on_complete(&mut self, node: NodeId, now: Time, op: &ProcOp, value: u64) {
        self.oracle.borrow_mut().observe(node, now, op, value);
        self.inner.on_complete(node, now, op, value);
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

/// Runs one workload through the full invariant suite to quiescence.
pub fn run_verify<W: Workload>(cfg: &VerifyConfig, workload: W) -> VerifyReport {
    let oracle = Rc::new(RefCell::new(Oracle::new()));
    let checked = CheckedWorkload::new(workload, cfg.nodes, cfg.ops_per_node, Rc::clone(&oracle));
    let mut system = System::new(cfg.system_config(), checked);
    let wedge = match system.try_run_to_idle() {
        Ok(()) => None,
        Err(RunError::Wedged(diag)) => Some(*diag),
    };

    {
        let mut o = oracle.borrow_mut();
        if !system.is_quiescent() {
            o.report("system failed to reach quiescence (possible deadlock)".into());
        }
        if let Some(diag) = &wedge {
            o.report(diag.to_string());
        }
        sweep_structural(&system, &mut o);
    }

    let ordering = system.ordering();
    let trace = system
        .take_captured_trace()
        .expect("verification runs always capture");
    let workload_name = trace.workload.clone();
    let ops = trace.records.len() as u64;
    drop(system); // releases the workload's clone of the oracle
    let oracle = Rc::try_unwrap(oracle)
        .expect("workload dropped with the system")
        .into_inner();
    VerifyReport {
        workload: workload_name,
        protocol: cfg.protocol,
        nodes: cfg.nodes,
        ordering,
        ops,
        loads_checked: oracle.loads_checked(),
        stores_applied: oracle.stores_applied(),
        blocks_touched: oracle.touched_blocks().len(),
        multi_writer_locations: oracle.multi_writer_locations(),
        violations: oracle.violations().to_vec(),
        wedge,
        trace,
    }
}

/// Verifies a named catalog scenario under `cfg`.
///
/// # Panics
///
/// Panics on an unknown scenario name (the facade validates names before
/// calling in; direct callers can check `catalog::find` first).
pub fn run_verify_scenario(cfg: &VerifyConfig, scenario: &str) -> VerifyReport {
    let workload = catalog::build(scenario, cfg.nodes, cfg.seed)
        .unwrap_or_else(|| panic!("unknown scenario {scenario:?}"));
    run_verify(cfg, workload)
}

/// Replays a captured trace under `cfg` with checks enabled. The trace's
/// node count overrides `cfg.nodes`, and the whole trace runs (no op cap):
/// this is the reproduction path for minimized failure traces.
pub fn run_verify_trace(cfg: &VerifyConfig, trace: &Trace) -> VerifyReport {
    let mut cfg = cfg.clone();
    cfg.nodes = trace.nodes;
    cfg.ops_per_node = u64::MAX;
    let replay = TraceWorkload::from_trace(trace).expect("trace validated before verification");
    run_verify(&cfg, replay)
}

/// One cell of a [`verify_catalog`] matrix run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyVerdict {
    /// Catalog scenario name.
    pub scenario: String,
    /// Protocol of this cell.
    pub protocol: ProtocolKind,
    /// True when the run found no violations.
    pub passed: bool,
    /// Number of violations found.
    pub violations: usize,
    /// First violation message, when any.
    pub first_violation: Option<String>,
    /// Loads the oracle validated (coverage sanity).
    pub loads_checked: u64,
}

/// Runs every catalog scenario × every protocol under the invariant
/// harness and returns the **full reports** (with captured traces),
/// fanning the (scenario × protocol) grid across `threads` worker
/// threads. This is the one source of truth for the matrix enumeration:
/// [`verify_catalog`] condenses it to verdicts for tests, and the
/// experiments `verify` gate builds its CSV and minimization on it.
pub fn verify_catalog_reports(
    nodes: u16,
    seed: u64,
    ops_per_node: u64,
    threads: usize,
) -> Vec<(&'static str, VerifyReport)> {
    let scenarios = catalog::CATALOG;
    let protos = ProtocolKind::ALL;
    let tasks = scenarios.len() * protos.len();
    pool::run_indexed(tasks, threads.max(1), |i| {
        let scenario = &scenarios[i / protos.len()];
        let protocol = protos[i % protos.len()];
        let mut cfg = VerifyConfig::new(protocol, seed);
        cfg.nodes = nodes;
        cfg.ops_per_node = ops_per_node;
        (scenario.name, run_verify_scenario(&cfg, scenario.name))
    })
}

/// Runs every catalog scenario × every protocol under the invariant
/// harness (see [`verify_catalog_reports`]) and condenses each cell to a
/// [`VerifyVerdict`]. Every cell is an independent, self-seeded
/// simulation, so the verdict list is **identical at any thread count**
/// — which is itself part of the determinism contract the root test
/// suite enforces.
pub fn verify_catalog(
    nodes: u16,
    seed: u64,
    ops_per_node: u64,
    threads: usize,
) -> Vec<VerifyVerdict> {
    verify_catalog_reports(nodes, seed, ops_per_node, threads)
        .into_iter()
        .map(|(scenario, report)| VerifyVerdict {
            scenario: scenario.to_string(),
            protocol: report.protocol,
            passed: report.passed(),
            violations: report.violations.len(),
            first_violation: report.first_violation().map(str::to_string),
            loads_checked: report.loads_checked,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_verify_passes_and_captures() {
        let cfg = VerifyConfig::new(ProtocolKind::Snooping, 7);
        let report = run_verify_scenario(&cfg, "migratory");
        assert!(report.passed(), "first: {:?}", report.first_violation());
        assert_eq!(report.workload, "migratory");
        assert_eq!(report.ops, 4 * cfg.ops_per_node);
        assert!(report.loads_checked > 0);
        assert!(report.stores_applied > 0);
        assert!(report.blocks_touched > 1);
        assert_eq!(report.trace.records.len() as u64, report.ops);
    }

    #[test]
    fn fabric_topologies_verify_and_report_their_ordering() {
        for (topology, want) in [
            (TopologyKind::Crossbar, OrderingMode::NativeTotalOrder),
            (TopologyKind::Star, OrderingMode::NativeTotalOrder),
            (TopologyKind::Mesh2D, OrderingMode::Resequenced),
        ] {
            let mut cfg = VerifyConfig::new(ProtocolKind::Bash, 21);
            cfg.topology = topology;
            cfg.ops_per_node = 120;
            let report = run_verify_scenario(&cfg, "migratory");
            assert_eq!(report.ordering, want, "{topology:?}");
            assert!(
                report.passed(),
                "{topology:?} first: {:?}",
                report.first_violation()
            );
        }
    }

    #[test]
    fn captured_verify_trace_reproduces_the_verdict() {
        let cfg = VerifyConfig::new(ProtocolKind::Bash, 11);
        let report = run_verify_scenario(&cfg, "false-sharing");
        assert!(report.passed(), "first: {:?}", report.first_violation());
        assert_eq!(
            report.multi_writer_locations, 0,
            "false sharing is single-writer per word by construction"
        );
        let replayed = run_verify_trace(&cfg, &report.trace);
        assert!(replayed.passed(), "first: {:?}", replayed.first_violation());
        assert_eq!(replayed.ops, report.ops);
    }

    #[test]
    fn checked_workload_caps_and_rewrites() {
        use bash_workloads::PatternWorkload;
        let oracle = Rc::new(RefCell::new(Oracle::new()));
        let inner = PatternWorkload::new(2, bash_workloads::PatternParams::false_sharing(), 3);
        let mut wl = CheckedWorkload::new(inner, 2, 5, Rc::clone(&oracle));
        let mut seen = Vec::new();
        while let Some(item) = wl.next_item(NodeId(0), Time::ZERO) {
            match item.op {
                ProcOp::Store { value, .. } => seen.push(value),
                ProcOp::Load { .. } => {}
            }
        }
        assert_eq!(seen.len(), 5, "false sharing is all stores, capped at 5");
        let mut dedup = seen.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seen.len(), "tokens must be unique");
    }

    #[test]
    fn matrix_is_thread_invariant() {
        let serial = verify_catalog(2, 5, 24, 1);
        let parallel = verify_catalog(2, 5, 24, 4);
        assert_eq!(serial, parallel);
        assert_eq!(
            serial.len(),
            catalog::CATALOG.len() * ProtocolKind::ALL.len()
        );
    }
}
