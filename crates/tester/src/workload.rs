//! The random action/check workload.

use std::cell::RefCell;
use std::rc::Rc;

use bash_coherence::types::WORDS_PER_BLOCK;
use bash_coherence::{BlockAddr, ProcOp};
use bash_kernel::{DetRng, Duration, Time};
use bash_net::NodeId;
use bash_workloads::{WorkItem, Workload};

use crate::checker::Oracle;

/// A workload issuing random store/load pairs over a small, hotly contended
/// block pool, validating every load against the [`Oracle`].
#[derive(Debug)]
pub struct RandomWorkload {
    nodes: u16,
    blocks: u64,
    ops_per_node: u64,
    max_think: Duration,
    store_fraction: f64,
    rngs: Vec<DetRng>,
    issued: Vec<u64>,
    oracle: Rc<RefCell<Oracle>>,
}

impl RandomWorkload {
    /// Creates the workload. Requires `nodes <= WORDS_PER_BLOCK` so each
    /// node owns a distinct word of every block (false sharing with
    /// single-writer words, making every load exactly checkable).
    ///
    /// # Panics
    ///
    /// Panics if `nodes` exceeds [`WORDS_PER_BLOCK`] or is zero.
    pub fn new(
        nodes: u16,
        blocks: u64,
        ops_per_node: u64,
        max_think: Duration,
        store_fraction: f64,
        seed: u64,
        oracle: Rc<RefCell<Oracle>>,
    ) -> Self {
        assert!(nodes > 0 && (nodes as usize) <= WORDS_PER_BLOCK);
        assert!(blocks > 0 && ops_per_node > 0);
        let mut root = DetRng::seed_from(seed);
        let rngs = (0..nodes).map(|i| root.fork(i as u64)).collect();
        RandomWorkload {
            nodes,
            blocks,
            ops_per_node,
            max_think,
            store_fraction,
            rngs,
            issued: vec![0; nodes as usize],
            oracle,
        }
    }

    /// Total operations issued so far.
    pub fn total_issued(&self) -> u64 {
        self.issued.iter().sum()
    }
}

impl Workload for RandomWorkload {
    fn next_item(&mut self, node: NodeId, _now: Time) -> Option<WorkItem> {
        debug_assert!(node.index() < self.rngs.len());
        let idx = node.index();
        if self.issued[idx] >= self.ops_per_node {
            return None;
        }
        self.issued[idx] += 1;
        let rng = &mut self.rngs[idx];
        let block = BlockAddr(rng.below(self.blocks));
        let think = if self.max_think.is_zero() {
            Duration::ZERO
        } else {
            Duration::from_ps(rng.below(self.max_think.as_ps() + 1))
        };
        let op = if rng.chance(self.store_fraction) {
            let word = idx % WORDS_PER_BLOCK;
            let value = self.oracle.borrow_mut().issue_store(node, block, word);
            ProcOp::Store { block, word, value }
        } else {
            // Load a random word: sometimes our own (exact check), sometimes
            // another node's (monotonicity check).
            let word = rng.below(self.nodes as u64) as usize;
            ProcOp::Load { block, word }
        };
        Some(WorkItem {
            think,
            instructions: 0,
            op,
        })
    }

    fn on_complete(&mut self, node: NodeId, now: Time, op: &ProcOp, value: u64) {
        self.oracle.borrow_mut().observe(node, now, op, value);
    }

    fn name(&self) -> &str {
        "random-tester"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload(nodes: u16, ops: u64) -> (RandomWorkload, Rc<RefCell<Oracle>>) {
        let oracle = Rc::new(RefCell::new(Oracle::new()));
        let wl = RandomWorkload::new(
            nodes,
            4,
            ops,
            Duration::from_ns(100),
            0.5,
            7,
            Rc::clone(&oracle),
        );
        (wl, oracle)
    }

    #[test]
    fn issues_exactly_ops_per_node_then_stops() {
        let (mut wl, _oracle) = workload(2, 5);
        for _ in 0..5 {
            assert!(wl.next_item(NodeId(0), Time::ZERO).is_some());
        }
        assert!(wl.next_item(NodeId(0), Time::ZERO).is_none());
        assert!(wl.next_item(NodeId(1), Time::ZERO).is_some());
        assert_eq!(wl.total_issued(), 6);
    }

    #[test]
    fn stores_write_only_the_nodes_own_word() {
        let (mut wl, _oracle) = workload(4, 200);
        for _ in 0..200 {
            if let Some(item) = wl.next_item(NodeId(3), Time::ZERO) {
                if let ProcOp::Store { word, .. } = item.op {
                    assert_eq!(word, 3, "false sharing requires single-writer words");
                }
            }
        }
    }

    #[test]
    fn blocks_stay_in_the_hot_pool_and_thinks_are_bounded() {
        let (mut wl, _oracle) = workload(2, 500);
        for _ in 0..500 {
            let item = wl.next_item(NodeId(0), Time::ZERO).unwrap();
            assert!(item.op.block().0 < 4);
            assert!(item.think <= Duration::from_ns(100));
        }
    }

    #[test]
    fn store_values_come_from_the_oracle_monotonically() {
        let (mut wl, oracle) = workload(1, 300);
        let mut last = std::collections::HashMap::new();
        for _ in 0..300 {
            let item = wl.next_item(NodeId(0), Time::ZERO).unwrap();
            if let ProcOp::Store { block, value, .. } = item.op {
                let prev = last.insert(block, value).unwrap_or(0);
                assert!(
                    value > prev,
                    "oracle counters are per-(node, block) monotone"
                );
            }
        }
        assert!(oracle.borrow().violations().is_empty());
    }

    #[test]
    #[should_panic(expected = "nodes")]
    fn too_many_nodes_for_word_ownership_panics() {
        let oracle = Rc::new(RefCell::new(Oracle::new()));
        let _ = RandomWorkload::new(9, 4, 10, Duration::ZERO, 0.5, 1, oracle);
    }
}
