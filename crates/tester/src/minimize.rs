//! Failing-trace minimization: greedily shrink a captured trace while a
//! violation still reproduces, then hand back a minimal `.trace` repro.
//!
//! The shrinker is transformation-based delta debugging: every candidate
//! is produced by a structure-preserving edit (drop a run of ops, drop a
//! whole node and renumber, remap the block set onto a smaller pool, zero
//! the think times), validated with [`Trace::validate`], and kept only if
//! the caller's `reproduces` predicate still fails on it. Because the
//! predicate re-runs the full verification harness, any transformation is
//! fair game — the repro does not need to be a subsequence of the
//! original, only to exhibit *a* violation under the same configuration.
//!
//! Passes repeat until a fixpoint (or the replay budget runs out):
//! v2-chunk-aligned removal first (whole on-disk chunks, so candidates
//! re-encode cheaply and failing windows correspond to file chunks), then
//! classic ddmin windows, then node and block reductions, then cosmetic
//! simplifications.

use bash_net::NodeId;
use bash_trace::{stream::DEFAULT_CHUNK_RECORDS, Trace};

/// The result of a minimization run.
#[derive(Debug)]
pub struct MinimizeOutcome {
    /// The minimized trace (still reproducing the violation).
    pub trace: Trace,
    /// Replays spent (predicate invocations).
    pub replays: usize,
    /// Record count of the input trace.
    pub reduced_from: usize,
}

/// Greedily shrinks `trace` while `reproduces` keeps returning `true`,
/// spending at most `max_replays` predicate calls.
///
/// The input must itself reproduce (`reproduces(trace) == true`);
/// otherwise the input is returned unchanged with `replays == 1`.
pub fn minimize_trace<F>(trace: &Trace, mut reproduces: F, max_replays: usize) -> MinimizeOutcome
where
    F: FnMut(&Trace) -> bool,
{
    let reduced_from = trace.records.len();
    let mut replays = 0usize;
    let mut check = |t: &Trace, replays: &mut usize| -> bool {
        if *replays >= max_replays || t.validate().is_err() {
            return false;
        }
        *replays += 1;
        reproduces(t)
    };
    if !check(trace, &mut replays) {
        return MinimizeOutcome {
            trace: trace.clone(),
            replays,
            reduced_from,
        };
    }

    let mut best = trace.clone();
    loop {
        let before = (best.records.len(), best.nodes, distinct_blocks(&best));
        shrink_whole_chunks(&mut best, &mut check, &mut replays);
        shrink_ops(&mut best, &mut check, &mut replays);
        shrink_nodes(&mut best, &mut check, &mut replays);
        shrink_blocks(&mut best, &mut check, &mut replays);
        simplify(&mut best, &mut check, &mut replays);
        let after = (best.records.len(), best.nodes, distinct_blocks(&best));
        if after == before || replays >= max_replays {
            break;
        }
    }
    MinimizeOutcome {
        trace: best,
        replays,
        reduced_from,
    }
}

fn distinct_blocks(t: &Trace) -> usize {
    let mut blocks: Vec<u64> = t.records.iter().map(|r| r.op.block().0).collect();
    blocks.sort_unstable();
    blocks.dedup();
    blocks.len()
}

/// Chunk-aware pre-pass for traces larger than one v2 chunk: drop whole
/// [`DEFAULT_CHUNK_RECORDS`]-aligned windows. Candidates keep the
/// surviving records' chunk alignment (only the tail chunk re-packs), so
/// each attempt corresponds to deleting on-disk chunks — the cheapest
/// large bite before the general ddmin pass takes over.
fn shrink_whole_chunks<F>(best: &mut Trace, check: &mut F, replays: &mut usize)
where
    F: FnMut(&Trace, &mut usize) -> bool,
{
    if best.records.len() <= DEFAULT_CHUNK_RECORDS {
        return;
    }
    let mut i = 0;
    while i < best.records.len() {
        let mut candidate = best.clone();
        let end = (i + DEFAULT_CHUNK_RECORDS).min(candidate.records.len());
        candidate.records.drain(i..end);
        if check(&candidate, replays) {
            *best = candidate;
            // Do not advance: the next chunk slid into place at `i`.
        } else {
            i += DEFAULT_CHUNK_RECORDS;
        }
    }
}

/// Classic ddmin chunk removal: drop windows of records, halving the
/// window as progress stalls.
fn shrink_ops<F>(best: &mut Trace, check: &mut F, replays: &mut usize)
where
    F: FnMut(&Trace, &mut usize) -> bool,
{
    let mut chunk = (best.records.len() / 2).max(1);
    while chunk >= 1 {
        let mut i = 0;
        let mut progressed = false;
        while i < best.records.len() {
            let mut candidate = best.clone();
            let end = (i + chunk).min(candidate.records.len());
            candidate.records.drain(i..end);
            if check(&candidate, replays) {
                *best = candidate;
                progressed = true;
                // Do not advance: the next window slid into place.
            } else {
                i += chunk;
            }
        }
        if chunk == 1 && !progressed {
            break;
        }
        if !progressed {
            chunk /= 2;
        }
    }
}

/// Tries to drop each node's ops entirely, renumbering the survivors so
/// the trace header shrinks with the node set.
fn shrink_nodes<F>(best: &mut Trace, check: &mut F, replays: &mut usize)
where
    F: FnMut(&Trace, &mut usize) -> bool,
{
    let mut node = best.nodes;
    while node > 0 && best.nodes > 1 {
        node -= 1;
        if node >= best.nodes {
            continue;
        }
        let mut candidate = best.clone();
        candidate.records.retain(|r| r.node.0 != node);
        for r in &mut candidate.records {
            if r.node.0 > node {
                r.node = NodeId(r.node.0 - 1);
            }
        }
        candidate.nodes -= 1;
        if check(&candidate, replays) {
            *best = candidate;
        }
    }
}

/// Tries to remap the touched block set onto a smaller, denser pool
/// (compact first, then repeated halving). Remapping changes home nodes
/// and cache indices, so candidates count only if the violation survives.
fn shrink_blocks<F>(best: &mut Trace, check: &mut F, replays: &mut usize)
where
    F: FnMut(&Trace, &mut usize) -> bool,
{
    loop {
        let mut blocks: Vec<u64> = best.records.iter().map(|r| r.op.block().0).collect();
        blocks.sort_unstable();
        blocks.dedup();
        // Compact to 0..n, then halve the pool (a candidate identical to
        // the current best is skipped, so this terminates).
        let mut progressed = false;
        for pool in [
            blocks.len() as u64,
            (blocks.len() as u64).div_ceil(2).max(1),
        ] {
            let mut candidate = best.clone();
            for r in &mut candidate.records {
                let rank = blocks.binary_search(&r.op.block().0).expect("present") as u64;
                remap_block(r, rank % pool);
            }
            if candidate != *best && check(&candidate, replays) {
                *best = candidate;
                progressed = true;
                break;
            }
        }
        if !progressed {
            return;
        }
    }
}

fn remap_block(r: &mut bash_trace::TraceRecord, new_block: u64) {
    use bash_coherence::{BlockAddr, ProcOp};
    r.op = match r.op {
        ProcOp::Load { word, .. } => ProcOp::Load {
            block: BlockAddr(new_block),
            word,
        },
        ProcOp::Store { word, value, .. } => ProcOp::Store {
            block: BlockAddr(new_block),
            word,
            value,
        },
    };
}

/// Cosmetic simplifications that make the repro easier to read: zero the
/// think times and instruction counts and strip captured completion
/// latencies (replay ignores them; a repro should not drag measurement
/// noise along).
fn simplify<F>(best: &mut Trace, check: &mut F, replays: &mut usize)
where
    F: FnMut(&Trace, &mut usize) -> bool,
{
    let mut candidate = best.clone();
    for r in &mut candidate.records {
        r.think = bash_kernel::Duration::ZERO;
        r.instructions = 0;
        r.completion = None;
    }
    if candidate != *best && check(&candidate, replays) {
        *best = candidate;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bash_coherence::{BlockAddr, ProcOp};
    use bash_kernel::Duration;
    use bash_trace::TraceRecord;

    fn record(node: u16, block: u64, word: usize) -> TraceRecord {
        TraceRecord {
            node: NodeId(node),
            think: Duration::from_ns(5),
            instructions: 3,
            op: ProcOp::Load {
                block: BlockAddr(block),
                word,
            },
            completion: Some(Duration::from_ns(200)),
        }
    }

    fn big_trace() -> Trace {
        Trace {
            nodes: 4,
            seed: 1,
            workload: "synthetic".to_string(),
            records: (0..200)
                .map(|i| record((i % 4) as u16, 100 + (i % 7) as u64, i % 3))
                .collect(),
        }
    }

    #[test]
    fn shrinks_to_the_predicates_core() {
        // "Violation" = the trace still contains a node-2 load of word 2.
        let t = big_trace();
        let out = minimize_trace(
            &t,
            |c| {
                c.records
                    .iter()
                    .any(|r| r.node == NodeId(2) && matches!(r.op, ProcOp::Load { word: 2, .. }))
            },
            2_000,
        );
        assert!(
            out.trace.records.len() <= 2,
            "got {}",
            out.trace.records.len()
        );
        assert_eq!(out.reduced_from, 200);
        assert!(out.trace.validate().is_ok());
        assert_eq!(out.trace.nodes, 3, "nodes 3 (node 2 kept after renumber)");
        // Cosmetic pass zeroed the thinks.
        assert!(out.trace.records.iter().all(|r| r.think.is_zero()));
    }

    #[test]
    fn non_reproducing_input_is_returned_unchanged() {
        let t = big_trace();
        let out = minimize_trace(&t, |_| false, 100);
        assert_eq!(out.trace, t);
        assert_eq!(out.replays, 1);
    }

    #[test]
    fn respects_the_replay_budget() {
        let t = big_trace();
        let out = minimize_trace(&t, |c| !c.records.is_empty(), 10);
        assert!(out.replays <= 10);
        assert!(out.trace.validate().is_ok());
    }

    #[test]
    fn block_remap_compacts_the_pool() {
        let t = big_trace();
        let out = minimize_trace(&t, |c| !c.records.is_empty(), 5_000);
        assert_eq!(out.trace.records.len(), 1);
        assert!(
            out.trace.records[0].op.block().0 < 7,
            "blocks were compacted"
        );
    }
}
