//! The value oracle: exact per-word checking under false sharing.
//!
//! Word `w` of every block is written only by node `w` (the workload
//! guarantees this), so:
//!
//! * a load of one's **own** word must return exactly the last value this
//!   node stored there (or 0 if never stored) — a read-your-writes check
//!   that single-writer per-location sequential consistency implies;
//! * a load of **another** node's word must be non-decreasing across this
//!   reader's loads (per-location coherence order: values are issued
//!   monotonically by the writer) and never exceed the writer's issue
//!   counter (no values from the future).

use std::collections::HashMap;

use bash_coherence::{BlockAddr, ProcOp};
use bash_kernel::Time;
use bash_net::NodeId;

/// A detected coherence violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckViolation {
    /// When it was observed.
    pub at: Time,
    /// The reading node.
    pub node: NodeId,
    /// Description of what went wrong.
    pub what: String,
}

/// The tester's global value oracle.
#[derive(Debug, Default)]
pub struct Oracle {
    /// Last value stored by (node, block) — values are per-(node, block)
    /// monotone counters.
    last_store: HashMap<(NodeId, BlockAddr), u64>,
    /// Issue counter per (node, block): upper bound for any read.
    issued: HashMap<(NodeId, BlockAddr), u64>,
    /// Last value read by (reader, block, word): must be non-decreasing.
    last_read: HashMap<(NodeId, BlockAddr, usize), u64>,
    /// All violations found.
    violations: Vec<CheckViolation>,
    loads_checked: u64,
    stores_applied: u64,
}

impl Oracle {
    /// Creates an empty oracle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Draws the next store value for `(node, block)` (monotone counter).
    pub fn next_store_value(&mut self, node: NodeId, block: BlockAddr) -> u64 {
        let c = self.issued.entry((node, block)).or_insert(0);
        *c += 1;
        *c
    }

    /// Records a completed operation and checks loads.
    pub fn observe(&mut self, node: NodeId, now: Time, op: &ProcOp, value: u64) {
        match *op {
            ProcOp::Store { block, value, .. } => {
                self.last_store.insert((node, block), value);
                self.stores_applied += 1;
            }
            ProcOp::Load { block, word } => {
                self.loads_checked += 1;
                let writer = NodeId(word as u16);
                if writer == node {
                    // Read-your-writes: exact.
                    let expect = self.last_store.get(&(node, block)).copied().unwrap_or(0);
                    if value != expect {
                        self.violations.push(CheckViolation {
                            at: now,
                            node,
                            what: format!(
                                "own-word load of {block} word {word} returned {value}, \
                                 expected {expect}"
                            ),
                        });
                    }
                } else {
                    // Coherence order: non-decreasing, bounded by issues.
                    let issued = self.issued.get(&(writer, block)).copied().unwrap_or(0);
                    if value > issued {
                        self.violations.push(CheckViolation {
                            at: now,
                            node,
                            what: format!(
                                "load of {block} word {word} returned {value}, but the \
                                 writer has only issued {issued}"
                            ),
                        });
                    }
                    let prev = self
                        .last_read
                        .get(&(node, block, word))
                        .copied()
                        .unwrap_or(0);
                    if value < prev {
                        self.violations.push(CheckViolation {
                            at: now,
                            node,
                            what: format!(
                                "load of {block} word {word} went backwards: {value} after {prev}"
                            ),
                        });
                    }
                    self.last_read.insert((node, block, word), value);
                }
            }
        }
    }

    /// Final check: the authoritative copy of each word must equal its
    /// writer's last store. `truth` is the owner's (or memory's) block data
    /// at quiescence.
    pub fn check_final(&mut self, block: BlockAddr, word: usize, truth: u64) {
        let writer = NodeId(word as u16);
        let expect = self.last_store.get(&(writer, block)).copied().unwrap_or(0);
        if truth != expect {
            self.violations.push(CheckViolation {
                at: Time::MAX,
                node: writer,
                what: format!(
                    "final data of {block} word {word} is {truth}, expected writer's \
                     last store {expect}"
                ),
            });
        }
    }

    /// Records an externally detected violation (invariant sweeps).
    pub fn report(&mut self, what: String) {
        self.violations.push(CheckViolation {
            at: Time::MAX,
            node: NodeId(u16::MAX),
            what,
        });
    }

    /// All violations found so far.
    pub fn violations(&self) -> &[CheckViolation] {
        &self.violations
    }

    /// Number of loads validated.
    pub fn loads_checked(&self) -> u64 {
        self.loads_checked
    }

    /// Number of stores applied.
    pub fn stores_applied(&self) -> u64 {
        self.stores_applied
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn own_word_mismatch_is_flagged() {
        let mut o = Oracle::new();
        let b = BlockAddr(1);
        let v = o.next_store_value(NodeId(0), b);
        o.observe(
            NodeId(0),
            Time::ZERO,
            &ProcOp::Store {
                block: b,
                word: 0,
                value: v,
            },
            v,
        );
        o.observe(
            NodeId(0),
            Time::ZERO,
            &ProcOp::Load { block: b, word: 0 },
            v,
        );
        assert!(o.violations().is_empty());
        o.observe(
            NodeId(0),
            Time::ZERO,
            &ProcOp::Load { block: b, word: 0 },
            v + 9,
        );
        assert_eq!(o.violations().len(), 1);
    }

    #[test]
    fn foreign_word_future_value_is_flagged() {
        let mut o = Oracle::new();
        let b = BlockAddr(2);
        // Node 1 never stored, so any nonzero read of word 1 is from the future.
        o.observe(
            NodeId(0),
            Time::ZERO,
            &ProcOp::Load { block: b, word: 1 },
            5,
        );
        assert_eq!(o.violations().len(), 1);
    }

    #[test]
    fn foreign_word_regression_is_flagged() {
        let mut o = Oracle::new();
        let b = BlockAddr(3);
        for _ in 0..5 {
            o.next_store_value(NodeId(1), b);
        }
        o.observe(
            NodeId(0),
            Time::ZERO,
            &ProcOp::Load { block: b, word: 1 },
            4,
        );
        o.observe(
            NodeId(0),
            Time::ZERO,
            &ProcOp::Load { block: b, word: 1 },
            2,
        );
        assert_eq!(o.violations().len(), 1);
        assert!(o.violations()[0].what.contains("backwards"));
    }

    #[test]
    fn final_check_compares_last_store() {
        let mut o = Oracle::new();
        let b = BlockAddr(4);
        let v = o.next_store_value(NodeId(2), b);
        o.observe(
            NodeId(2),
            Time::ZERO,
            &ProcOp::Store {
                block: b,
                word: 2,
                value: v,
            },
            v,
        );
        o.check_final(b, 2, v);
        assert!(o.violations().is_empty());
        o.check_final(b, 2, v + 1);
        assert_eq!(o.violations().len(), 1);
    }
}
