//! The value oracle, generalized to arbitrary workload streams.
//!
//! The original tester assumed the built-in false-sharing layout (word `w`
//! of every block is written only by node `w`). This oracle drops that
//! assumption: it learns the **writer set of every (block, word) location**
//! from the stream itself and checks per-location coherence order against
//! it, so any catalog scenario or replayed trace can run under the same
//! checks as the random tester.
//!
//! The one requirement is that the oracle, not the workload, chooses store
//! values: every store issued through [`Oracle::issue_store`] receives a
//! **globally unique token**, which makes every load's return value
//! attributable to exactly one `(writer, program-order rank)` pair — or to
//! the initial zero. (The `CheckedWorkload` wrapper in
//! [`verify`](crate::verify) does this rewriting transparently for any
//! [`Workload`](bash_workloads::Workload).) The checks are then exact and
//! — crucially — free of false positives on any sequentially consistent
//! per-location history:
//!
//! * **no out-of-thin-air** — a load must return 0 or a token previously
//!   issued *to that location* (a token from another location means the
//!   protocol delivered the wrong word or block);
//! * **per-writer coherence order** — writes by one node to one location
//!   are ordered by its program order, and each reader observes a
//!   location's coherence order monotonically; so, per (reader, location,
//!   writer), observed ranks must never decrease — and once any token is
//!   observed, the initial 0 must never reappear;
//! * **read-your-writes** — a node's own completed stores are a floor for
//!   its later loads of that location (blocking processors: the store
//!   completed before the load was issued);
//! * **final values** — at quiescence the authoritative copy of a
//!   location must be 0 (never written) or the *last* write of some
//!   writer: a non-final write of any node is coherence-ordered before
//!   that node's final write, so it can never be the global last.
//!
//! For single-writer locations these checks collapse to the original
//! tester's exact ones (own-word equality, foreign-word monotonicity,
//! final == writer's last store); for multi-writer locations they are the
//! strongest checks that avoid false positives without reconstructing a
//! global coherence order.

use std::collections::{BTreeSet, HashMap};

use bash_coherence::{BlockAddr, ProcOp};
use bash_kernel::Time;
use bash_net::NodeId;

/// A detected coherence violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckViolation {
    /// When it was observed.
    pub at: Time,
    /// The reading node.
    pub node: NodeId,
    /// Description of what went wrong.
    pub what: String,
}

/// One issued store: who wrote it, where, and its per-writer rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TokenInfo {
    block: BlockAddr,
    word: usize,
    writer: NodeId,
    /// 1-based index in the writer's program order of stores to this
    /// location.
    rank: u64,
}

/// Per-(location, writer) issue history.
#[derive(Debug, Clone, Copy, Default)]
struct WriterLog {
    issued: u64,
    last_token: u64,
}

/// What one reader has observed of one location.
#[derive(Debug, Clone, Default)]
struct ReaderView {
    /// Highest observed rank per writer (coherence order is monotone per
    /// reader, and per-writer ranks are monotone within it).
    floors: HashMap<NodeId, u64>,
    /// Once a token is seen, the initial 0 must never reappear.
    saw_nonzero: bool,
}

/// The tester's global value oracle.
#[derive(Debug, Default)]
pub struct Oracle {
    /// Every issued token, globally unique across locations.
    tokens: HashMap<u64, TokenInfo>,
    next_token: u64,
    /// Per-location writer sets with issue counts and last tokens.
    locations: HashMap<(BlockAddr, usize), HashMap<NodeId, WriterLog>>,
    /// Per-(reader, location) observation state.
    views: HashMap<(NodeId, BlockAddr, usize), ReaderView>,
    /// Every block any operation touched (deterministic order for sweeps).
    touched: BTreeSet<BlockAddr>,
    /// All violations found.
    violations: Vec<CheckViolation>,
    loads_checked: u64,
    stores_applied: u64,
}

impl Oracle {
    /// Creates an empty oracle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Draws the next store value for `writer` storing to `(block, word)`:
    /// a globally unique token the oracle can attribute back to this exact
    /// write. The workload must store exactly this value.
    pub fn issue_store(&mut self, writer: NodeId, block: BlockAddr, word: usize) -> u64 {
        self.next_token += 1;
        let token = self.next_token;
        let log = self
            .locations
            .entry((block, word))
            .or_default()
            .entry(writer)
            .or_default();
        log.issued += 1;
        log.last_token = token;
        self.tokens.insert(
            token,
            TokenInfo {
                block,
                word,
                writer,
                rank: log.issued,
            },
        );
        self.touched.insert(block);
        token
    }

    /// Records a completed operation and checks loads.
    pub fn observe(&mut self, node: NodeId, now: Time, op: &ProcOp, value: u64) {
        self.touched.insert(op.block());
        match *op {
            ProcOp::Store { block, word, value } => {
                self.stores_applied += 1;
                // A completed store is a floor for the writer's own later
                // loads of the location (blocking processor).
                match self.tokens.get(&value).copied() {
                    Some(info)
                        if info.writer == node && info.block == block && info.word == word =>
                    {
                        let view = self.views.entry((node, block, word)).or_default();
                        let floor = view.floors.entry(node).or_default();
                        *floor = (*floor).max(info.rank);
                        view.saw_nonzero = true;
                    }
                    _ => self.violations.push(CheckViolation {
                        at: now,
                        node,
                        what: format!(
                            "store of {value} to {block} word {word} by {node} was not \
                             issued through the oracle (use Oracle::issue_store)"
                        ),
                    }),
                }
            }
            ProcOp::Load { block, word } => {
                self.loads_checked += 1;
                self.check_load(node, now, block, word, value);
            }
        }
    }

    fn check_load(&mut self, node: NodeId, now: Time, block: BlockAddr, word: usize, value: u64) {
        let view = self.views.entry((node, block, word)).or_default();
        if value == 0 {
            if view.saw_nonzero {
                self.violations.push(CheckViolation {
                    at: now,
                    node,
                    what: format!(
                        "load of {block} word {word} went backwards to the initial 0 \
                         after observing a written value"
                    ),
                });
            }
            return;
        }
        let info = match self.tokens.get(&value).copied() {
            Some(info) => info,
            None => {
                self.violations.push(CheckViolation {
                    at: now,
                    node,
                    what: format!(
                        "load of {block} word {word} returned {value}, which no store \
                         ever wrote (out of thin air)"
                    ),
                });
                return;
            }
        };
        if info.block != block || info.word != word {
            self.violations.push(CheckViolation {
                at: now,
                node,
                what: format!(
                    "load of {block} word {word} returned {value}, a value written to \
                     {} word {} (wrong-location data)",
                    info.block, info.word
                ),
            });
            return;
        }
        let floor = view.floors.entry(info.writer).or_default();
        if info.rank < *floor {
            self.violations.push(CheckViolation {
                at: now,
                node,
                what: format!(
                    "load of {block} word {word} went backwards: observed {}'s store \
                     #{} after its store #{}",
                    info.writer, info.rank, *floor
                ),
            });
        }
        *floor = (*floor).max(info.rank);
        view.saw_nonzero = true;
    }

    /// Final check at quiescence: the authoritative copy of a location must
    /// be 0 (never written) or the last write of one of its writers.
    /// `truth` is the owner's (or memory's) word at quiescence.
    pub fn check_final(&mut self, block: BlockAddr, word: usize, truth: u64) {
        let writers = self.locations.get(&(block, word));
        let eligible: Vec<u64> = writers
            .map(|ws| ws.values().map(|w| w.last_token).collect())
            .unwrap_or_default();
        let ok = if eligible.is_empty() {
            truth == 0
        } else if eligible.len() == 1 {
            // Single writer: coherence order equals its program order, so
            // the final value is exact.
            truth == eligible[0]
        } else {
            eligible.contains(&truth)
        };
        if !ok {
            self.violations.push(CheckViolation {
                at: Time::MAX,
                node: NodeId(u16::MAX),
                what: format!(
                    "final data of {block} word {word} is {truth}, expected {}",
                    if eligible.is_empty() {
                        "0 (never written)".to_string()
                    } else {
                        format!("one of the writers' last stores {eligible:?}")
                    }
                ),
            });
        }
    }

    /// Records an externally detected violation (invariant sweeps).
    pub fn report(&mut self, what: String) {
        self.violations.push(CheckViolation {
            at: Time::MAX,
            node: NodeId(u16::MAX),
            what,
        });
    }

    /// Every block any operation touched, in address order.
    pub fn touched_blocks(&self) -> Vec<BlockAddr> {
        self.touched.iter().copied().collect()
    }

    /// How many written locations have more than one writer. Multi-writer
    /// locations get the weaker (per-writer order) checks, so this is the
    /// harness's "checking strength" indicator: 0 means every location was
    /// checked with single-writer exactness.
    pub fn multi_writer_locations(&self) -> usize {
        self.locations.values().filter(|ws| ws.len() > 1).count()
    }

    /// All violations found so far.
    pub fn violations(&self) -> &[CheckViolation] {
        &self.violations
    }

    /// Number of loads validated.
    pub fn loads_checked(&self) -> u64 {
        self.loads_checked
    }

    /// Number of stores applied.
    pub fn stores_applied(&self) -> u64 {
        self.stores_applied
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(o: &mut Oracle, node: NodeId, block: BlockAddr, word: usize) -> u64 {
        let v = o.issue_store(node, block, word);
        o.observe(
            node,
            Time::ZERO,
            &ProcOp::Store {
                block,
                word,
                value: v,
            },
            v,
        );
        v
    }

    fn load(o: &mut Oracle, node: NodeId, block: BlockAddr, word: usize, value: u64) {
        o.observe(node, Time::ZERO, &ProcOp::Load { block, word }, value);
    }

    #[test]
    fn own_word_mismatch_is_flagged() {
        let mut o = Oracle::new();
        let b = BlockAddr(1);
        let v = store(&mut o, NodeId(0), b, 0);
        load(&mut o, NodeId(0), b, 0, v);
        assert!(o.violations().is_empty());
        load(&mut o, NodeId(0), b, 0, v + 9);
        assert_eq!(o.violations().len(), 1, "{:?}", o.violations());
    }

    #[test]
    fn thin_air_value_is_flagged() {
        let mut o = Oracle::new();
        load(&mut o, NodeId(0), BlockAddr(2), 1, 5);
        assert_eq!(o.violations().len(), 1);
        assert!(o.violations()[0].what.contains("thin air"));
    }

    #[test]
    fn per_writer_regression_is_flagged() {
        let mut o = Oracle::new();
        let b = BlockAddr(3);
        let v1 = store(&mut o, NodeId(1), b, 1);
        let _v2 = store(&mut o, NodeId(1), b, 1);
        let v3 = store(&mut o, NodeId(1), b, 1);
        load(&mut o, NodeId(0), b, 1, v3);
        load(&mut o, NodeId(0), b, 1, v1);
        assert_eq!(o.violations().len(), 1);
        assert!(o.violations()[0].what.contains("backwards"));
    }

    #[test]
    fn zero_after_nonzero_is_flagged() {
        let mut o = Oracle::new();
        let b = BlockAddr(4);
        let v = store(&mut o, NodeId(1), b, 2);
        load(&mut o, NodeId(0), b, 2, v);
        load(&mut o, NodeId(0), b, 2, 0);
        assert_eq!(o.violations().len(), 1);
        assert!(o.violations()[0].what.contains("initial 0"));
    }

    #[test]
    fn wrong_location_data_is_flagged() {
        let mut o = Oracle::new();
        let v = store(&mut o, NodeId(1), BlockAddr(5), 0);
        load(&mut o, NodeId(0), BlockAddr(6), 0, v);
        assert_eq!(o.violations().len(), 1);
        assert!(o.violations()[0].what.contains("wrong-location"));
    }

    #[test]
    fn multi_writer_interleavings_are_not_false_positives() {
        // Two writers race on one location; a reader may observe their
        // values in either coherence order, as long as each writer's own
        // ranks stay monotone.
        let mut o = Oracle::new();
        let b = BlockAddr(7);
        let a1 = store(&mut o, NodeId(1), b, 0);
        let b1 = store(&mut o, NodeId(2), b, 0);
        let a2 = store(&mut o, NodeId(1), b, 0);
        load(&mut o, NodeId(0), b, 0, b1);
        load(&mut o, NodeId(0), b, 0, a1); // order {b1 < a1} is legal
        load(&mut o, NodeId(0), b, 0, a2);
        assert!(o.violations().is_empty(), "{:?}", o.violations());
    }

    #[test]
    fn final_check_single_writer_is_exact() {
        let mut o = Oracle::new();
        let b = BlockAddr(8);
        let _v1 = store(&mut o, NodeId(2), b, 2);
        let v2 = store(&mut o, NodeId(2), b, 2);
        o.check_final(b, 2, v2);
        assert!(o.violations().is_empty());
        o.check_final(b, 2, v2 + 1);
        assert_eq!(o.violations().len(), 1);
    }

    #[test]
    fn final_check_multi_writer_accepts_any_last_write() {
        let mut o = Oracle::new();
        let b = BlockAddr(9);
        let a1 = store(&mut o, NodeId(1), b, 0);
        let a2 = store(&mut o, NodeId(1), b, 0);
        let c1 = store(&mut o, NodeId(3), b, 0);
        o.check_final(b, 0, a2);
        o.check_final(b, 0, c1);
        assert!(o.violations().is_empty());
        // A non-final write of node 1 can never be the global last.
        o.check_final(b, 0, a1);
        assert_eq!(o.violations().len(), 1);
    }

    #[test]
    fn untouched_location_must_stay_zero() {
        let mut o = Oracle::new();
        o.check_final(BlockAddr(10), 5, 0);
        assert!(o.violations().is_empty());
        o.check_final(BlockAddr(10), 5, 77);
        assert_eq!(o.violations().len(), 1);
    }

    #[test]
    fn writer_sets_are_learned_from_the_stream() {
        let mut o = Oracle::new();
        let b = BlockAddr(11);
        store(&mut o, NodeId(2), b, 0);
        assert_eq!(o.multi_writer_locations(), 0);
        store(&mut o, NodeId(0), b, 0);
        store(&mut o, NodeId(2), b, 1);
        assert_eq!(o.multi_writer_locations(), 1, "(b, 0) has two writers");
        assert_eq!(o.touched_blocks(), vec![b]);
    }
}
