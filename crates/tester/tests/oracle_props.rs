//! Property tests for the generalized oracle: on any history that is
//! sequentially consistent per location, the checker must stay silent —
//! no false positives — and on fabricated values it must fire.

use std::collections::HashMap;

use bash_coherence::{BlockAddr, ProcOp};
use bash_kernel::Time;
use bash_net::NodeId;
use bash_tester::Oracle;
use proptest::prelude::*;

const NODES: u16 = 4;
const BLOCKS: u64 = 4;
const WORDS: usize = 4;

/// One generated op: (node, block, word, is_store).
type Op = (u16, u64, usize, bool);

fn op_strategy() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec((0..NODES, 0..BLOCKS, 0..WORDS, any::<bool>()), 1..200)
}

fn store(oracle: &mut Oracle, node: NodeId, block: BlockAddr, word: usize) -> u64 {
    let token = oracle.issue_store(node, block, word);
    oracle.observe(
        node,
        Time::ZERO,
        &ProcOp::Store {
            block,
            word,
            value: token,
        },
        token,
    );
    token
}

fn load(oracle: &mut Oracle, node: NodeId, block: BlockAddr, word: usize, value: u64) {
    oracle.observe(node, Time::ZERO, &ProcOp::Load { block, word }, value);
}

proptest! {
    /// Serial execution (every load returns the latest store) is the
    /// canonical SC history; the oracle must never flag it, including the
    /// final sweep.
    #[test]
    fn serial_execution_has_no_false_positives(ops in op_strategy()) {
        let mut oracle = Oracle::new();
        let mut memory: HashMap<(u64, usize), u64> = HashMap::new();
        for (node, block, word, is_store) in ops {
            let (node, block) = (NodeId(node), BlockAddr(block));
            if is_store {
                let token = store(&mut oracle, node, block, word);
                memory.insert((block.0, word), token);
            } else {
                let value = memory.get(&(block.0, word)).copied().unwrap_or(0);
                load(&mut oracle, node, block, word, value);
            }
        }
        for block in 0..BLOCKS {
            for word in 0..WORDS {
                let truth = memory.get(&(block, word)).copied().unwrap_or(0);
                oracle.check_final(BlockAddr(block), word, truth);
            }
        }
        prop_assert!(
            oracle.violations().is_empty(),
            "false positive: {:?}",
            oracle.violations().first()
        );
    }

    /// Stale-but-monotone reads: each (reader, location) holds a cursor
    /// into the location's write history and every load advances it by a
    /// random amount (possibly zero). That is exactly per-location
    /// sequential consistency with arbitrarily delayed visibility — the
    /// weakest history a coherent protocol may produce — and the oracle
    /// must accept all of it.
    #[test]
    fn stale_monotone_reads_have_no_false_positives(
        ops in op_strategy(),
        jumps in prop::collection::vec(0u64..8, 1..200),
    ) {
        let mut oracle = Oracle::new();
        // Per-location write history, and per-(reader, location) cursor.
        let mut history: HashMap<(u64, usize), Vec<u64>> = HashMap::new();
        let mut cursor: HashMap<(u16, u64, usize), usize> = HashMap::new();
        let mut jump = jumps.iter().cycle();
        for (node, block, word, is_store) in ops {
            let (n, b) = (NodeId(node), BlockAddr(block));
            let writes = history.entry((block, word)).or_default();
            if is_store {
                let token = store(&mut oracle, n, b, word);
                writes.push(token);
                // Read-your-writes: the writer's cursor moves to its own
                // store (coherence orders it before nothing earlier).
                let c = cursor.entry((node, block, word)).or_default();
                *c = writes.len();
            } else {
                let c = cursor.entry((node, block, word)).or_default();
                let advance = *jump.next().expect("cycled") as usize;
                *c = (*c + advance).min(writes.len());
                let value = if *c == 0 { 0 } else { writes[*c - 1] };
                load(&mut oracle, n, b, word, value);
            }
        }
        prop_assert!(
            oracle.violations().is_empty(),
            "false positive: {:?}",
            oracle.violations().first()
        );
    }

    /// Fabricated values are always flagged, whatever history preceded
    /// them.
    #[test]
    fn fabricated_values_are_flagged(ops in op_strategy(), reader in 0..NODES) {
        let mut oracle = Oracle::new();
        let mut memory: HashMap<(u64, usize), u64> = HashMap::new();
        for (node, block, word, is_store) in ops {
            let (n, b) = (NodeId(node), BlockAddr(block));
            if is_store {
                let token = store(&mut oracle, n, b, word);
                memory.insert((block, word), token);
            } else {
                let value = memory.get(&(block, word)).copied().unwrap_or(0);
                load(&mut oracle, n, b, word, value);
            }
        }
        let before = oracle.violations().len();
        // The top bit is outside any token the oracle ever issues.
        load(&mut oracle, NodeId(reader), BlockAddr(0), 0, (1 << 63) | 7);
        prop_assert_eq!(oracle.violations().len(), before + 1);
        prop_assert!(oracle.violations()[before].what.contains("thin air"));
    }

    /// A final value that no writer's last store explains is flagged.
    #[test]
    fn wrong_final_values_are_flagged(stores in 1u64..20) {
        let mut oracle = Oracle::new();
        let b = BlockAddr(1);
        let mut last = 0;
        for i in 0..stores {
            last = store(&mut oracle, NodeId((i % 2) as u16), b, 0);
        }
        oracle.check_final(b, 0, last);
        prop_assert!(oracle.violations().is_empty());
        oracle.check_final(b, 0, u64::MAX);
        prop_assert_eq!(oracle.violations().len(), 1);
    }
}
