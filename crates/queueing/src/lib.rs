//! The closed queueing model behind the paper's Figure 2.
//!
//! Figure 2 plots "average queueing delay vs. utilization" for a simple
//! queueing network annotated `S ~ exp(1), N = 16, Z ~ exp(varies)`: a
//! classic **machine-repairman** (M/M/1//N) system — N customers cycle
//! between an exponential think stage (mean Z) and a single exponential
//! server (mean S). Sweeping Z traces out the utilization axis; the knee in
//! the delay curve is the motivation for BASH's 75 % utilization target.
//!
//! Two implementations cross-validate each other:
//!
//! * [`analytic`] — the exact product-form solution;
//! * [`simulate`] — a discrete-event simulation on the `bash-kernel`
//!   primitives.

use bash_kernel::{DetRng, EventQueue, Time};

/// Model parameters.
#[derive(Debug, Clone, Copy)]
pub struct RepairmanParams {
    /// Number of customers (the paper uses 16).
    pub customers: u32,
    /// Mean service time (the paper uses 1).
    pub mean_service: f64,
    /// Mean think time (swept to vary utilization).
    pub mean_think: f64,
}

/// Steady-state results.
#[derive(Debug, Clone, Copy)]
pub struct RepairmanResult {
    /// Server utilization in [0, 1].
    pub utilization: f64,
    /// Mean time spent waiting in the queue, excluding service
    /// (Figure 2's y-axis).
    pub mean_queueing_delay: f64,
    /// Mean total response time at the server (wait + service).
    pub mean_response_time: f64,
    /// Throughput (jobs per unit time).
    pub throughput: f64,
}

/// Exact solution of the M/M/1//N machine-repairman model.
///
/// # Panics
///
/// Panics unless all parameters are positive.
///
/// # Example
///
/// ```
/// use bash_queueing::{analytic, RepairmanParams};
///
/// let r = analytic(RepairmanParams {
///     customers: 16,
///     mean_service: 1.0,
///     mean_think: 30.0,
/// });
/// assert!(r.utilization > 0.3 && r.utilization < 0.7);
/// ```
pub fn analytic(p: RepairmanParams) -> RepairmanResult {
    assert!(p.customers > 0 && p.mean_service > 0.0 && p.mean_think > 0.0);
    let n = p.customers as i64;
    // rho = λ/μ per customer; P(k) ∝ N!/(N-k)! * rho^k for k = 0..N
    // customers at the server.
    let rho = p.mean_service / p.mean_think;
    let mut weights = Vec::with_capacity(n as usize + 1);
    let mut w = 1.0f64;
    weights.push(w);
    for k in 1..=n {
        w *= (n - k + 1) as f64 * rho;
        weights.push(w);
    }
    let total: f64 = weights.iter().sum();
    let p0 = weights[0] / total;
    let mean_at_server: f64 = weights
        .iter()
        .enumerate()
        .map(|(k, w)| k as f64 * w / total)
        .sum();
    let utilization = 1.0 - p0;
    let throughput = utilization / p.mean_service;
    // Little's law at the service station.
    let response = mean_at_server / throughput;
    RepairmanResult {
        utilization,
        mean_queueing_delay: (response - p.mean_service).max(0.0),
        mean_response_time: response,
        throughput,
    }
}

/// Discrete-event simulation of the same model (cross-validation and a
/// worked example of the `bash-kernel` event queue).
///
/// Simulates `jobs` service completions after a 10 % warmup.
///
/// # Panics
///
/// Panics unless all parameters are positive.
pub fn simulate(p: RepairmanParams, jobs: u64, seed: u64) -> RepairmanResult {
    assert!(p.customers > 0 && p.mean_service > 0.0 && p.mean_think > 0.0 && jobs > 0);
    #[derive(Debug)]
    enum Ev {
        Arrive(u32),
        Depart,
    }
    let mut rng = DetRng::seed_from(seed);
    let mut q: EventQueue<Ev> = EventQueue::new();
    let scale = 1_000_000.0; // time unit → ps for integer Time
    for c in 0..p.customers {
        let t = rng.exponential(p.mean_think) * scale;
        q.schedule(Time::from_ps(t as u64), Ev::Arrive(c));
    }
    let warmup = jobs / 10;
    let mut waiting: std::collections::VecDeque<(u32, Time)> = Default::default();
    let mut in_service: Option<(u32, Time)> = None;
    let mut served = 0u64;
    let mut sum_wait = 0.0f64;
    let mut sum_resp = 0.0f64;
    let mut busy_since: Option<Time> = None;
    let mut busy_total = 0u64;
    let mut measure_from = Time::ZERO;
    let mut now = Time::ZERO;
    while let Some((t, ev)) = q.pop() {
        now = t;
        match ev {
            Ev::Arrive(c) => {
                waiting.push_back((c, now));
                if in_service.is_none() {
                    let (c, arr) = waiting.pop_front().expect("just pushed");
                    in_service = Some((c, arr));
                    busy_since.get_or_insert(now);
                    let s = rng.exponential(p.mean_service) * scale;
                    q.schedule(now + bash_kernel::Duration::from_ps(s as u64), Ev::Depart);
                }
            }
            Ev::Depart => {
                let (c, arrived) = in_service.take().expect("departure without service");
                served += 1;
                if served == warmup {
                    measure_from = now;
                    sum_wait = 0.0;
                    sum_resp = 0.0;
                    busy_total = 0;
                    busy_since = Some(now);
                }
                if served > warmup {
                    sum_resp += now.since(arrived).as_ps() as f64 / scale;
                }
                // Think, then come back.
                let z = rng.exponential(p.mean_think) * scale;
                q.schedule(
                    now + bash_kernel::Duration::from_ps(z as u64),
                    Ev::Arrive(c),
                );
                if let Some((nc, narr)) = waiting.pop_front() {
                    if served >= warmup {
                        sum_wait += now.since(narr).as_ps() as f64 / scale;
                    }
                    in_service = Some((nc, narr));
                    let s = rng.exponential(p.mean_service) * scale;
                    q.schedule(now + bash_kernel::Duration::from_ps(s as u64), Ev::Depart);
                } else if let Some(b) = busy_since.take() {
                    busy_total += now.since(b).as_ps();
                }
                if served >= warmup + jobs {
                    break;
                }
            }
        }
    }
    let _ = sum_wait;
    if let Some(b) = busy_since.take() {
        busy_total += now.since(b).as_ps();
    }
    let span = now.since(measure_from).as_ps().max(1) as f64;
    let measured = jobs as f64;
    let resp = sum_resp / measured;
    RepairmanResult {
        utilization: busy_total as f64 / span,
        mean_queueing_delay: (resp - p.mean_service).max(0.0),
        mean_response_time: resp,
        throughput: measured / (span / scale),
    }
}

/// Sweeps think times to produce the Figure 2 curve: `(utilization,
/// mean_queueing_delay)` pairs in increasing utilization order.
pub fn figure2_curve(customers: u32, think_times: &[f64]) -> Vec<(f64, f64)> {
    let mut pts: Vec<(f64, f64)> = think_times
        .iter()
        .map(|&z| {
            let r = analytic(RepairmanParams {
                customers,
                mean_service: 1.0,
                mean_think: z,
            });
            (r.utilization, r.mean_queueing_delay)
        })
        .collect();
    pts.sort_by(|a, b| a.0.total_cmp(&b.0));
    pts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(z: f64) -> RepairmanParams {
        RepairmanParams {
            customers: 16,
            mean_service: 1.0,
            mean_think: z,
        }
    }

    #[test]
    fn low_load_has_negligible_queueing() {
        let r = analytic(params(1000.0));
        assert!(r.utilization < 0.05);
        assert!(r.mean_queueing_delay < 0.1);
    }

    #[test]
    fn saturation_queues_most_customers() {
        let r = analytic(params(0.01));
        assert!(r.utilization > 0.999);
        // Nearly all 16 customers at the server: W ≈ N*S, so W_q ≈ 15.
        assert!(r.mean_queueing_delay > 13.0);
    }

    #[test]
    fn knee_appears_between_60_and_90_percent() {
        // The defining feature of Figure 2: delay is small below the knee
        // and grows dramatically above it.
        let lo = analytic(params(40.0)); // light load
        let hi = analytic(params(5.0)); // heavy load
        assert!(lo.utilization < 0.4, "{}", lo.utilization);
        assert!(hi.utilization > 0.9, "{}", hi.utilization);
        assert!(hi.mean_queueing_delay > 10.0 * lo.mean_queueing_delay);
    }

    #[test]
    fn simulation_matches_analytic() {
        for z in [2.0, 10.0, 30.0] {
            let a = analytic(params(z));
            let s = simulate(params(z), 200_000, 42);
            assert!(
                (a.utilization - s.utilization).abs() < 0.02,
                "util z={z}: analytic {} vs sim {}",
                a.utilization,
                s.utilization
            );
            assert!(
                (a.mean_queueing_delay - s.mean_queueing_delay).abs()
                    < 0.05 * (1.0 + a.mean_queueing_delay),
                "delay z={z}: analytic {} vs sim {}",
                a.mean_queueing_delay,
                s.mean_queueing_delay
            );
        }
    }

    #[test]
    fn curve_is_monotone() {
        let pts = figure2_curve(16, &[100.0, 50.0, 30.0, 20.0, 10.0, 5.0, 2.0, 1.0]);
        for w in pts.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 >= w[0].1, "delay must rise with utilization");
        }
    }

    #[test]
    fn throughput_satisfies_flow_balance() {
        // X = N / (Z + R) (interactive response time law).
        let p = params(10.0);
        let r = analytic(p);
        let law = p.customers as f64 / (p.mean_think + r.mean_response_time);
        assert!((r.throughput - law).abs() < 1e-9);
    }
}
