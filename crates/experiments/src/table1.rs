//! Table 1: states / events / transitions per controller, regenerated from
//! the transition coverage the random tester observes.
//!
//! The paper's caveat applies doubly here: "the numbers of states and
//! events depend somewhat on how one chooses to express a protocol". The
//! reproduction target is the *ordering* — BASH needs noticeably more
//! events and roughly twice the transitions of either base protocol, while
//! all three have comparable state counts.

use bash::{run_random_test, DecisionMode, ProtocolKind, TesterConfig, TransitionLog};

use crate::common::{write_csv, Options};

/// Coverage for one protocol: merged cache and memory logs.
pub struct Coverage {
    /// Protocol.
    pub protocol: ProtocolKind,
    /// Cache-controller coverage.
    pub cache: TransitionLog,
    /// Memory-controller coverage.
    pub mem: TransitionLog,
}

/// Drives each protocol through the random tester (several hostile
/// configurations for BASH to reach its retry/nack corners) and collects
/// transition coverage.
pub fn collect_coverage() -> Vec<Coverage> {
    let mut out = Vec::new();
    for proto in ProtocolKind::ALL {
        let mut cache = TransitionLog::new();
        let mut mem = TransitionLog::new();
        let mut configs = vec![
            TesterConfig::hostile(proto, 1),
            TesterConfig::hostile(proto, 2),
        ];
        if proto == ProtocolKind::Bash {
            configs.push(TesterConfig::nack_storm(3));
            let mut unicast_heavy = TesterConfig::hostile(proto, 4);
            unicast_heavy.adaptor_mode = DecisionMode::AlwaysUnicast;
            unicast_heavy.initial_policy = 255;
            configs.push(unicast_heavy);
            // High contention on one block maximizes retry races
            // (window-of-vulnerability → broadcast escalation).
            let mut contended = TesterConfig::hostile(proto, 5);
            contended.blocks = 1;
            contended.nodes = 8;
            contended.adaptor_mode = DecisionMode::Adaptive;
            configs.push(contended);
        }
        for cfg in configs {
            let report = run_random_test(cfg);
            assert!(
                report.passed(),
                "{proto:?} violated coherence during coverage collection: {:?}",
                report.violations.first()
            );
            cache.merge(&report.cache_log);
            mem.merge(&report.mem_log);
        }
        out.push(Coverage {
            protocol: proto,
            cache,
            mem,
        });
    }
    out
}

/// Prints Table 1 and writes both the summary and the full transition
/// listings.
pub fn table1(opts: &Options) {
    let coverage = collect_coverage();
    println!("\n  Table 1: states, events, and transitions per controller (observed)");
    println!(
        "  {:<10} | {:>6} {:>6} {:>6} | {:>6} {:>6} {:>6} | {:>6} {:>6} {:>6}",
        "Protocol", "St", "Ev", "Tr", "St", "Ev", "Tr", "St", "Ev", "Tr"
    );
    println!(
        "  {:<10} | {:^20} | {:^20} | {:^20}",
        "", "Total", "Cache", "Mem/Dir"
    );
    let mut csv = Vec::new();
    let mut listing = Vec::new();
    for c in &coverage {
        let (cs, ce, ct) = (
            c.cache.state_count(),
            c.cache.event_count(),
            c.cache.transition_count(),
        );
        let (ms, me, mt) = (
            c.mem.state_count(),
            c.mem.event_count(),
            c.mem.transition_count(),
        );
        println!(
            "  {:<10} | {:>6} {:>6} {:>6} | {:>6} {:>6} {:>6} | {:>6} {:>6} {:>6}",
            c.protocol.name(),
            cs + ms,
            ce + me,
            ct + mt,
            cs,
            ce,
            ct,
            ms,
            me,
            mt
        );
        csv.push(format!(
            "{},{},{},{},{},{},{},{},{},{}",
            c.protocol.name(),
            cs + ms,
            ce + me,
            ct + mt,
            cs,
            ce,
            ct,
            ms,
            me,
            mt
        ));
        for ((s, e, n), count) in c.cache.iter() {
            listing.push(format!("{},cache,{s},{e},{n},{count}", c.protocol.name()));
        }
        for ((s, e, n), count) in c.mem.iter() {
            listing.push(format!("{},mem,{s},{e},{n},{count}", c.protocol.name()));
        }
    }
    let path = write_csv(
        opts,
        "table1",
        "protocol,total_states,total_events,total_transitions,cache_states,cache_events,cache_transitions,mem_states,mem_events,mem_transitions",
        &csv,
    );
    let listing_path = write_csv(
        opts,
        "table1_transitions",
        "protocol,controller,state,event,next_state,count",
        &listing,
    );
    println!("\n  wrote {}", path.display());
    println!(
        "  wrote {} (full transition listing)",
        listing_path.display()
    );
}
