//! Macro-workload experiments: Figures 10, 11, 12 (16-processor runs of
//! the microbenchmark plus the five synthetic commercial/scientific
//! workloads).

use bash::{Duration, FabricSpec, ProtocolKind, WorkloadParams};

use crate::common::{
    ascii_chart, point_builder, snooping_unbounded_baseline, sweep_builder, write_csv, Options, Wl,
    MACRO_BANDWIDTHS,
};

const MACRO_NODES: u16 = 16;

fn workloads() -> Vec<(String, Wl)> {
    let mut v = vec![(
        "Microbenchmark".to_string(),
        Wl::Micro {
            locks: 256,
            think: Duration::ZERO,
        },
    )];
    for p in WorkloadParams::all_macro() {
        v.push((p.name.to_string(), Wl::Macro(p)));
    }
    v
}

fn warmup(opts: &Options) -> Duration {
    opts.window(Duration::from_ns(80_000))
}

fn measure(opts: &Options) -> Duration {
    opts.window(Duration::from_ns(300_000))
}

/// Figures 10 and 11: performance vs. bandwidth per workload on 16
/// processors, normalized to Snooping at unbounded bandwidth. Figure 11
/// quadruples the bandwidth cost of broadcasts to approximate a larger
/// system.
pub fn fig10_11(opts: &Options, broadcast_cost: u32) {
    let fig = if broadcast_cost == 1 {
        "fig10"
    } else {
        "fig11"
    };
    let mut csv = Vec::new();
    for (name, wl) in workloads() {
        let baseline = snooping_unbounded_baseline(MACRO_NODES, &wl, warmup(opts), measure(opts));
        let mut series: Vec<(&str, Vec<(f64, f64)>)> = Vec::new();
        let mut per_proto: Vec<(ProtocolKind, Vec<(f64, f64)>)> = Vec::new();
        for proto in ProtocolKind::ALL {
            let mut pts = Vec::new();
            let reports = sweep_builder(proto, MACRO_NODES, &MACRO_BANDWIDTHS, &wl, opts)
                .fabric(
                    FabricSpec::default()
                        .bandwidths(MACRO_BANDWIDTHS.iter().copied())
                        .broadcast_cost(broadcast_cost),
                )
                .plan(warmup(opts), measure(opts))
                .run_sweep();
            for (&bw, p) in MACRO_BANDWIDTHS.iter().zip(reports) {
                let norm = p.perf.mean / baseline;
                csv.push(format!(
                    "{},{},{},{:.6},{:.6},{:.4},{:.4}",
                    name,
                    proto.name(),
                    bw,
                    norm,
                    p.perf.stddev / baseline,
                    p.link_utilization.mean,
                    p.broadcast_fraction.mean
                ));
                pts.push((bw as f64, norm));
            }
            per_proto.push((proto, pts));
        }
        for (proto, pts) in &per_proto {
            series.push((proto.name(), pts.clone()));
        }
        ascii_chart(
            &format!(
                "{}: {} (16p{}) — perf normalized to Snooping@unbounded",
                if broadcast_cost == 1 {
                    "Figure 10"
                } else {
                    "Figure 11"
                },
                name,
                if broadcast_cost == 1 {
                    ""
                } else {
                    ", 4x broadcast cost"
                }
            ),
            &series,
            true,
        );
        eprintln!("  {name} done");
    }
    let path = write_csv(
        opts,
        fig,
        "workload,protocol,bandwidth_mbps,normalized_perf,stddev,utilization,broadcast_fraction",
        &csv,
    );
    println!("  wrote {}", path.display());
}

/// Figure 12: the 1600 MB/s excerpt of Figure 11 as per-workload bars,
/// normalized to BASH.
pub fn fig12(opts: &Options) {
    let mut csv = Vec::new();
    println!("\n  Figure 12: per-workload performance at 1600 MB/s, 4x broadcast cost");
    println!("  (normalized to BASH — the paper's adaptation-to-workload claim)\n");
    println!(
        "  {:<16} {:>8} {:>10} {:>10}",
        "workload", "BASH", "Snooping", "Directory"
    );
    for (name, wl) in workloads().into_iter().skip(1) {
        let mut vals = Vec::new();
        for proto in [
            ProtocolKind::Bash,
            ProtocolKind::Snooping,
            ProtocolKind::Directory,
        ] {
            let p = point_builder(proto, MACRO_NODES, 1600, &wl, opts)
                .fabric(FabricSpec::default().broadcast_cost(4))
                .plan(warmup(opts), measure(opts))
                .run();
            vals.push(p.perf.mean);
        }
        let bash = vals[0];
        println!(
            "  {:<16} {:>8.3} {:>10.3} {:>10.3}",
            name,
            1.0,
            vals[1] / bash,
            vals[2] / bash
        );
        csv.push(format!(
            "{},1.0,{:.6},{:.6}",
            name,
            vals[1] / bash,
            vals[2] / bash
        ));
    }
    let path = write_csv(
        opts,
        "fig12",
        "workload,bash,snooping_vs_bash,directory_vs_bash",
        &csv,
    );
    println!("\n  wrote {}", path.display());
}
