//! The scenario-catalog sweep: every named scenario × every protocol ×
//! a small bandwidth ladder, in one CSV + chart.
//!
//! This is the harness's window into the workload subsystem beyond the
//! paper's own figures: the classic sharing patterns (producer-consumer,
//! migratory, false sharing, Zipf, phase-shift) next to the Table 2
//! stand-ins, so a protocol change shows its effect on every access
//! pattern at once.

use bash::{catalog, Duration, ProtocolKind, SimBuilder};

use crate::common::{ascii_chart, write_csv, Options};

/// Bandwidth ladder for the catalog sweep (MB/s).
const BANDWIDTHS: [u64; 3] = [400, 1600, 6400];

/// Runs the full catalog sweep: CSV `scenarios.csv` plus one chart of
/// BASH's broadcast fraction per scenario (the adaptivity fingerprint).
pub fn scenarios(opts: &Options) {
    let warmup = opts.window(Duration::from_ns(20_000));
    let measure = opts.window(Duration::from_ns(60_000));
    let mut rows = Vec::new();
    let mut adaptivity: Vec<(&str, Vec<(f64, f64)>)> = Vec::new();
    for s in catalog::CATALOG {
        let mut bash_points = Vec::new();
        for proto in ProtocolKind::ALL {
            let reports = SimBuilder::new(proto)
                .nodes(8)
                .bandwidths(BANDWIDTHS)
                .scenario(s.name)
                .seed(0xF00D)
                .seeds(opts.seeds.max(1))
                .plan(warmup, measure)
                .run_sweep();
            for r in &reports {
                rows.push(format!(
                    "{},{},{},{:.1},{:.1},{:.2},{:.4},{:.4}",
                    s.name,
                    r.protocol.name(),
                    r.bandwidth_mbps,
                    r.perf.mean,
                    r.perf.stddev,
                    r.miss_latency_ns.mean,
                    r.link_utilization.mean,
                    r.broadcast_fraction.mean,
                ));
                if proto == ProtocolKind::Bash {
                    bash_points.push((r.bandwidth_mbps as f64, r.broadcast_fraction.mean));
                }
            }
        }
        adaptivity.push((s.name, bash_points));
    }
    let path = write_csv(
        opts,
        "scenarios",
        "scenario,protocol,bandwidth_mbps,perf_mean,perf_stddev,miss_latency_ns,link_utilization,broadcast_fraction",
        &rows,
    );
    println!("wrote {}", path.display());
    ascii_chart(
        "scenario catalog: BASH broadcast fraction vs bandwidth",
        &adaptivity,
        true,
    );
}
