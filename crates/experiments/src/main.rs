//! `bash-experiments` — regenerates every figure and table of
//! *Bandwidth Adaptive Snooping* (HPCA 2002).
//!
//! ```text
//! bash-experiments [--out DIR] [--scale F] [--seeds N] <ids...>
//!   ids: all | fig1 | fig2 | fig3 | fig4 | fig5 | fig6 | fig7 | fig8 |
//!        fig9 | fig10 | fig11 | fig12 | table1 | scenarios | topology |
//!        hierarchy | verify | chaos | wedge-selftest
//! bash-experiments trace <info FILE | migrate IN OUT | replay FILE | diff FILE>
//! ```
//!
//! `verify` is not part of `all`: it is the invariant gate (catalog ×
//! protocols under the verification harness), exits non-zero on any
//! violation, writes a minimized repro trace for each failing cell, and —
//! on a clean matrix — emits the cross-protocol latency-distribution
//! diff from a completion-bearing trace.
//!
//! `chaos` (also not part of `all`) sweeps link-loss rates × protocols ×
//! fabric topologies under the fault plane with the reliable transport
//! on, recording retransmission overhead and whether BASH's adaptation
//! misreads retransmission traffic as utilization. `wedge-selftest`
//! deliberately wedges an unprotected lossy run and **exits non-zero**
//! with the watchdog's `Wedged` diagnostic — the CI probe that wedges
//! become diagnostics, not hangs.
//!
//! `trace` is the streaming trace-file toolbox: inspect a header and
//! chunk map, migrate a v1 file to v2, replay a file through all three
//! protocols without loading it, or print its differential latency diff.
//!
//! Each experiment prints an ASCII rendition of the paper's plot and writes
//! a CSV under `--out` (default `results/`). See EXPERIMENTS.md for the
//! paper-vs-measured record.

mod chaos;
mod common;
mod hierarchy;
mod macrob;
mod micro;
mod scenarios;
mod static_figs;
mod table1;
mod topology;
mod trace;
mod verify;

use common::Options;

fn main() {
    let mut opts = Options::default();
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => {
                opts.out_dir = args.next().expect("--out needs a directory").into();
            }
            "--scale" => {
                opts.scale = args
                    .next()
                    .expect("--scale needs a number")
                    .parse()
                    .expect("invalid --scale");
            }
            "--seeds" => {
                opts.seeds = args
                    .next()
                    .expect("--seeds needs a count")
                    .parse()
                    .expect("invalid --seeds");
            }
            "--help" | "-h" => {
                println!("usage: bash-experiments [--out DIR] [--scale F] [--seeds N] <ids...>");
                println!("  ids: all fig1..fig12 table1 scenarios topology hierarchy verify");
                println!("       chaos wedge-selftest");
                println!("       trace <info FILE | migrate IN OUT | replay FILE | diff FILE>");
                return;
            }
            other => ids.push(other.to_string()),
        }
    }
    // `trace` consumes the rest of the line as its own sub-arguments.
    if ids.first().map(String::as_str) == Some("trace") {
        if !trace::trace_cmd(&opts, &ids[1..]) {
            std::process::exit(1);
        }
        return;
    }
    if ids.is_empty() {
        ids.push("all".to_string());
    }
    let all = ids.iter().any(|i| i == "all");
    let want = |id: &str| all || ids.iter().any(|i| i == id);

    // Figures 1, 5 and 6 share one bandwidth sweep.
    let needs_sweep = want("fig1") || want("fig5") || want("fig6");
    let sweep = if needs_sweep {
        eprintln!("running the 64-processor bandwidth sweep (figs 1/5/6)...");
        Some(micro::bandwidth_sweep(&opts))
    } else {
        None
    };
    if want("fig1") {
        micro::fig1(&opts, sweep.as_ref().expect("sweep"));
    }
    if want("fig2") {
        static_figs::fig2(&opts);
    }
    if want("fig3") {
        static_figs::fig3(&opts);
    }
    if want("fig4") {
        static_figs::fig4(&opts);
    }
    if want("table1") {
        eprintln!("collecting transition coverage (table 1)...");
        table1::table1(&opts);
    }
    if want("fig5") {
        micro::fig5(&opts, sweep.as_ref().expect("sweep"));
    }
    if want("fig6") {
        micro::fig6(&opts, sweep.as_ref().expect("sweep"));
    }
    if want("fig7") {
        eprintln!("running the threshold sensitivity sweep (fig 7)...");
        micro::fig7(&opts);
    }
    if want("fig8") {
        eprintln!("running the system-size sweep (fig 8)...");
        micro::fig8(&opts);
    }
    if want("fig9") {
        eprintln!("running the think-time sweep (fig 9)...");
        micro::fig9(&opts);
    }
    if want("fig10") {
        eprintln!("running the 16-processor workload sweep (fig 10)...");
        macrob::fig10_11(&opts, 1);
    }
    if want("fig11") {
        eprintln!("running the 16-processor workload sweep, 4x broadcast cost (fig 11)...");
        macrob::fig10_11(&opts, 4);
    }
    if want("fig12") {
        eprintln!("running the workload bars (fig 12)...");
        macrob::fig12(&opts);
    }
    if want("scenarios") {
        eprintln!("running the scenario-catalog sweep...");
        scenarios::scenarios(&opts);
    }
    if want("topology") {
        eprintln!("running the protocol x topology sweep...");
        topology::topology(&opts);
    }
    if want("hierarchy") {
        eprintln!("running the protocol x nodes x cluster-size hierarchy sweep...");
        hierarchy::hierarchy(&opts);
    }
    // The chaos sweep is opt-in (not part of `all`): its fault plane
    // deliberately perturbs the fabric, which figure regeneration should
    // never do.
    if ids.iter().any(|i| i == "chaos") {
        eprintln!("running the chaos sweep (loss x protocol x topology)...");
        if !chaos::chaos(&opts) {
            eprintln!("chaos: grid points failed under the reliable transport");
            std::process::exit(1);
        }
    }
    // The wedge self-test *succeeds by exiting non-zero*: a deliberately
    // wedged config must yield a structured diagnostic, not a hang.
    if ids.iter().any(|i| i == "wedge-selftest") {
        eprintln!("running the watchdog wedge self-test...");
        match chaos::wedge_selftest() {
            Some(diag) => {
                println!("{diag}");
                std::process::exit(1);
            }
            None => println!("wedge-selftest: run completed without wedging"),
        }
    }
    // The invariant gate is opt-in (not part of `all`): it fails the
    // process on any violation, which figure regeneration should not.
    if ids.iter().any(|i| i == "verify") {
        eprintln!("running the catalog verification matrix...");
        if !verify::verify(&opts) {
            eprintln!("verify: violations found; minimized repro traces written");
            std::process::exit(1);
        }
    }
    eprintln!("done.");
}
