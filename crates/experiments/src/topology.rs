//! The topology sweep: every protocol × every interconnect topology × a
//! small bandwidth ladder, in one CSV + chart.
//!
//! The paper models a contended-endpoint crossbar; the fabric engine
//! generalizes that to routed topologies (star, line, ring, mesh, torus)
//! with per-directed-link contention. This sweep quantifies what the
//! topology costs each protocol — multi-hop latency, link hot-spots —
//! and records the per-run mean and peak link busy fractions the routed
//! topologies report.

use bash::{Duration, FabricSpec, ProtocolKind, SimBuilder, TopologyKind};

use crate::common::{ascii_chart, write_csv, Options};

/// Bandwidth ladder for the topology sweep (MB/s).
const BANDWIDTHS: [u64; 3] = [400, 1600, 6400];

/// Runs the protocol × topology × bandwidth sweep: CSV `topology.csv`
/// plus one chart of BASH throughput per topology (the fabric's
/// performance fingerprint).
pub fn topology(opts: &Options) {
    let warmup = opts.window(Duration::from_ns(20_000));
    let measure = opts.window(Duration::from_ns(60_000));
    let mut rows = Vec::new();
    let mut bash_series: Vec<(&str, Vec<(f64, f64)>)> = Vec::new();
    for topo in TopologyKind::ALL {
        let mut bash_points = Vec::new();
        for proto in ProtocolKind::ALL {
            let reports = SimBuilder::new(proto)
                .nodes(16)
                .fabric(FabricSpec::new(topo).bandwidths(BANDWIDTHS))
                .locking_microbench(256, Duration::ZERO)
                .seed(0xF00D)
                .seeds(opts.seeds.max(1))
                .plan(warmup, measure)
                .run_sweep();
            for r in &reports {
                let stats = r.stats();
                let (mean_busy, peak_busy) = if stats.links.is_empty() {
                    (stats.link_utilization, stats.link_utilization)
                } else {
                    let sum: f64 = stats.links.iter().map(|l| l.busy_fraction).sum();
                    let peak = stats
                        .links
                        .iter()
                        .map(|l| l.busy_fraction)
                        .fold(0.0f64, f64::max);
                    (sum / stats.links.len() as f64, peak)
                };
                rows.push(format!(
                    "{},{},{},{:.1},{:.1},{:.2},{},{:.4},{:.4},{:.4}",
                    topo.name(),
                    r.protocol.name(),
                    r.bandwidth_mbps,
                    r.perf.mean,
                    r.perf.stddev,
                    r.miss_latency_ns.mean,
                    stats.links.len(),
                    r.link_utilization.mean,
                    mean_busy,
                    peak_busy,
                ));
                if proto == ProtocolKind::Bash {
                    bash_points.push((r.bandwidth_mbps as f64, r.perf.mean));
                }
            }
        }
        bash_series.push((topo.name(), bash_points));
    }
    let path = write_csv(
        opts,
        "topology",
        "topology,protocol,bandwidth_mbps,perf_mean,perf_stddev,miss_latency_ns,\
         links,endpoint_utilization,mean_link_busy,peak_link_busy",
        &rows,
    );
    println!("wrote {}", path.display());
    ascii_chart(
        "topology sweep: BASH throughput vs bandwidth per topology",
        &bash_series,
        true,
    );
}
