//! Figures that don't need the full system simulator: the queueing model
//! (Figure 2), the utilization-counter trace (Figure 3), and the protocol
//! transaction walkthroughs (Figure 4).

use bash::queueing::{figure2_curve, simulate, RepairmanParams};
use bash::{
    AdaptorConfig, BlockAddr, CacheGeometry, DecisionMode, Duration, NodeId, ProcOp, ProtocolKind,
    ScriptWorkload, System, SystemConfig, UtilizationCounter,
};

use crate::common::{ascii_chart, write_csv, Options};

/// Figure 2: average queueing delay vs. utilization for the closed queue
/// (S ~ exp(1), N = 16, Z swept). Analytic curve cross-checked by DES.
pub fn fig2(opts: &Options) {
    let thinks: Vec<f64> = vec![
        200.0, 100.0, 60.0, 40.0, 30.0, 24.0, 20.0, 17.0, 15.0, 13.0, 11.0, 9.0, 7.0, 5.0, 3.0,
        2.0, 1.0,
    ];
    let analytic = figure2_curve(16, &thinks);
    let mut csv = Vec::new();
    let mut sim_pts = Vec::new();
    for &z in &thinks {
        let s = simulate(
            RepairmanParams {
                customers: 16,
                mean_service: 1.0,
                mean_think: z,
            },
            100_000,
            7,
        );
        sim_pts.push((s.utilization * 100.0, s.mean_queueing_delay));
    }
    for (u, d) in &analytic {
        csv.push(format!("analytic,{:.4},{:.4}", u * 100.0, d));
    }
    for (u, d) in &sim_pts {
        csv.push(format!("simulated,{:.4},{:.4}", u, d));
    }
    let analytic_pct: Vec<(f64, f64)> = analytic.iter().map(|&(u, d)| (u * 100.0, d)).collect();
    ascii_chart(
        "Figure 2: mean queueing delay vs utilization (N=16 closed queue) — note the knee",
        &[("analytic", analytic_pct), ("simulated", sim_pts)],
        false,
    );
    let path = write_csv(
        opts,
        "fig2",
        "method,utilization_pct,mean_queueing_delay",
        &csv,
    );
    println!("  wrote {}", path.display());
}

/// Figure 3: the utilization counter's worked example — busy 4 of 7 cycles
/// at a 75 % threshold gives 4·(+1) + 3·(−3) = −5.
pub fn fig3(opts: &Options) {
    let c = UtilizationCounter::for_threshold_percent(75);
    // The paper's trace: busy, idle, busy, idle, busy, idle, busy →
    // the counter steps +1, −3, +1, −3, +1, −3, +1.
    let pattern = [true, false, true, false, true, false, true];
    let mut value = 0i64;
    let mut csv = Vec::new();
    println!("\n  Figure 3: utilization counter operation (threshold 75% ⇒ +1 busy / -3 idle)");
    println!("  {:>5} {:>6} {:>7}", "cycle", "link", "counter");
    for (i, &busy) in pattern.iter().enumerate() {
        value += if busy {
            c.inc_weight() as i64
        } else {
            -(c.dec_weight() as i64)
        };
        println!(
            "  {:>5} {:>6} {:>7}",
            i,
            if busy { "busy" } else { "idle" },
            value
        );
        csv.push(format!("{},{},{}", i, busy as u8, value));
    }
    let busy = pattern.iter().filter(|&&b| b).count() as u64;
    let total = pattern.len() as u64;
    assert_eq!(c.value_for_window(busy, total), -5);
    println!(
        "  sampled value: {} (negative ⇒ below threshold: {}/{} = {:.0}% < 75%)",
        c.value_for_window(busy, total),
        busy,
        total,
        100.0 * busy as f64 / total as f64
    );
    let path = write_csv(opts, "fig3", "cycle,busy,counter", &csv);
    println!("  wrote {}", path.display());
}

/// Figure 4: the six transaction walkthroughs — memory-to-cache and
/// cache-to-cache transfers under Snooping/BASH-broadcast, Directory, and
/// BASH-unicast. Prints the actual message trace of each.
pub fn fig4(opts: &Options) {
    let mut csv = Vec::new();
    let panels: [(&str, ProtocolKind, DecisionMode, bool); 6] = [
        (
            "(a) Snooping, memory-to-cache",
            ProtocolKind::Snooping,
            DecisionMode::Adaptive,
            false,
        ),
        (
            "(b) Directory, memory-to-cache",
            ProtocolKind::Directory,
            DecisionMode::Adaptive,
            false,
        ),
        (
            "(c) BASH unicast, memory-to-cache",
            ProtocolKind::Bash,
            DecisionMode::AlwaysUnicast,
            false,
        ),
        (
            "(d) Snooping, cache-to-cache",
            ProtocolKind::Snooping,
            DecisionMode::Adaptive,
            true,
        ),
        (
            "(e) Directory, cache-to-cache",
            ProtocolKind::Directory,
            DecisionMode::Adaptive,
            true,
        ),
        (
            "(f) BASH unicast, cache-to-cache",
            ProtocolKind::Bash,
            DecisionMode::AlwaysUnicast,
            true,
        ),
    ];
    for (title, proto, mode, cache_to_cache) in panels {
        println!("\n  Figure 4 {title}");
        let trace = walkthrough(proto, mode, cache_to_cache);
        for line in &trace {
            println!("    {line}");
            csv.push(format!("\"{}\",\"{}\"", title, line.replace('"', "'")));
        }
    }
    let path = write_csv(opts, "fig4", "panel,event", &csv);
    println!("\n  wrote {}", path.display());
}

/// Runs the Figure 4 scenario: 4 processors + memory at node 0 (block 0's
/// home). For the cache-to-cache case, P1 first takes the block M and P3
/// takes it S (P1 ends up the O owner, P3 a sharer), then P0 requests M.
fn walkthrough(proto: ProtocolKind, mode: DecisionMode, cache_to_cache: bool) -> Vec<String> {
    let mut adaptor = AdaptorConfig::paper_default();
    adaptor.mode = mode;
    let cfg = SystemConfig::paper_default(proto, 4, 100_000)
        .with_adaptor(adaptor)
        .with_cache(CacheGeometry { sets: 16, ways: 2 });
    let block = BlockAddr(0); // home = node 0
    let mut script = ScriptWorkload::new(4);
    let mut setup_until = Duration::ZERO;
    if cache_to_cache {
        // P1 takes M, then P3 reads it (P1 → O owner, P3 sharer).
        script.push(
            NodeId(1),
            Duration::ZERO,
            ProcOp::Store {
                block,
                word: 1,
                value: 0x11,
            },
        );
        script.push(
            NodeId(3),
            Duration::from_ns(2_000),
            ProcOp::Load { block, word: 1 },
        );
        setup_until = Duration::from_ns(10_000);
    }
    script.push(
        NodeId(0),
        setup_until,
        ProcOp::Store {
            block,
            word: 0,
            value: 0xAA,
        },
    );
    let mut sys = System::new(cfg, script);
    sys.run_until(bash::Time::ZERO + setup_until);
    sys.enable_delivery_trace();
    sys.run_to_idle();
    let mut out: Vec<String> = sys
        .delivery_trace()
        .unwrap_or(&[])
        .iter()
        .map(|s| compress(s))
        .collect();
    let done = sys
        .workload()
        .completions()
        .iter()
        .find(|c| c.node == NodeId(0))
        .map(|c| format!("P0's GetM completes at {}", c.at))
        .unwrap_or_else(|| "P0's GetM did not complete!".to_string());
    out.push(done);
    out
}

/// Compresses a delivery-trace line for display.
fn compress(s: &str) -> String {
    let s = s
        .replace("Request(Request { kind: ", "")
        .replace("ProtoMsg::", "")
        .replace("BlockAddr(0)", "B0");
    if s.len() > 140 {
        format!("{}…", &s[..139])
    } else {
        s
    }
}
