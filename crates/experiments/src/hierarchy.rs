//! The hierarchy sweep: every protocol × system size × cluster size
//! under the two-level organization (snooping clusters under a sharded
//! directory spine), in one CSV + chart.
//!
//! The paper evaluates flat systems; the hierarchical engine groups
//! nodes into snooping clusters below an address-interleaved directory
//! spine, with BASH's adaptive mechanism deciding per cluster. This
//! sweep quantifies what clustering buys each protocol — how much
//! traffic stays inside a cluster, how evenly requests spread over the
//! spine banks, and what the cluster size costs in throughput.

use bash::{Duration, HierarchySpec, ProtocolKind, SimBuilder};

use crate::common::{ascii_chart, write_csv, Options};

/// System sizes swept (nodes).
const NODES: [u16; 2] = [16, 64];

/// Cluster sizes swept (nodes per cluster; each divides every entry of
/// [`NODES`]).
const CLUSTER_SIZES: [u16; 3] = [2, 4, 8];

/// Directory-spine banks (divides every entry of [`NODES`]).
const BANKS: u16 = 4;

/// Runs the protocol × nodes × cluster-size sweep: CSV `hierarchy.csv`
/// plus one chart of BASH throughput per system size (the hierarchy's
/// performance fingerprint).
pub fn hierarchy(opts: &Options) {
    let warmup = opts.window(Duration::from_ns(20_000));
    let measure = opts.window(Duration::from_ns(60_000));
    let mut rows = Vec::new();
    let mut bash_series: Vec<(&str, Vec<(f64, f64)>)> = Vec::new();
    for nodes in NODES {
        let mut bash_points = Vec::new();
        for cluster_size in CLUSTER_SIZES {
            for proto in ProtocolKind::ALL {
                let report = SimBuilder::new(proto)
                    .nodes(nodes)
                    .hierarchy(HierarchySpec::new(cluster_size, BANKS))
                    .locking_microbench(256, Duration::ZERO)
                    .seed(0xF00D)
                    .seeds(opts.seeds.max(1))
                    .plan(warmup, measure)
                    .run();
                let stats = report.stats();
                let h = stats
                    .hierarchy
                    .as_ref()
                    .expect("hierarchical run reports hierarchy stats");
                rows.push(format!(
                    "{},{},{},{},{:.1},{:.1},{:.2},{:.4},{:.4},{:.4}",
                    nodes,
                    cluster_size,
                    h.banks,
                    report.protocol.name(),
                    report.perf.mean,
                    report.perf.stddev,
                    report.miss_latency_ns.mean,
                    report.broadcast_fraction.mean,
                    h.inter_cluster_fraction(),
                    h.bank_balance(),
                ));
                if proto == ProtocolKind::Bash {
                    bash_points.push((cluster_size as f64, report.perf.mean));
                }
            }
        }
        bash_series.push((
            if nodes == 16 { "16 nodes" } else { "64 nodes" },
            bash_points,
        ));
    }
    let path = write_csv(
        opts,
        "hierarchy",
        "nodes,cluster_size,banks,protocol,perf_mean,perf_stddev,miss_latency_ns,\
         broadcast_fraction,inter_cluster_fraction,bank_balance",
        &rows,
    );
    println!("wrote {}", path.display());
    ascii_chart(
        "hierarchy sweep: BASH throughput vs cluster size per system size",
        &bash_series,
        false,
    );
}
