//! The chaos sweep: loss rate × protocol × fabric topology under the
//! deterministic fault plane with the reliable transport on.
//!
//! Two questions drive the grid. First, what does loss *cost*: every
//! retransmission burns link bandwidth and adds a backoff delay, so the
//! CSV records the retransmit counters next to throughput and miss
//! latency. Second, does BASH's adaptation *misread* retransmission
//! traffic — retransmitted copies occupy links exactly like first
//! attempts, so the utilization counter sees loss-induced traffic as
//! contention and may steer toward directory-style unicasts even though
//! the underlying demand never changed. The broadcast-fraction column
//! versus the loss column answers that directly.
//!
//! The companion `wedge-selftest` path deliberately runs *unprotected*
//! loss (no transport) under a watchdog budget: protocol messages vanish,
//! the system wedges, and the watchdog must convert the wedge into a
//! structured diagnostic instead of a hang — the CI chaos-smoke job
//! asserts the non-zero exit and the `Wedged` marker.

use bash::{
    Duration, FabricSpec, FaultPlaneConfig, ProtocolKind, RobustnessSpec, SimBuilder, TopologyKind,
    WatchdogBudget,
};

use crate::common::{ascii_chart, write_csv, Options};

/// The loss-probability ladder (applied to every directed link).
const LOSS: [f64; 4] = [0.0, 0.005, 0.01, 0.02];

/// Fabric topologies the chaos grid covers: the extremes of path
/// diversity — a ring (two paths per pair) and a mesh (many).
const TOPOLOGIES: [TopologyKind; 2] = [TopologyKind::Ring, TopologyKind::Mesh2D];

/// Runs the loss × protocol × topology grid: CSV `chaos.csv` plus a
/// chart of BASH broadcast fraction versus loss (the misreading probe).
/// Returns false when any grid point wedged or panicked — with the
/// transport on, every point must complete, so an error row is a bug.
pub fn chaos(opts: &Options) -> bool {
    let warmup = opts.window(Duration::from_ns(20_000));
    let measure = opts.window(Duration::from_ns(60_000));
    let mut clean = true;
    let mut rows = Vec::new();
    let mut bash_series: Vec<(&str, Vec<(f64, f64)>)> = Vec::new();
    for topo in TOPOLOGIES {
        let mut bash_points = Vec::new();
        for proto in ProtocolKind::ALL {
            for loss in LOSS {
                let report = SimBuilder::new(proto)
                    .nodes(16)
                    .fabric(FabricSpec::new(topo))
                    .locking_microbench(256, Duration::ZERO)
                    .seed(0xF00D)
                    .seeds(opts.seeds.max(1))
                    .robustness(
                        RobustnessSpec::new()
                            .fault_plane(FaultPlaneConfig::lossy(0xC0A5, loss))
                            // Generous safety net: an unexpected wedge becomes
                            // an error row, never a hung experiment run.
                            .watchdog(WatchdogBudget::events(200_000_000)),
                    )
                    .plan(warmup, measure)
                    .run();
                for e in &report.errors {
                    eprintln!("chaos: {} {} loss={loss}: {e}", topo.name(), proto.name());
                    clean = false;
                }
                if report.runs.is_empty() {
                    continue;
                }
                let stats = report.stats();
                let fault = stats.fault.expect("fault plane was configured");
                let messages: u64 = stats.links.iter().map(|l| l.messages).sum();
                rows.push(format!(
                    "{},{},{},{:.1},{:.2},{:.4},{:.4},{},{},{},{},{},{:.5}",
                    topo.name(),
                    proto.name(),
                    loss,
                    report.perf.mean,
                    report.miss_latency_ns.mean,
                    report.link_utilization.mean,
                    report.broadcast_fraction.mean,
                    fault.dropped,
                    fault.retransmits,
                    fault.dead_links,
                    fault.undeliverable,
                    messages,
                    if messages > 0 {
                        fault.retransmits as f64 / messages as f64
                    } else {
                        0.0
                    },
                ));
                if proto == ProtocolKind::Bash {
                    bash_points.push((loss, report.broadcast_fraction.mean));
                }
            }
        }
        bash_series.push((topo.name(), bash_points));
    }
    let path = write_csv(
        opts,
        "chaos",
        "topology,protocol,loss,perf_mean,miss_latency_ns,link_utilization,\
         broadcast_fraction,dropped,retransmits,dead_links,undeliverable,\
         link_messages,retransmit_overhead",
        &rows,
    );
    println!("wrote {}", path.display());
    ascii_chart(
        "chaos sweep: BASH broadcast fraction vs link loss per topology",
        &bash_series,
        false,
    );
    clean
}

/// Deliberately wedges a run — heavy *unprotected* loss on a ring, so
/// coherence messages vanish and transactions stall forever — and
/// returns the structured watchdog diagnostic. `None` means the run
/// somehow completed, which fails the self-test at the caller.
///
/// The probe goes through the verification path on purpose: quiescence
/// is the explicit contract there, so the stall surfaces as a
/// [`bash::WedgeCause::Stalled`] diagnostic on the report — with the
/// fault-plane counters attached — even before any budget trips.
pub fn wedge_selftest() -> Option<String> {
    let report = SimBuilder::new(ProtocolKind::Snooping)
        .nodes(8)
        .fabric(FabricSpec::new(TopologyKind::Ring))
        .locking_microbench(64, Duration::ZERO)
        .seed(0xF00D)
        .robustness(
            RobustnessSpec::new()
                .fault_plane(FaultPlaneConfig::lossy(0xDEAD, 0.3).unprotected())
                // Backstop against livelock (retry storms); the stalled-drain
                // check catches the common silent-death wedge without it.
                .watchdog(WatchdogBudget::events(5_000_000)),
        )
        .try_verify(64)
        .expect("wedge-selftest config is valid");
    report.wedge.map(|d| d.to_string())
}
