//! Shared experiment machinery: `SimBuilder`-based run helpers, CSV output
//! and ASCII charts.
//!
//! Seed aggregation (mean ± stddev over perturbed runs) is the builder's
//! job now — each experiment point chains overrides onto [`point_builder`]
//! and reads the structured `RunReport` it returns.

use std::fs;
use std::path::PathBuf;

use bash::{CacheGeometry, Duration, ProtocolKind, SimBuilder, WorkloadParams};

/// Global experiment options (from the command line).
#[derive(Debug, Clone)]
pub struct Options {
    /// Output directory for CSV files.
    pub out_dir: PathBuf,
    /// Scales every measurement window (1.0 = defaults; smaller = faster).
    pub scale: f64,
    /// Number of perturbed runs per data point (mean ± stddev reported).
    pub seeds: u32,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            out_dir: PathBuf::from("results"),
            scale: 1.0,
            seeds: 1,
        }
    }
}

impl Options {
    /// A measurement window scaled by `--scale`.
    pub fn window(&self, base: Duration) -> Duration {
        Duration::from_ps(((base.as_ps() as f64) * self.scale).max(1000.0) as u64)
    }
}

/// The bandwidth sweep used by the bandwidth figures (MB/s, log-spaced, the
/// paper's 100…10000+ range).
pub const BANDWIDTHS: [u64; 8] = [100, 200, 400, 800, 1600, 3200, 6400, 12800];

/// The reduced sweep used by the 16-processor macro figures (the paper
/// plots 600+ MB/s there).
pub const MACRO_BANDWIDTHS: [u64; 6] = [400, 800, 1600, 3200, 6400, 12800];

/// An effectively unbounded bandwidth for normalization baselines.
pub const UNBOUNDED_MBPS: u64 = 10_000_000;

/// Which workload a run uses.
#[derive(Debug, Clone)]
pub enum Wl {
    /// Locking microbenchmark with a think time.
    Micro {
        /// Lock pool size.
        locks: u64,
        /// Think time between release and next acquire.
        think: Duration,
    },
    /// One of the five synthetic macro workloads.
    Macro(WorkloadParams),
}

/// A [`SimBuilder`] preconfigured for one experiment point: workload,
/// matching cache geometry, and the `--seeds` aggregation count. Chain
/// further overrides before running.
pub fn point_builder(
    proto: ProtocolKind,
    nodes: u16,
    mbps: u64,
    wl: &Wl,
    opts: &Options,
) -> SimBuilder {
    let b = SimBuilder::new(proto)
        .nodes(nodes)
        .bandwidth_mbps(mbps)
        .seed(0xF00D)
        .seeds(opts.seeds.max(1));
    match wl {
        Wl::Micro { locks, think } => b
            .cache(cache_for_locks(*locks))
            .locking_microbench(*locks, *think),
        Wl::Macro(params) => b
            .cache(CacheGeometry { sets: 512, ways: 4 })
            .synthetic(params.clone()),
    }
}

/// A [`point_builder`] configured for a whole bandwidth sweep: the
/// builder's parallel executor fans the (bandwidth × seed) grid across all
/// cores and returns reports in sweep order, byte-identical to running the
/// points one by one.
pub fn sweep_builder(
    proto: ProtocolKind,
    nodes: u16,
    bandwidths: &[u64],
    wl: &Wl,
    opts: &Options,
) -> SimBuilder {
    point_builder(
        proto,
        nodes,
        bandwidths.first().copied().unwrap_or(1600),
        wl,
        opts,
    )
    .bandwidths(bandwidths.iter().copied())
}

/// A cache comfortably holding the lock pool with conflict-free placement
/// (the paper chooses locks ≈ lines per cache so misses are sharing misses,
/// not capacity misses).
pub fn cache_for_locks(locks: u64) -> CacheGeometry {
    CacheGeometry {
        sets: (locks as usize).max(64),
        ways: 4,
    }
}

/// Runs a workload-agnostic baseline: Snooping at unbounded bandwidth (the
/// macro figures normalize to it).
pub fn snooping_unbounded_baseline(
    nodes: u16,
    wl: &Wl,
    warmup: Duration,
    measure: Duration,
) -> f64 {
    let opts = Options::default();
    point_builder(ProtocolKind::Snooping, nodes, UNBOUNDED_MBPS, wl, &opts)
        .plan(warmup, measure)
        .run()
        .perf
        .mean
}

/// Writes CSV rows to `<out_dir>/<name>.csv`.
pub fn write_csv(opts: &Options, name: &str, header: &str, rows: &[String]) -> PathBuf {
    fs::create_dir_all(&opts.out_dir).expect("create results dir");
    let path = opts.out_dir.join(format!("{name}.csv"));
    let mut body = String::with_capacity(rows.len() * 64);
    body.push_str(header);
    body.push('\n');
    for r in rows {
        body.push_str(r);
        body.push('\n');
    }
    fs::write(&path, body).expect("write csv");
    path
}

/// Renders a simple ASCII chart of one or more series. `log_x` plots the
/// x-axis in log scale (for bandwidth sweeps).
pub fn ascii_chart(title: &str, series: &[(&str, Vec<(f64, f64)>)], log_x: bool) {
    const W: usize = 64;
    const H: usize = 18;
    let mut grid = vec![vec![' '; W]; H];
    let xs: Vec<f64> = series
        .iter()
        .flat_map(|(_, pts)| pts.iter().map(|p| if log_x { p.0.ln() } else { p.0 }))
        .collect();
    let ys: Vec<f64> = series
        .iter()
        .flat_map(|(_, pts)| pts.iter().map(|p| p.1))
        .collect();
    if xs.is_empty() {
        return;
    }
    let (x0, x1) = (
        xs.iter().cloned().fold(f64::INFINITY, f64::min),
        xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
    );
    let (y0, y1) = (
        ys.iter().cloned().fold(f64::INFINITY, f64::min).min(0.0),
        ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
    );
    let xspan = (x1 - x0).max(1e-12);
    let yspan = (y1 - y0).max(1e-12);
    let glyphs = ['S', 'B', 'D', '3', '4', '5', '6', '7'];
    for (si, (_, pts)) in series.iter().enumerate() {
        let g = glyphs[si % glyphs.len()];
        for &(x, y) in pts {
            let xv = if log_x { x.ln() } else { x };
            let col = (((xv - x0) / xspan) * (W - 1) as f64).round() as usize;
            let row = (((y - y0) / yspan) * (H - 1) as f64).round() as usize;
            let r = H - 1 - row.min(H - 1);
            grid[r][col.min(W - 1)] = g;
        }
    }
    println!("\n  {title}");
    println!("  y: {y1:.3e} (top) … {y0:.3e} (bottom)");
    for row in grid {
        let line: String = row.into_iter().collect();
        println!("  |{line}");
    }
    println!("  +{}", "-".repeat(W));
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(i, (name, _))| format!("{}={}", glyphs[i % glyphs.len()], name))
        .collect();
    println!(
        "  x: {:.0} … {:.0}{}   [{}]",
        if log_x { x0.exp() } else { x0 },
        if log_x { x1.exp() } else { x1 },
        if log_x { " (log)" } else { "" },
        legend.join("  ")
    );
}
