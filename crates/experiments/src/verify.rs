//! The `verify` experiment: every catalog scenario × every protocol under
//! the invariant harness — the CI `verify-smoke` gate.
//!
//! Each cell runs a scenario to quiescence with the generalized value
//! oracle and structural sweeps enabled. On a violation the harness
//! re-runs the failing cell, greedily minimizes the captured trace while
//! the violation reproduces, and writes the repro to
//! `<out>/verify_repro_<scenario>_<protocol>.trace` (CI uploads it as an
//! artifact), then exits non-zero.

use bash::tester::{minimize_trace, run_verify_trace, verify_catalog_reports, VerifyConfig};
use bash::{kernel::pool, ProtocolKind};

use crate::common::{write_csv, Options};

/// Fixed seed of the smoke gate (violations must be reproducible).
const SEED: u64 = 0xF00D;
/// System size per cell (the harness default).
const NODES: u16 = 4;
/// Per-node op cap per cell.
const OPS_PER_NODE: u64 = 400;
/// Replay budget per minimization.
const MAX_REPLAYS: usize = 400;

/// Runs the full verification matrix (via the tester's
/// `verify_catalog_reports`, the single source of truth for the grid);
/// returns `true` when every cell is clean. Writes `verify.csv` with one
/// row per cell and, for any failing cell, a minimized repro trace.
pub fn verify(opts: &Options) -> bool {
    let reports = verify_catalog_reports(NODES, SEED, OPS_PER_NODE, pool::available_threads());
    let tasks = reports.len();

    let mut rows = Vec::new();
    let mut all_clean = true;
    println!(
        "{:<18} {:<10} {:>7} {:>8} {:>8} {:>7}  verdict",
        "scenario", "protocol", "ops", "loads", "stores", "blocks"
    );
    for (name, report) in &reports {
        let protocol = &report.protocol;
        let verdict = if report.passed() { "ok" } else { "VIOLATION" };
        println!(
            "{:<18} {:<10} {:>7} {:>8} {:>8} {:>7}  {verdict}",
            name,
            protocol.name(),
            report.ops,
            report.loads_checked,
            report.stores_applied,
            report.blocks_touched,
        );
        rows.push(format!(
            "{},{},{},{},{},{},{},{}",
            name,
            protocol.name(),
            report.ops,
            report.loads_checked,
            report.stores_applied,
            report.blocks_touched,
            report.multi_writer_locations,
            report.violations.len(),
        ));
        if !report.passed() {
            all_clean = false;
            eprintln!(
                "  first violation: {}",
                report.first_violation().unwrap_or("<none>")
            );
            shrink_and_write(opts, name, *protocol, report);
        }
    }
    let path = write_csv(
        opts,
        "verify",
        "scenario,protocol,ops,loads_checked,stores_applied,blocks_touched,multi_writer_locations,violations",
        &rows,
    );
    println!("wrote {}", path.display());
    if all_clean {
        println!(
            "verify: {} cells clean ({} scenarios x {} protocols)",
            tasks,
            bash::catalog::CATALOG.len(),
            ProtocolKind::ALL.len()
        );
    }
    all_clean
}

/// Minimizes a failing cell's captured trace and writes the repro.
fn shrink_and_write(
    opts: &Options,
    scenario: &str,
    protocol: ProtocolKind,
    report: &bash::VerifyReport,
) {
    // The replay config must match the capture run: same seed, nodes and
    // hostile defaults (run_verify_trace adopts nodes/length from the
    // trace itself).
    let mut cfg = VerifyConfig::new(protocol, SEED);
    cfg.nodes = NODES;
    let outcome = minimize_trace(
        &report.trace,
        |candidate| !run_verify_trace(&cfg, candidate).passed(),
        MAX_REPLAYS,
    );
    std::fs::create_dir_all(&opts.out_dir).expect("create results dir");
    let path = opts.out_dir.join(format!(
        "verify_repro_{}_{}.trace",
        scenario.replace('-', "_"),
        protocol.name().to_ascii_lowercase()
    ));
    outcome
        .trace
        .write_to(&path)
        .expect("write minimized repro trace");
    eprintln!(
        "  minimized {} -> {} ops in {} replays; repro written to {}",
        outcome.reduced_from,
        outcome.trace.records.len(),
        outcome.replays,
        path.display()
    );
}
