//! The `verify` experiment: every catalog scenario × every protocol under
//! the invariant harness — the CI `verify-smoke` gate.
//!
//! Each cell runs a scenario to quiescence with the generalized value
//! oracle and structural sweeps enabled. On a violation the harness
//! re-runs the failing cell, greedily minimizes the captured trace while
//! the violation reproduces, and writes the repro to
//! `<out>/verify_repro_<scenario>_<protocol>.trace` (CI uploads it as an
//! artifact), then exits non-zero.
//!
//! After a clean matrix the gate additionally runs the **differential
//! latency pass**: one completion-bearing trace from the matrix is
//! replayed through all three protocols and the per-node issue→complete
//! latency distributions (mean/p50/p99) are diffed against the configured
//! tolerance — printed per protocol and written to `latency_diff.csv`.
//! Latency divergence is informational (the protocols are *supposed* to
//! trade latency for bandwidth); only value divergence fails the gate.

use bash::tester::{minimize_trace, run_verify_trace, verify_catalog_reports, VerifyConfig};
use bash::{differential_trace, kernel::pool, DifferentialReport, ProtocolKind};

use crate::common::{write_csv, Options};

/// Fixed seed of the smoke gate (violations must be reproducible).
const SEED: u64 = 0xF00D;
/// System size per cell (the harness default).
const NODES: u16 = 4;
/// Per-node op cap per cell.
const OPS_PER_NODE: u64 = 400;
/// Replay budget per minimization.
const MAX_REPLAYS: usize = 400;

/// Runs the full verification matrix (via the tester's
/// `verify_catalog_reports`, the single source of truth for the grid);
/// returns `true` when every cell is clean. Writes `verify.csv` with one
/// row per cell and, for any failing cell, a minimized repro trace.
pub fn verify(opts: &Options) -> bool {
    let reports = verify_catalog_reports(NODES, SEED, OPS_PER_NODE, pool::available_threads());
    let tasks = reports.len();

    let mut rows = Vec::new();
    let mut all_clean = true;
    println!(
        "{:<18} {:<10} {:>7} {:>8} {:>8} {:>7}  verdict",
        "scenario", "protocol", "ops", "loads", "stores", "blocks"
    );
    for (name, report) in &reports {
        let protocol = &report.protocol;
        let verdict = if report.passed() { "ok" } else { "VIOLATION" };
        println!(
            "{:<18} {:<10} {:>7} {:>8} {:>8} {:>7}  {verdict}",
            name,
            protocol.name(),
            report.ops,
            report.loads_checked,
            report.stores_applied,
            report.blocks_touched,
        );
        rows.push(format!(
            "{},{},{},{},{},{},{},{}",
            name,
            protocol.name(),
            report.ops,
            report.loads_checked,
            report.stores_applied,
            report.blocks_touched,
            report.multi_writer_locations,
            report.violations.len(),
        ));
        if !report.passed() {
            all_clean = false;
            eprintln!(
                "  first violation: {}",
                report.first_violation().unwrap_or("<none>")
            );
            shrink_and_write(opts, name, *protocol, report);
        }
    }
    let path = write_csv(
        opts,
        "verify",
        "scenario,protocol,ops,loads_checked,stores_applied,blocks_touched,multi_writer_locations,violations",
        &rows,
    );
    println!("wrote {}", path.display());
    if all_clean {
        println!(
            "verify: {} cells clean ({} scenarios x {} protocols)",
            tasks,
            bash::catalog::CATALOG.len(),
            ProtocolKind::ALL.len()
        );
        all_clean = latency_diff(opts, &reports);
    }
    all_clean
}

/// The differential latency pass over one completion-bearing trace from
/// the clean matrix (the phase-shift scenario exercises both protocol
/// regimes, so its latency spread is the interesting one).
fn latency_diff(opts: &Options, reports: &[(&'static str, bash::VerifyReport)]) -> bool {
    let Some((_, report)) = reports
        .iter()
        .find(|(name, r)| *name == "phase-shift" && r.protocol == ProtocolKind::Snooping)
    else {
        eprintln!("verify: phase-shift cell missing from the matrix");
        return false;
    };
    assert!(
        report.trace.completions() > 0,
        "verification captures carry completion events"
    );
    let cfg = VerifyConfig::new(ProtocolKind::Snooping, SEED);
    let diff = differential_trace(&cfg, &report.trace);
    print_latency_diff(&diff);
    let mut rows = Vec::new();
    for d in &diff.latency {
        let node = d
            .node
            .map(|n| n.to_string())
            .unwrap_or_else(|| "all".into());
        for (proto, summary) in diff.protocols.iter().zip(&d.per_protocol) {
            let Some(s) = summary else { continue };
            rows.push(format!(
                "{node},{},{},{:.3},{:.3},{:.3},{:.4},{}",
                proto.name(),
                s.count,
                s.mean_ns,
                s.p50_ns,
                s.p99_ns,
                d.relative_spread,
                d.within_tolerance,
            ));
        }
    }
    let path = write_csv(
        opts,
        "latency_diff",
        "node,protocol,completions,mean_ns,p50_ns,p99_ns,relative_spread,within_tolerance",
        &rows,
    );
    println!("wrote {}", path.display());
    if !diff.passed() {
        eprintln!(
            "verify: differential latency pass found {} single-writer value mismatches",
            diff.mismatches.len()
        );
        return false;
    }
    true
}

/// Prints a differential report's latency-distribution diff (shared with
/// the `trace diff` subcommand).
pub(crate) fn print_latency_diff(diff: &DifferentialReport) {
    println!(
        "latency diff over '{}' ({} completions captured live):",
        diff.workload,
        diff.captured_latency.map(|s| s.count).unwrap_or(0)
    );
    println!(
        "{:<6} {:<10} {:>7} {:>10} {:>10} {:>10}",
        "node", "protocol", "ops", "mean", "p50", "p99"
    );
    for d in &diff.latency {
        let node = d
            .node
            .map(|n| n.to_string())
            .unwrap_or_else(|| "all".into());
        for (proto, summary) in diff.protocols.iter().zip(&d.per_protocol) {
            let Some(s) = summary else { continue };
            println!(
                "{:<6} {:<10} {:>7} {:>8.1}ns {:>8.1}ns {:>8.1}ns",
                node,
                proto.name(),
                s.count,
                s.mean_ns,
                s.p50_ns,
                s.p99_ns,
            );
        }
        println!(
            "{:<6} {:<10} spread {:.1}% ({})",
            node,
            "",
            d.relative_spread * 100.0,
            if d.within_tolerance {
                "within tolerance"
            } else {
                "diverged — informational"
            }
        );
    }
    println!(
        "latency rows over tolerance: {} of {} (informational; hard failures: {})",
        diff.latency_divergences,
        diff.latency.len(),
        diff.mismatches.len()
    );
}

/// Minimizes a failing cell's captured trace and writes the repro.
fn shrink_and_write(
    opts: &Options,
    scenario: &str,
    protocol: ProtocolKind,
    report: &bash::VerifyReport,
) {
    // The replay config must match the capture run: same seed, nodes and
    // hostile defaults (run_verify_trace adopts nodes/length from the
    // trace itself).
    let mut cfg = VerifyConfig::new(protocol, SEED);
    cfg.nodes = NODES;
    let outcome = minimize_trace(
        &report.trace,
        |candidate| !run_verify_trace(&cfg, candidate).passed(),
        MAX_REPLAYS,
    );
    std::fs::create_dir_all(&opts.out_dir).expect("create results dir");
    let path = opts.out_dir.join(format!(
        "verify_repro_{}_{}.trace",
        scenario.replace('-', "_"),
        protocol.name().to_ascii_lowercase()
    ));
    outcome
        .trace
        .write_to(&path)
        .expect("write minimized repro trace");
    eprintln!(
        "  minimized {} -> {} ops in {} replays; repro written to {}",
        outcome.reduced_from,
        outcome.trace.records.len(),
        outcome.replays,
        path.display()
    );
}
